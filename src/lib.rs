//! Workspace façade for the Moctopus reproduction.
//!
//! This crate exists so the repository-level integration tests (`tests/`) and
//! runnable examples (`examples/`) have a package to hang off, and so
//! `cargo doc` produces one landing page linking every layer. All real code
//! lives in the member crates, re-exported here one module per crate:
//!
//! | Module | Crate | Layer |
//! |--------|-------|-------|
//! | [`sparse`] | `crates/sparse` | GraphBLAS-style boolean matrices |
//! | [`graph_store`] | `crates/graph-store` | adjacency / CSR / heterogeneous storage |
//! | [`graph_gen`] | `crates/graph-gen` | synthetic trace generators |
//! | [`graph_partition`] | `crates/graph-partition` | streaming partitioners |
//! | [`pim_sim`] | `crates/pim-sim` | PIM hardware cost model |
//! | [`rpq`] | `crates/rpq` | RPQ parser, automaton, matrix plans |
//! | [`moctopus_runtime`] | `crates/runtime` | deterministic worker-pool execution runtime + request sequencing |
//! | [`moctopus`] | `crates/core` | the three engines |
//! | [`moctopus_server`] | `crates/server` | concurrent serving layer + update-consistent result cache |
//! | [`moctopus_bench`] | `crates/bench` | experiment harness |
//!
//! Start with [`moctopus`] — its crate docs carry the quick-start — and see
//! `ARCHITECTURE.md` at the repository root for the end-to-end story.

pub use graph_gen;
pub use graph_partition;
pub use graph_store;
pub use moctopus;
pub use moctopus_bench;
pub use moctopus_runtime;
pub use moctopus_server;
pub use pim_sim;
pub use rpq;
pub use sparse;
