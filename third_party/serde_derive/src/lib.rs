//! Offline stand-in for the `serde_derive` proc-macro crate.
//!
//! The Moctopus workspace builds in a hermetic environment with no access to
//! crates.io, so the real `serde` stack is replaced by a minimal shim (see
//! `third_party/serde`). The workspace only ever *derives* `Serialize` /
//! `Deserialize` — it never serializes at runtime — so the derives here simply
//! validate that they are attached to a type and expand to nothing. Swapping
//! the shim for the real crates is a one-line change in the workspace
//! manifest.

use proc_macro::TokenStream;

/// No-op derive for `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op derive for `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
