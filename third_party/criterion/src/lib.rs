//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The workspace builds hermetically, so this shim provides the subset of the
//! criterion API the `moctopus_bench` benches use — [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`] / [`Bencher::iter_batched`],
//! [`BenchmarkId`], [`BatchSize`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros — backed by a simple wall-clock sampler:
//! per benchmark it runs one warm-up iteration, then `sample_size` timed
//! iterations, and prints min / median / mean to stdout.
//!
//! No statistics engine, no HTML reports, no CLI filtering: the goal is that
//! `cargo bench` runs and reports honest wall-clock numbers, and the bench
//! sources stay byte-for-byte compatible with the real criterion when the
//! workspace manifest is pointed back at crates.io.

#![warn(missing_docs)]

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup cost. The shim re-runs setup per
/// iteration for every variant; the variants exist for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Many small inputs per setup batch (real criterion batches these).
    SmallInput,
    /// Large inputs; setup runs once per measured iteration.
    LargeInput,
    /// Setup runs exactly once per iteration.
    PerIteration,
}

/// Identifier for one parameterized benchmark: a function name plus the
/// parameter value it was measured at.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Creates an id rendered as `"{function_name}/{parameter}"`.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId { full: format!("{}/{}", function_name.into(), parameter) }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.full.fmt(f)
    }
}

/// Times one benchmark routine.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher { samples: Vec::with_capacity(sample_size), sample_size }
    }

    /// Measures `routine` over `sample_size` iterations (after one warm-up).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Measures `routine` on a fresh input from `setup` each iteration;
    /// setup time is excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    fn report(&mut self, label: &str) {
        if self.samples.is_empty() {
            println!("{label:<48} (no samples)");
            return;
        }
        self.samples.sort_unstable();
        let min = self.samples[0];
        let median = self.samples[self.samples.len() / 2];
        let mean = self.samples.iter().sum::<Duration>() / self.samples.len() as u32;
        println!(
            "{label:<48} min {:>12?}  median {:>12?}  mean {:>12?}  ({} samples)",
            min,
            median,
            mean,
            self.samples.len()
        );
    }
}

/// A named group of related benchmarks sharing a sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark under `id` within this group.
    pub fn bench_function<S: Display, F>(&mut self, id: S, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Runs one parameterized benchmark, passing `input` through to the
    /// routine.
    pub fn bench_with_input<S: Display, I: ?Sized, F>(
        &mut self,
        id: S,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher, input);
        bencher.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Ends the group. (The real criterion emits a summary here.)
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a [`BenchmarkGroup`] with a default sample size of 10.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: 10, _criterion: self }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(10);
        f(&mut bencher);
        bencher.report(name);
        self
    }
}

/// Bundles benchmark functions into one runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Expands to `fn main` running each group, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
