//! The [`Strategy`] trait and the built-in strategies the workspace uses.

use crate::test_runner::TestRng;
use core::ops::Range;

/// A recipe for generating random values of one type.
///
/// Unlike real proptest there is no value tree and no shrinking: `sample`
/// draws a value directly.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Weighted choice between strategies of one value type; built by
/// [`prop_oneof!`](crate::prop_oneof).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    /// Builds a union from `(weight, strategy)` arms. Panics if no arm has a
    /// positive weight.
    pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total_weight: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total_weight > 0, "prop_oneof! needs at least one positive weight");
        Union { arms, total_weight }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total_weight);
        for (weight, strategy) in &self.arms {
            let weight = u64::from(*weight);
            if pick < weight {
                return strategy.sample(rng);
            }
            pick -= weight;
        }
        unreachable!("weighted pick exceeded total weight")
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),+) => {
        $(impl Strategy for Range<$ty> {
            type Value = $ty;

            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(
                    self.start < self.end,
                    "cannot sample from empty range {:?}",
                    self
                );
                let span = (self.end as u64) - (self.start as u64);
                self.start + rng.below(span) as $ty
            }
        })+
    };
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))+) => {
        $(impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        })+
    };
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
}

/// `&str` regex patterns are strategies generating matching strings.
///
/// The generator supports the subset the tests use: literal characters,
/// `\`-escapes, `[a-z0-9]` classes, `(...)` groups, `|` alternation, and
/// `{n}` / `{m,n}` / `*` / `+` / `?` repetition (unbounded repeats are capped
/// at 8).
impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        let pattern = regex::parse(self)
            .unwrap_or_else(|err| panic!("invalid regex strategy {self:?}: {err}"));
        let mut out = String::new();
        regex::generate(&pattern, rng, &mut out);
        out
    }
}

mod regex {
    //! A miniature regex *generator*: parses a pattern into an AST and samples
    //! strings matching it.

    use crate::test_runner::TestRng;

    /// Cap applied to `*` and `+` repetitions.
    const UNBOUNDED_CAP: u32 = 8;

    pub(super) enum Node {
        /// Ordered alternatives (`a|b|c`).
        Alternation(Vec<Node>),
        /// Concatenation.
        Sequence(Vec<Node>),
        /// `node{min,max}`.
        Repeat(Box<Node>, u32, u32),
        /// Character class: inclusive ranges (single chars are `(c, c)`).
        Class(Vec<(char, char)>),
        /// One literal character.
        Literal(char),
    }

    pub(super) fn parse(pattern: &str) -> Result<Node, String> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pos = 0;
        let node = parse_alternation(&chars, &mut pos)?;
        if pos != chars.len() {
            return Err(format!("unexpected `{}` at offset {pos}", chars[pos]));
        }
        Ok(node)
    }

    fn parse_alternation(chars: &[char], pos: &mut usize) -> Result<Node, String> {
        let mut alternatives = vec![parse_sequence(chars, pos)?];
        while *pos < chars.len() && chars[*pos] == '|' {
            *pos += 1;
            alternatives.push(parse_sequence(chars, pos)?);
        }
        if alternatives.len() == 1 {
            Ok(alternatives.pop().expect("one alternative"))
        } else {
            Ok(Node::Alternation(alternatives))
        }
    }

    fn parse_sequence(chars: &[char], pos: &mut usize) -> Result<Node, String> {
        let mut items = Vec::new();
        while *pos < chars.len() && chars[*pos] != '|' && chars[*pos] != ')' {
            let atom = parse_atom(chars, pos)?;
            items.push(parse_quantifier(chars, pos, atom)?);
        }
        Ok(Node::Sequence(items))
    }

    fn parse_atom(chars: &[char], pos: &mut usize) -> Result<Node, String> {
        match chars[*pos] {
            '(' => {
                *pos += 1;
                let inner = parse_alternation(chars, pos)?;
                if *pos >= chars.len() || chars[*pos] != ')' {
                    return Err("unclosed group".into());
                }
                *pos += 1;
                Ok(inner)
            }
            '[' => {
                *pos += 1;
                let mut ranges = Vec::new();
                while *pos < chars.len() && chars[*pos] != ']' {
                    let low = chars[*pos];
                    *pos += 1;
                    if *pos + 1 < chars.len() && chars[*pos] == '-' && chars[*pos + 1] != ']' {
                        let high = chars[*pos + 1];
                        *pos += 2;
                        ranges.push((low, high));
                    } else {
                        ranges.push((low, low));
                    }
                }
                if *pos >= chars.len() {
                    return Err("unclosed character class".into());
                }
                *pos += 1;
                if ranges.is_empty() {
                    return Err("empty character class".into());
                }
                Ok(Node::Class(ranges))
            }
            '\\' => {
                *pos += 1;
                if *pos >= chars.len() {
                    return Err("dangling escape".into());
                }
                let c = chars[*pos];
                *pos += 1;
                Ok(Node::Literal(c))
            }
            '.' => {
                *pos += 1;
                // "Any character": printable ASCII is enough for a generator.
                Ok(Node::Class(vec![(' ', '~')]))
            }
            c => {
                *pos += 1;
                Ok(Node::Literal(c))
            }
        }
    }

    fn parse_quantifier(chars: &[char], pos: &mut usize, atom: Node) -> Result<Node, String> {
        if *pos >= chars.len() {
            return Ok(atom);
        }
        let (min, max) = match chars[*pos] {
            '*' => (0, UNBOUNDED_CAP),
            '+' => (1, UNBOUNDED_CAP),
            '?' => (0, 1),
            '{' => {
                let close =
                    chars[*pos..].iter().position(|&c| c == '}').ok_or("unclosed repetition")?
                        + *pos;
                let body: String = chars[*pos + 1..close].iter().collect();
                *pos = close; // consumed below alongside the other forms
                let (min, max) = match body.split_once(',') {
                    Some((min, max)) => (
                        min.trim().parse().map_err(|_| "bad repetition bound")?,
                        max.trim().parse().map_err(|_| "bad repetition bound")?,
                    ),
                    None => {
                        let n = body.trim().parse().map_err(|_| "bad repetition bound")?;
                        (n, n)
                    }
                };
                if min > max {
                    return Err(format!("repetition {{{min},{max}}} has min > max"));
                }
                (min, max)
            }
            _ => return Ok(atom),
        };
        *pos += 1;
        Ok(Node::Repeat(Box::new(atom), min, max))
    }

    pub(super) fn generate(node: &Node, rng: &mut TestRng, out: &mut String) {
        match node {
            Node::Alternation(alternatives) => {
                let pick = rng.below(alternatives.len() as u64) as usize;
                generate(&alternatives[pick], rng, out);
            }
            Node::Sequence(items) => {
                for item in items {
                    generate(item, rng, out);
                }
            }
            Node::Repeat(inner, min, max) => {
                let count = min + rng.below(u64::from(max - min) + 1) as u32;
                for _ in 0..count {
                    generate(inner, rng, out);
                }
            }
            Node::Class(ranges) => {
                let pick = rng.below(ranges.len() as u64) as usize;
                let (low, high) = ranges[pick];
                let span = (high as u32) - (low as u32) + 1;
                let code = low as u32 + rng.below(u64::from(span)) as u32;
                out.push(char::from_u32(code).unwrap_or(low));
            }
            Node::Literal(c) => out.push(*c),
        }
    }
}
