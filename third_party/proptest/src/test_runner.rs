//! Deterministic test-runner plumbing: configuration, RNG, and case errors.

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};
use std::fmt;

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The random source strategies sample from. Deterministic: every test run
/// sees the same case sequence, so failures always reproduce.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: SmallRng,
}

impl TestRng {
    /// A fixed-seed generator (the shim has no failure-persistence files to
    /// replay from, so determinism is the reproduction story).
    pub fn deterministic() -> Self {
        TestRng { inner: SmallRng::seed_from_u64(0x5eed_5eed_5eed_5eed) }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform value in `[0, n)`; panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        use rand::Rng;
        self.inner.gen_range(0..n)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        use rand::Rng;
        self.inner.gen::<f64>()
    }
}

/// A failed property case (produced by `prop_assert!` and friends).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Wraps a failure message.
    pub fn fail<S: Into<String>>(message: S) -> Self {
        TestCaseError { message: message.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}
