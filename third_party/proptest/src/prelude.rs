//! The glob-import surface: `use proptest::prelude::*;`.

pub use crate::prop;
pub use crate::strategy::{BoxedStrategy, Strategy, Union};
pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
