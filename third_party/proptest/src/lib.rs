//! Offline stand-in for the `proptest` property-testing framework.
//!
//! The workspace builds hermetically (no crates.io), so this shim provides
//! the subset of proptest the integration tests use:
//!
//! * [`strategy::Strategy`] with `prop_map`, implemented for integer ranges,
//!   tuples of strategies, boxed strategies, and `&str` regex patterns
//!   (a small generator covering literals, escapes, classes, groups,
//!   alternation, and `{m,n}` / `*` / `+` / `?` repetition);
//! * [`collection::vec`] and weighted [`strategy::Union`] (via
//!   [`prop_oneof!`]);
//! * the [`proptest!`] macro with `#![proptest_config(...)]`,
//!   [`prop_assert!`], and [`prop_assert_eq!`];
//! * a deterministic [`test_runner::TestRng`], so failures always reproduce.
//!
//! Unlike real proptest there is **no shrinking** and no failure persistence:
//! a failing case panics immediately with the assertion's message, and the
//! fixed-seed RNG makes every run reproduce the same cases. The
//! test sources are byte-for-byte compatible with the real crate; point the
//! workspace manifest back at crates.io to upgrade.

#![warn(missing_docs)]

pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Namespace mirror so `prop::collection::vec` works after
/// `use proptest::prelude::*`, as with the real crate.
pub mod prop {
    pub use crate::collection;
}

/// Asserts a condition inside a [`proptest!`] body, failing the current case
/// (rather than panicking directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a [`proptest!`] body, reporting both operands on
/// failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "{}\n  left: `{:?}`\n right: `{:?}`",
            format!($($fmt)*),
            left,
            right
        );
    }};
}

/// Builds a weighted choice between strategies producing the same value type,
/// mirroring `proptest::prop_oneof!`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strategy),+]
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that samples the strategies `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

/// Implementation detail of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr;) => {};
    ($config:expr;
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let mut rng = $crate::test_runner::TestRng::deterministic();
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strategy), &mut rng);)+
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(err) = outcome {
                    panic!("proptest case {}/{} failed: {}", case + 1, config.cases, err);
                }
            }
        }
        $crate::__proptest_impl!($config; $($rest)*);
    };
}
