//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use core::ops::Range;

/// Generates `Vec`s whose length is drawn uniformly from `size` and whose
/// elements come from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "vec strategy needs a non-empty size range");
    VecStrategy { element, size }
}

/// Strategy returned by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
