//! Offline stand-in for the `serde` crate.
//!
//! The workspace builds hermetically (no crates.io access), and its only use
//! of serde is `#[derive(Serialize, Deserialize)]` on plain-old-data structs —
//! nothing serializes at runtime yet. This shim keeps those derives compiling:
//!
//! * [`Serialize`] and [`Deserialize`] are marker traits, blanket-implemented
//!   for every type;
//! * the derive macros (re-exported from the sibling `serde_derive` shim)
//!   expand to nothing.
//!
//! When a future change actually needs wire formats, replace the
//! `third_party/serde*` path dependencies in the workspace manifest with the
//! real crates; no downstream code changes.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all types.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all
/// types. The real trait carries a `'de` lifetime; the shim drops it because
/// no bound in the workspace names it.
pub trait Deserialize {}

impl<T: ?Sized> Deserialize for T {}
