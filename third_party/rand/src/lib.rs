//! Offline stand-in for the `rand` crate (0.8-style API surface).
//!
//! The workspace builds hermetically, so this shim reimplements exactly the
//! slice of `rand` the graph generators use: [`SeedableRng::seed_from_u64`],
//! [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`],
//! [`seq::SliceRandom::shuffle`], and [`rngs::SmallRng`] (a xoshiro256++
//! generator, the same family the real `SmallRng` uses on 64-bit targets).
//!
//! Everything is deterministic given the seed, which is all the experiment
//! harness relies on. Swap the `third_party/rand` path dependency for the real
//! crate in the workspace manifest to upgrade; no downstream code changes.

#![warn(missing_docs)]

use core::ops::Range;

/// Low-level uniform random source: a stream of `u64` words.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling helpers layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`[0, 1)` for floats, all values for integers, fair coin for `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from a half-open range. Panics if the range is empty.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Types samplable from their "standard" distribution via [`Rng::gen`].
pub trait Standard {
    /// Draws one standard-distributed value from `rng`.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange {
    /// The element type produced by sampling.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

/// Uniform `u64` in `[low, high)` by rejection sampling (no modulo bias).
fn uniform_u64<R: RngCore>(rng: &mut R, low: u64, high: u64) -> u64 {
    assert!(low < high, "cannot sample from empty range {low}..{high}");
    let span = high - low;
    if span.is_power_of_two() {
        return low + (rng.next_u64() & (span - 1));
    }
    // Largest multiple of `span` that fits in u64; reject above it.
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return low + v % span;
        }
    }
}

impl SampleRange for Range<u64> {
    type Output = u64;
    fn sample_from<R: RngCore>(self, rng: &mut R) -> u64 {
        uniform_u64(rng, self.start, self.end)
    }
}

impl SampleRange for Range<usize> {
    type Output = usize;
    fn sample_from<R: RngCore>(self, rng: &mut R) -> usize {
        uniform_u64(rng, self.start as u64, self.end as u64) as usize
    }
}

impl SampleRange for Range<u32> {
    type Output = u32;
    fn sample_from<R: RngCore>(self, rng: &mut R) -> u32 {
        uniform_u64(rng, self.start as u64, self.end as u64) as u32
    }
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty f64 range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Small, fast generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the algorithm the real `SmallRng` uses on 64-bit
    /// platforms. Not cryptographically secure; statistically solid and fast.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Expand the seed with splitmix64, as rand does.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            SmallRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Random slice operations.
pub mod seq {
    use super::{Rng, SampleRange};

    /// Extension trait adding in-place shuffling to slices.
    pub trait SliceRandom {
        /// Shuffles the slice uniformly (Fisher–Yates).
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (0..i + 1).sample_from(rng);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(5usize..17);
            assert!((5..17).contains(&v));
            let f = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let unit = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&unit));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 100-element shuffle should not be identity");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits} hits for p=0.25");
    }
}
