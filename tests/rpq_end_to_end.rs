//! End-to-end RPQ pipeline tests: text syntax -> AST -> automaton ->
//! evaluation, cross-checked against the matrix execution plans.

use graph_store::{AdjacencyGraph, Label, NodeId};
use proptest::prelude::*;
use rpq::plan::HostMatrixEngine;
use rpq::{parser, ExecutionPlan, ReferenceEvaluator, RpqExpr};

/// A small multi-label graph: a ring over label 0 with chords over label 1.
fn labelled_graph(n: u64) -> AdjacencyGraph {
    let mut g = AdjacencyGraph::new();
    for i in 0..n {
        g.insert_edge(NodeId(i), NodeId((i + 1) % n), Label(0));
        if i % 3 == 0 {
            g.insert_edge(NodeId(i), NodeId((i + 5) % n), Label(1));
        }
    }
    g
}

#[test]
fn parsed_k_hop_matches_matrix_plan() {
    let g = labelled_graph(40);
    let engine = HostMatrixEngine::from_graph(&g);
    let reference = ReferenceEvaluator::new(&g);
    let sources: Vec<NodeId> = (0..10u64).map(NodeId).collect();

    for k in 1..=4usize {
        let expr = parser::parse(&format!(".{{{k}}}")).expect("valid query text");
        assert_eq!(expr, RpqExpr::k_hop(k));
        let plan = ExecutionPlan::from_expr(&expr).expect("k-hop has a matrix plan");
        let (matrix_results, _) = engine.run(&plan, &sources);
        let nfa_results = reference.evaluate(&expr, &sources);
        for (m, n) in matrix_results.iter().zip(nfa_results.iter()) {
            let n: Vec<NodeId> = n.iter().copied().collect();
            assert_eq!(m, &n, "matrix plan and automaton disagree at k = {k}");
        }
    }
}

#[test]
fn label_constrained_chain_matches_automaton() {
    let g = labelled_graph(30);
    let engine = HostMatrixEngine::from_graph(&g);
    let reference = ReferenceEvaluator::new(&g);
    let sources: Vec<NodeId> = (0..30u64).map(NodeId).collect();

    for text in ["0/0", "1/0", "0/1/0", "1", "(0){3}"] {
        let expr = parser::parse(text).expect("valid query text");
        let plan = ExecutionPlan::from_expr(&expr).expect("fixed-length query");
        let (matrix_results, _) = engine.run(&plan, &sources);
        let nfa_results = reference.evaluate(&expr, &sources);
        for (i, (m, n)) in matrix_results.iter().zip(nfa_results.iter()).enumerate() {
            let n: Vec<NodeId> = n.iter().copied().collect();
            assert_eq!(m, &n, "query {text:?} disagrees for source {i}");
        }
    }
}

#[test]
fn unbounded_queries_fall_back_to_the_automaton() {
    let g = labelled_graph(20);
    let reference = ReferenceEvaluator::new(&g);
    // Transitive closure over label 0 from node 0 reaches the whole ring.
    let expr = parser::parse("0+").expect("valid query text");
    assert!(ExecutionPlan::from_expr(&expr).is_none(), "unbounded queries have no matrix chain");
    let results = reference.evaluate(&expr, &[NodeId(0)]);
    assert_eq!(results[0].len(), 20);
}

#[test]
fn figure2_query_text_end_to_end() {
    // The paper's Figure 2 batch 2-hop query, expressed in the text syntax.
    let mut g = AdjacencyGraph::new();
    for (s, d) in [
        (0, 1),
        (1, 2),
        (1, 4),
        (2, 3),
        (2, 5),
        (3, 6),
        (3, 9),
        (4, 5),
        (5, 6),
        (5, 8),
        (6, 9),
        (8, 9),
    ] {
        g.insert_edge(NodeId(s), NodeId(d), Label::ANY);
    }
    let expr = parser::parse(".{2}").expect("valid query text");
    let results = ReferenceEvaluator::new(&g).evaluate(&expr, &[NodeId(2), NodeId(3)]);
    let row2: Vec<u64> = results[0].iter().map(|n| n.0).collect();
    let row3: Vec<u64> = results[1].iter().map(|n| n.0).collect();
    assert_eq!(row2, vec![6, 8, 9]);
    assert_eq!(row3, vec![9]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Display output of any parsed expression re-parses to the same AST.
    #[test]
    fn display_parse_roundtrip(text in "(\\.|[0-9]{1,2})(/(\\.|[0-9]{1,2})){0,4}") {
        if let Ok(expr) = parser::parse(&text) {
            let reparsed = parser::parse(&expr.to_string()).expect("display output must parse");
            prop_assert_eq!(expr, reparsed);
        }
    }

    /// For random graphs and k, the matrix plan and the automaton agree.
    #[test]
    fn matrix_and_automaton_agree(seed in 0u64..500, k in 1usize..4) {
        let graph = graph_gen::uniform::generate(120, 3.0, seed);
        let engine = HostMatrixEngine::from_graph(&graph);
        let reference = ReferenceEvaluator::new(&graph);
        let sources: Vec<NodeId> = (0..8u64).map(NodeId).collect();
        let expr = RpqExpr::k_hop(k);
        let plan = ExecutionPlan::from_expr(&expr).expect("k-hop plan");
        let (matrix_results, _) = engine.run(&plan, &sources);
        let nfa_results = reference.evaluate(&expr, &sources);
        for (m, n) in matrix_results.iter().zip(nfa_results.iter()) {
            let n: Vec<NodeId> = n.iter().copied().collect();
            prop_assert_eq!(m, &n);
        }
    }
}
