//! Cost-model behaviour tests: the simulated platform must reproduce the
//! qualitative effects the paper's evaluation is built on, independent of the
//! absolute numbers.

use graph_store::NodeId;
use moctopus::{GraphEngine, HostBaseline, MoctopusConfig, MoctopusSystem, Phase, PimHashSystem};

fn skewed_graph(nodes: usize, seed: u64) -> (Vec<(NodeId, NodeId)>, graph_store::AdjacencyGraph) {
    let cfg = graph_gen::powerlaw::PowerLawConfig {
        nodes,
        high_degree_fraction: 0.03,
        mean_high_degree: 96.0,
        locality: 0.85,
        community_size: 128,
        ..Default::default()
    };
    let graph = graph_gen::powerlaw::generate(&cfg, seed);
    let mut edges: Vec<(NodeId, NodeId)> = graph.edges().map(|(s, d, _)| (s, d)).collect();
    edges.sort();
    (edges, graph)
}

/// The paper's graphs (hundreds of MB of adjacency data) dwarf the 22 MB L3
/// cache, which is what creates the memory wall. The scaled-down test graphs
/// would fit in that cache, so the tests scale the modeled cache down with the
/// graph to stay in the same regime (see EXPERIMENTS.md, substitution notes).
fn scaled_config() -> MoctopusConfig {
    let mut cfg = MoctopusConfig::paper_defaults();
    cfg.pim.host.cache_capacity_bytes = 128 * 1024;
    cfg
}

#[test]
fn latency_grows_with_k_and_batch_size() {
    let (edges, graph) = skewed_graph(3000, 1);
    let cfg = MoctopusConfig::paper_defaults();
    let mut system = MoctopusSystem::from_edge_stream(cfg, &edges);
    let small_batch = graph_gen::stream::sample_start_nodes(&graph, 128, 3);
    let large_batch = graph_gen::stream::sample_start_nodes(&graph, 1024, 3);

    let (_, k1) = system.k_hop_batch(&small_batch, 1);
    let (_, k2) = system.k_hop_batch(&small_batch, 2);
    let (_, k3) = system.k_hop_batch(&small_batch, 3);
    assert!(k2.latency() > k1.latency());
    assert!(k3.latency() > k2.latency());

    let (_, small) = system.k_hop_batch(&small_batch, 2);
    let (_, large) = system.k_hop_batch(&large_batch, 2);
    assert!(large.latency() > small.latency());
}

#[test]
fn moctopus_beats_the_host_baseline_on_short_queries() {
    // The Figure 4(a-c) headline: by dispatching path matching to the PIM
    // modules, Moctopus beats the single-core sparse-matrix baseline.
    let (edges, graph) = skewed_graph(6000, 5);
    let cfg = scaled_config();
    let mut moctopus = MoctopusSystem::from_edge_stream(cfg, &edges);
    let mut baseline = HostBaseline::from_edge_stream(cfg, &edges);
    let sources = graph_gen::stream::sample_start_nodes(&graph, 4096, 9);

    for k in [1usize, 2] {
        let (_, moc) = moctopus.k_hop_batch(&sources, k);
        let (_, host) = baseline.k_hop_batch(&sources, k);
        assert!(
            moc.latency() < host.latency(),
            "k = {k}: moctopus {} should beat the baseline {}",
            moc.latency(),
            host.latency()
        );
    }
}

#[test]
fn moctopus_reduces_ipc_versus_pim_hash() {
    // The Figure 5 effect: locality-aware partitioning slashes inter-PIM
    // traffic relative to hash partitioning for 3-hop queries.
    let (edges, graph) = skewed_graph(4000, 7);
    let cfg = MoctopusConfig::paper_defaults();
    let mut moctopus = MoctopusSystem::from_edge_stream(cfg, &edges);
    let mut pim_hash = PimHashSystem::from_edge_stream(cfg, &edges);
    let sources = graph_gen::stream::sample_start_nodes(&graph, 1024, 11);

    let (_, moc) = moctopus.k_hop_batch(&sources, 3);
    let (_, hash) = pim_hash.k_hop_batch(&sources, 3);
    let moc_ipc = moc.timeline.transfers.inter_pim_bytes as f64;
    let hash_ipc = hash.timeline.transfers.inter_pim_bytes as f64;
    assert!(
        moc_ipc < 0.5 * hash_ipc,
        "moctopus ipc bytes {moc_ipc} should be well under half of pim-hash {hash_ipc}"
    );
    assert!(moc.ipc_latency() < hash.ipc_latency());
}

#[test]
fn skew_hurts_pim_hash_more_than_moctopus() {
    // Labor division removes hub-induced stragglers: Moctopus's module load
    // imbalance stays lower than PIM-hash's on skewed graphs.
    let (edges, graph) = skewed_graph(4000, 13);
    let cfg = MoctopusConfig::paper_defaults();
    let mut moctopus = MoctopusSystem::from_edge_stream(cfg, &edges);
    let mut pim_hash = PimHashSystem::from_edge_stream(cfg, &edges);
    let sources = graph_gen::stream::sample_start_nodes(&graph, 1024, 17);

    let (_, moc) = moctopus.k_hop_batch(&sources, 2);
    let (_, hash) = pim_hash.k_hop_batch(&sources, 2);
    assert!(moctopus.load_imbalance() < pim_hash.load_imbalance());
    // And that, together with the locality gains, translates into lower
    // end-to-end latency for the same workload (the Figure 4 skewed-graph
    // comparison against PIM-hash).
    assert!(
        moc.latency() < hash.latency(),
        "moctopus {} should beat pim-hash {} on a skewed graph",
        moc.latency(),
        hash.latency()
    );
}

#[test]
fn update_speedup_matches_the_papers_direction() {
    // Figure 6: updates on Moctopus are much faster than on the baseline, for
    // both insertion and deletion.
    let (edges, graph) = skewed_graph(5000, 19);
    let cfg = MoctopusConfig::paper_defaults();
    let mut moctopus = MoctopusSystem::from_edge_stream(cfg, &edges);
    let mut baseline = HostBaseline::from_edge_stream(cfg, &edges);

    let inserts = graph_gen::stream::sample_new_edges(&graph, 8192, 21);
    let deletes = graph_gen::stream::sample_existing_edges(&graph, 8192, 23);

    let moc_ins = moctopus.insert_edges(&inserts);
    let host_ins = baseline.insert_edges(&inserts);
    let moc_del = moctopus.delete_edges(&deletes);
    let host_del = baseline.delete_edges(&deletes);

    let ins_speedup = host_ins.latency().as_nanos() / moc_ins.latency().as_nanos();
    let del_speedup = host_del.latency().as_nanos() / moc_del.latency().as_nanos();
    assert!(ins_speedup > 2.0, "insert speedup was only {ins_speedup:.2}x");
    assert!(del_speedup > 2.0, "delete speedup was only {del_speedup:.2}x");
}

#[test]
fn more_pim_modules_reduce_pim_compute_time() {
    let (edges, graph) = skewed_graph(3000, 29);
    let sources = graph_gen::stream::sample_start_nodes(&graph, 512, 31);

    let mut small =
        MoctopusSystem::from_edge_stream(MoctopusConfig::paper_defaults().with_modules(16), &edges);
    let mut large = MoctopusSystem::from_edge_stream(
        MoctopusConfig::paper_defaults().with_modules(128),
        &edges,
    );
    let (_, s) = small.k_hop_batch(&sources, 2);
    let (_, l) = large.k_hop_batch(&sources, 2);
    assert!(
        l.timeline.time(Phase::PimCompute) < s.timeline.time(Phase::PimCompute),
        "128 modules ({}) should finish the PIM phase faster than 16 ({})",
        l.timeline.time(Phase::PimCompute),
        s.timeline.time(Phase::PimCompute)
    );
}

#[test]
fn communication_ratio_matches_the_platform() {
    // Sanity-check the simulated platform against the published figure: CPC
    // and IPC bandwidth are below 2% of aggregate intra-PIM bandwidth.
    let cfg = MoctopusConfig::paper_defaults();
    assert!(cfg.pim.communication_ratio() < 0.02);
    // Results themselves never depend on the module count.
    let (edges, graph) = skewed_graph(1500, 37);
    let sources = graph_gen::stream::sample_start_nodes(&graph, 128, 39);
    let mut a = MoctopusSystem::from_edge_stream(cfg.with_modules(8), &edges);
    let mut b = MoctopusSystem::from_edge_stream(cfg.with_modules(64), &edges);
    let (ra, _) = a.k_hop_batch(&sources, 2);
    let (rb, _) = b.k_hop_batch(&sources, 2);
    assert_eq!(ra, rb);
}
