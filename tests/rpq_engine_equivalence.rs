//! General-RPQ equivalence: the full `parser → Nfa → rpq_batch` pipeline on
//! all three engines must agree with `rpq::ReferenceEvaluator` over labelled
//! graphs — across topology families, both placement policies, and
//! interleaved labelled updates — and the NFA itself is cross-checked against
//! brute-force path enumeration on graphs small enough to enumerate.

use graph_gen::labels::{relabel, LabelMixConfig};
use graph_store::{AdjacencyGraph, Label, NodeId};
use moctopus::{GraphEngine, HostBaseline, MoctopusConfig, MoctopusSystem, PimHashSystem};
use proptest::prelude::*;
use rpq::{parser, Nfa, ReferenceEvaluator, RpqExpr};

/// The query pool the property tests draw from: every execution strategy —
/// matrix chain, k-hop fast path, NFA-product frontier / automaton sweep —
/// and every operator of the text syntax is represented.
const QUERY_POOL: [&str; 8] =
    ["1/2/3", "1/(2|3)*/4", ".{2}", "1+", "(1|2)?/3", "2{1,3}", "1/.{2}", "(1/2)+"];

/// Builds the three engines loaded with the labelled edge stream.
fn engines(edges: &[(NodeId, NodeId, Label)]) -> Vec<Box<dyn GraphEngine>> {
    let cfg = MoctopusConfig::small_test();
    let mut moctopus = MoctopusSystem::new(cfg);
    moctopus.insert_labeled_edges(edges);
    moctopus.refine_locality();
    let mut pim_hash = PimHashSystem::new(cfg);
    pim_hash.insert_labeled_edges(edges);
    let mut baseline = HostBaseline::new(cfg);
    baseline.insert_labeled_edges(edges);
    vec![Box::new(moctopus), Box::new(pim_hash), Box::new(baseline)]
}

/// Checks every engine's `rpq_batch` against the reference evaluator on the
/// model graph, for each query in the pool.
fn check_against_reference(
    engines: &mut [Box<dyn GraphEngine>],
    model: &AdjacencyGraph,
    sources: &[NodeId],
) -> Result<(), TestCaseError> {
    let reference = ReferenceEvaluator::new(model);
    for text in QUERY_POOL {
        let expr = parser::parse(text).expect("query pool must parse");
        let want: Vec<Vec<NodeId>> = reference
            .evaluate(&expr, sources)
            .into_iter()
            .map(|set| set.into_iter().collect())
            .collect();
        for engine in engines.iter_mut() {
            let (got, stats) = engine.rpq_batch(&expr, sources);
            prop_assert_eq!(
                &got,
                &want,
                "{} disagrees with the reference on {:?}",
                engine.name(),
                text
            );
            prop_assert_eq!(stats.batch_size, sources.len());
            prop_assert_eq!(stats.matched_pairs, want.iter().map(Vec::len).sum::<usize>());
        }
    }
    Ok(())
}

/// A batch of labelled edges, as consumed by the labelled update paths.
type LabeledBatch = Vec<(NodeId, NodeId, Label)>;

/// Deterministic labelled update batches derived from the seed: some brand-new
/// labelled edges plus some deletions of existing ones.
fn update_batches(model: &AdjacencyGraph, seed: u64) -> (LabeledBatch, LabeledBatch) {
    let inserts: Vec<(NodeId, NodeId, Label)> =
        graph_gen::stream::sample_new_edges(model, 24, seed)
            .into_iter()
            .enumerate()
            .map(|(i, (s, d))| (s, d, Label((i % 4) as u16 + 1)))
            .collect();
    let mut deletes = graph_gen::labels::labeled_edge_stream(model);
    deletes.truncate(16);
    (inserts, deletes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Labelled uniform graphs: all engines match the reference before and
    /// after interleaved labelled updates.
    #[test]
    fn uniform_labelled_graphs_match_reference(
        nodes in 60usize..240,
        seed in 0u64..1000,
    ) {
        let topology = graph_gen::uniform::generate(nodes, 4.0, seed);
        let model = relabel(&topology, &LabelMixConfig { num_labels: 4, zipf_exponent: 0.8 }, seed);
        let edges = graph_gen::labels::labeled_edge_stream(&model);
        let mut engines = engines(&edges);
        let mut sources: Vec<NodeId> = (0..16u64).map(NodeId).collect();
        sources.push(NodeId(1 << 40)); // unknown node: empty-answer path
        check_against_reference(&mut engines, &model, &sources)?;

        // Interleave labelled updates on every engine and the model alike,
        // then re-check: the labelled update path must keep all four stores
        // (3 engines + model) in lockstep.
        let mut model = model;
        let (inserts, deletes) = update_batches(&model, seed);
        for engine in engines.iter_mut() {
            engine.insert_labeled_edges(&inserts);
            engine.delete_labeled_edges(&deletes);
        }
        for &(s, d, l) in &inserts {
            model.insert_edge(s, d, l);
        }
        for &(s, d, l) in &deletes {
            model.remove_edge(s, d, l);
        }
        for engine in engines.iter() {
            prop_assert_eq!(engine.edge_count(), model.edge_count(), "{} lost edges", engine.name());
        }
        check_against_reference(&mut engines, &model, &sources)?;
    }

    /// Labelled power-law graphs (hub promotion exercises the host store on
    /// the Moctopus placement; PIM-hash keeps hubs on modules).
    #[test]
    fn power_law_labelled_graphs_match_reference(
        nodes in 120usize..400,
        hub_percent in 0u32..6,
        seed in 0u64..1000,
    ) {
        let cfg = graph_gen::powerlaw::PowerLawConfig {
            nodes,
            high_degree_fraction: hub_percent as f64 / 100.0,
            ..Default::default()
        };
        let topology = graph_gen::powerlaw::generate(&cfg, seed);
        let model = relabel(&topology, &LabelMixConfig { num_labels: 4, zipf_exponent: 1.0 }, seed);
        let edges = graph_gen::labels::labeled_edge_stream(&model);
        let mut engines = engines(&edges);
        let sources: Vec<NodeId> = (0..16u64).map(NodeId).collect();
        check_against_reference(&mut engines, &model, &sources)?;
    }
}

// ---------------------------------------------------------------------------
// Brute-force path-enumeration cross-check of the NFA
// ---------------------------------------------------------------------------

/// Recursive regex matcher over a label sequence, independent of the NFA
/// construction (exponential, fine for the tiny sequences enumerated here).
fn expr_matches(expr: &RpqExpr, labels: &[Label]) -> bool {
    match expr {
        RpqExpr::Atom(spec) => labels.len() == 1 && spec.matches(labels[0]),
        RpqExpr::Concat(parts) => concat_matches(parts, labels),
        RpqExpr::Alt(branches) => branches.iter().any(|b| expr_matches(b, labels)),
        RpqExpr::Optional(inner) => labels.is_empty() || expr_matches(inner, labels),
        RpqExpr::Star(inner) => {
            labels.is_empty()
                || (1..=labels.len())
                    .any(|i| expr_matches(inner, &labels[..i]) && expr_matches(expr, &labels[i..]))
        }
        RpqExpr::Plus(inner) => {
            let star = RpqExpr::Star(inner.clone());
            (1..=labels.len())
                .any(|i| expr_matches(inner, &labels[..i]) && expr_matches(&star, &labels[i..]))
                || (labels.is_empty() && expr_matches(inner, labels))
        }
        RpqExpr::Repeat { expr, min, max } => repeat_matches(expr, *min, *max, labels),
    }
}

fn concat_matches(parts: &[RpqExpr], labels: &[Label]) -> bool {
    match parts.split_first() {
        None => labels.is_empty(),
        Some((head, tail)) => (0..=labels.len())
            .any(|i| expr_matches(head, &labels[..i]) && concat_matches(tail, &labels[i..])),
    }
}

fn repeat_matches(expr: &RpqExpr, min: usize, max: usize, labels: &[Label]) -> bool {
    if min == 0 && labels.is_empty() {
        return true;
    }
    if max == 0 {
        return labels.is_empty();
    }
    (0..=labels.len()).any(|i| {
        expr_matches(expr, &labels[..i])
            && repeat_matches(expr, min.saturating_sub(1), max - 1, &labels[i..])
    })
}

/// Simulates the ε-free NFA on one label sequence.
fn nfa_accepts(nfa: &Nfa, labels: &[Label]) -> bool {
    let mut states = vec![nfa.start()];
    for &label in labels {
        let mut next: Vec<usize> = Vec::new();
        for &s in &states {
            for &(spec, to) in nfa.transitions_from(s) {
                if spec.matches(label) && !next.contains(&to) {
                    next.push(to);
                }
            }
        }
        states = next;
        if states.is_empty() {
            return false;
        }
    }
    states.iter().any(|&s| nfa.is_accepting(s))
}

/// All label sequences over `alphabet` up to `max_len`, in length-lex order.
fn all_sequences(alphabet: &[Label], max_len: usize) -> Vec<Vec<Label>> {
    let mut out: Vec<Vec<Label>> = vec![Vec::new()];
    let mut last: Vec<Vec<Label>> = vec![Vec::new()];
    for _ in 0..max_len {
        let mut next = Vec::new();
        for seq in &last {
            for &l in alphabet {
                let mut longer = seq.clone();
                longer.push(l);
                next.push(longer);
            }
        }
        out.extend(next.iter().cloned());
        last = next;
    }
    out
}

/// Enumerates every path (walks may revisit nodes) of length ≤ `max_len`
/// from `source` and returns the endpoints whose label sequence satisfies
/// `accept`.
fn enumerate_path_endpoints(
    graph: &AdjacencyGraph,
    source: NodeId,
    max_len: usize,
    accept: impl Fn(&[Label]) -> bool,
) -> Vec<NodeId> {
    let mut endpoints = Vec::new();
    let mut stack: Vec<(NodeId, Vec<Label>)> = vec![(source, Vec::new())];
    while let Some((node, labels)) = stack.pop() {
        if accept(&labels) {
            endpoints.push(node);
        }
        if labels.len() == max_len {
            continue;
        }
        for &(dst, label) in graph.neighbors(node) {
            let mut longer = labels.clone();
            longer.push(label);
            stack.push((dst, longer));
        }
    }
    endpoints.sort_unstable();
    endpoints.dedup();
    endpoints
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// On every sequence up to length 4, the compiled NFA accepts exactly the
    /// sequences the recursive matcher accepts.
    #[test]
    fn nfa_acceptance_matches_brute_force_matcher(query_idx in 0usize..QUERY_POOL.len()) {
        let expr = parser::parse(QUERY_POOL[query_idx]).expect("query pool must parse");
        let nfa = Nfa::from_expr(&expr);
        let alphabet: Vec<Label> = (1..=4u16).map(Label).collect();
        for seq in all_sequences(&alphabet, 4) {
            prop_assert_eq!(
                nfa_accepts(&nfa, &seq),
                expr_matches(&expr, &seq),
                "NFA and matcher disagree on {:?} for {:?}",
                seq,
                QUERY_POOL[query_idx]
            );
        }
    }

    /// On graphs small enough to enumerate every walk, the reference
    /// evaluator's answers equal brute-force path enumeration — exactly for
    /// bounded queries, and restricted to short-walk witnesses for unbounded
    /// ones (every enumerated endpoint must be reported).
    #[test]
    fn evaluator_matches_enumerated_paths(
        edges in prop::collection::vec((0u64..6, 0u64..6, 1u16..4), 1..14),
        query_idx in 0usize..QUERY_POOL.len(),
    ) {
        let mut graph = AdjacencyGraph::new();
        for &(s, d, l) in &edges {
            if s != d {
                graph.insert_edge(NodeId(s), NodeId(d), Label(l));
            }
        }
        let expr = parser::parse(QUERY_POOL[query_idx]).expect("query pool must parse");
        let max_len = 4usize;
        let reference = ReferenceEvaluator::new(&graph);
        let sources: Vec<NodeId> = (0..6u64).map(NodeId).collect();
        let answers = reference.evaluate(&expr, &sources);
        for (&source, answer) in sources.iter().zip(answers.iter()) {
            let enumerated = enumerate_path_endpoints(&graph, source, max_len, |labels| {
                expr_matches(&expr, labels)
            });
            let answer: Vec<NodeId> = answer.iter().copied().collect();
            match expr.max_path_length() {
                Some(bound) if bound <= max_len => {
                    prop_assert_eq!(
                        &answer,
                        &enumerated,
                        "bounded query {:?} diverges from enumeration at source {}",
                        QUERY_POOL[query_idx],
                        source
                    );
                }
                _ => {
                    for endpoint in &enumerated {
                        prop_assert!(
                            answer.contains(endpoint),
                            "unbounded query {:?} misses enumerated endpoint {} from {}",
                            QUERY_POOL[query_idx],
                            endpoint,
                            source
                        );
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Nullable / optional pattern taxonomy
// ---------------------------------------------------------------------------

/// Every way the grammar can spell an optional: bare, stacked, optionals of
/// alternations (both nestings), optionals inside concatenations (either
/// side), an optional inside a bounded repeat, and the zero-repeat spellings.
/// The nullable entries answer the source itself via the zero-hop path, which
/// historically fell through the frontier seeding — this pool keeps that path
/// pinned on all three engines. The two concat entries are deliberately *not*
/// nullable (one required atom remains): the epsilon branch must thread
/// through the middle of a product run without leaking a zero-hop answer.
const OPTIONAL_POOL: [&str; 10] =
    ["1?", "1??", "(1|2)?", "(1?|2)", "1?/2", "1/2?", "(1?){3}", ".{0}", "1{0}", "(1{0})?"];

/// Whether an [`OPTIONAL_POOL`] entry accepts the empty label sequence.
fn pool_is_nullable(text: &str) -> bool {
    !matches!(text, "1?/2" | "1/2?")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// All three engines match the reference on the nullable taxonomy over
    /// labelled uniform graphs, including an out-of-bound source (the
    /// zero-hop answer must still surface for a node the stores never saw).
    #[test]
    fn nullable_patterns_match_reference(
        nodes in 60usize..180,
        seed in 0u64..1000,
    ) {
        let topology = graph_gen::uniform::generate(nodes, 4.0, seed);
        let model = relabel(&topology, &LabelMixConfig { num_labels: 4, zipf_exponent: 0.8 }, seed);
        let edges = graph_gen::labels::labeled_edge_stream(&model);
        let mut engines = engines(&edges);
        let reference = ReferenceEvaluator::new(&model);
        let mut sources: Vec<NodeId> = (0..12u64).map(NodeId).collect();
        sources.push(NodeId(1 << 40));
        for text in OPTIONAL_POOL {
            let expr = parser::parse(text).expect("optional pool must parse");
            prop_assert_eq!(expr.is_nullable(), pool_is_nullable(text), "{:?}", text);
            let want: Vec<Vec<NodeId>> = reference
                .evaluate(&expr, &sources)
                .into_iter()
                .map(|set| set.into_iter().collect())
                .collect();
            if pool_is_nullable(text) {
                for (i, &source) in sources.iter().enumerate() {
                    prop_assert!(
                        want[i].contains(&source),
                        "nullable {:?} must answer the source itself at {}",
                        text,
                        source
                    );
                }
            }
            for engine in engines.iter_mut() {
                let (got, stats) = engine.rpq_batch(&expr, &sources);
                prop_assert_eq!(
                    &got,
                    &want,
                    "{} disagrees with the reference on optional {:?}",
                    engine.name(),
                    text
                );
                prop_assert_eq!(stats.matched_pairs, want.iter().map(Vec::len).sum::<usize>());
            }
        }
    }

    /// The compiled NFA agrees with the recursive matcher on every optional
    /// pattern — in particular the two must agree on the empty sequence.
    #[test]
    fn optional_nfa_acceptance_matches_brute_force(query_idx in 0usize..OPTIONAL_POOL.len()) {
        let text = OPTIONAL_POOL[query_idx];
        let expr = parser::parse(text).expect("optional pool must parse");
        let nfa = Nfa::from_expr(&expr);
        let alphabet: Vec<Label> = (1..=3u16).map(Label).collect();
        for seq in all_sequences(&alphabet, 4) {
            prop_assert_eq!(
                nfa_accepts(&nfa, &seq),
                expr_matches(&expr, &seq),
                "NFA and matcher disagree on {:?} for {:?}",
                seq,
                text
            );
        }
        prop_assert_eq!(
            nfa_accepts(&nfa, &[]),
            pool_is_nullable(text),
            "empty-sequence acceptance wrong for {:?}",
            text
        );
    }
}

/// Pins the normalizer's output on the nullable taxonomy: the printed normal
/// form and its fingerprint. The cache keys on `(normalized expr, sources)`,
/// so any drift here silently splits (or worse, merges) cache rows — this
/// test turns that drift into a loud diff.
#[test]
fn nullable_normal_forms_and_fingerprints_are_pinned() {
    let pins: [(&str, &str, u64); 6] = [
        ("1??", "(1)?", 0x8ed9_df9c_acc3_7d81),
        (".{0}", "(.){0}", 0x184c_e0a4_5a4d_af8c),
        ("(1?|2)", "(2|(1)?)", 0x63ab_524c_ce41_1c47),
        ("(1|2)?", "((1|2))?", 0xf329_5d1f_bd58_51c7),
        ("(1?){3}", "((1)?){3}", 0x8eb5_dede_3a78_5189),
        ("1?/2", "(1)?/2", 0xa367_99fe_71dd_e520),
    ];
    for (text, normal, fp) in pins {
        let norm = parser::parse(text).unwrap().normalize();
        assert_eq!(format!("{norm}"), normal, "normal form drifted for {text:?}");
        assert_eq!(norm.fingerprint(), fp, "fingerprint drifted for {text:?}");
    }

    // Zero-repeat collapses: `(1{0})?` is *the* epsilon after normalization,
    // and stacked optionals are idempotent (`1??` ≡ `1?`).
    assert!(parser::parse("(1{0})?").unwrap().normalize().is_epsilon());
    assert_eq!(
        parser::parse("1??").unwrap().normalize().fingerprint(),
        parser::parse("1?").unwrap().normalize().fingerprint(),
        "optional must be idempotent under normalization"
    );

    // Nullability is decided on the raw AST and preserved by normalization.
    for text in OPTIONAL_POOL {
        let expr = parser::parse(text).unwrap();
        assert_eq!(expr.is_nullable(), pool_is_nullable(text), "{text:?}");
        assert_eq!(expr.normalize().is_nullable(), pool_is_nullable(text), "norm({text:?})");
    }
    for text in ["1", "1+", "2{1,3}", "(1|2)/3"] {
        assert!(!parser::parse(text).unwrap().is_nullable(), "{text:?} is not nullable");
    }
}

/// A hand-checkable end-to-end case: the full text pipeline on a labelled
/// diamond with a decoy label, on all three engines.
#[test]
fn labelled_diamond_end_to_end() {
    let mut model = AdjacencyGraph::new();
    model.insert_edge(NodeId(0), NodeId(1), Label(1));
    model.insert_edge(NodeId(0), NodeId(2), Label(2));
    model.insert_edge(NodeId(1), NodeId(3), Label(2));
    model.insert_edge(NodeId(2), NodeId(3), Label(1));
    model.insert_edge(NodeId(3), NodeId(4), Label(4));
    let edges = graph_gen::labels::labeled_edge_stream(&model);
    let mut all = engines(&edges);
    for engine in all.iter_mut() {
        // 1/(2|3)*/4 : 0 -1-> 1 -2-> 3 -4-> 4.
        let expr = parser::parse("1/(2|3)*/4").unwrap();
        let (results, _) = engine.rpq_batch(&expr, &[NodeId(0)]);
        assert_eq!(results[0], vec![NodeId(4)], "{}", engine.name());
        // 2/1 : 0 -2-> 2 -1-> 3 only.
        let expr = parser::parse("2/1").unwrap();
        let (results, _) = engine.rpq_batch(&expr, &[NodeId(0)]);
        assert_eq!(results[0], vec![NodeId(3)], "{}", engine.name());
    }
}
