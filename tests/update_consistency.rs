//! Update-path consistency: interleaved insertions and deletions applied to
//! the distributed engines must always agree with a simple in-memory model,
//! and the heterogeneous storage must keep its host/PIM halves consistent.

use graph_store::{AdjacencyGraph, HeterogeneousStorage, Label, NodeId};
use moctopus::{GraphEngine, HostBaseline, MoctopusConfig, MoctopusSystem, PimHashSystem};
use proptest::prelude::*;

/// One update operation in a random workload.
#[derive(Debug, Clone, Copy)]
enum Op {
    Insert(u64, u64),
    Delete(u64, u64),
}

fn op_strategy(max_node: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0..max_node, 0..max_node).prop_map(|(s, d)| Op::Insert(s, d)),
        1 => (0..max_node, 0..max_node).prop_map(|(s, d)| Op::Delete(s, d)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Moctopus, PIM-hash and the model graph stay in lockstep under random
    /// interleavings of insertions and deletions.
    #[test]
    fn engines_track_a_model_graph(ops in prop::collection::vec(op_strategy(60), 1..300)) {
        let cfg = MoctopusConfig::small_test();
        let mut moctopus = MoctopusSystem::new(cfg);
        let mut pim_hash = PimHashSystem::new(cfg);
        let mut model = AdjacencyGraph::new();

        for op in &ops {
            match *op {
                Op::Insert(s, d) if s != d => {
                    let applied_model = model.insert_edge(NodeId(s), NodeId(d), Label::ANY);
                    let a = moctopus.insert_edges(&[(NodeId(s), NodeId(d))]);
                    let b = pim_hash.insert_edges(&[(NodeId(s), NodeId(d))]);
                    prop_assert_eq!(a.applied == 1, applied_model);
                    prop_assert_eq!(b.applied == 1, applied_model);
                }
                Op::Delete(s, d) if s != d => {
                    let applied_model = model.remove_edge(NodeId(s), NodeId(d), Label::ANY);
                    let a = moctopus.delete_edges(&[(NodeId(s), NodeId(d))]);
                    let b = pim_hash.delete_edges(&[(NodeId(s), NodeId(d))]);
                    prop_assert_eq!(a.applied == 1, applied_model);
                    prop_assert_eq!(b.applied == 1, applied_model);
                }
                _ => {}
            }
        }
        prop_assert_eq!(moctopus.edge_count(), model.edge_count());
        prop_assert_eq!(pim_hash.edge_count(), model.edge_count());

        // Spot-check queries against the model after the whole workload.
        let sources: Vec<NodeId> = (0..10u64).map(NodeId).collect();
        let reference = rpq::ReferenceEvaluator::new(&model);
        let want = reference.k_hop(&sources, 2);
        let (got, _) = moctopus.k_hop_batch(&sources, 2);
        for (g, w) in got.iter().zip(want.iter()) {
            let w: Vec<NodeId> = w.iter().copied().collect();
            prop_assert_eq!(g, &w);
        }
    }

    /// The heterogeneous storage keeps `cols_vector`, `elem_position_map` and
    /// `free_list_map` mutually consistent under arbitrary labelled update
    /// sequences (the label is derived from the endpoints, so the same pair
    /// recurs under a few distinct labels across the workload).
    #[test]
    fn heterogeneous_storage_invariants(ops in prop::collection::vec(op_strategy(30), 1..400)) {
        let mut storage = HeterogeneousStorage::new();
        let mut model = AdjacencyGraph::new();
        let label_of = |s: u64, d: u64| Label(((s + d) % 3) as u16);
        for op in &ops {
            match *op {
                Op::Insert(s, d) => {
                    let label = label_of(s, d);
                    let changed = storage.insert_edge(NodeId(s), NodeId(d), label).changed;
                    let model_changed = model.insert_edge(NodeId(s), NodeId(d), label);
                    prop_assert_eq!(changed, model_changed);
                }
                Op::Delete(s, d) => {
                    let label = label_of(s, d);
                    let changed = storage.delete_edge(NodeId(s), NodeId(d), label).changed;
                    let model_changed = model.remove_edge(NodeId(s), NodeId(d), label);
                    prop_assert_eq!(changed, model_changed);
                }
            }
        }
        storage.check_invariants().expect("host/PIM halves diverged");
        prop_assert_eq!(storage.edge_count(), model.edge_count());
        for node in model.nodes() {
            let mut want: Vec<(NodeId, Label)> = model.neighbors(node).to_vec();
            want.sort();
            let mut got = storage.neighbors(node);
            got.sort();
            prop_assert_eq!(got, want);
        }
    }
}

#[test]
fn paper_sized_update_batches_complete() {
    // A scaled-down version of the Figure 6 workload end to end.
    let graph = graph_gen::uniform::generate(4000, 4.0, 19);
    let edges: Vec<(NodeId, NodeId)> = graph.edges().map(|(s, d, _)| (s, d)).collect();
    let cfg = MoctopusConfig::paper_defaults();
    let mut moctopus = MoctopusSystem::from_edge_stream(cfg, &edges);
    let mut baseline = HostBaseline::from_edge_stream(cfg, &edges);

    let inserts = graph_gen::stream::sample_new_edges(&graph, 4096, 5);
    let deletes = graph_gen::stream::sample_existing_edges(&graph, 4096, 7);

    let moc_ins = moctopus.insert_edges(&inserts);
    let host_ins = baseline.insert_edges(&inserts);
    assert_eq!(moc_ins.applied, inserts.len());
    assert_eq!(host_ins.applied, inserts.len());

    let moc_del = moctopus.delete_edges(&deletes);
    let host_del = baseline.delete_edges(&deletes);
    assert_eq!(moc_del.applied, deletes.len());
    assert_eq!(host_del.applied, deletes.len());

    // The paper's headline: Moctopus updates are dramatically faster because
    // they bypass the host memory system.
    assert!(
        moc_ins.latency() < host_ins.latency(),
        "moctopus insert {} should beat the baseline {}",
        moc_ins.latency(),
        host_ins.latency()
    );
    assert!(moc_del.latency() < host_del.latency());
    assert_eq!(moctopus.edge_count(), baseline.edge_count());
}

#[test]
fn promotion_during_updates_preserves_all_edges() {
    // Drive one node across the high-degree threshold in several batches and
    // make sure no edge is lost during the PIM -> host migration.
    let cfg = MoctopusConfig::small_test();
    let mut moctopus = MoctopusSystem::new(cfg);
    for chunk in 0..5u64 {
        let batch: Vec<(NodeId, NodeId)> =
            (0..8u64).map(|i| (NodeId(0), NodeId(1 + chunk * 8 + i))).collect();
        moctopus.insert_edges(&batch);
    }
    assert_eq!(moctopus.edge_count(), 40);
    assert_eq!(moctopus.partition_of(NodeId(0)), Some(moctopus::PartitionId::Host));
    let (results, _) = moctopus.k_hop_batch(&[NodeId(0)], 1);
    assert_eq!(results[0].len(), 40);
}
