//! Smoke coverage for the documented examples: every example in `examples/`
//! must build and run to completion, so the README quick-start can never
//! silently rot. CI additionally runs the examples directly (see
//! `.github/workflows/ci.yml`); this harness makes plain `cargo test` enough
//! to catch a broken example locally.

use std::process::Command;

/// Runs one example via the same cargo that is running this test.
///
/// The examples self-verify (each ends with an assertion or a consistency
/// check), so "exit status 0" is a meaningful signal, not just "it started".
fn run_example(name: &str) {
    let cargo = env!("CARGO");
    let output = Command::new(cargo)
        // Examples were already compiled by `cargo test`; `--release` is not
        // used here so the smoke run reuses the debug artifacts instead of
        // triggering a second full build profile.
        .args(["run", "--example", name])
        .output()
        .unwrap_or_else(|err| panic!("failed to spawn cargo for example {name}: {err}"));
    assert!(
        output.status.success(),
        "example {name} exited with {:?}\n--- stdout ---\n{}\n--- stderr ---\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
}

// One test running all five examples serially: concurrent `cargo run`
// invocations would contend on the build lock and interleave output.
#[test]
fn all_documented_examples_run() {
    for example in [
        "quickstart",
        "social_recommendation",
        "routing_reachability",
        "dynamic_updates",
        "serving_cache",
    ] {
        run_example(example);
    }
}
