//! Durable-storage equivalence: the crash-recovery contract of the
//! snapshot + WAL plane (`graph_store::{snapshot, wal, durable}` behind
//! `moctopus_server::DurableEngine`), proven by interleaving random labelled
//! updates with snapshot rotations, clean reopens, and injected crashes on
//! all three engines.
//!
//! The contract under test (STORAGE.md):
//!
//! * **Bit-identity** — after any reopen (clean or post-crash), the recovered
//!   engine answers every future query and update byte-identically — results,
//!   stats, and dependency footprints — to a mirror engine that never went
//!   through disk.
//! * **Torn-tail tolerance** — a crash may tear the WAL tail at *any* byte
//!   boundary or flip any bit; recovery lands on exactly the longest prefix
//!   of whole, checksummed records, never on garbage.
//! * **Idempotence** — records already folded into a snapshot are skipped on
//!   replay (sequence numbers, not file positions, decide).

use graph_store::wal::{decode_wal_bytes, WalOp, WalRecord, WalWriter};
use graph_store::{Label, NodeId};
use moctopus::{GraphEngine, HostBaseline, MoctopusConfig, MoctopusSystem, PimHashSystem};
use moctopus_server::{DurabilityOptions, DurableEngine};
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Unique scratch directory per scenario, so parallel tests never collide.
fn scratch_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("moctopus-durability-eq-{tag}-{}-{n}", std::process::id()))
}

const ENGINE_KINDS: usize = 3;

/// A fresh engine of the given kind, on the shared small test configuration.
fn fresh_engine(kind: usize) -> Box<dyn GraphEngine + Send> {
    let cfg = MoctopusConfig::small_test();
    match kind {
        0 => Box::new(MoctopusSystem::new(cfg)),
        1 => Box::new(PimHashSystem::new(cfg)),
        _ => Box::new(HostBaseline::new(cfg)),
    }
}

/// Asserts two engines are observationally bit-identical: edge count, k-hop
/// results + stats, and RPQ results + stats + dependency footprints.
fn assert_states_match(a: &mut dyn GraphEngine, b: &mut dyn GraphEngine, ctx: &str) {
    assert_eq!(a.edge_count(), b.edge_count(), "{ctx}: edge count diverged");
    let sources: Vec<NodeId> = (0..24u64).map(NodeId).collect();
    let (ra, sa) = a.k_hop_batch(&sources, 3);
    let (rb, sb) = b.k_hop_batch(&sources, 3);
    assert_eq!(ra, rb, "{ctx}: k-hop results diverged");
    assert_eq!(sa, sb, "{ctx}: k-hop stats diverged");
    for text in ["1/(2|3)*", ".{2}", "1+"] {
        let expr = rpq::parser::parse(text).expect("probe query must parse");
        let (ra, sa, da) = a.rpq_batch_tracked(&expr, &sources);
        let (rb, sb, db) = b.rpq_batch_tracked(&expr, &sources);
        assert_eq!(ra, rb, "{ctx}: rpq {text:?} results diverged");
        assert_eq!(sa, sb, "{ctx}: rpq {text:?} stats diverged");
        assert_eq!(da, db, "{ctx}: rpq {text:?} dependency footprints diverged");
    }
}

/// One step of a random durability scenario.
#[derive(Debug, Clone)]
enum Op {
    /// Insert a batch of labelled edges (applied to live and mirror alike).
    Insert(Vec<(u64, u64, u16)>),
    /// Delete a batch (random, so most deletes are no-ops — exercising the
    /// applied/ignored accounting surviving recovery).
    Delete(Vec<(u64, u64, u16)>),
    /// Checkpoint into a fresh snapshot generation + empty WAL.
    Rotate,
    /// Clean shutdown and reopen from disk.
    Reopen,
    /// Crash: drop the engine, scribble garbage on the WAL tail, reopen.
    Crash(Vec<u8>),
}

fn edges_of(raw: &[(u64, u64, u16)]) -> Vec<(NodeId, NodeId, Label)> {
    raw.iter().map(|&(s, d, l)| (NodeId(s), NodeId(d), Label(l))).collect()
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let edge = (0..48u64, 0..48u64, 1..4u16);
    let batch = prop::collection::vec(edge, 1..6);
    prop_oneof![
        5 => batch.clone().prop_map(Op::Insert),
        2 => batch.prop_map(Op::Delete),
        1 => (0..1u8).prop_map(|_| Op::Rotate),
        1 => (0..1u8).prop_map(|_| Op::Reopen),
        1 => prop::collection::vec(0..255u8, 1..24).prop_map(Op::Crash),
    ]
}

/// Drives one op sequence against a durable engine and an in-memory mirror,
/// demanding bit-identity after every reopen and crash.
fn run_scenario(kind: usize, ops: &[Op], dir: &Path) {
    let _ = std::fs::remove_dir_all(dir);
    let options = DurabilityOptions { sync_every: 1, rotate_every: 0 };
    let mut live = DurableEngine::open(fresh_engine(kind), dir, options)
        .expect("fresh durable store must open");
    let mut mirror = fresh_engine(kind);
    let mut updates = 0u64;

    for (step, op) in ops.iter().enumerate() {
        match op {
            Op::Insert(raw) => {
                let edges = edges_of(raw);
                let a = live.insert_labeled_edges(&edges);
                let b = mirror.insert_labeled_edges(&edges);
                assert_eq!(a, b, "step {step}: insert stats diverged");
                updates += 1;
            }
            Op::Delete(raw) => {
                let edges = edges_of(raw);
                let a = live.delete_labeled_edges(&edges);
                let b = mirror.delete_labeled_edges(&edges);
                assert_eq!(a, b, "step {step}: delete stats diverged");
                updates += 1;
            }
            Op::Rotate => {
                live.rotate().expect("rotation must succeed");
                assert_eq!(live.wal_records(), 0, "step {step}: rotation must empty the WAL");
            }
            Op::Reopen => {
                drop(live);
                live = DurableEngine::open(fresh_engine(kind), dir, options)
                    .expect("clean reopen must succeed");
                let report = live.report();
                assert!(!report.torn_tail, "step {step}: clean shutdown left a torn tail");
                assert_eq!(report.last_seq, updates, "step {step}: sequence numbers drifted");
                assert_states_match(&mut live, mirror.as_mut(), &format!("step {step} reopen"));
            }
            Op::Crash(garbage) => {
                drop(live);
                let generation = graph_store::current_generation(dir).ok().flatten().unwrap_or(0);
                let wal = graph_store::generation_wal_path(dir, generation);
                {
                    use std::io::Write;
                    let mut file = std::fs::OpenOptions::new()
                        .create(true)
                        .append(true)
                        .open(&wal)
                        .expect("WAL file must exist");
                    file.write_all(garbage).expect("crash injection write");
                }
                live = DurableEngine::open(fresh_engine(kind), dir, options)
                    .expect("post-crash reopen must succeed");
                let report = live.report();
                assert!(report.torn_tail, "step {step}: injected garbage went undetected");
                assert_eq!(
                    report.last_seq, updates,
                    "step {step}: crash lost an acknowledged update (or surfaced garbage)"
                );
                assert_states_match(&mut live, mirror.as_mut(), &format!("step {step} crash"));
            }
        }
    }

    // Final clean reopen: whatever the sequence did, the disk state must
    // reconstruct the mirror exactly.
    drop(live);
    let mut back =
        DurableEngine::open(fresh_engine(kind), dir, options).expect("final reopen must succeed");
    assert_eq!(back.report().last_seq, updates);
    assert_states_match(&mut back, mirror.as_mut(), "final reopen");
    let _ = std::fs::remove_dir_all(dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random interleavings of updates, rotations, reopens and crashes keep
    /// every engine bit-identical to its never-persisted mirror.
    #[test]
    fn recovery_is_bit_identical_under_random_interleavings(
        ops in prop::collection::vec(op_strategy(), 1..32),
        kind in 0..ENGINE_KINDS,
    ) {
        let dir = scratch_dir("prop");
        run_scenario(kind, &ops, &dir);
    }
}

/// Applies WAL records to an engine the way recovery does.
fn replay(engine: &mut dyn GraphEngine, records: &[WalRecord]) {
    for record in records {
        match record.op {
            WalOp::Insert => {
                engine.insert_labeled_edges(&record.edges);
            }
            WalOp::Delete => {
                engine.delete_labeled_edges(&record.edges);
            }
        }
    }
}

/// The crash-injection matrix: truncate the WAL at **every** byte boundary
/// and flip sampled bits; recovery must always land on exactly the longest
/// prefix of whole records — verified against a mirror replaying that
/// prefix — and never panic or surface garbage.
#[test]
fn crash_injection_matrix_recovers_every_prefix() {
    let dir = scratch_dir("matrix");
    let _ = std::fs::remove_dir_all(&dir);
    let options = DurabilityOptions { sync_every: 1, rotate_every: 0 };

    // Build a WAL of six update batches of varied shapes (no rotation, so
    // the WAL is the whole history and every cut point is meaningful).
    let mut live = DurableEngine::open(fresh_engine(0), &dir, options).unwrap();
    for step in 0..6u64 {
        let edges: Vec<(NodeId, NodeId, Label)> = (0..=step)
            .map(|i| (NodeId(step * 7 + i), NodeId((step + i) % 20), Label((i % 3) as u16 + 1)))
            .collect();
        if step == 4 {
            live.delete_labeled_edges(&edges);
        } else {
            live.insert_labeled_edges(&edges);
        }
    }
    drop(live);
    let wal_path = graph_store::generation_wal_path(&dir, 0);
    let clean = std::fs::read(&wal_path).expect("WAL must exist");
    let full = decode_wal_bytes(&clean);
    assert_eq!(full.records.len(), 6);
    assert!(full.torn.is_none());

    let check = |bytes: &[u8], ctx: String| {
        std::fs::write(&wal_path, bytes).unwrap();
        let expected = decode_wal_bytes(bytes);
        let mut recovered = DurableEngine::open(fresh_engine(0), &dir, options)
            .unwrap_or_else(|e| panic!("{ctx}: recovery must not fail: {e}"));
        let report = recovered.report();
        assert_eq!(
            report.replayed_records,
            expected.records.len() as u64,
            "{ctx}: replayed record count"
        );
        assert_eq!(report.torn_tail, expected.torn.is_some(), "{ctx}: torn-tail detection");
        let mut mirror = fresh_engine(0);
        replay(mirror.as_mut(), &expected.records);
        assert_states_match(&mut recovered, mirror.as_mut(), &ctx);
    };

    // Every truncation point, including 0 (empty file) and mid-header cuts.
    for cut in 0..=clean.len() {
        check(&clean[..cut], format!("truncate at {cut}"));
    }
    // Sampled bit flips across the whole file (every 5th byte, rolling bit).
    for byte in (0..clean.len()).step_by(5) {
        let mut bytes = clean.clone();
        bytes[byte] ^= 1 << (byte % 8);
        check(&bytes, format!("bit flip at {byte}.{}", byte % 8));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn empty_wal_recovers_to_base() {
    let dir = scratch_dir("empty");
    let _ = std::fs::remove_dir_all(&dir);
    let options = DurabilityOptions::default();
    drop(DurableEngine::open(fresh_engine(0), &dir, options).unwrap());
    let mut back = DurableEngine::open(fresh_engine(0), &dir, options).unwrap();
    let report = back.report();
    assert_eq!(report.generation, 0);
    assert!(!report.restored_snapshot);
    assert_eq!(report.replayed_records, 0);
    assert!(!report.torn_tail);
    assert_states_match(&mut back, fresh_engine(0).as_mut(), "empty WAL");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn snapshot_only_recovery_replays_nothing() {
    for kind in 0..ENGINE_KINDS {
        let dir = scratch_dir("snaponly");
        let _ = std::fs::remove_dir_all(&dir);
        let options = DurabilityOptions { sync_every: 1, rotate_every: 0 };
        let mut live = DurableEngine::open(fresh_engine(kind), &dir, options).unwrap();
        let mut mirror = fresh_engine(kind);
        let edges: Vec<(NodeId, NodeId, Label)> = (0..20u64)
            .map(|i| (NodeId(i), NodeId((i + 1) % 20), Label((i % 3) as u16 + 1)))
            .collect();
        live.insert_labeled_edges(&edges);
        mirror.insert_labeled_edges(&edges);
        live.rotate().unwrap();
        drop(live);

        let mut back = DurableEngine::open(fresh_engine(kind), &dir, options).unwrap();
        let report = back.report();
        assert!(report.restored_snapshot, "kind {kind}: snapshot must restore");
        assert_eq!(report.replayed_records, 0, "kind {kind}: WAL must be empty after rotation");
        assert_eq!(report.last_seq, 1, "kind {kind}");
        assert_states_match(&mut back, mirror.as_mut(), &format!("kind {kind} snapshot-only"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn wal_only_recovery_replays_everything() {
    for kind in 0..ENGINE_KINDS {
        let dir = scratch_dir("walonly");
        let _ = std::fs::remove_dir_all(&dir);
        let options = DurabilityOptions { sync_every: 1, rotate_every: 0 };
        let mut live = DurableEngine::open(fresh_engine(kind), &dir, options).unwrap();
        let mut mirror = fresh_engine(kind);
        for step in 0..5u64 {
            let edges: Vec<(NodeId, NodeId, Label)> =
                (0..4u64).map(|i| (NodeId(step * 4 + i), NodeId(i), Label(1))).collect();
            live.insert_labeled_edges(&edges);
            mirror.insert_labeled_edges(&edges);
        }
        drop(live);

        let mut back = DurableEngine::open(fresh_engine(kind), &dir, options).unwrap();
        let report = back.report();
        assert!(!report.restored_snapshot, "kind {kind}: no snapshot was ever written");
        assert_eq!(report.replayed_records, 5, "kind {kind}");
        assert_states_match(&mut back, mirror.as_mut(), &format!("kind {kind} WAL-only"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn double_rotation_keeps_only_the_latest_generation() {
    let dir = scratch_dir("doublerot");
    let _ = std::fs::remove_dir_all(&dir);
    let options = DurabilityOptions { sync_every: 1, rotate_every: 0 };
    let mut live = DurableEngine::open(fresh_engine(0), &dir, options).unwrap();
    let mut mirror = fresh_engine(0);
    for round in 0..2u64 {
        let edges: Vec<(NodeId, NodeId, Label)> =
            (0..6u64).map(|i| (NodeId(round * 6 + i), NodeId(i), Label(2))).collect();
        live.insert_labeled_edges(&edges);
        mirror.insert_labeled_edges(&edges);
        live.rotate().unwrap();
    }
    assert_eq!(live.generation(), 2);
    drop(live);

    // Generation-0/1 files are superseded and garbage-collected; only the
    // latest snapshot + WAL pair remains.
    assert!(!graph_store::generation_snapshot_path(&dir, 1).exists());
    assert!(!graph_store::generation_wal_path(&dir, 1).exists());
    assert!(graph_store::generation_snapshot_path(&dir, 2).exists());

    let mut back = DurableEngine::open(fresh_engine(0), &dir, options).unwrap();
    assert_eq!(back.report().generation, 2);
    assert!(back.report().restored_snapshot);
    assert_states_match(&mut back, mirror.as_mut(), "double rotation");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn duplicate_replay_is_skipped_by_sequence_number() {
    let dir = scratch_dir("dupes");
    let _ = std::fs::remove_dir_all(&dir);
    let options = DurabilityOptions { sync_every: 1, rotate_every: 0 };
    let mut live = DurableEngine::open(fresh_engine(0), &dir, options).unwrap();
    let mut mirror = fresh_engine(0);
    let edges: Vec<(NodeId, NodeId, Label)> =
        (0..8u64).map(|i| (NodeId(i), NodeId((i + 1) % 8), Label(1))).collect();
    live.insert_labeled_edges(&edges);
    mirror.insert_labeled_edges(&edges);
    live.rotate().unwrap();
    let generation = live.generation();
    drop(live);

    // Simulate a crash window where a record the snapshot already covers is
    // still sitting in the WAL: append a duplicate of seq 1 with *different*
    // (bogus) edges. Sequence-number idempotence must skip it entirely.
    let wal = graph_store::generation_wal_path(&dir, generation);
    let (mut writer, _) = WalWriter::open_for_append(&wal, 1).unwrap();
    writer
        .append(&WalRecord {
            seq: 1,
            op: WalOp::Insert,
            edges: vec![(NodeId(40), NodeId(41), Label(3))],
        })
        .unwrap();
    writer.sync().unwrap();
    drop(writer);

    let mut back = DurableEngine::open(fresh_engine(0), &dir, options).unwrap();
    assert_eq!(
        back.report().replayed_records,
        0,
        "a record with seq <= snapshot.last_seq must not replay"
    );
    assert_states_match(&mut back, mirror.as_mut(), "duplicate replay");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Torn-tail recovery reconstructs the **reverse adjacency index**
/// bit-identically, on every engine.
///
/// The scenario stacks all three recovery sources: a snapshot (whose format
/// never carries reverse rows — they are derived data, rebuilt from forward
/// rows on restore), a WAL with post-rotation updates including deletes, and
/// a crash that tears the final record mid-byte. The recovered engine must
/// hold exactly the reverse rows of a mirror that replayed the surviving
/// prefix — verified structurally via `export_rev_rows` and semantically by
/// executing a rare-tail query under the forced bidirectional plan (the one
/// consumer whose answers depend on those rows).
#[test]
fn torn_tail_recovery_rebuilds_reverse_rows_bit_identical() {
    for kind in 0..ENGINE_KINDS {
        let dir = scratch_dir("revrows");
        let _ = std::fs::remove_dir_all(&dir);
        let options = DurabilityOptions { sync_every: 1, rotate_every: 0 };
        let mut live = DurableEngine::open(fresh_engine(kind), &dir, options).unwrap();
        let mut mirror = fresh_engine(kind);

        // Phase 1 — folded into the snapshot by the rotation: a labelled mesh
        // with a rare label 3 tail so the bidirectional probe has anchors.
        let base: Vec<(NodeId, NodeId, Label)> = (0..40u64)
            .map(|i| (NodeId(i % 20), NodeId((i * 7 + 3) % 20), Label((i % 3) as u16 + 1)))
            .collect();
        live.insert_labeled_edges(&base);
        mirror.insert_labeled_edges(&base);
        live.rotate().expect("rotation must succeed");
        let generation = live.generation();

        // Phase 2 — lives only in the WAL: three more batches (the last one
        // will be torn away and must *not* reach the mirror).
        let batches: Vec<Vec<(NodeId, NodeId, Label)>> = vec![
            (0..10u64).map(|i| (NodeId(20 + i), NodeId(i), Label(3))).collect(),
            base[..8].to_vec(),
            (0..6u64).map(|i| (NodeId(i), NodeId(30 + i), Label(2))).collect(),
        ];
        live.insert_labeled_edges(&batches[0]);
        live.delete_labeled_edges(&batches[1]);
        live.insert_labeled_edges(&batches[2]);
        drop(live);

        // Tear the WAL tail mid-record: cut five bytes off the final record
        // so recovery must land on the two-record prefix.
        let wal_path = graph_store::generation_wal_path(&dir, generation);
        let clean = std::fs::read(&wal_path).expect("WAL must exist");
        let torn = &clean[..clean.len() - 5];
        let surviving = decode_wal_bytes(torn);
        assert!(surviving.torn.is_some(), "kind {kind}: the cut must tear a record");
        assert_eq!(surviving.records.len(), 2, "kind {kind}: two whole records must survive");
        std::fs::write(&wal_path, torn).unwrap();

        let mut recovered = DurableEngine::open(fresh_engine(kind), &dir, options).unwrap();
        assert!(recovered.report().torn_tail, "kind {kind}: torn tail went undetected");
        replay(mirror.as_mut(), &surviving.records);

        // Structural bit-identity: snapshot restore + WAL replay land on the
        // exact reverse rows incremental maintenance built in the mirror.
        let rev = recovered.export_rev_rows();
        assert_eq!(rev, mirror.export_rev_rows(), "kind {kind}: reverse rows diverged");
        assert!(
            rev.iter().any(|(_, row)| !row.is_empty()),
            "kind {kind}: reverse index came back empty — the assertion above proved nothing"
        );

        // The reverse rows are exactly the transpose of the recovered forward
        // edge multiset, independently recomputed from a probe query's answer
        // domain: count entries both ways.
        let rev_entries: usize = rev.iter().map(|(_, row)| row.len()).sum();
        assert_eq!(rev_entries, recovered.edge_count(), "kind {kind}: transpose entry count");

        // Semantic bit-identity: the bidirectional executor walks those rows;
        // rare-tail and closure probes must answer exactly like the mirror.
        let sources: Vec<NodeId> = (0..26u64).map(NodeId).collect();
        for text in ["(1|2)*/3", "1+/3", ".{2}/2"] {
            let expr = rpq::parser::parse(text).expect("probe query must parse");
            let (ra, sa) =
                recovered.rpq_batch_planned(&expr, &sources, rpq::PlanStrategy::Bidirectional);
            let (rb, sb) =
                mirror.rpq_batch_planned(&expr, &sources, rpq::PlanStrategy::Bidirectional);
            assert_eq!(ra, rb, "kind {kind}: bidirectional {text:?} results diverged");
            assert_eq!(sa, sb, "kind {kind}: bidirectional {text:?} stats diverged");
            let (canonical, _) = mirror.rpq_batch(&expr, &sources);
            assert_eq!(ra, canonical, "kind {kind}: bidirectional {text:?} broke byte-identity");
        }
        assert_states_match(&mut recovered, mirror.as_mut(), &format!("kind {kind} rev-rows"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn recovery_is_thread_count_invariant() {
    let dir = scratch_dir("threads");
    let _ = std::fs::remove_dir_all(&dir);
    let options = DurabilityOptions { sync_every: 1, rotate_every: 3 };
    let mut live = DurableEngine::open(fresh_engine(0), &dir, options).unwrap();
    for step in 0..7u64 {
        let edges: Vec<(NodeId, NodeId, Label)> = (0..5u64)
            .map(|i| (NodeId(step * 5 + i), NodeId(i * 3), Label((i % 3) as u16 + 1)))
            .collect();
        live.insert_labeled_edges(&edges);
    }
    drop(live);

    let mut one = DurableEngine::open(fresh_engine(0), &dir, options).unwrap();
    one.set_threads(1);
    let mut four = DurableEngine::open(fresh_engine(0), &dir, options).unwrap();
    four.set_threads(4);
    assert_states_match(&mut one, &mut four, "threads 1 vs 4");
    let _ = std::fs::remove_dir_all(&dir);
}
