//! Shard-count equivalence: serving any interleaving of queries and labelled
//! updates through a [`ShardedEngine`] must be **observably identical** to the
//! single-shard sequential replay — bit-identical responses, `ServeTotals`,
//! and `CacheStats` — across shards {1, 2, 4} × threads {1, 4} × all three
//! cache consistency modes, with racing client sessions thrown in.
//!
//! This is the executable form of SERVING.md §7 (why sharding is invisible):
//! every batch is canonically decomposed into per-placement-group sub-batches
//! at *every* shard count (including one), and per-group outcomes are merged
//! in ascending group order, so results, stats, and dependency footprints are
//! pure functions of the frozen [`ShardPlan`] — never of how many shards the
//! groups happen to land on. If scatter dropped or duplicated a position, or
//! the merge order ever depended on shard boundaries, some interleaving here
//! would diverge from the one-shard replay and fail the comparison.

use graph_store::{Label, NodeId};
use moctopus::{GraphEngine, MoctopusConfig, MoctopusSystem};
use moctopus_server::{
    CacheConfig, CacheStats, ConcurrentServer, ConsistencyMode, QueryServer, Request, RequestKind,
    Response, ServeTotals, ServerConfig, Session, ShardPlan, ShardedEngine,
};
use proptest::prelude::*;

/// The acceptance matrix's shard counts.
const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

/// The acceptance matrix's thread counts.
const THREAD_COUNTS: [usize; 2] = [1, 4];

/// All three cache consistency modes (plus `None` = cache disabled, covered
/// separately in [`assert_shard_equivalence`]).
const MODES: [ConsistencyMode; 3] =
    [ConsistencyMode::CostExact, ConsistencyMode::ResultExact, ConsistencyMode::RowExact];

/// Query pool: label chain, closure + alternation, k-hop, transitive closure,
/// and a nullable pattern so the epsilon path crosses the scatter/merge seam.
const QUERIES: [&str; 5] = ["1/2/3", "1/(2|3)*/4", ".{2}", "2?/1", "1+"];

/// One deterministic request log of interleaved queries and labelled updates
/// (same shape as the cache-equivalence suite: every 4th request mutates).
fn request_log(model: &graph_store::AdjacencyGraph, seed: u64, len: usize) -> Vec<Request> {
    let inserts = graph_gen::stream::sample_new_edges(model, len * 2, seed ^ 0xaaaa);
    let mut deletes = graph_gen::labels::labeled_edge_stream(model);
    deletes.truncate(len * 2);
    let sources: Vec<NodeId> = graph_gen::stream::sample_start_nodes(model, 24, seed ^ 0xbbbb);

    (0..len)
        .map(|i| {
            let at = (i + 1) as u64;
            let kind = match i % 8 {
                3 => RequestKind::Insert {
                    edges: inserts
                        .iter()
                        .skip(i)
                        .take(3)
                        .enumerate()
                        .map(|(j, &(s, d))| (s, d, Label((j % 4) as u16 + 1)))
                        .collect(),
                },
                7 => RequestKind::Delete {
                    edges: deletes.iter().skip(i / 2).take(3).copied().collect(),
                },
                q => RequestKind::Query {
                    expr: rpq::parser::parse(QUERIES[(q + i / 8) % QUERIES.len()])
                        .expect("query pool parses"),
                    sources: sources.iter().skip(i % 8).take(8).copied().collect(),
                },
            };
            Request { at, kind }
        })
        .collect()
}

/// A sharded execution plane: `shards` identical Moctopus replicas (each
/// refined once, as the experiment harness does) behind one frozen hashed
/// [`ShardPlan`]. The plan is a pure function of the node id, so every shard
/// count sees the same placement groups.
fn sharded_engine(
    shards: usize,
    threads: usize,
    edges: &[(NodeId, NodeId, Label)],
) -> (Box<dyn GraphEngine + Send>, MoctopusConfig) {
    let cfg = MoctopusConfig::small_test().with_threads(threads);
    let replicas: Vec<Box<dyn GraphEngine + Send>> = (0..shards)
        .map(|_| {
            let mut replica = MoctopusSystem::new(cfg);
            replica.insert_labeled_edges(edges);
            replica.refine_locality();
            Box::new(replica) as Box<dyn GraphEngine + Send>
        })
        .collect();
    let plan = ShardPlan::hashed(ShardPlan::DEFAULT_GROUPS);
    (Box::new(ShardedEngine::new(replicas, plan, threads)), cfg)
}

/// Replays `log` sequentially and returns everything observable: responses,
/// totals, and the final cache statistics.
fn replay(
    engine: Box<dyn GraphEngine + Send>,
    pricing: MoctopusConfig,
    cache: Option<CacheConfig>,
    log: &[Request],
) -> (Vec<Response>, ServeTotals, Option<CacheStats>) {
    let mut server =
        QueryServer::new(engine, ServerConfig { cache, pricing, ..ServerConfig::default() });
    let responses = log.iter().map(|request| server.execute_next(request.clone())).collect();
    let stats = server.cache_stats();
    (responses, server.totals(), stats)
}

/// The tentpole assertion: for every (shards, threads, mode) cell, concurrent
/// sharded serving over racing sessions is bit-identical to the
/// single-shard/single-thread sequential replay.
fn assert_shard_equivalence(
    edges: &[(NodeId, NodeId, Label)],
    log: &[Request],
) -> Result<(), TestCaseError> {
    // Cache disabled plus all three modes; the reference cell is always
    // shards = 1, threads = 1, replayed sequentially.
    let configs: Vec<Option<CacheConfig>> = std::iter::once(None)
        .chain(MODES.iter().map(|&mode| Some(CacheConfig { mode, capacity: 64 })))
        .collect();
    for cache in &configs {
        let (engine, cfg) = sharded_engine(1, 1, edges);
        let (want_responses, want_totals, want_cache) = replay(engine, cfg, *cache, log);

        for &shards in &SHARD_COUNTS {
            for &threads in &THREAD_COUNTS {
                let (engine, cfg) = sharded_engine(shards, threads, edges);
                let server = ConcurrentServer::new(QueryServer::new(
                    engine,
                    ServerConfig { cache: *cache, pricing: cfg, ..ServerConfig::default() },
                ));
                let mut sessions: Vec<Session> = (0..3).map(|_| server.session()).collect();
                std::thread::scope(|scope| {
                    for (c, session) in sessions.drain(..).enumerate() {
                        let schedule: Vec<Request> =
                            log.iter().skip(c).step_by(3).cloned().collect();
                        scope.spawn(move || {
                            let mut session = session;
                            for request in schedule {
                                session
                                    .submit(request.at, request.kind)
                                    .expect("monotonic per client");
                            }
                            session.finish();
                        });
                    }
                    server.run();
                });
                let mut merged: Vec<Response> =
                    server.take_responses().into_iter().flatten().collect();
                merged.sort_by_key(|r| r.at);
                let totals = server.with_core(|core| core.totals());
                let cache_stats = server.with_core(|core| core.cache_stats());

                prop_assert_eq!(merged.len(), want_responses.len());
                for (got, want) in merged.iter().zip(&want_responses) {
                    prop_assert_eq!(got.at, want.at);
                    prop_assert_eq!(
                        &got.body,
                        &want.body,
                        "{:?} diverged from the 1-shard replay at t={} \
                         ({} shards, {} threads)",
                        cache.map(|c| c.mode),
                        got.at,
                        shards,
                        threads
                    );
                }
                prop_assert_eq!(
                    totals,
                    want_totals,
                    "totals diverged ({:?}, {} shards, {} threads)",
                    cache.map(|c| c.mode),
                    shards,
                    threads
                );
                prop_assert_eq!(
                    cache_stats,
                    want_cache,
                    "cache stats diverged ({:?}, {} shards, {} threads)",
                    cache.map(|c| c.mode),
                    shards,
                    threads
                );
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Uniform labelled graphs: the full shards × threads × mode matrix is
    /// bit-identical to the single-shard sequential replay.
    #[test]
    fn shard_matrix_is_equivalent_on_uniform_graphs(
        seed in 0u64..100,
        nodes in 60usize..140,
    ) {
        let topology = graph_gen::uniform::generate(nodes, 3.5, seed);
        let model = graph_gen::labels::relabel(
            &topology,
            &graph_gen::labels::LabelMixConfig::default(),
            seed,
        );
        let edges = graph_gen::labels::labeled_edge_stream(&model);
        let log = request_log(&model, seed, 32);
        assert_shard_equivalence(&edges, &log)?;
    }

    /// Power-law labelled graphs: hub nodes concentrate whole placement
    /// groups, so the scatter produces skewed sub-batches — the merge must
    /// still be shard-count invariant.
    #[test]
    fn shard_matrix_is_equivalent_on_power_law_graphs(
        seed in 0u64..100,
        nodes in 120usize..240,
    ) {
        let cfg = graph_gen::powerlaw::PowerLawConfig {
            nodes,
            high_degree_fraction: 0.05,
            ..Default::default()
        };
        let topology = graph_gen::powerlaw::generate(&cfg, seed);
        let model = graph_gen::labels::relabel(
            &topology,
            &graph_gen::labels::LabelMixConfig::default(),
            seed,
        );
        let edges = graph_gen::labels::labeled_edge_stream(&model);
        let log = request_log(&model, seed, 32);
        assert_shard_equivalence(&edges, &log)?;
    }

    /// The plan-aware placement path: a [`ShardPlan`] derived from the
    /// engine's own partition assignment serves the same answers as the raw
    /// unsharded engine (results only — stats decompose differently when the
    /// decomposition follows real placements, and that is fine: only the
    /// hashed canonical plan promises bit-identical stats).
    #[test]
    fn assignment_derived_plans_preserve_answers(seed in 0u64..50) {
        let topology = graph_gen::uniform::generate(90, 3.5, seed);
        let model = graph_gen::labels::relabel(
            &topology,
            &graph_gen::labels::LabelMixConfig::default(),
            seed,
        );
        let edges = graph_gen::labels::labeled_edge_stream(&model);
        let cfg = MoctopusConfig::small_test();

        let mut single = MoctopusSystem::new(cfg);
        single.insert_labeled_edges(&edges);
        single.refine_locality();
        let mut assignment =
            graph_partition::PartitionAssignment::new(cfg.pim.num_modules);
        for id in 0..model.node_count() as u64 {
            if let Some(partition) = single.partition_of(NodeId(id)) {
                assignment.assign(NodeId(id), partition);
            }
        }
        let plan = ShardPlan::from_assignment(&assignment, ShardPlan::DEFAULT_GROUPS);

        let replicas: Vec<Box<dyn GraphEngine + Send>> = (0..3)
            .map(|_| {
                let mut replica = MoctopusSystem::new(cfg);
                replica.insert_labeled_edges(&edges);
                replica.refine_locality();
                Box::new(replica) as Box<dyn GraphEngine + Send>
            })
            .collect();
        let mut plane = ShardedEngine::new(replicas, plan, 2);

        let sources: Vec<NodeId> =
            graph_gen::stream::sample_start_nodes(&model, 16, seed ^ 0xcccc);
        for text in QUERIES {
            let expr = rpq::parser::parse(text).expect("query pool parses");
            let (want, _) = single.rpq_batch(&expr, &sources);
            let (got, _) = plane.rpq_batch(&expr, &sources);
            prop_assert_eq!(&got, &want, "placement-derived plan changed answers on {:?}", text);
        }
    }
}
