//! Property tests pinning the batch-frontier query engine to its contract.
//!
//! The engine rewrite (dense owner directory, epoch-marked dedup, recycled
//! frontier buffers) is a pure reproduction-speed optimisation: results must
//! match `rpq::ReferenceEvaluator`, and every simulated charge must equal the
//! naive per-hop formulation documented in ARCHITECTURE.md §1 — dispatch
//! bytes for PIM-resident sources, per-entry CPC/IPC bytes with 25 host
//! instructions per forwarded entry, straggler-dominated PIM steps, and the
//! gather + reduce tail. The oracle below recomputes that formulation from
//! the logical graph and the owner directory alone, so any divergence in the
//! engine's cost accounting (bytes *or* float charge order) fails the test.

use graph_partition::{GreedyAdaptivePartitioner, HashPartitioner, PartitionAssignment};
use graph_store::{AdjacencyGraph, NodeId, PartitionId};
use moctopus::distributed::{DistributedPimEngine, PlacementPolicy};
use moctopus::{MoctopusConfig, QueryStats};
use pim_sim::{Phase, PimSystem, SimTime, Timeline};
use proptest::prelude::*;
use rpq::ReferenceEvaluator;

const ENTRY_BYTES: u64 = 8;
const ID_BYTES: u64 = 8;

/// Recomputes the query timeline from the logical graph and the owner
/// directory, following ARCHITECTURE.md §1 / the paper's execution plan
/// verbatim (sorted frontiers, `sort`+`dedup` per hop). Insert-only
/// workloads keep every heterogeneous-storage row free of free slots, so a
/// host row's byte size equals its out-degree × 8.
fn oracle_query_timeline(
    graph: &AdjacencyGraph,
    assignment: &PartitionAssignment,
    config: &MoctopusConfig,
    sources: &[NodeId],
    k: usize,
) -> (Vec<Vec<NodeId>>, Timeline, usize) {
    let mut pim = PimSystem::new(config.pim);
    let module_count = config.pim.num_modules;
    let mut timeline = Timeline::new();
    let mut expansions = 0usize;

    let host_resident_bytes: u64 = assignment
        .iter()
        .filter(|&(_, p)| p == PartitionId::Host)
        .map(|(n, _)| graph.neighbors(n).len() as u64 * ID_BYTES)
        .sum();

    let dispatch_bytes: u64 = sources
        .iter()
        .filter(|&&s| matches!(assignment.partition_of(s), Some(PartitionId::Pim(_))))
        .count() as u64
        * ENTRY_BYTES;
    timeline.charge(Phase::Cpc, pim.cpc_transfer_cost(dispatch_bytes));
    timeline.transfers.record_cpu_to_pim(dispatch_bytes, 1);

    let mut frontiers: Vec<Vec<NodeId>> = sources.iter().map(|&s| vec![s]).collect();
    for _hop in 0..k {
        let mut per_module = vec![SimTime::ZERO; module_count];
        let mut host_time = SimTime::ZERO;
        let mut ipc_bytes = 0u64;
        let mut ipc_messages = 0u64;
        let mut cpc_bytes = 0u64;
        let mut next_frontiers: Vec<Vec<NodeId>> = vec![Vec::new(); frontiers.len()];
        for (q, frontier) in frontiers.iter().enumerate() {
            let next = &mut next_frontiers[q];
            for &v in frontier {
                expansions += 1;
                let row_bytes = graph.neighbors(v).len() as u64 * ID_BYTES;
                match assignment.partition_of(v) {
                    Some(PartitionId::Host) => {
                        host_time += pim.host_random_access_cost(1, host_resident_bytes)
                            + pim.host_sequential_read_cost(row_bytes);
                        for &(u, _) in graph.neighbors(v) {
                            if matches!(assignment.partition_of(u), Some(PartitionId::Pim(_))) {
                                cpc_bytes += ENTRY_BYTES;
                            }
                            next.push(u);
                        }
                    }
                    Some(PartitionId::Pim(m)) => {
                        per_module[m as usize] += pim.pim_hash_lookup_cost(row_bytes);
                        for &(u, _) in graph.neighbors(v) {
                            match assignment.partition_of(u) {
                                Some(PartitionId::Pim(m2)) if m2 == m => {}
                                Some(PartitionId::Pim(_)) => {
                                    ipc_bytes += ENTRY_BYTES;
                                    ipc_messages += 1;
                                }
                                _ => cpc_bytes += ENTRY_BYTES,
                            }
                            next.push(u);
                        }
                    }
                    None => {}
                }
            }
            next.sort();
            next.dedup();
        }
        let pim_time = pim.parallel_step(&per_module);
        timeline.charge(Phase::PimCompute, pim_time);
        timeline.charge(Phase::HostCompute, host_time);
        timeline.charge(Phase::Cpc, pim.cpc_transfer_cost(cpc_bytes));
        timeline.charge(
            Phase::Ipc,
            pim.ipc_transfer_cost(ipc_bytes) + pim.host_instructions_cost(ipc_messages * 25),
        );
        timeline.transfers.record_pim_to_cpu(cpc_bytes, 1);
        timeline.transfers.record_inter_pim(ipc_bytes, ipc_messages);
        frontiers = next_frontiers;
    }

    let matched_pairs: usize = frontiers.iter().map(Vec::len).sum();
    let gather_bytes = matched_pairs as u64 * ENTRY_BYTES;
    timeline.charge(Phase::Cpc, pim.cpc_transfer_cost(gather_bytes));
    timeline.transfers.record_pim_to_cpu(gather_bytes, 1);
    timeline.charge(
        Phase::Reduce,
        pim.host_sequential_read_cost(gather_bytes)
            + pim.host_instructions_cost(matched_pairs as u64 * 8),
    );
    (frontiers, timeline, expansions)
}

fn engine_for(policy_id: usize, config: MoctopusConfig) -> DistributedPimEngine {
    let policy = if policy_id == 0 {
        PlacementPolicy::GreedyAdaptive(GreedyAdaptivePartitioner::with_config(
            config.partitioner_config(),
        ))
    } else {
        PlacementPolicy::Hash(HashPartitioner::new(config.pim.num_modules))
    };
    DistributedPimEngine::new(config, policy)
}

/// Loads a graph into an engine of the requested policy and checks, for each
/// k, that results match the reference evaluator and that the timeline is
/// identical to the oracle's naive formulation.
fn check_engine(graph: &AdjacencyGraph, policy_id: usize) -> Result<(), TestCaseError> {
    let config = MoctopusConfig::small_test();
    let mut edges: Vec<(NodeId, NodeId)> = graph.edges().map(|(s, d, _)| (s, d)).collect();
    edges.sort();
    let mut engine = engine_for(policy_id, config);
    engine.insert_edges(&edges);
    if policy_id == 0 {
        engine.refine_locality();
    }
    let reference = ReferenceEvaluator::new(graph);
    // A spread of known sources plus one id outside the graph (no-op path).
    let mut sources: Vec<NodeId> = (0..24u64).map(NodeId).collect();
    sources.push(NodeId(1 << 40));
    for k in 1..=3usize {
        let (got, stats): (Vec<Vec<NodeId>>, QueryStats) = engine.k_hop_batch(&sources, k);
        let want = reference.k_hop(&sources, k);
        for (g, w) in got.iter().zip(want.iter()) {
            let w: Vec<NodeId> = w.iter().copied().collect();
            prop_assert_eq!(g, &w, "result mismatch at k = {}", k);
        }
        let (oracle_results, oracle_timeline, oracle_expansions) =
            oracle_query_timeline(graph, engine.assignment(), engine.config(), &sources, k);
        prop_assert_eq!(&got, &oracle_results, "oracle frontier mismatch at k = {}", k);
        prop_assert_eq!(
            stats.timeline.transfers,
            oracle_timeline.transfers,
            "transfer counters diverge at k = {}",
            k
        );
        for phase in Phase::ALL {
            prop_assert_eq!(
                stats.timeline.time(phase),
                oracle_timeline.time(phase),
                "phase {} charge diverges at k = {}",
                phase,
                k
            );
        }
        prop_assert_eq!(stats.expansions, oracle_expansions);
        prop_assert_eq!(stats.matched_pairs, got.iter().map(Vec::len).sum::<usize>());
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Uniform graphs, both placement policies.
    #[test]
    fn uniform_graphs_match_reference_and_cost_oracle(
        nodes in 60usize..320,
        degree_tenths in 10u32..60,
        seed in 0u64..1000,
        policy_id in 0usize..2,
    ) {
        let graph = graph_gen::uniform::generate(nodes, degree_tenths as f64 / 10.0, seed);
        check_engine(&graph, policy_id)?;
    }

    /// Power-law (skewed, hub-promoting) graphs, both placement policies.
    #[test]
    fn power_law_graphs_match_reference_and_cost_oracle(
        nodes in 120usize..500,
        hub_percent in 0u32..6,
        seed in 0u64..1000,
        policy_id in 0usize..2,
    ) {
        let cfg = graph_gen::powerlaw::PowerLawConfig {
            nodes,
            high_degree_fraction: hub_percent as f64 / 100.0,
            ..Default::default()
        };
        let graph = graph_gen::powerlaw::generate(&cfg, seed);
        check_engine(&graph, policy_id)?;
    }
}
