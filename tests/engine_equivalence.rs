//! Cross-engine equivalence: Moctopus, PIM-hash and the RedisGraph-like
//! baseline must return exactly the same answers as the reference evaluator
//! for every workload family the paper evaluates on.

use graph_store::{AdjacencyGraph, NodeId};
use moctopus::{GraphEngine, HostBaseline, MoctopusConfig, MoctopusSystem, PimHashSystem};
use rpq::ReferenceEvaluator;

fn edge_list(graph: &AdjacencyGraph) -> Vec<(NodeId, NodeId)> {
    let mut edges: Vec<(NodeId, NodeId)> = graph.edges().map(|(s, d, _)| (s, d)).collect();
    edges.sort();
    edges
}

fn engines(edges: &[(NodeId, NodeId)]) -> Vec<Box<dyn GraphEngine>> {
    let cfg = MoctopusConfig::small_test();
    vec![
        Box::new(MoctopusSystem::from_edge_stream(cfg, edges)),
        Box::new(PimHashSystem::from_edge_stream(cfg, edges)),
        Box::new(HostBaseline::from_edge_stream(cfg, edges)),
    ]
}

fn check_graph(graph: &AdjacencyGraph, ks: &[usize], num_sources: u64) {
    let edges = edge_list(graph);
    let reference = ReferenceEvaluator::new(graph);
    let sources: Vec<NodeId> = (0..num_sources).map(NodeId).collect();
    for mut engine in engines(&edges) {
        assert_eq!(engine.edge_count(), edges.len(), "{} lost edges", engine.name());
        for &k in ks {
            let (got, stats) = engine.k_hop_batch(&sources, k);
            let want = reference.k_hop(&sources, k);
            assert_eq!(stats.batch_size, sources.len());
            assert_eq!(stats.hops, k);
            for (i, (g, w)) in got.iter().zip(want.iter()).enumerate() {
                let w: Vec<NodeId> = w.iter().copied().collect();
                assert_eq!(
                    g,
                    &w,
                    "{} disagrees with the reference for source {} at k = {}",
                    engine.name(),
                    i,
                    k
                );
            }
        }
    }
}

#[test]
fn road_network_equivalence() {
    let graph = graph_gen::road::generate(900, 0.1, 11);
    check_graph(&graph, &[1, 2, 4, 6], 48);
}

#[test]
fn power_law_equivalence() {
    let cfg = graph_gen::powerlaw::PowerLawConfig {
        nodes: 800,
        high_degree_fraction: 0.03,
        ..Default::default()
    };
    let graph = graph_gen::powerlaw::generate(&cfg, 23);
    check_graph(&graph, &[1, 2, 3], 48);
}

#[test]
fn uniform_graph_equivalence() {
    let graph = graph_gen::uniform::generate(700, 4.0, 31);
    check_graph(&graph, &[1, 2, 3], 48);
}

#[test]
fn table1_trace_standins_equivalence() {
    // One representative of each generator family from Table 1.
    for trace_id in [2usize, 8, 14] {
        let spec = graph_gen::traces::TraceSpec::by_trace_id(trace_id).expect("trace exists");
        let graph = spec.generate(0.0005, 7);
        check_graph(&graph, &[1, 2, 3], 32);
    }
}

#[test]
fn equivalence_survives_refinement_and_updates() {
    let graph = graph_gen::uniform::generate(500, 4.0, 3);
    let edges = edge_list(&graph);
    let cfg = MoctopusConfig::small_test();
    let mut moctopus = MoctopusSystem::from_edge_stream(cfg, &edges);
    let mut baseline = HostBaseline::from_edge_stream(cfg, &edges);

    // Mutate both engines identically.
    let inserts = graph_gen::stream::sample_new_edges(&graph, 200, 5);
    let deletes = graph_gen::stream::sample_existing_edges(&graph, 200, 9);
    moctopus.insert_edges(&inserts);
    baseline.insert_edges(&inserts);
    moctopus.delete_edges(&deletes);
    baseline.delete_edges(&deletes);
    moctopus.refine_locality();

    let sources: Vec<NodeId> = (0..64u64).map(NodeId).collect();
    for k in 1..=3 {
        let (a, _) = moctopus.k_hop_batch(&sources, k);
        let (b, _) = baseline.k_hop_batch(&sources, k);
        assert_eq!(a, b, "divergence after updates at k = {k}");
    }
    assert_eq!(moctopus.edge_count(), baseline.edge_count());
}

#[test]
fn batch_order_does_not_change_results() {
    let graph = graph_gen::uniform::generate(400, 3.0, 17);
    let edges = edge_list(&graph);
    let cfg = MoctopusConfig::small_test();
    let mut system = MoctopusSystem::from_edge_stream(cfg, &edges);
    let sources: Vec<NodeId> = vec![NodeId(5), NodeId(1), NodeId(5), NodeId(9)];
    let (results, stats) = system.k_hop_batch(&sources, 2);
    // Each batch row answers its own query, including duplicates.
    assert_eq!(results.len(), 4);
    assert_eq!(results[0], results[2]);
    assert_eq!(stats.batch_size, 4);
}
