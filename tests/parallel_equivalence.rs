//! Parallel-runtime equivalence: executing the engines at `--threads ∈
//! {1, 2, 4, 8}` must be **observably identical** to single-threaded
//! execution — same `k_hop_batch`/`rpq_batch` results, same simulated
//! `SimTime` per phase, same transfer-byte tallies — over labelled uniform
//! and power-law graphs with interleaved labelled updates.
//!
//! This is the executable form of the determinism contract in CONCURRENCY.md
//! (disjoint module ownership, private worker scratch, id-ordered merge):
//! `QueryStats`/`UpdateStats` derive `PartialEq` over the full per-phase
//! `Timeline` **including the floating-point `SimTime` values and the raw
//! `TransferStats` counters**, so a single inequality anywhere — a float
//! accumulated in a different order, one byte charged on the wrong bus —
//! fails the test.

use graph_gen::labels::{relabel, LabelMixConfig};
use graph_store::{AdjacencyGraph, Label, NodeId};
use moctopus::{GraphEngine, HostBaseline, MoctopusConfig, MoctopusSystem, PimHashSystem};
use proptest::prelude::*;

/// Thread counts the equivalence sweep compares against the 1-thread run.
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Queries covering every execution strategy: label chain (matrix chain /
/// label-filtered hops), closure with alternation (NFA product / automaton
/// sweep), plain k-hop fast path, and transitive closure.
const QUERIES: [&str; 4] = ["1/2/3", "1/(2|3)*/4", ".{2}", "1+"];

/// Builds the three engines at the given thread count, loaded with the
/// labelled stream (Moctopus refined once, as in the experiment harness).
fn engines_at(threads: usize, edges: &[(NodeId, NodeId, Label)]) -> Vec<Box<dyn GraphEngine>> {
    let cfg = MoctopusConfig::small_test().with_threads(threads);
    let mut moctopus = MoctopusSystem::new(cfg);
    moctopus.insert_labeled_edges(edges);
    moctopus.refine_locality();
    let mut pim_hash = PimHashSystem::new(cfg);
    pim_hash.insert_labeled_edges(edges);
    let mut baseline = HostBaseline::new(cfg);
    baseline.insert_labeled_edges(edges);
    vec![Box::new(moctopus), Box::new(pim_hash), Box::new(baseline)]
}

/// A batch of labelled edges, as consumed by the labelled update paths.
type LabeledBatch = Vec<(NodeId, NodeId, Label)>;

/// Deterministic update batches for the interleaving: new labelled edges and
/// deletions of existing ones.
fn update_batches(model: &AdjacencyGraph, seed: u64) -> (LabeledBatch, LabeledBatch) {
    let inserts: Vec<(NodeId, NodeId, Label)> =
        graph_gen::stream::sample_new_edges(model, 24, seed)
            .into_iter()
            .enumerate()
            .map(|(i, (s, d))| (s, d, Label((i % 4) as u16 + 1)))
            .collect();
    let mut deletes = graph_gen::labels::labeled_edge_stream(model);
    deletes.truncate(16);
    (inserts, deletes)
}

/// Runs the full workload — queries, k-hop batches, interleaved updates,
/// more queries — on engines at `threads` and at 1 thread, asserting every
/// observable output (results + complete stats) is identical pairwise.
fn assert_thread_equivalence(
    model: &AdjacencyGraph,
    edges: &[(NodeId, NodeId, Label)],
    sources: &[NodeId],
    seed: u64,
) -> Result<(), TestCaseError> {
    let mut reference_engines = engines_at(1, edges);
    let (inserts, deletes) = update_batches(model, seed);

    for &threads in &THREAD_COUNTS[1..] {
        let mut parallel_engines = engines_at(threads, edges);
        for (reference, parallel) in reference_engines.iter_mut().zip(&mut parallel_engines) {
            prop_assert_eq!(parallel.threads(), threads);

            // Phase 1: queries over the freshly built graph.
            for text in QUERIES {
                let expr = rpq::parser::parse(text).expect("query set must parse");
                let (want, want_stats) = reference.rpq_batch(&expr, sources);
                let (got, got_stats) = parallel.rpq_batch(&expr, sources);
                prop_assert_eq!(
                    &got,
                    &want,
                    "{} results differ at {} threads on {:?}",
                    reference.name(),
                    threads,
                    text
                );
                prop_assert_eq!(
                    got_stats,
                    want_stats,
                    "{} SimTime/transfer stats differ at {} threads on {:?}",
                    reference.name(),
                    threads,
                    text
                );
            }
            for k in 1..=3usize {
                let (want, want_stats) = reference.k_hop_batch(sources, k);
                let (got, got_stats) = parallel.k_hop_batch(sources, k);
                prop_assert_eq!(&got, &want, "k-hop results differ at {} threads", threads);
                prop_assert_eq!(got_stats, want_stats, "k-hop stats differ at {} threads", threads);
            }

            // Phase 2: interleaved labelled updates, stats compared too.
            let want_ins = reference.insert_labeled_edges(&inserts);
            let got_ins = parallel.insert_labeled_edges(&inserts);
            prop_assert_eq!(got_ins, want_ins, "insert stats differ at {} threads", threads);
            let want_del = reference.delete_labeled_edges(&deletes);
            let got_del = parallel.delete_labeled_edges(&deletes);
            prop_assert_eq!(got_del, want_del, "delete stats differ at {} threads", threads);

            // Phase 3: queries over the updated graph (exercises promoted
            // rows, emptied rows, and the refreshed baseline matrices).
            for text in QUERIES {
                let expr = rpq::parser::parse(text).expect("query set must parse");
                let (want, want_stats) = reference.rpq_batch(&expr, sources);
                let (got, got_stats) = parallel.rpq_batch(&expr, sources);
                prop_assert_eq!(
                    &got,
                    &want,
                    "post-update results differ at {} threads on {:?}",
                    threads,
                    text
                );
                prop_assert_eq!(
                    got_stats,
                    want_stats,
                    "post-update stats differ at {} threads on {:?}",
                    threads,
                    text
                );
            }
        }
        // The 1-thread engines advanced through the updates; rebuild them so
        // every thread count is compared from the same pristine state.
        reference_engines = engines_at(1, edges);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Labelled uniform graphs: thread counts 2/4/8 match 1 exactly.
    #[test]
    fn uniform_labelled_graphs_are_thread_count_invariant(
        seed in 0u64..200,
        nodes in 60usize..160,
        degree_tenths in 20usize..50,
    ) {
        let topology = graph_gen::uniform::generate(nodes, degree_tenths as f64 / 10.0, seed);
        let model = relabel(&topology, &LabelMixConfig::default(), seed);
        let edges = graph_gen::labels::labeled_edge_stream(&model);
        let sources: Vec<NodeId> = (0..16u64).map(NodeId).collect();
        assert_thread_equivalence(&model, &edges, &sources, seed)?;
    }

    /// Labelled power-law graphs (hub promotion, host lane active): thread
    /// counts 2/4/8 match 1 exactly.
    #[test]
    fn power_law_labelled_graphs_are_thread_count_invariant(
        seed in 0u64..200,
        nodes in 120usize..300,
    ) {
        let cfg = graph_gen::powerlaw::PowerLawConfig {
            nodes,
            high_degree_fraction: 0.04,
            ..Default::default()
        };
        let topology = graph_gen::powerlaw::generate(&cfg, seed);
        let model = relabel(&topology, &LabelMixConfig::default(), seed);
        let edges = graph_gen::labels::labeled_edge_stream(&model);
        let sources: Vec<NodeId> = (0..16u64).map(NodeId).collect();
        assert_thread_equivalence(&model, &edges, &sources, seed)?;
    }
}

/// Thread counts far above the module count (8 modules in `small_test`) must
/// degrade to idle workers, not wrong answers.
#[test]
fn oversubscribed_thread_count_is_still_identical() {
    let topology = graph_gen::uniform::generate(100, 3.0, 7);
    let model = relabel(&topology, &LabelMixConfig::default(), 7);
    let edges = graph_gen::labels::labeled_edge_stream(&model);
    let sources: Vec<NodeId> = (0..8u64).map(NodeId).collect();

    let mut serial = engines_at(1, &edges);
    let mut oversubscribed = engines_at(64, &edges);
    for (a, b) in serial.iter_mut().zip(&mut oversubscribed) {
        let (want, want_stats) = a.k_hop_batch(&sources, 3);
        let (got, got_stats) = b.k_hop_batch(&sources, 3);
        assert_eq!(got, want, "{} differs when oversubscribed", a.name());
        assert_eq!(got_stats, want_stats);
    }
}

/// `set_threads` reconfigures a live engine without disturbing its contents
/// or its determinism.
#[test]
fn set_threads_on_a_live_engine_keeps_outputs_identical() {
    let topology = graph_gen::uniform::generate(150, 4.0, 11);
    let model = relabel(&topology, &LabelMixConfig::default(), 11);
    let edges = graph_gen::labels::labeled_edge_stream(&model);
    let sources: Vec<NodeId> = (0..12u64).map(NodeId).collect();

    let mut engine = MoctopusSystem::new(MoctopusConfig::small_test());
    engine.insert_labeled_edges(&edges);
    let (want, want_stats) = engine.k_hop_batch(&sources, 2);
    for threads in [2, 4, 1, 8] {
        engine.set_threads(threads);
        assert_eq!(engine.threads(), threads);
        let (got, got_stats) = engine.k_hop_batch(&sources, 2);
        assert_eq!(got, want, "results moved after set_threads({threads})");
        assert_eq!(got_stats, want_stats, "stats moved after set_threads({threads})");
    }
}
