//! Cache-consistency equivalence: serving any interleaving of queries and
//! labelled updates with the result cache enabled must be **observably
//! identical** to serving it with the cache disabled — bit-identical query
//! results in both consistency modes, bit-identical `QueryStats` under
//! cost-exact consistency — across engines and thread counts.
//!
//! This is the executable form of SERVING.md §3 (what invalidates what, and
//! why stale reads are impossible): if the dependency tracking in
//! `moctopus::deps` under-approximated anything — a visited node outside the
//! recorded buckets, a placement change outside the structural tier, a
//! host-store byte moving without the flag — some interleaving here would
//! serve a stale answer or stale stats and fail the comparison.

use graph_store::{Label, NodeId};
use moctopus::{GraphEngine, HostBaseline, MoctopusConfig, MoctopusSystem, PimHashSystem};
use moctopus_server::{
    CacheConfig, CacheOutcome, ConcurrentServer, ConsistencyMode, QueryServer, Request,
    RequestKind, Response, ResponseBody, ServerConfig, Session,
};
use proptest::prelude::*;

/// Thread counts the serving sweep runs at (the acceptance criterion's 1/4).
const THREAD_COUNTS: [usize; 2] = [1, 4];

/// Query pool: every execution strategy (label chain, closure+alternation,
/// k-hop fast path, transitive closure) plus a label-narrow probe that keeps
/// result-exact invalidation interesting.
const QUERIES: [&str; 5] = ["1/2/3", "1/(2|3)*/4", ".{2}", "1+", "2/2"];

/// One deterministic request log: interleaved queries (drawn from the pool
/// over rotating source batches) and labelled insert/delete batches.
fn request_log(model: &graph_store::AdjacencyGraph, seed: u64, len: usize) -> Vec<Request> {
    let inserts = graph_gen::stream::sample_new_edges(model, len * 2, seed ^ 0xaaaa);
    let mut deletes = graph_gen::labels::labeled_edge_stream(model);
    deletes.truncate(len * 2);
    let sources: Vec<NodeId> = graph_gen::stream::sample_start_nodes(model, 24, seed ^ 0xbbbb);

    (0..len)
        .map(|i| {
            let at = (i + 1) as u64;
            // A fixed-but-varied schedule: every 4th request updates.
            let kind = match i % 8 {
                3 => RequestKind::Insert {
                    edges: inserts
                        .iter()
                        .skip(i)
                        .take(3)
                        .enumerate()
                        .map(|(j, &(s, d))| (s, d, Label((j % 4) as u16 + 1)))
                        .collect(),
                },
                7 => RequestKind::Delete {
                    edges: deletes.iter().skip(i / 2).take(3).copied().collect(),
                },
                q => RequestKind::Query {
                    expr: rpq::parser::parse(QUERIES[(q + i / 8) % QUERIES.len()])
                        .expect("query pool parses"),
                    sources: sources.iter().skip(i % 8).take(8).copied().collect(),
                },
            };
            Request { at, kind }
        })
        .collect()
}

/// One fresh engine (0 = Moctopus, refined once as in the experiment
/// harness; 1 = PIM-hash; 2 = host baseline), loaded with the labelled
/// stream at a thread count.
fn engine_at(
    engine_idx: usize,
    threads: usize,
    edges: &[(NodeId, NodeId, Label)],
) -> (Box<dyn GraphEngine + Send>, MoctopusConfig) {
    let cfg = MoctopusConfig::small_test().with_threads(threads);
    let engine: Box<dyn GraphEngine + Send> = match engine_idx {
        0 => {
            let mut moctopus = MoctopusSystem::new(cfg);
            moctopus.insert_labeled_edges(edges);
            moctopus.refine_locality();
            Box::new(moctopus)
        }
        1 => {
            let mut pim_hash = PimHashSystem::new(cfg);
            pim_hash.insert_labeled_edges(edges);
            Box::new(pim_hash)
        }
        _ => {
            let mut baseline = HostBaseline::new(cfg);
            baseline.insert_labeled_edges(edges);
            Box::new(baseline)
        }
    };
    (engine, cfg)
}

/// All three engines (see [`engine_at`] for the index mapping).
fn engines_at(
    threads: usize,
    edges: &[(NodeId, NodeId, Label)],
) -> Vec<(Box<dyn GraphEngine + Send>, MoctopusConfig)> {
    (0..3).map(|idx| engine_at(idx, threads, edges)).collect()
}

/// Replays `log` through a fresh server and returns the responses.
fn replay(
    engine: Box<dyn GraphEngine + Send>,
    pricing: MoctopusConfig,
    cache: Option<CacheConfig>,
    optimize: bool,
    log: &[Request],
) -> (Vec<Response>, moctopus_server::ServeTotals) {
    let mut server =
        QueryServer::new(engine, ServerConfig { cache, pricing, optimize, plan_override: None });
    let responses = log.iter().map(|request| server.execute_next(request.clone())).collect();
    (responses, server.totals())
}

/// The core assertion: cached serving equals uncached re-execution.
fn assert_cache_equivalence(
    edges: &[(NodeId, NodeId, Label)],
    log: &[Request],
    threads: usize,
) -> Result<(), TestCaseError> {
    for engine_idx in 0..3usize {
        let build = || engine_at(engine_idx, threads, edges);
        let (engine, cfg) = build();
        let name = engine.name();
        let (bypass, _) = replay(engine, cfg, None, false, log);
        // Both consistency modes, each with the plan optimizer off and on:
        // plan choice must be invisible in every served byte (the
        // plan-invariance contract), so all four runs must equal the
        // optimizer-less uncached reference.
        for (mode, optimize) in [
            (ConsistencyMode::CostExact, false),
            (ConsistencyMode::ResultExact, false),
            (ConsistencyMode::CostExact, true),
            (ConsistencyMode::ResultExact, true),
        ] {
            let (engine, cfg) = build();
            let (cached, totals) =
                replay(engine, cfg, Some(CacheConfig { mode, capacity: 64 }), optimize, log);
            prop_assert_eq!(cached.len(), bypass.len());
            let mut hits = 0u64;
            for (got, want) in cached.iter().zip(&bypass) {
                match (&got.body, &want.body) {
                    (
                        ResponseBody::Query { results: a, stats: sa, cache },
                        ResponseBody::Query { results: b, stats: sb, .. },
                    ) => {
                        prop_assert_eq!(
                            a,
                            b,
                            "{} {:?}: stale answer served at {} ({} threads)",
                            name,
                            mode,
                            got.id,
                            threads
                        );
                        if *cache == CacheOutcome::Hit {
                            hits += 1;
                        }
                        if mode == ConsistencyMode::CostExact {
                            prop_assert_eq!(
                                sa,
                                sb,
                                "{} {:?}: stale stats served at {} ({} threads)",
                                name,
                                mode,
                                got.id,
                                threads
                            );
                        }
                    }
                    (
                        ResponseBody::Update { stats: sa, .. },
                        ResponseBody::Update { stats: sb, .. },
                    ) => {
                        prop_assert_eq!(sa, sb, "{} {:?}: update stats drifted", name, mode);
                    }
                    _ => prop_assert!(false, "response kinds diverged at {}", got.id),
                }
            }
            // The accounting identity: avoided time only accrues from hits.
            if hits == 0 {
                prop_assert_eq!(totals.avoided_time, pim_sim::SimTime::ZERO);
            }
            // Planning accounting: the optimizer plans every execution (and
            // nothing else), and never scores its choice above forward.
            if optimize {
                prop_assert!(totals.planned > 0, "{name}: no executions planned");
                prop_assert!(
                    totals.plan_chosen_cost <= totals.plan_forward_cost,
                    "{}: chosen plan cost {} exceeds forward {}",
                    name,
                    totals.plan_chosen_cost,
                    totals.plan_forward_cost
                );
            } else {
                prop_assert_eq!(totals.planned, 0);
                prop_assert_eq!(totals.plan_nonforward, 0);
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Uniform labelled graphs: cache on == cache off at both thread counts.
    #[test]
    fn cached_serving_is_equivalent_on_uniform_graphs(
        seed in 0u64..100,
        nodes in 60usize..140,
    ) {
        let topology = graph_gen::uniform::generate(nodes, 3.5, seed);
        let model = graph_gen::labels::relabel(
            &topology,
            &graph_gen::labels::LabelMixConfig::default(),
            seed,
        );
        let edges = graph_gen::labels::labeled_edge_stream(&model);
        let log = request_log(&model, seed, 40);
        for &threads in &THREAD_COUNTS {
            assert_cache_equivalence(&edges, &log, threads)?;
        }
    }

    /// Power-law labelled graphs: hub promotion makes the host lane and the
    /// host-store invalidation flag load-bearing.
    #[test]
    fn cached_serving_is_equivalent_on_power_law_graphs(
        seed in 0u64..100,
        nodes in 120usize..240,
    ) {
        let cfg = graph_gen::powerlaw::PowerLawConfig {
            nodes,
            high_degree_fraction: 0.05,
            ..Default::default()
        };
        let topology = graph_gen::powerlaw::generate(&cfg, seed);
        let model = graph_gen::labels::relabel(
            &topology,
            &graph_gen::labels::LabelMixConfig::default(),
            seed,
        );
        let edges = graph_gen::labels::labeled_edge_stream(&model);
        let log = request_log(&model, seed, 40);
        for &threads in &THREAD_COUNTS {
            assert_cache_equivalence(&edges, &log, threads)?;
        }
    }

    /// The dependency footprints themselves are thread-count invariant (the
    /// cache consumes them, so this is a precondition of byte-identical
    /// serving at every `--threads` value).
    #[test]
    fn tracked_deps_are_thread_count_invariant(seed in 0u64..100) {
        let cfg = graph_gen::powerlaw::PowerLawConfig {
            nodes: 150,
            high_degree_fraction: 0.05,
            ..Default::default()
        };
        let topology = graph_gen::powerlaw::generate(&cfg, seed);
        let model = graph_gen::labels::relabel(
            &topology,
            &graph_gen::labels::LabelMixConfig::default(),
            seed,
        );
        let edges = graph_gen::labels::labeled_edge_stream(&model);
        let sources: Vec<NodeId> = (0..12u64).map(NodeId).collect();
        let mut at_one = engines_at(1, &edges);
        let mut at_four = engines_at(4, &edges);
        for ((a, _), (b, _)) in at_one.iter_mut().zip(at_four.iter_mut()) {
            for text in QUERIES {
                let expr = rpq::parser::parse(text).expect("query pool parses");
                let (ra, sa, da) = a.rpq_batch_tracked(&expr, &sources);
                let (rb, sb, db) = b.rpq_batch_tracked(&expr, &sources);
                prop_assert_eq!(&ra, &rb, "{} results differ on {:?}", a.name(), text);
                prop_assert_eq!(sa, sb);
                prop_assert_eq!(da, db, "{} deps differ across threads on {:?}", a.name(), text);
            }
            let ins: Vec<(NodeId, NodeId, Label)> =
                graph_gen::stream::sample_new_edges(&model, 12, seed)
                    .into_iter()
                    .map(|(s, d)| (s, d, Label(2)))
                    .collect();
            let (ua, fa) = a.insert_labeled_edges_tracked(&ins);
            let (ub, fb) = b.insert_labeled_edges_tracked(&ins);
            prop_assert_eq!(ua, ub);
            prop_assert_eq!(fa, fb, "{} update footprints differ across threads", a.name());
        }
    }
}

/// The concurrent session layer must serve exactly what a sequential replay
/// of the same total order serves — racing client threads included.
#[test]
fn concurrent_sessions_match_sequential_replay() {
    let topology = graph_gen::uniform::generate(120, 3.0, 11);
    let model =
        graph_gen::labels::relabel(&topology, &graph_gen::labels::LabelMixConfig::default(), 11);
    let edges = graph_gen::labels::labeled_edge_stream(&model);
    let log = request_log(&model, 11, 48);

    // Sequential ground truth (the log is already in `at` order). The plan
    // optimizer is on in both runs: its counters are part of the totals
    // compared below, so planning must be deterministic under concurrency.
    let (engine, cfg) = engine_at(0, 1, &edges);
    let (sequential, seq_totals) = replay(engine, cfg, Some(CacheConfig::default()), true, &log);

    // Concurrent run: the same log split round-robin over 3 racing sessions.
    let (engine, cfg) = engine_at(0, 1, &edges);
    let server = ConcurrentServer::new(QueryServer::new(
        engine,
        ServerConfig {
            cache: Some(CacheConfig::default()),
            pricing: cfg,
            optimize: true,
            plan_override: None,
        },
    ));
    let mut sessions: Vec<Session> = (0..3).map(|_| server.session()).collect();
    std::thread::scope(|scope| {
        for (c, session) in sessions.drain(..).enumerate() {
            let schedule: Vec<Request> = log.iter().skip(c).step_by(3).cloned().collect();
            scope.spawn(move || {
                let mut session = session;
                for request in schedule {
                    session.submit(request.at, request.kind).expect("monotonic per client");
                }
                session.finish();
            });
        }
        server.run();
    });
    let mut merged: Vec<Response> = server.take_responses().into_iter().flatten().collect();
    merged.sort_by_key(|r| r.at);
    let concurrent_totals = server.with_core(|core| core.totals());

    assert_eq!(merged.len(), sequential.len());
    for (got, want) in merged.iter().zip(&sequential) {
        assert_eq!(got.at, want.at);
        assert_eq!(got.body, want.body, "concurrent serving diverged at t={}", got.at);
    }
    assert_eq!(concurrent_totals, seq_totals, "simulated cost totals diverged");
}

/// A query and its plan-rewritten respellings occupy **one** cache row: the
/// chosen strategy is part of the normalized form, so every spelling the
/// optimizer can emit ([`rpq::optimizer::rewritten_for`]) collapses to the
/// same cache key and the rewritten forms hit the row the original filled.
#[test]
fn query_and_plan_rewritten_form_share_one_cache_row() {
    let topology = graph_gen::uniform::generate(100, 3.5, 7);
    let model =
        graph_gen::labels::relabel(&topology, &graph_gen::labels::LabelMixConfig::default(), 7);
    let edges = graph_gen::labels::labeled_edge_stream(&model);
    let (engine, cfg) = engine_at(0, 1, &edges);
    let mut server = QueryServer::new(
        engine,
        ServerConfig {
            cache: Some(CacheConfig::default()),
            pricing: cfg,
            optimize: true,
            plan_override: None,
        },
    );

    let sources: Vec<NodeId> = (0..8u64).map(NodeId).collect();
    let plain = rpq::parser::parse("1/2/8").expect("query parses");
    let normalized = plain.normalize();
    let respellings = [
        rpq::optimizer::rewritten_for(&normalized, rpq::PlanStrategy::Bidirectional),
        rpq::optimizer::rewritten_for(
            &normalized,
            rpq::PlanStrategy::RareLabelSplit { split_at: 2 },
        ),
    ];
    // The respellings are genuinely different trees…
    for r in &respellings {
        assert_ne!(*r, normalized, "respelling must differ as a tree");
    }

    let miss = server.execute_next(Request {
        at: 1,
        kind: RequestKind::Query { expr: plain, sources: sources.clone() },
    });
    assert_eq!(miss.cache_outcome(), Some(CacheOutcome::Miss));
    assert_eq!(server.cache_len(), Some(1));

    // …yet every one of them hits the row the plain spelling filled.
    for (i, respelt) in respellings.into_iter().enumerate() {
        let hit = server.execute_next(Request {
            at: 2 + i as u64,
            kind: RequestKind::Query { expr: respelt, sources: sources.clone() },
        });
        assert_eq!(hit.cache_outcome(), Some(CacheOutcome::Hit), "respelling {i} missed");
        assert_eq!(hit.results(), miss.results(), "respelling {i} served different bytes");
    }
    assert_eq!(server.cache_len(), Some(1), "respellings must not add cache rows");
}
