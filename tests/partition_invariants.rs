//! Property-based tests of the partitioning invariants the paper relies on.

use graph_partition::{
    GreedyAdaptiveConfig, GreedyAdaptivePartitioner, HashPartitioner, PartitionMetrics,
    StreamingPartitioner,
};
use graph_store::{AdjacencyGraph, Label, NodeId, PartitionId};
use proptest::prelude::*;

/// Generates a random edge stream over a bounded id space.
fn edge_stream(max_node: u64, max_edges: usize) -> impl Strategy<Value = Vec<(u64, u64)>> {
    prop::collection::vec((0..max_node, 0..max_node), 1..max_edges)
}

fn build_graph(edges: &[(u64, u64)]) -> AdjacencyGraph {
    let mut g = AdjacencyGraph::new();
    for &(s, d) in edges {
        if s != d {
            g.insert_edge(NodeId(s), NodeId(d), Label::ANY);
        }
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every endpoint that ever appears in the stream ends up assigned, and
    /// high-degree sources end up on the host.
    #[test]
    fn greedy_adaptive_assigns_every_node(edges in edge_stream(200, 600)) {
        let mut p = GreedyAdaptivePartitioner::new(4);
        let mut g = AdjacencyGraph::new();
        for &(s, d) in &edges {
            if s == d { continue; }
            if g.insert_edge(NodeId(s), NodeId(d), Label::ANY) {
                p.on_edge(NodeId(s), NodeId(d));
            }
        }
        for node in g.nodes() {
            let part = p.partition_of(node);
            prop_assert!(part.is_some(), "node {node} was never assigned");
            if g.out_degree(node) > p.config().high_degree_threshold {
                prop_assert_eq!(part, Some(PartitionId::Host), "hub {} must be on the host", node);
            }
        }
        // The number of promotions matches the number of host-resident nodes.
        prop_assert_eq!(p.promotions().len(), p.assignment().host_node_count());
    }

    /// The dynamic capacity constraint keeps PIM loads within the slack bound
    /// (plus the small floor used while the graph is tiny).
    #[test]
    fn capacity_constraint_bounds_load(edges in edge_stream(400, 1500)) {
        let mut p = GreedyAdaptivePartitioner::new(8);
        for &(s, d) in &edges {
            if s != d {
                p.on_edge(NodeId(s), NodeId(d));
            }
        }
        let a = p.assignment();
        let limit = p.capacity_limit();
        for m in 0..8 {
            prop_assert!(
                a.pim_node_count(m) <= limit + 1,
                "module {} holds {} nodes, limit {}",
                m, a.pim_node_count(m), limit
            );
        }
    }

    /// Hash partitioning never places anything on the host and is stable:
    /// the same node always hashes to the same module.
    #[test]
    fn hash_partitioner_is_stable_and_host_free(edges in edge_stream(300, 800)) {
        let mut p = HashPartitioner::new(8);
        for &(s, d) in &edges {
            p.on_edge(NodeId(s), NodeId(d));
        }
        for (node, part) in p.assignment().iter() {
            prop_assert!(!part.is_host());
            prop_assert_eq!(part, HashPartitioner::hash_partition(node, 8));
        }
    }

    /// Refinement never violates the capacity constraint and never reduces the
    /// number of assigned nodes.
    #[test]
    fn refinement_preserves_assignment_and_balance(edges in edge_stream(250, 900)) {
        let mut p = GreedyAdaptivePartitioner::new(4);
        let g = build_graph(&edges);
        let mut sorted: Vec<_> = g.edges().collect();
        sorted.sort();
        for (s, d, _) in sorted {
            p.on_edge(s, d);
        }
        let assigned_before = p.assignment().len();
        let report = p.refine(&g);
        let assigned_after = p.assignment().len();

        prop_assert_eq!(assigned_before, assigned_after);
        prop_assert!(report.migrated <= report.examined);
        // Every recorded migration moves a node between two distinct PIM modules.
        for (_, from, to) in &report.migrations {
            prop_assert!(!from.is_host() && !to.is_host());
            prop_assert!(from != to);
        }
        let limit = p.capacity_limit();
        for m in 0..4 {
            prop_assert!(p.assignment().pim_node_count(m) <= limit + 1);
        }
    }

    /// Disabling labor division keeps every node on the PIM side.
    #[test]
    fn ablation_without_labor_division_uses_no_host(edges in edge_stream(150, 500)) {
        let mut cfg = GreedyAdaptiveConfig::paper_defaults(4);
        cfg.labor_division = false;
        let mut p = GreedyAdaptivePartitioner::with_config(cfg);
        for &(s, d) in &edges {
            if s != d {
                p.on_edge(NodeId(s), NodeId(d));
            }
        }
        prop_assert_eq!(p.assignment().host_node_count(), 0);
    }
}

#[test]
fn partition_metrics_are_internally_consistent() {
    let graph = graph_gen::powerlaw::generate(
        &graph_gen::powerlaw::PowerLawConfig { nodes: 1200, ..Default::default() },
        3,
    );
    let mut p = GreedyAdaptivePartitioner::new(8);
    let mut edges: Vec<_> = graph.edges().collect();
    edges.sort();
    for (s, d, _) in edges {
        p.on_edge(s, d);
    }
    p.refine(&graph);
    let m = PartitionMetrics::compute(&graph, p.assignment());
    assert_eq!(m.pim_source_edges, m.local_edges + m.cut_edges + m.to_host_edges);
    assert_eq!(
        m.pim_source_edges + m.host_source_edges,
        graph.edge_count(),
        "every edge must be classified exactly once"
    );
    assert!(m.locality >= 0.0 && m.locality <= 1.0);
    assert!(m.load_balance_factor >= 1.0 - 1e-9);
}
