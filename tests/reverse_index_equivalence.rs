//! Reverse-index equivalence: the in-adjacency mirror every store carries is
//! **exactly** the transpose of the forward adjacency, under arbitrary
//! labelled churn — and the expression-level reversal that the bidirectional
//! plan relies on really does reverse the language.
//!
//! Three layers of the same invariant:
//!
//! * **Stores** — after any interleaving of labelled inserts, deletes, and
//!   row migrations, `export_rev_rows()` on [`LocalGraphStorage`],
//!   [`HeterogeneousStorage`], and [`AdjacencyGraph`] equals an independently
//!   computed transpose of the forward rows, entry for entry; reverse-entry
//!   counts and mirrored-byte accounting follow the same ledger; and the
//!   per-label distinct-target statistics (exact since the reverse index
//!   exists) match a brute-force recount.
//! * **Expressions** — [`RpqExpr::reverse`] is an involution, commutes with
//!   normalization, and evaluating `e` forward agrees pair-for-pair with
//!   evaluating `e.reverse()` on the transposed graph (the brute-force
//!   [`ReferenceEvaluator`] on both sides).
//!
//! Together these are the soundness base of the bidirectional executor: it
//! walks reverse rows with the reversed expression, so any divergence in
//! either layer would surface as a byte-level answer drift there.

use graph_store::{AdjacencyGraph, HeterogeneousStorage, Label, LocalGraphStorage, NodeId};
use proptest::prelude::*;
use rpq::{LabelSpec, ReferenceEvaluator, RpqExpr};
use std::collections::{BTreeMap, BTreeSet};

/// Ground truth for the churn tests: the exact labelled edge set.
type EdgeSet = BTreeSet<(NodeId, NodeId, Label)>;

/// Deterministic splitmix-style generator so every churn schedule is a pure
/// function of the proptest-sampled seed.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// The transpose of a labelled edge set, in the canonical reverse-row shape:
/// rows ascending by node id, entries strictly sorted.
fn transpose(edges: &EdgeSet) -> Vec<(NodeId, Vec<(NodeId, Label)>)> {
    let mut rows: BTreeMap<NodeId, Vec<(NodeId, Label)>> = BTreeMap::new();
    for &(src, dst, label) in edges {
        rows.entry(dst).or_default().push((src, label));
    }
    rows.into_iter()
        .map(|(n, mut v)| {
            v.sort();
            (n, v)
        })
        .collect()
}

/// Brute-force per-label distinct source/target/edge counts from the edge set.
fn recount(edges: &EdgeSet) -> BTreeMap<Label, (u64, u64, u64)> {
    let mut per: BTreeMap<Label, (BTreeSet<NodeId>, BTreeSet<NodeId>, u64)> = BTreeMap::new();
    for &(src, dst, label) in edges {
        let entry = per.entry(label).or_default();
        entry.0.insert(src);
        entry.1.insert(dst);
        entry.2 += 1;
    }
    per.into_iter().map(|(l, (s, t, e))| (l, (e, s.len() as u64, t.len() as u64))).collect()
}

/// Checks a merged statistics snapshot against the brute-force recount —
/// distinct-target counts must be *exact* now that every reverse row lives in
/// exactly one store.
fn assert_stats_exact(
    snapshot: &graph_store::LabelStatsSnapshot,
    edges: &EdgeSet,
    context: &str,
) -> Result<(), TestCaseError> {
    let want = recount(edges);
    prop_assert_eq!(snapshot.total_edges, edges.len() as u64, "{}: total edges", context);
    for (&label, &(e, s, t)) in &want {
        let c = snapshot.counters(label);
        prop_assert_eq!(c.edges, e, "{}: label {:?} edge count", context, label);
        prop_assert_eq!(c.sources, s, "{}: label {:?} distinct sources", context, label);
        prop_assert_eq!(
            c.targets,
            t,
            "{}: label {:?} distinct targets (must be exact)",
            context,
            label
        );
    }
    prop_assert_eq!(
        snapshot.per_label.iter().filter(|(_, c)| c.edges + c.sources + c.targets > 0).count(),
        want.len(),
        "{}: phantom label entries survived churn",
        context
    );
    Ok(())
}

/// A random labelled edge over a small id space; labels 1..=4 so duplicate
/// hits (the error paths) actually occur.
fn sample_edge(mix: &mut Mix, nodes: u64) -> (NodeId, NodeId, Label) {
    (NodeId(mix.below(nodes)), NodeId(mix.below(nodes)), Label(1 + mix.below(4) as u16))
}

/// Picks the `i`-th edge of the model (deterministic; BTreeSet order).
fn nth_edge(edges: &EdgeSet, i: usize) -> (NodeId, NodeId, Label) {
    *edges.iter().nth(i % edges.len()).expect("nth_edge on non-empty set")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Two [`LocalGraphStorage`] segments behind a parity placement, with the
    /// engine's mirror discipline (forward row at `owner(src)`, reverse row
    /// at `owner(dst)`, both migrating together): after arbitrary insert /
    /// delete / migrate churn, the union of reverse rows is exactly the
    /// transpose of the union of forward rows, the reverse ledger matches,
    /// and the merged statistics are exact.
    #[test]
    fn local_segments_mirror_the_transposed_forward_rows(
        seed in 0u64..10_000,
        nodes in 8u64..24,
        ops in 60usize..160,
    ) {
        let mut mix = Mix(seed);
        let mut segments = [LocalGraphStorage::new(), LocalGraphStorage::new()];
        // owner[n] starts at parity and flips on migration.
        let mut owner: Vec<usize> = (0..nodes).map(|n| (n % 2) as usize).collect();
        let mut model: EdgeSet = BTreeSet::new();

        for _ in 0..ops {
            match mix.below(6) {
                // Insert (duplicates must error on *both* sides and change nothing).
                0..=2 => {
                    let (s, d, l) = sample_edge(&mut mix, nodes);
                    let fwd = segments[owner[s.0 as usize]].insert_edge(s, d, l);
                    let rev = segments[owner[d.0 as usize]].insert_rev_edge(d, s, l);
                    if model.insert((s, d, l)) {
                        prop_assert!(fwd.is_ok() && rev.is_ok(), "fresh edge rejected");
                    } else {
                        prop_assert!(fwd.is_err() && rev.is_err(), "duplicate accepted");
                    }
                }
                // Delete an existing edge (or exercise the not-found path).
                3..=4 => {
                    if model.is_empty() || mix.below(8) == 0 {
                        let (s, d, l) = sample_edge(&mut mix, nodes);
                        if !model.contains(&(s, d, l)) {
                            prop_assert!(segments[owner[s.0 as usize]].remove_edge(s, d, l).is_err());
                            prop_assert!(
                                segments[owner[d.0 as usize]].remove_rev_edge(d, s, l).is_err()
                            );
                        }
                    } else {
                        let (s, d, l) = nth_edge(&model, mix.below(1 << 16) as usize);
                        segments[owner[s.0 as usize]].remove_edge(s, d, l).expect("model edge");
                        segments[owner[d.0 as usize]]
                            .remove_rev_edge(d, s, l)
                            .expect("mirrored entry");
                        model.remove(&(s, d, l));
                    }
                }
                // Migrate a node: forward row and reverse row move together
                // (the colocation invariant the engines maintain).
                _ => {
                    let n = NodeId(mix.below(nodes));
                    let from = owner[n.0 as usize];
                    let to = 1 - from;
                    if let Some(row) = segments[from].take_row(n) {
                        segments[to].install_row(n, row);
                    }
                    if let Some(rev) = segments[from].take_rev_row(n) {
                        segments[to].install_rev_row(n, rev);
                    }
                    owner[n.0 as usize] = to;
                }
            }
        }

        // Union of forward rows across segments == the model.
        let mut forward: EdgeSet = BTreeSet::new();
        for seg in &segments {
            for (src, row) in seg.export_rows() {
                for (dst, label) in row {
                    forward.insert((src, dst, label));
                }
            }
        }
        prop_assert_eq!(&forward, &model, "forward rows drifted from the model");

        // Union of reverse rows == the transpose, and each node's reverse row
        // is colocated with its owner.
        let mut rev_union: Vec<(NodeId, Vec<(NodeId, Label)>)> = Vec::new();
        for (idx, seg) in segments.iter().enumerate() {
            for (dst, row) in seg.export_rev_rows() {
                prop_assert_eq!(
                    owner[dst.0 as usize], idx,
                    "reverse row of {:?} not colocated with its owner", dst
                );
                rev_union.push((dst, row));
            }
        }
        rev_union.sort_by_key(|&(n, _)| n);
        prop_assert_eq!(rev_union, transpose(&model), "reverse rows are not the transpose");

        // Ledger: entry counts and byte accounting stay in lockstep.
        let fwd_edges: usize = segments.iter().map(LocalGraphStorage::edge_count).sum();
        let rev_edges: usize = segments.iter().map(LocalGraphStorage::rev_edge_count).sum();
        prop_assert_eq!(rev_edges, fwd_edges, "mirror entry count diverged");
        prop_assert_eq!(
            segments.iter().map(LocalGraphStorage::rev_bytes).sum::<u64>() == 0,
            model.is_empty(),
            "reverse byte accounting out of step with content"
        );

        // Merged statistics are exact — including distinct targets.
        let mut snapshot = segments[0].label_stats().snapshot();
        snapshot.merge(&segments[1].label_stats().snapshot());
        assert_stats_exact(&snapshot, &model, "local segments")?;
    }

    /// [`HeterogeneousStorage`] (the host store behind promotions) under the
    /// same mirror discipline, including its free-list slot reuse: reverse
    /// rows equal the transpose, and the slotted forward representation still
    /// round-trips through `check_invariants`.
    #[test]
    fn heterogeneous_store_mirrors_the_transposed_forward_rows(
        seed in 0u64..10_000,
        nodes in 8u64..24,
        ops in 60usize..160,
    ) {
        let mut mix = Mix(seed);
        let mut store = HeterogeneousStorage::new();
        let mut model: EdgeSet = BTreeSet::new();

        for _ in 0..ops {
            if mix.below(2) == 0 || model.is_empty() {
                let (s, d, l) = sample_edge(&mut mix, nodes);
                let outcome = store.insert_edge(s, d, l);
                prop_assert_eq!(outcome.changed, model.insert((s, d, l)));
                if outcome.changed {
                    store.insert_rev_edge(d, s, l).expect("mirror of a fresh edge");
                }
            } else {
                let (s, d, l) = nth_edge(&model, mix.below(1 << 16) as usize);
                prop_assert!(store.delete_edge(s, d, l).changed);
                store.remove_rev_edge(d, s, l).expect("mirrored entry");
                model.remove(&(s, d, l));
            }
        }

        store.check_invariants().expect("slot maps stay consistent");
        let mut forward: EdgeSet = BTreeSet::new();
        for (src, row) in store.iter() {
            for (dst, label) in row {
                forward.insert((src, dst, label));
            }
        }
        prop_assert_eq!(&forward, &model, "live slots drifted from the model");
        prop_assert_eq!(
            store.export_rev_rows(),
            transpose(&model),
            "reverse rows are not the transpose"
        );
        prop_assert_eq!(store.rev_edge_count(), model.len());
        assert_stats_exact(&store.label_stats().snapshot(), &model, "heterogeneous store")?;
    }

    /// [`AdjacencyGraph`] maintains its own transpose on the plain
    /// insert/delete path, and `from_rows` (the snapshot-restore path)
    /// re-derives an identical reverse side *and* identical statistics.
    #[test]
    fn adjacency_graph_maintains_its_own_transpose(
        seed in 0u64..10_000,
        nodes in 8u64..32,
        ops in 60usize..200,
    ) {
        let mut mix = Mix(seed);
        let mut g = AdjacencyGraph::new();
        let mut model: EdgeSet = BTreeSet::new();

        for _ in 0..ops {
            if mix.below(3) > 0 || model.is_empty() {
                let (s, d, l) = sample_edge(&mut mix, nodes);
                prop_assert_eq!(g.insert_edge(s, d, l), model.insert((s, d, l)));
            } else {
                let (s, d, l) = nth_edge(&model, mix.below(1 << 16) as usize);
                prop_assert!(g.remove_edge(s, d, l));
                model.remove(&(s, d, l));
            }
        }

        prop_assert_eq!(g.export_rev_rows(), transpose(&model));
        assert_stats_exact(&g.label_stats().snapshot(), &model, "adjacency graph")?;
        for &(_, dst, _) in &model {
            let row = g.in_neighbors(dst);
            prop_assert!(row.windows(2).all(|w| w[0] < w[1]), "in-row not strictly sorted");
        }

        // Snapshot-restore: the reverse side is derived data and must come
        // back bit-identical from forward rows alone.
        let restored = AdjacencyGraph::from_rows(g.export_rows(), g.id_bound());
        prop_assert_eq!(restored.export_rev_rows(), g.export_rev_rows());
        prop_assert_eq!(restored.label_stats().snapshot(), g.label_stats().snapshot());
    }
}

/// Random RPQ expressions over labels 1..=4 (matching the churn alphabet),
/// with the occasional any-label atom.
struct ArbExpr;

impl Strategy for ArbExpr {
    type Value = RpqExpr;

    fn sample(&self, rng: &mut TestRng) -> RpqExpr {
        sample_expr(rng, 3)
    }
}

fn sample_expr(rng: &mut TestRng, depth: u32) -> RpqExpr {
    if depth == 0 || rng.below(3) == 0 {
        return if rng.below(7) == 0 {
            RpqExpr::Atom(LabelSpec::Any)
        } else {
            RpqExpr::Atom(LabelSpec::Exact(Label(1 + rng.below(4) as u16)))
        };
    }
    match rng.below(6) {
        0 => RpqExpr::Concat((0..2 + rng.below(2)).map(|_| sample_expr(rng, depth - 1)).collect()),
        1 => RpqExpr::Alt((0..2 + rng.below(2)).map(|_| sample_expr(rng, depth - 1)).collect()),
        2 => RpqExpr::Star(Box::new(sample_expr(rng, depth - 1))),
        3 => RpqExpr::Plus(Box::new(sample_expr(rng, depth - 1))),
        4 => RpqExpr::Optional(Box::new(sample_expr(rng, depth - 1))),
        _ => {
            let min = rng.below(3) as usize;
            let max = min + rng.below(3) as usize;
            RpqExpr::Repeat { expr: Box::new(sample_expr(rng, depth - 1)), min, max }
        }
    }
}

/// All `(source, target)` pairs the reference evaluator accepts for `expr`
/// on `g`, sweeping every node as a source.
fn accepted_pairs(g: &AdjacencyGraph, expr: &RpqExpr) -> BTreeSet<(NodeId, NodeId)> {
    let mut sources: Vec<NodeId> = g.nodes().collect();
    sources.sort();
    let eval = ReferenceEvaluator::new(g);
    let mut pairs = BTreeSet::new();
    for (i, reached) in eval.evaluate(expr, &sources).into_iter().enumerate() {
        for t in reached {
            pairs.insert((sources[i], t));
        }
    }
    pairs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// `RpqExpr::reverse` is an involution on the raw tree and commutes with
    /// normalization, and — the semantic half — `e` on `G` accepts exactly
    /// the flipped pairs of `e.reverse()` on the transposed `G`, per the
    /// brute-force reference evaluator on both sides.
    #[test]
    fn expression_reversal_reverses_the_language(
        seed in 0u64..5_000,
        expr in ArbExpr,
    ) {
        prop_assert_eq!(expr.reverse().reverse(), expr.clone(), "reverse is not an involution");
        prop_assert_eq!(
            expr.normalize().reverse().normalize(),
            expr.reverse().normalize(),
            "reverse does not commute with normalization"
        );

        // A small labelled graph and its transpose over the same node set.
        let mut mix = Mix(seed);
        let nodes = 6 + mix.below(10);
        let mut g = AdjacencyGraph::new();
        let mut gt = AdjacencyGraph::new();
        for n in 0..nodes {
            g.note_node(NodeId(n));
            gt.note_node(NodeId(n));
        }
        for _ in 0..(2 * nodes + mix.below(3 * nodes)) {
            let (s, d, l) = sample_edge(&mut mix, nodes);
            g.insert_edge(s, d, l);
            gt.insert_edge(d, s, l);
        }

        let forward = accepted_pairs(&g, &expr);
        let backward = accepted_pairs(&gt, &expr.reverse());
        let flipped: BTreeSet<(NodeId, NodeId)> =
            backward.into_iter().map(|(t, s)| (s, t)).collect();
        prop_assert_eq!(
            forward,
            flipped,
            "reversed expression on the transposed graph accepts different pairs"
        );
    }
}
