//! The full PathForge AQ1–AQ28 conformance taxonomy, instantiated over the
//! repository's Zipf label mix: `a` is the most common label (1), `b` the
//! rarest (8), `c` a mid-rank label (4), per `LabelMixConfig::default()`'s
//! Zipf ranking (PathForge's `.` concatenation is this syntax's `/`).
//!
//! Three pinned surfaces:
//!
//! * **Agreement** — every AQ answers identically on all three engines, the
//!   reference evaluator, and a serving layer with the plan optimizer on and
//!   off, at 1 and 4 threads, on uniform and power-law labelled graphs.
//! * **Plan invariance** — the optimizer's choice is visible only in the
//!   planning counters, never in a served byte, and never scores worse than
//!   the left-to-right plan.
//! * **Normal forms** — the canonical spelling and structural fingerprint of
//!   every AQ pattern is pinned; cache keying depends on both.

use graph_gen::labels::{relabel, LabelMixConfig};
use graph_store::{AdjacencyGraph, Label, NodeId};
use moctopus::{GraphEngine, HostBaseline, MoctopusConfig, MoctopusSystem, PimHashSystem};
use moctopus_bench::AQ_TAXONOMY as AQS;
use moctopus_server::{CacheConfig, QueryServer, Request, RequestKind, ServerConfig};
use rpq::{parser, ReferenceEvaluator};

/// The two graph families the taxonomy sweeps (fixed seeds: this test pins
/// behaviour, it does not explore).
fn models() -> Vec<(&'static str, AdjacencyGraph)> {
    let mix = LabelMixConfig::default();
    let uniform = relabel(&graph_gen::uniform::generate(110, 3.5, 13), &mix, 13);
    let plaw_cfg = graph_gen::powerlaw::PowerLawConfig {
        nodes: 160,
        high_degree_fraction: 0.03,
        ..Default::default()
    };
    let power_law = relabel(&graph_gen::powerlaw::generate(&plaw_cfg, 13), &mix, 13);
    vec![("uniform", uniform), ("power-law", power_law)]
}

/// The three engines at a thread count, loaded with the labelled stream.
fn engines_at(
    threads: usize,
    edges: &[(NodeId, NodeId, Label)],
) -> Vec<Box<dyn GraphEngine + Send>> {
    let cfg = MoctopusConfig::small_test().with_threads(threads);
    let mut moctopus = MoctopusSystem::new(cfg);
    moctopus.insert_labeled_edges(edges);
    moctopus.refine_locality();
    let mut pim_hash = PimHashSystem::new(cfg);
    pim_hash.insert_labeled_edges(edges);
    let mut baseline = HostBaseline::new(cfg);
    baseline.insert_labeled_edges(edges);
    vec![Box::new(moctopus), Box::new(pim_hash), Box::new(baseline)]
}

/// Source batch: a sampled spread plus an unknown node (empty-answer path;
/// nullable AQs must still answer it with itself).
fn sources(model: &AdjacencyGraph) -> Vec<NodeId> {
    let mut out = graph_gen::stream::sample_start_nodes(model, 12, 13);
    out.push(NodeId(1 << 40));
    out
}

/// All 28 AQs agree across the three engines, the reference evaluator, and
/// both thread counts, on both graph families.
#[test]
fn taxonomy_agrees_across_engines_reference_and_threads() {
    for (family, model) in models() {
        let edges = graph_gen::labels::labeled_edge_stream(&model);
        let reference = ReferenceEvaluator::new(&model);
        let sources = sources(&model);
        for threads in [1usize, 4] {
            let mut engines = engines_at(threads, &edges);
            for (aq, text) in AQS {
                let expr = parser::parse(text).expect("AQ patterns parse");
                let want: Vec<Vec<NodeId>> = reference
                    .evaluate(&expr, &sources)
                    .into_iter()
                    .map(|set| set.into_iter().collect())
                    .collect();
                for engine in engines.iter_mut() {
                    let (got, stats) = engine.rpq_batch(&expr, &sources);
                    assert_eq!(
                        got,
                        want,
                        "{aq} ({text}) on {family}: {} at {threads} threads disagrees",
                        engine.name()
                    );
                    assert_eq!(stats.batch_size, sources.len());
                    assert_eq!(stats.matched_pairs, want.iter().map(Vec::len).sum::<usize>());
                }
            }
        }
    }
}

/// Serving every AQ with the plan optimizer on is byte-identical to serving
/// it with the optimizer off — on every engine, at both thread counts — and
/// the optimizer never scores its choice above the forward plan.
#[test]
fn taxonomy_is_invariant_under_the_optimizer() {
    for (family, model) in models() {
        let edges = graph_gen::labels::labeled_edge_stream(&model);
        let sources = sources(&model);
        for threads in [1usize, 4] {
            for engine_idx in 0..3usize {
                let cfg = MoctopusConfig::small_test().with_threads(threads);
                let server_at = |optimize: bool| {
                    let engine = engines_at(threads, &edges).swap_remove(engine_idx);
                    QueryServer::new(
                        engine,
                        ServerConfig {
                            cache: Some(CacheConfig::default()),
                            pricing: cfg,
                            optimize,
                            plan_override: None,
                        },
                    )
                };
                let mut with = server_at(true);
                let mut without = server_at(false);
                let name = with.engine_name();
                for (i, (aq, text)) in AQS.iter().enumerate() {
                    let request = || Request {
                        at: (i + 1) as u64,
                        kind: RequestKind::Query {
                            expr: parser::parse(text).expect("AQ patterns parse"),
                            sources: sources.clone(),
                        },
                    };
                    let a = with.execute_next(request());
                    let b = without.execute_next(request());
                    assert_eq!(
                        a.body, b.body,
                        "{aq} ({text}) on {family}: optimizer visible in served bytes \
                         ({name}, {threads} threads)"
                    );
                    let plan = with.last_plan().expect("every miss is planned");
                    assert!(
                        plan.chosen_cost <= plan.forward_cost,
                        "{aq} ({text}): chosen plan {} scored above forward {}",
                        plan.chosen_cost,
                        plan.forward_cost
                    );
                }
                let (tw, to) = (with.totals(), without.totals());
                // Three AQ pairs share a normal form (AQ8/AQ21, AQ9/AQ17,
                // AQ15/AQ16); the second spelling is a cache hit and hits
                // are never re-planned — one plan per *distinct* miss.
                let distinct: std::collections::BTreeSet<u64> = AQS
                    .iter()
                    .map(|&(_, text)| {
                        parser::parse(text).expect("AQ patterns parse").normalize().fingerprint()
                    })
                    .collect();
                assert_eq!(tw.planned, distinct.len() as u64, "one plan per distinct AQ");
                assert_eq!(to.planned, 0);
                // Every non-forward choice also *executed* as a shadow run,
                // and none of those executions disagreed with the canonical
                // forward answers.
                assert_eq!(tw.shadow_runs, tw.plan_nonforward, "one shadow per non-forward plan");
                assert_eq!(tw.shadow_mismatches, 0, "{family}/{name}: shadow answers drifted");
                // Everything except the planning/shadow counters is identical.
                let mut masked = tw;
                masked.planned = 0;
                masked.plan_nonforward = 0;
                masked.plan_forward_cost = 0;
                masked.plan_chosen_cost = 0;
                masked.shadow_runs = 0;
                masked.shadow_forward_time = pim_sim::SimTime::ZERO;
                masked.shadow_chosen_time = pim_sim::SimTime::ZERO;
                assert_eq!(masked, to, "{family}/{name}: non-plan totals diverged");
            }
        }
    }
}

/// The execution half of the optimizer contract, swept over the taxonomy:
/// running the chosen plan (`GraphEngine::rpq_batch_planned`) answers every
/// AQ byte-identically to the canonical forward execution on all three
/// engines, and on every AQ where a non-forward plan was chosen, the
/// *executed* simulated cost does not exceed the forward execution's — the
/// priced win is a measured win.
#[test]
fn taxonomy_chosen_plans_execute_identically_and_never_cost_more() {
    let mut nonforward_seen = 0usize;
    for (family, model) in models() {
        let edges = graph_gen::labels::labeled_edge_stream(&model);
        let sources = sources(&model);
        let mut engines = engines_at(1, &edges);
        for engine in engines.iter_mut() {
            let stats = engine.label_stats();
            let name = engine.name();
            for (aq, text) in AQS {
                let expr = parser::parse(text).expect("AQ patterns parse").normalize();
                let choice = rpq::optimizer::choose_plan(&expr, &stats, sources.len());
                let (want, forward) = engine.rpq_batch(&expr, &sources);
                let (got, executed) = engine.rpq_batch_planned(&expr, &sources, choice.strategy);
                assert_eq!(
                    got,
                    want,
                    "{aq} ({text}) on {family}: executed {} plan drifted on {name}",
                    choice.strategy.describe()
                );
                if choice.strategy != rpq::PlanStrategy::Forward {
                    nonforward_seen += 1;
                    assert!(
                        executed.latency() <= forward.latency(),
                        "{aq} ({text}) on {family}/{name}: executed {} cost {:?} \
                         exceeds forward's {:?}",
                        choice.strategy.describe(),
                        executed.latency(),
                        forward.latency()
                    );
                }
            }
        }
    }
    assert!(nonforward_seen > 0, "the taxonomy never exercised a non-forward execution");
}

/// Pinned canonical spelling and structural fingerprint of every AQ pattern.
/// The serving cache keys on the normalized tree; drift here silently splits
/// or merges cache rows, so it must be loud. On mismatch the assertion
/// message prints the full replacement table.
#[test]
fn taxonomy_normal_forms_and_fingerprints_are_pinned() {
    // Note the cross-AQ collapses the normalizer produces: AQ8 ≡ AQ21
    // (alternation sorting), AQ9 ≡ AQ17 (associativity + sorting), and
    // AQ15 ≡ AQ16 (`1??` → `1?`). Those pairs share one cache row.
    let pins: [(&str, &str, u64); 28] = [
        ("AQ1", "1/8", 0x37924921c001a64d),
        ("AQ2", "1/8/4", 0xedba1bbee0489f2a),
        ("AQ3", "(1/8)?", 0x93e00e856b20a78a),
        ("AQ4", "1/(4|8)", 0xc2a23457fac15c0d),
        ("AQ5", "4/(1)?", 0x2e23ba88850027a6),
        ("AQ6", "(4)?/1", 0x83a8af322fdec326),
        ("AQ7", "(1|8)", 0x1e6850512c2e3f4a),
        ("AQ8", "(4|1/8)", 0x946342ab8564338d),
        ("AQ9", "(1|4|8)", 0xa59dc6b8d5df532d),
        ("AQ10", "(8|(1)+)", 0xcb17ecacf0e53dec),
        ("AQ11", "(8|(1)*)", 0xd10ed62c1ada740f),
        ("AQ12", "(1|4)", 0xa27d342d007116c6),
        ("AQ13", "(8|(1)?)", 0xe265d1834959e7cd),
        ("AQ14", "(4|(1)?)", 0x97c5bc0ad23192c1),
        ("AQ15", "(1)?", 0x8ed9df9cacc37d81),
        ("AQ16", "(1)?", 0x8ed9df9cacc37d81),
        ("AQ17", "(1|4|8)", 0xa59dc6b8d5df532d),
        ("AQ18", "((1|8))+", 0x7a42fa920c4d94ac),
        ("AQ19", "((1|8))?", 0xad0a0755fef40e8d),
        ("AQ20", "((1|8))*", 0x18ff2a9e7a5f224f),
        ("AQ21", "(4|1/8)", 0x946342ab8564338d),
        ("AQ22", "(1)+/8", 0x87e6aa05e738048b),
        ("AQ23", "(1)*/8", 0x7565c33e39163628),
        ("AQ24", "1/(8)+", 0x03cb45416d7fc7eb),
        ("AQ25", "1/(8)*", 0xee7a975cde955148),
        ("AQ26", "(1|(1)+)", 0xd8ef30a34c1b8da5),
        ("AQ27", "(1)+", 0x778bfac6544ed3a0),
        ("AQ28", "(1)*", 0x7d82e4457e4409c3),
    ];
    let got: Vec<(String, String, u64)> = AQS
        .iter()
        .map(|&(aq, text)| {
            let norm = parser::parse(text).expect("AQ patterns parse").normalize();
            (aq.to_string(), format!("{norm}"), norm.fingerprint())
        })
        .collect();
    let want: Vec<(String, String, u64)> =
        pins.iter().map(|&(aq, nf, fp)| (aq.to_string(), nf.to_string(), fp)).collect();
    if got != want {
        let replacement: String = got
            .iter()
            .map(|(aq, nf, fp)| format!("        ({aq:?}, {nf:?}, {fp:#018x}),\n"))
            .collect();
        panic!("AQ normal forms / fingerprints drifted; pinned table should be:\n{replacement}");
    }
}
