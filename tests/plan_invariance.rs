//! Plan invariance, property-tested: for *random* expressions served over
//! *random* labelled graphs with interleaved labelled updates, the cost-based
//! optimizer must be observably absent — responses, `ServeTotals` (minus the
//! planning counters themselves), and `CacheStats` are bit-identical between
//! a forced-forward server and an optimizer-enabled one, in every cache
//! consistency mode. On top of that, two one-sided guarantees hold on every
//! sampled query:
//!
//! * the chosen plan's simulated cost never exceeds the forward plan's
//!   (left-to-right execution is always a candidate and wins ties), and
//! * every strategy's rewritten spelling normalizes back to the exact tree it
//!   was derived from, so a plan rewrite can never split a cache row.

use graph_store::{Label, NodeId};
use moctopus::{GraphEngine, MoctopusConfig, MoctopusSystem};
use moctopus_server::{
    CacheConfig, ConsistencyMode, QueryServer, Request, RequestKind, Response, ServeTotals,
    ServerConfig, ShardPlan, ShardedEngine,
};
use proptest::prelude::*;
use rpq::{choose_plan, rewritten_for, LabelSpec, PlanStrategy, RpqExpr};

/// Random RPQ expressions over the generator's label alphabet (1..=8), with
/// the occasional any-label atom. Depth and width are kept small — plan
/// divergence comes from label skew, not from expression size.
struct ArbExpr;

impl Strategy for ArbExpr {
    type Value = RpqExpr;

    fn sample(&self, rng: &mut TestRng) -> RpqExpr {
        sample_expr(rng, 3)
    }
}

fn sample_expr(rng: &mut TestRng, depth: u32) -> RpqExpr {
    if depth == 0 || rng.below(3) == 0 {
        return if rng.below(7) == 0 {
            RpqExpr::Atom(LabelSpec::Any)
        } else {
            RpqExpr::Atom(LabelSpec::Exact(Label(1 + rng.below(8) as u16)))
        };
    }
    match rng.below(6) {
        0 => RpqExpr::Concat((0..2 + rng.below(2)).map(|_| sample_expr(rng, depth - 1)).collect()),
        1 => RpqExpr::Alt((0..2 + rng.below(2)).map(|_| sample_expr(rng, depth - 1)).collect()),
        2 => RpqExpr::Star(Box::new(sample_expr(rng, depth - 1))),
        3 => RpqExpr::Plus(Box::new(sample_expr(rng, depth - 1))),
        4 => RpqExpr::Optional(Box::new(sample_expr(rng, depth - 1))),
        _ => {
            let min = rng.below(3) as usize;
            let max = min + rng.below(3) as usize;
            RpqExpr::Repeat { expr: Box::new(sample_expr(rng, depth - 1)), min, max }
        }
    }
}

/// A labelled uniform graph under the default Zipf mix.
fn model(nodes: usize, seed: u64) -> graph_store::AdjacencyGraph {
    let topology = graph_gen::uniform::generate(nodes, 3.5, seed);
    graph_gen::labels::relabel(&topology, &graph_gen::labels::LabelMixConfig::default(), seed)
}

/// A request log interleaving queries from the sampled expression pool with
/// labelled inserts and deletes (every 4th request mutates), so plans are
/// chosen against statistics that drift mid-replay.
fn request_log(
    model: &graph_store::AdjacencyGraph,
    pool: &[RpqExpr],
    seed: u64,
    len: usize,
) -> Vec<Request> {
    let inserts = graph_gen::stream::sample_new_edges(model, len * 2, seed ^ 0x5151);
    let mut deletes = graph_gen::labels::labeled_edge_stream(model);
    deletes.truncate(len * 2);
    let sources: Vec<NodeId> = graph_gen::stream::sample_start_nodes(model, 16, seed ^ 0x9292);

    (0..len)
        .map(|i| {
            let at = (i + 1) as u64;
            let kind = match i % 8 {
                3 => RequestKind::Insert {
                    edges: inserts
                        .iter()
                        .skip(i)
                        .take(3)
                        .enumerate()
                        .map(|(j, &(s, d))| (s, d, Label((j % 8) as u16 + 1)))
                        .collect(),
                },
                7 => RequestKind::Delete {
                    edges: deletes.iter().skip(i / 2).take(3).copied().collect(),
                },
                q => RequestKind::Query {
                    expr: pool[(q + i / 8) % pool.len()].clone(),
                    sources: sources.iter().skip(i % 6).take(8).copied().collect(),
                },
            };
            Request { at, kind }
        })
        .collect()
}

/// Replays `log` on a fresh engine; when `optimize` is set, additionally
/// checks the one-sided cost bound after every executed query.
fn replay(
    edges: &[(NodeId, NodeId, Label)],
    cache: Option<CacheConfig>,
    optimize: bool,
    log: &[Request],
) -> Result<(Vec<Response>, ServeTotals, Option<moctopus_server::CacheStats>), TestCaseError> {
    let cfg = MoctopusConfig::small_test();
    let mut engine = MoctopusSystem::new(cfg);
    engine.insert_labeled_edges(edges);
    engine.refine_locality();
    let mut server = QueryServer::new(
        Box::new(engine),
        ServerConfig { cache, pricing: cfg, optimize, plan_override: None },
    );
    let mut responses = Vec::with_capacity(log.len());
    for request in log {
        let is_query = matches!(request.kind, RequestKind::Query { .. });
        responses.push(server.execute_next(request.clone()));
        if optimize && is_query {
            if let Some(plan) = server.last_plan() {
                prop_assert!(
                    plan.chosen_cost <= plan.forward_cost,
                    "chosen plan {:?} scored {} above forward {}",
                    plan.strategy,
                    plan.chosen_cost,
                    plan.forward_cost
                );
            }
        }
    }
    let stats = server.cache_stats();
    Ok((responses, server.totals(), stats))
}

/// Strips the planning and shadow-execution counters (the only observables
/// the optimizer may own; the shadow runs' mismatch counter is asserted to
/// be zero separately before masking).
fn mask_plan_counters(mut totals: ServeTotals) -> ServeTotals {
    totals.planned = 0;
    totals.plan_nonforward = 0;
    totals.plan_forward_cost = 0;
    totals.plan_chosen_cost = 0;
    totals.shadow_runs = 0;
    totals.shadow_mismatches = 0;
    totals.shadow_forward_time = pim_sim::SimTime::ZERO;
    totals.shadow_chosen_time = pim_sim::SimTime::ZERO;
    totals
}

/// Replays `log` through a sharded serving plane with a forced shadow
/// strategy ([`ServerConfig::plan_override`]) at a (threads, shards) cell.
fn forced_replay(
    edges: &[(NodeId, NodeId, Label)],
    log: &[Request],
    threads: usize,
    shards: usize,
    plan_override: Option<PlanStrategy>,
) -> (Vec<Response>, ServeTotals) {
    let cfg = MoctopusConfig::small_test().with_threads(threads);
    let replicas: Vec<Box<dyn GraphEngine + Send>> = (0..shards)
        .map(|_| {
            let mut e = MoctopusSystem::new(cfg);
            e.insert_labeled_edges(edges);
            e.refine_locality();
            Box::new(e) as Box<dyn GraphEngine + Send>
        })
        .collect();
    let engine =
        ShardedEngine::new(replicas, ShardPlan::hashed(ShardPlan::DEFAULT_GROUPS), threads);
    let mut server = QueryServer::new(
        Box::new(engine),
        ServerConfig {
            cache: Some(CacheConfig::default()),
            pricing: cfg,
            optimize: false,
            plan_override,
        },
    );
    let responses = log.iter().map(|request| server.execute_next(request.clone())).collect();
    (responses, server.totals())
}

/// The **executed**-plan leg: a forced-forward, a forced-bidirectional, and a
/// forced-rare-split replay of one request log — the non-forward strategies
/// really executing over the reverse adjacency indexes as shadow runs — are
/// bit-identical in every served byte at threads {1, 4} × shards {1, 2}, and
/// no shadow execution ever disagreed with the canonical forward answers.
#[test]
fn forced_plan_execution_is_byte_invariant_across_threads_and_shards() {
    let model = model(90, 42);
    let edges = graph_gen::labels::labeled_edge_stream(&model);
    // A fixed pool biased toward the shapes the strategies were built for:
    // closures over the rare tail labels (bidirectional's home turf) and
    // concatenations with an exact pivot (rare-split's), plus generic forms.
    let pool: Vec<RpqExpr> = ["(1)+/8", "(1)*/8", "1/8/4", "(1|2)*", "1/(2|3)*/1", "2/8"]
        .iter()
        .map(|text| rpq::parser::parse(text).expect("pool patterns parse"))
        .collect();
    let log = request_log(&model, &pool, 42, 40);

    let strategies = [
        Some(PlanStrategy::Forward),
        Some(PlanStrategy::Bidirectional),
        Some(PlanStrategy::RareLabelSplit { split_at: 1 }),
    ];
    let (want, _) = forced_replay(&edges, &log, 1, 1, strategies[0]);
    for threads in [1usize, 4] {
        for shards in [1usize, 2] {
            for strategy in strategies {
                let (got, totals) = forced_replay(&edges, &log, threads, shards, strategy);
                assert_eq!(got.len(), want.len());
                for (g, w) in got.iter().zip(&want) {
                    assert_eq!(
                        g.body, w.body,
                        "forced {strategy:?} visible in served bytes at t={} \
                         (threads {threads}, shards {shards})",
                        w.at
                    );
                }
                assert_eq!(
                    totals.shadow_mismatches, 0,
                    "forced {strategy:?} shadow disagreed with forward answers \
                     (threads {threads}, shards {shards})"
                );
                if strategy == Some(PlanStrategy::Forward) {
                    assert_eq!(totals.shadow_runs, 0, "a forward override must not shadow");
                } else {
                    assert!(totals.shadow_runs > 0, "forced {strategy:?} never executed");
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Forced-forward vs optimizer-chosen replays of the same log are
    /// bit-identical in every served byte, every non-plan counter, and the
    /// full cache statistics (hits, misses, invalidations, dependency-footprint
    /// driven eviction behaviour) — in all three consistency modes and with
    /// the cache disabled.
    #[test]
    fn optimizer_is_invisible_and_never_regresses(
        seed in 0u64..200,
        nodes in 50usize..120,
        pool in prop::collection::vec(ArbExpr, 3..6),
    ) {
        let model = model(nodes, seed);
        let edges = graph_gen::labels::labeled_edge_stream(&model);
        let log = request_log(&model, &pool, seed, 32);
        let configs: Vec<Option<CacheConfig>> = std::iter::once(None)
            .chain(
                [ConsistencyMode::CostExact, ConsistencyMode::ResultExact, ConsistencyMode::RowExact]
                    .into_iter()
                    .map(|mode| Some(CacheConfig { mode, capacity: 32 })),
            )
            .collect();
        for cache in configs {
            let (want, want_totals, want_cache) = replay(&edges, cache, false, &log)?;
            let (got, got_totals, got_cache) = replay(&edges, cache, true, &log)?;
            for (g, w) in got.iter().zip(&want) {
                prop_assert_eq!(
                    &g.body,
                    &w.body,
                    "optimizer visible in served bytes at t={} ({:?})",
                    w.at,
                    cache.map(|c| c.mode)
                );
            }
            prop_assert!(got_totals.planned > 0, "optimizer-enabled replay never planned");
            prop_assert_eq!(want_totals.planned, 0, "forced-forward replay must not plan");
            prop_assert_eq!(
                got_totals.shadow_mismatches, 0,
                "a shadow execution disagreed with the canonical forward answers"
            );
            prop_assert_eq!(
                mask_plan_counters(got_totals),
                mask_plan_counters(want_totals),
                "non-plan totals diverged ({:?})",
                cache.map(|c| c.mode)
            );
            prop_assert_eq!(got_cache, want_cache, "cache stats diverged ({:?})", cache.map(|c| c.mode));
        }
    }

    /// Every strategy's raw-constructor respelling of a random normalized
    /// expression collapses back to that exact tree, and plan choice is a
    /// deterministic pure function of (expression, statistics, batch size)
    /// that never scores its pick above the forward plan.
    #[test]
    fn rewrites_collapse_and_plans_never_regress(
        seed in 0u64..200,
        batch in 1usize..64,
        expr in ArbExpr,
    ) {
        let model = model(80, seed);
        let edges = graph_gen::labels::labeled_edge_stream(&model);
        let cfg = MoctopusConfig::small_test();
        let mut engine = MoctopusSystem::new(cfg);
        engine.insert_labeled_edges(&edges);
        let stats = engine.label_stats();

        let normalized = expr.normalize();
        let choice = choose_plan(&normalized, &stats, batch);
        prop_assert!(choice.chosen_cost <= choice.forward_cost);
        prop_assert_eq!(choose_plan(&normalized, &stats, batch), choice, "plan choice not deterministic");

        let mut strategies = vec![PlanStrategy::Forward, PlanStrategy::Bidirectional];
        if let RpqExpr::Concat(parts) = &normalized {
            strategies.extend((1..parts.len()).map(|split_at| PlanStrategy::RareLabelSplit { split_at }));
        }
        // Degenerate split positions must also collapse, not crash.
        strategies.push(PlanStrategy::RareLabelSplit { split_at: 0 });
        strategies.push(PlanStrategy::RareLabelSplit { split_at: 99 });
        for strategy in strategies {
            let respelled = rewritten_for(&normalized, strategy);
            prop_assert_eq!(
                respelled.normalize(),
                normalized.clone(),
                "strategy {:?} changed the normal form",
                strategy
            );
        }
    }
}
