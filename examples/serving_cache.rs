//! Concurrent serving with the update-consistent result cache.
//!
//! A small "social" deployment: three client threads share one Moctopus
//! engine through `moctopus-server` — a dashboard replaying the same popular
//! friend-of-friend queries, an analyst running closure queries, and an
//! ingest worker streaming labelled edge updates. The example shows
//!
//! * repeated queries served from the cache at a fraction of the engine's
//!   simulated cost, with bit-identical answers;
//! * updates invalidating exactly the entries whose answers (or costs) they
//!   can touch — and the next query re-executing against the fresh graph;
//! * the deterministic total order: logical timestamps decide who sees what,
//!   not thread scheduling.
//!
//! Run with: `cargo run --release --example serving_cache`

use graph_store::{Label, NodeId};
use moctopus::{GraphEngine, MoctopusConfig, MoctopusSystem};
use moctopus_server::{
    CacheOutcome, ConcurrentServer, QueryServer, RequestKind, ServerConfig, Session,
};
use std::error::Error;

/// The labelled social graph: label 1 = "knows", label 2 = "follows".
fn social_edges(people: u64, seed: u64) -> Vec<(NodeId, NodeId, Label)> {
    let graph = graph_gen::uniform::generate(people as usize, 4.0, seed);
    let model = graph_gen::labels::relabel(
        &graph,
        &graph_gen::labels::LabelMixConfig { num_labels: 2, ..Default::default() },
        seed,
    );
    graph_gen::labels::labeled_edge_stream(&model)
}

fn query(text: &str, sources: &[u64]) -> RequestKind {
    RequestKind::Query {
        expr: rpq::parser::parse(text).expect("query parses"),
        sources: sources.iter().copied().map(NodeId).collect(),
    }
}

fn main() -> Result<(), Box<dyn Error>> {
    let edges = social_edges(600, 42);
    let mut engine = MoctopusSystem::new(MoctopusConfig::paper_defaults());
    engine.insert_labeled_edges(&edges);
    engine.refine_locality();
    println!("social graph: 600 people, {} labelled edges, engine: Moctopus", edges.len());

    let config = ServerConfig { pricing: *engine.config(), ..ServerConfig::default() };
    let server = ConcurrentServer::new(QueryServer::new(Box::new(engine), config));

    // Sessions registered in a fixed order: ids tie-break equal timestamps.
    let dashboard: Session = server.session();
    let analyst: Session = server.session();
    let ingest: Session = server.session();

    std::thread::scope(|scope| {
        // The dashboard hammers the same friend-of-friend panel every tick.
        scope.spawn(|| {
            let mut s = dashboard;
            for tick in 0..6u64 {
                s.submit(1 + tick * 10, query("1/1", &[1, 2, 3, 4])).unwrap();
            }
            s.finish();
        });
        // The analyst asks heavier closure questions, twice each.
        scope.spawn(|| {
            let mut s = analyst;
            s.submit(5, query("1/(2|1)*", &[7])).unwrap();
            s.submit(15, query("1/(2|1)*", &[7])).unwrap();
            s.submit(25, query("2+", &[9, 11])).unwrap();
            s.submit(35, query("2+", &[9, 11])).unwrap();
            s.finish();
        });
        // The ingest worker lands a "knows" update mid-trace: logically at
        // t=22, between dashboard ticks 3 and 4 — wherever the OS schedules
        // the actual thread. Two fresh nodes guarantee the panel's answer
        // actually changes: person 1 now knows 998, who knows 999.
        scope.spawn(|| {
            let mut s = ingest;
            s.submit(
                22,
                RequestKind::Insert {
                    edges: vec![
                        (NodeId(1), NodeId(998), Label(1)),
                        (NodeId(998), NodeId(999), Label(1)),
                    ],
                },
            )
            .unwrap();
            s.finish();
        });
        server.run();
    });

    let responses = server.take_responses();
    println!("\ndashboard panel (same query, six ticks):");
    println!("{:>4}  {:>8}  {:>12}  {:>8}", "t", "outcome", "sim latency", "matched");
    for response in &responses[0] {
        if let moctopus_server::ResponseBody::Query { results, stats, cache } = &response.body {
            println!(
                "{:>4}  {:>8}  {:>10.3}us  {:>8}",
                response.at,
                match cache {
                    CacheOutcome::Hit => "hit",
                    CacheOutcome::Miss => "miss",
                    CacheOutcome::Bypass => "bypass",
                    CacheOutcome::Collapsed => "clps",
                },
                stats.latency().as_micros(),
                results.iter().map(Vec::len).sum::<usize>()
            );
        }
    }

    // The cache proves itself: tick 1 misses, ticks 2-3 hit, the t=22 insert
    // (an edge out of node 1, which the panel visits) invalidates, tick 4
    // misses and recomputes, ticks 5-6 hit again.
    let outcomes: Vec<CacheOutcome> =
        responses[0].iter().filter_map(|r| r.cache_outcome()).collect();
    assert_eq!(
        outcomes,
        [
            CacheOutcome::Miss,
            CacheOutcome::Hit,
            CacheOutcome::Hit,
            CacheOutcome::Miss,
            CacheOutcome::Hit,
            CacheOutcome::Hit
        ],
        "the t=22 insert must invalidate the panel exactly once"
    );
    let before = responses[0][2].results().expect("query response");
    let after = responses[0][3].results().expect("query response");
    assert!(
        !before[0].contains(&NodeId(999)) && after[0].contains(&NodeId(999)),
        "the re-executed panel must see the new 2-hop path 1 -> 998 -> 999"
    );

    // The analyst's repeats hit regardless of the dashboard's traffic.
    let analyst_outcomes: Vec<CacheOutcome> =
        responses[1].iter().filter_map(|r| r.cache_outcome()).collect();
    println!("\nanalyst outcomes: {analyst_outcomes:?}");
    assert_eq!(analyst_outcomes[1], CacheOutcome::Hit, "repeat closure query must hit");

    server.with_core(|core| {
        let totals = core.totals();
        let cache = core.cache_stats().expect("cache enabled");
        println!(
            "\ntotals: {} queries, {} updates | engine {:.3}ms, hit overhead {:.3}ms, \
             avoided {:.3}ms -> saved {:.3}ms",
            totals.queries,
            totals.updates,
            totals.engine_time.as_millis(),
            totals.hit_time.as_millis(),
            totals.avoided_time.as_millis(),
            totals.saved_nanos() / 1e6
        );
        println!(
            "cache: {} hits / {} misses ({:.0}% hit rate), {} invalidated",
            cache.hits,
            cache.misses,
            cache.hit_rate() * 100.0,
            cache.invalidated
        );
        assert!(totals.saved_nanos() > 0.0, "hits must cost less than re-execution");
    });
    println!("\nconsistency check passed: hits bit-identical, invalidation precise");
    Ok(())
}
