//! Dynamic graph management: streaming insertions and deletions.
//!
//! Graph databases face a constant stream of updates. This example replays a
//! synthetic web graph as an edge stream, applies insertion and deletion
//! batches of the paper's size to Moctopus and to the RedisGraph-like
//! baseline, and shows (a) the update-latency gap of Figure 6 and (b) how the
//! heterogeneous graph storage amortises the host's update cost to the PIM
//! side as high-degree nodes accumulate.
//!
//! Run with: `cargo run --release --example dynamic_updates`

use moctopus::{GraphEngine, HostBaseline, MoctopusConfig, MoctopusSystem};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let spec = graph_gen::traces::TraceSpec::by_trace_id(10).expect("trace #10 is web-Google");
    let graph = spec.generate(1.0 / 32.0, 77);
    let stats = graph_gen::GraphStats::compute(&graph);
    println!(
        "synthetic stand-in for {} (1/32 scale): {} nodes, {} edges, {:.2}% high-degree",
        spec.name, stats.nodes, stats.edges, stats.high_degree_pct
    );

    // Replay the base graph as an insertion stream.
    let stream = graph_gen::stream::shuffled_edge_stream(&graph, 5);
    let config = MoctopusConfig::paper_defaults();
    let mut moctopus = MoctopusSystem::new(config);
    let mut baseline = HostBaseline::new(config);

    let chunk = 16 * 1024;
    println!("\nreplaying the base graph in {}-edge chunks:", chunk);
    println!("{:>8}  {:>14}  {:>14}  {:>10}", "edges", "Moctopus", "RedisGraph", "host rows");
    for (i, batch) in stream.chunks(chunk).enumerate() {
        let moc = moctopus.insert_edges(batch);
        let host = baseline.insert_edges(batch);
        println!(
            "{:>8}  {:>12.3}ms  {:>12.3}ms  {:>10}",
            (i + 1) * batch.len().min(chunk),
            moc.latency().as_millis(),
            host.latency().as_millis(),
            moctopus.host_row_count()
        );
    }
    moctopus.refine_locality();

    // The paper's Figure 6 workload: insert 64K new edges, delete 64K existing ones.
    let batch = 64 * 1024;
    let inserts = graph_gen::stream::sample_new_edges(&graph, batch, 11);
    let deletes = graph_gen::stream::sample_existing_edges(&graph, batch, 13);

    println!("\nfigure-6 style update batches ({} edges each):", batch);
    let moc_ins = moctopus.insert_edges(&inserts);
    let host_ins = baseline.insert_edges(&inserts);
    let moc_del = moctopus.delete_edges(&deletes);
    let host_del = baseline.delete_edges(&deletes);
    println!(
        "  insert: Moctopus {:>10.3} ms   RedisGraph-like {:>10.3} ms   ({:.1}x)",
        moc_ins.latency().as_millis(),
        host_ins.latency().as_millis(),
        host_ins.latency().as_nanos() / moc_ins.latency().as_nanos().max(1.0)
    );
    println!(
        "  delete: Moctopus {:>10.3} ms   RedisGraph-like {:>10.3} ms   ({:.1}x)",
        moc_del.latency().as_millis(),
        host_del.latency().as_millis(),
        host_del.latency().as_nanos() / moc_del.latency().as_nanos().max(1.0)
    );

    // Consistency check: both engines agree on a sample query afterwards.
    let sources = graph_gen::stream::sample_start_nodes(&graph, 64, 3);
    let (a, _) = moctopus.k_hop_batch(&sources, 2);
    let (b, _) = baseline.k_hop_batch(&sources, 2);
    assert_eq!(a, b, "engines must stay consistent after updates");
    println!("\nconsistency check passed: both engines agree on a 64-query 2-hop batch");
    Ok(())
}
