//! Friend-of-friend recommendation on a skewed social graph.
//!
//! Social graphs are the hard case for PIM systems: a few celebrity accounts
//! have enormous followings, which overload individual PIM modules under hash
//! partitioning. The example builds a power-law follower graph, shows how
//! Moctopus's labor division moves the celebrity rows to the host, runs a
//! batch friend-of-friend (2-hop) recommendation query on all three engines,
//! and also demonstrates the general RPQ pipeline (parse → automaton →
//! reference evaluation) for a label-constrained query.
//!
//! Run with: `cargo run --release --example social_recommendation`

use graph_store::NodeId;
use moctopus::{GraphEngine, HostBaseline, MoctopusConfig, MoctopusSystem, PimHashSystem};
use rpq::{parser, ReferenceEvaluator};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let spec = graph_gen::powerlaw::PowerLawConfig {
        nodes: 20_000,
        high_degree_fraction: 0.02,
        mean_low_degree: 4.0,
        mean_high_degree: 96.0,
        locality: 0.85,
        community_size: 256,
        hub_in_bias: 0.25,
    };
    let graph = graph_gen::powerlaw::generate(&spec, 2024);
    let stats = graph_gen::GraphStats::compute(&graph);
    println!(
        "follower graph: {} users, {} follows, {:.2}% celebrities (out-degree > 16)",
        stats.nodes, stats.edges, stats.high_degree_pct
    );

    let edges: Vec<(NodeId, NodeId)> = graph.edges().map(|(s, d, _)| (s, d)).collect();
    let config = MoctopusConfig::paper_defaults();
    let mut moctopus = MoctopusSystem::from_edge_stream(config, &edges);
    let mut pim_hash = PimHashSystem::from_edge_stream(config, &edges);
    let mut baseline = HostBaseline::from_edge_stream(config, &edges);

    println!(
        "labor division: {} celebrity rows promoted to the host ({:.2}% of users)",
        moctopus.host_row_count(),
        100.0 * moctopus.partition_metrics().host_node_fraction
    );

    // Batch friend-of-friend query from 2048 random users.
    let sources = graph_gen::stream::sample_start_nodes(&graph, 2048, 99);
    println!("\nfriend-of-friend (2-hop) recommendation, batch = {}:", sources.len());
    let (_, moc) = moctopus.k_hop_batch(&sources, 2);
    let (_, hash) = pim_hash.k_hop_batch(&sources, 2);
    let (_, host) = baseline.k_hop_batch(&sources, 2);
    for (name, stats) in [("Moctopus", &moc), ("PIM-hash", &hash), ("RedisGraph-like", &host)] {
        println!(
            "  {name:<16} {:>10.3} ms   (ipc {:>8.3} ms, matched pairs {})",
            stats.latency().as_millis(),
            stats.ipc_latency().as_millis(),
            stats.matched_pairs
        );
    }
    println!(
        "  -> Moctopus is {:.2}x faster than the RedisGraph-like baseline and {:.2}x faster than PIM-hash",
        host.latency().as_nanos() / moc.latency().as_nanos().max(1.0),
        hash.latency().as_nanos() / moc.latency().as_nanos().max(1.0),
    );

    // A label-constrained RPQ evaluated with the reference pipeline: the text
    // query is parsed, compiled to an automaton, and evaluated directly.
    let expr = parser::parse(".{2}")?;
    let reference = ReferenceEvaluator::new(&graph);
    let sample: Vec<NodeId> = sources.iter().take(4).copied().collect();
    let reference_results = reference.evaluate(&expr, &sample);
    println!("\nreference RPQ check on {} sampled users:", sample.len());
    for (src, matched) in sample.iter().zip(&reference_results) {
        println!("  user {} -> {} recommendations", src.0, matched.len());
    }
    Ok(())
}
