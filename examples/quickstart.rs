//! Quickstart: the Figure 2 scenario from the paper.
//!
//! Builds the routing-connection property graph of Figure 2 (hosts identified
//! by IP address, directed "connects-to" relationships), runs the batch 2-hop
//! path query
//!
//! ```text
//! UNWIND ['127.0.0.2','127.0.0.3'] AS ipAddr MATCH ({ip:ipAddr})-[2]->(t)
//! ```
//!
//! on Moctopus, and prints the matched destinations together with the
//! simulated cost breakdown.
//!
//! Run with: `cargo run --example quickstart`

use graph_store::{Label, NodeId, PropertyGraph, PropertyValue};
use moctopus::{GraphEngine, MoctopusConfig, MoctopusSystem};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    // 1. Ingest the property graph exactly as a graph database client would.
    let mut property_graph = PropertyGraph::new();
    let hosts: Vec<NodeId> = (0..10)
        .map(|i| {
            property_graph.add_node("Host", [("ip", PropertyValue::from(format!("127.0.0.{i}")))])
        })
        .collect();
    let connections = [
        (0, 1),
        (1, 2),
        (1, 4),
        (2, 3),
        (2, 5),
        (3, 6),
        (3, 9),
        (4, 5),
        (5, 6),
        (5, 8),
        (6, 9),
        (8, 9),
    ];
    for (src, dst) in connections {
        property_graph.add_edge(hosts[src], hosts[dst], Label::ANY)?;
    }
    println!(
        "ingested routing graph: {} hosts, {} connections",
        property_graph.node_count(),
        property_graph.edge_count()
    );

    // 2. Load the simplified adjacency view into Moctopus (8 PIM modules).
    let adjacency = property_graph.to_adjacency();
    let edges: Vec<(NodeId, NodeId)> = adjacency.edges().map(|(s, d, _)| (s, d)).collect();
    let mut moctopus = MoctopusSystem::from_edge_stream(MoctopusConfig::small_test(), &edges);

    // 3. Resolve the query's start nodes by property lookup, then run the
    //    batch 2-hop path query.
    let start_ips = ["127.0.0.2", "127.0.0.3"];
    let sources: Vec<NodeId> = start_ips
        .iter()
        .filter_map(|ip| property_graph.find_by_property("ip", &PropertyValue::from(*ip)))
        .collect();
    let (results, stats) = moctopus.k_hop_batch(&sources, 2);

    // 4. Report results the way the paper's Figure 2 does.
    println!("\nbatch 2-hop path query (batch size = {}):", sources.len());
    for (ip, matched) in start_ips.iter().zip(&results) {
        let ids: Vec<String> = matched.iter().map(|n| format!("Node {}", n.0)).collect();
        println!("  {ip}: {}", if ids.is_empty() { "(none)".to_owned() } else { ids.join(", ") });
    }
    println!("\nsimulated cost breakdown: {}", stats.timeline);
    println!(
        "partition state: {} rows on the host, locality = {:.2}",
        moctopus.host_row_count(),
        moctopus.partition_metrics().locality
    );
    Ok(())
}
