//! Road-network reachability: long path queries on a low-skew graph.
//!
//! Road networks (traces #1–#3 in the paper) have no high-degree nodes and
//! bounded fan-out, so the number of matched paths stays manageable even for
//! long queries — this is why the paper evaluates k = 4, 6, 8 only on the road
//! graphs. The example builds a synthetic road network, runs k-hop queries of
//! increasing length on all three engines, and prints a latency table in the
//! spirit of Figure 4(d–f).
//!
//! Run with: `cargo run --release --example routing_reachability`

use graph_store::NodeId;
use moctopus::{GraphEngine, HostBaseline, MoctopusConfig, MoctopusSystem, PimHashSystem};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let graph = graph_gen::road::generate(30_000, 0.08, 42);
    let edges: Vec<(NodeId, NodeId)> = graph.edges().map(|(s, d, _)| (s, d)).collect();
    let sources = graph_gen::stream::sample_start_nodes(&graph, 1024, 7);
    println!(
        "synthetic road network: {} intersections, {} road segments, batch = {} queries",
        graph.node_count(),
        graph.edge_count(),
        sources.len()
    );

    let config = MoctopusConfig::paper_defaults();
    let mut moctopus = MoctopusSystem::from_edge_stream(config, &edges);
    let mut pim_hash = PimHashSystem::from_edge_stream(config, &edges);
    let mut baseline = HostBaseline::from_edge_stream(config, &edges);

    println!(
        "\n{:>4}  {:>14}  {:>14}  {:>14}  {:>9}",
        "k", "Moctopus", "PIM-hash", "RedisGraph", "speedup"
    );
    for k in [2usize, 4, 6, 8] {
        let (_, moc) = moctopus.k_hop_batch(&sources, k);
        let (_, hash) = pim_hash.k_hop_batch(&sources, k);
        let (_, host) = baseline.k_hop_batch(&sources, k);
        println!(
            "{:>4}  {:>12.3}ms  {:>12.3}ms  {:>12.3}ms  {:>8.2}x",
            k,
            moc.latency().as_millis(),
            hash.latency().as_millis(),
            host.latency().as_millis(),
            host.latency().as_nanos() / moc.latency().as_nanos().max(1.0),
        );
    }

    let metrics = moctopus.partition_metrics();
    println!(
        "\nMoctopus partition quality: locality = {:.2}, load balance = {:.2}, host rows = {}",
        metrics.locality,
        metrics.load_balance_factor,
        moctopus.host_row_count()
    );
    Ok(())
}
