//! The PIM-hash contrast system.

use crate::config::MoctopusConfig;
use crate::deps::{QueryDeps, UpdateFootprint};
use crate::distributed::{DistributedPimEngine, PlacementPolicy};
use crate::engine::GraphEngine;
use crate::stats::{QueryStats, UpdateStats};
use graph_partition::{HashPartitioner, PartitionMetrics};
use graph_store::{Label, NodeId, SnapshotState};
use rpq::{PlanStrategy, RpqExpr};

/// The PIM-hash contrast system evaluated in the paper: the same PIM execution
/// engine as Moctopus but with every graph node assigned to a PIM module by a
/// consistent hash — the partitioning scheme used by distributed graph
/// databases such as G-Tran and ByteGraph.
///
/// Hash placement is oblivious to locality (nearly every next-hop crosses the
/// narrow CPU↔PIM bus as inter-PIM traffic) and to skew (high-degree nodes
/// overload individual modules), which is precisely what Figures 4 and 5
/// measure against.
///
/// # Examples
///
/// ```
/// use moctopus::{GraphEngine, MoctopusConfig, NodeId, PimHashSystem};
/// let mut system = PimHashSystem::new(MoctopusConfig::small_test());
/// system.insert_edges(&[(NodeId(0), NodeId(1)), (NodeId(1), NodeId(2))]);
/// let (results, _) = system.k_hop_batch(&[NodeId(0)], 2);
/// assert_eq!(results[0], vec![NodeId(2)]);
/// ```
#[derive(Debug, Clone)]
pub struct PimHashSystem {
    engine: DistributedPimEngine,
}

impl PimHashSystem {
    /// Creates an empty PIM-hash deployment.
    pub fn new(config: MoctopusConfig) -> Self {
        let partitioner = HashPartitioner::new(config.pim.num_modules);
        PimHashSystem {
            engine: DistributedPimEngine::new(config, PlacementPolicy::Hash(partitioner)),
        }
    }

    /// Builds a system by streaming an edge list (no refinement exists for
    /// hash placement).
    pub fn from_edge_stream(config: MoctopusConfig, edges: &[(NodeId, NodeId)]) -> Self {
        let mut system = Self::new(config);
        system.insert_edges(edges);
        system
    }

    /// Partition-quality metrics of the hash placement.
    pub fn partition_metrics(&self) -> PartitionMetrics {
        self.engine.partition_metrics()
    }

    /// Load-imbalance factor across PIM modules observed so far.
    pub fn load_imbalance(&self) -> f64 {
        self.engine.load_imbalance()
    }

    /// Access to the underlying distributed engine.
    pub fn engine(&self) -> &DistributedPimEngine {
        &self.engine
    }
}

impl GraphEngine for PimHashSystem {
    fn name(&self) -> &'static str {
        "PIM-hash"
    }

    fn insert_edges(&mut self, edges: &[(NodeId, NodeId)]) -> UpdateStats {
        self.engine.insert_edges(edges)
    }

    fn delete_edges(&mut self, edges: &[(NodeId, NodeId)]) -> UpdateStats {
        self.engine.delete_edges(edges)
    }

    fn insert_labeled_edges(&mut self, edges: &[(NodeId, NodeId, Label)]) -> UpdateStats {
        self.engine.insert_labeled_edges(edges)
    }

    fn delete_labeled_edges(&mut self, edges: &[(NodeId, NodeId, Label)]) -> UpdateStats {
        self.engine.delete_labeled_edges(edges)
    }

    fn k_hop_batch(&mut self, sources: &[NodeId], k: usize) -> (Vec<Vec<NodeId>>, QueryStats) {
        self.engine.k_hop_batch(sources, k)
    }

    fn rpq_batch(&mut self, expr: &RpqExpr, sources: &[NodeId]) -> (Vec<Vec<NodeId>>, QueryStats) {
        self.engine.rpq_batch(expr, sources)
    }

    fn rpq_batch_planned(
        &mut self,
        expr: &RpqExpr,
        sources: &[NodeId],
        strategy: PlanStrategy,
    ) -> (Vec<Vec<NodeId>>, QueryStats) {
        self.engine.rpq_batch_planned(expr, sources, strategy)
    }

    fn rpq_batch_tracked(
        &mut self,
        expr: &RpqExpr,
        sources: &[NodeId],
    ) -> (Vec<Vec<NodeId>>, QueryStats, QueryDeps) {
        self.engine.rpq_batch_tracked(expr, sources)
    }

    fn insert_labeled_edges_tracked(
        &mut self,
        edges: &[(NodeId, NodeId, Label)],
    ) -> (UpdateStats, UpdateFootprint) {
        self.engine.insert_labeled_edges_tracked(edges)
    }

    fn delete_labeled_edges_tracked(
        &mut self,
        edges: &[(NodeId, NodeId, Label)],
    ) -> (UpdateStats, UpdateFootprint) {
        self.engine.delete_labeled_edges_tracked(edges)
    }

    fn edge_count(&self) -> usize {
        self.engine.edge_count()
    }

    fn set_threads(&mut self, threads: usize) {
        self.engine.set_threads(threads);
    }

    fn threads(&self) -> usize {
        self.engine.threads()
    }

    fn export_snapshot(&self) -> Option<SnapshotState> {
        Some(self.engine.export_storage())
    }

    fn restore_snapshot(&mut self, snapshot: &SnapshotState) -> bool {
        self.engine.restore_storage(snapshot)
    }

    fn label_stats(&self) -> graph_store::LabelStatsSnapshot {
        self.engine.label_stats()
    }

    fn export_rev_rows(&self) -> Vec<(NodeId, Vec<(NodeId, graph_store::Label)>)> {
        self.engine.export_rev_rows()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MoctopusSystem, PartitionId};

    #[test]
    fn hash_placement_never_uses_the_host() {
        let graph = graph_gen::powerlaw::generate(
            &graph_gen::powerlaw::PowerLawConfig {
                nodes: 800,
                high_degree_fraction: 0.05,
                ..Default::default()
            },
            4,
        );
        let edges: Vec<(NodeId, NodeId)> = graph.edges().map(|(s, d, _)| (s, d)).collect();
        let system = PimHashSystem::from_edge_stream(MoctopusConfig::small_test(), &edges);
        let metrics = system.partition_metrics();
        assert_eq!(metrics.host_node_fraction, 0.0);
        assert_eq!(metrics.to_host_edges, 0);
    }

    #[test]
    fn skewed_graphs_imbalance_hash_more_than_moctopus() {
        // The Figure 4 "highly skewed graphs" effect: with hash placement a
        // hub's expansions all land on one module, making it the straggler.
        let cfg = graph_gen::powerlaw::PowerLawConfig {
            nodes: 1500,
            high_degree_fraction: 0.04,
            mean_high_degree: 128.0,
            ..Default::default()
        };
        let graph = graph_gen::powerlaw::generate(&cfg, 8);
        let edges: Vec<(NodeId, NodeId)> = graph.edges().map(|(s, d, _)| (s, d)).collect();
        let sources: Vec<NodeId> = (0..512u64).map(NodeId).collect();

        let mut hash = PimHashSystem::from_edge_stream(MoctopusConfig::small_test(), &edges);
        let mut moc = MoctopusSystem::from_edge_stream(MoctopusConfig::small_test(), &edges);
        let (_, _) = hash.k_hop_batch(&sources, 2);
        let (_, _) = moc.k_hop_batch(&sources, 2);
        assert!(
            hash.load_imbalance() > moc.load_imbalance(),
            "hash imbalance {} should exceed moctopus {}",
            hash.load_imbalance(),
            moc.load_imbalance()
        );
    }

    #[test]
    fn results_match_moctopus() {
        let graph = graph_gen::road::generate(400, 0.1, 3);
        let edges: Vec<(NodeId, NodeId)> = graph.edges().map(|(s, d, _)| (s, d)).collect();
        let mut hash = PimHashSystem::from_edge_stream(MoctopusConfig::small_test(), &edges);
        let mut moc = MoctopusSystem::from_edge_stream(MoctopusConfig::small_test(), &edges);
        let sources: Vec<NodeId> = (0..32u64).map(NodeId).collect();
        let (a, _) = hash.k_hop_batch(&sources, 4);
        let (b, _) = moc.k_hop_batch(&sources, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn hubs_stay_on_pim_modules() {
        let mut system = PimHashSystem::new(MoctopusConfig::small_test());
        let edges: Vec<(NodeId, NodeId)> = (1..=30u64).map(|i| (NodeId(0), NodeId(i))).collect();
        system.insert_edges(&edges);
        assert!(matches!(
            system.engine().assignment().partition_of(NodeId(0)),
            Some(PartitionId::Pim(_))
        ));
    }
}
