//! The Moctopus system: the paper's primary contribution.

use crate::config::MoctopusConfig;
use crate::deps::{QueryDeps, UpdateFootprint};
use crate::distributed::{DistributedPimEngine, PlacementPolicy};
use crate::engine::GraphEngine;
use crate::stats::{QueryStats, UpdateStats};
use graph_partition::{GreedyAdaptivePartitioner, MigrationReport, PartitionMetrics};
use graph_store::{Label, NodeId, PartitionId, SnapshotState};
use pim_sim::Timeline;
use rpq::{PlanStrategy, RpqExpr};

/// The Moctopus PIM-based graph data management system.
///
/// Moctopus couples the shared distributed execution engine with the paper's
/// PIM-friendly dynamic graph partitioning algorithm: labor division sends
/// high-degree rows to the host, the radical greedy heuristic keeps
/// neighbouring low-degree rows on the same PIM module, a dynamic 1.05×
/// capacity constraint maintains load balance, and the node migrator repairs
/// incorrectly partitioned rows detected during path matching.
///
/// # Examples
///
/// ```
/// use moctopus::{GraphEngine, MoctopusConfig, MoctopusSystem, NodeId};
///
/// let edges: Vec<(NodeId, NodeId)> = (0..32u64).map(|i| (NodeId(i), NodeId((i + 1) % 32))).collect();
/// let mut moctopus = MoctopusSystem::new(MoctopusConfig::small_test());
/// moctopus.insert_edges(&edges);
/// let (results, _stats) = moctopus.k_hop_batch(&[NodeId(4)], 2);
/// assert_eq!(results[0], vec![NodeId(6)]);
/// ```
#[derive(Debug, Clone)]
pub struct MoctopusSystem {
    engine: DistributedPimEngine,
}

impl MoctopusSystem {
    /// Creates an empty Moctopus deployment.
    pub fn new(config: MoctopusConfig) -> Self {
        let partitioner = GreedyAdaptivePartitioner::with_config(config.partitioner_config());
        MoctopusSystem {
            engine: DistributedPimEngine::new(config, PlacementPolicy::GreedyAdaptive(partitioner)),
        }
    }

    /// Builds a system by streaming an edge list through the partitioner and
    /// then running one locality-refinement pass, the steady state a
    /// long-running deployment converges to.
    pub fn from_edge_stream(config: MoctopusConfig, edges: &[(NodeId, NodeId)]) -> Self {
        let mut system = Self::new(config);
        system.insert_edges(edges);
        system.refine_locality();
        system
    }

    /// The system configuration.
    pub fn config(&self) -> &MoctopusConfig {
        self.engine.config()
    }

    /// Runs the detection-and-migration refinement pass (Section 3.2.2) and
    /// returns what it did and how long it took.
    pub fn refine_locality(&mut self) -> (MigrationReport, Timeline) {
        self.engine.refine_locality()
    }

    /// Partition-quality metrics of the current placement.
    pub fn partition_metrics(&self) -> PartitionMetrics {
        self.engine.partition_metrics()
    }

    /// Where a node's row currently lives.
    pub fn partition_of(&self, node: NodeId) -> Option<PartitionId> {
        self.engine.assignment().partition_of(node)
    }

    /// Number of rows promoted to the host (high-degree nodes).
    pub fn host_row_count(&self) -> usize {
        self.engine.host_row_count()
    }

    /// Load-imbalance factor across PIM modules observed so far.
    pub fn load_imbalance(&self) -> f64 {
        self.engine.load_imbalance()
    }

    /// Access to the underlying distributed engine (for experiments that need
    /// transfer counters or the PIM platform state).
    pub fn engine(&self) -> &DistributedPimEngine {
        &self.engine
    }
}

impl GraphEngine for MoctopusSystem {
    fn name(&self) -> &'static str {
        "Moctopus"
    }

    fn insert_edges(&mut self, edges: &[(NodeId, NodeId)]) -> UpdateStats {
        self.engine.insert_edges(edges)
    }

    fn delete_edges(&mut self, edges: &[(NodeId, NodeId)]) -> UpdateStats {
        self.engine.delete_edges(edges)
    }

    fn insert_labeled_edges(&mut self, edges: &[(NodeId, NodeId, Label)]) -> UpdateStats {
        self.engine.insert_labeled_edges(edges)
    }

    fn delete_labeled_edges(&mut self, edges: &[(NodeId, NodeId, Label)]) -> UpdateStats {
        self.engine.delete_labeled_edges(edges)
    }

    fn k_hop_batch(&mut self, sources: &[NodeId], k: usize) -> (Vec<Vec<NodeId>>, QueryStats) {
        self.engine.k_hop_batch(sources, k)
    }

    fn rpq_batch(&mut self, expr: &RpqExpr, sources: &[NodeId]) -> (Vec<Vec<NodeId>>, QueryStats) {
        self.engine.rpq_batch(expr, sources)
    }

    fn rpq_batch_planned(
        &mut self,
        expr: &RpqExpr,
        sources: &[NodeId],
        strategy: PlanStrategy,
    ) -> (Vec<Vec<NodeId>>, QueryStats) {
        self.engine.rpq_batch_planned(expr, sources, strategy)
    }

    fn rpq_batch_tracked(
        &mut self,
        expr: &RpqExpr,
        sources: &[NodeId],
    ) -> (Vec<Vec<NodeId>>, QueryStats, QueryDeps) {
        self.engine.rpq_batch_tracked(expr, sources)
    }

    fn insert_labeled_edges_tracked(
        &mut self,
        edges: &[(NodeId, NodeId, Label)],
    ) -> (UpdateStats, UpdateFootprint) {
        self.engine.insert_labeled_edges_tracked(edges)
    }

    fn delete_labeled_edges_tracked(
        &mut self,
        edges: &[(NodeId, NodeId, Label)],
    ) -> (UpdateStats, UpdateFootprint) {
        self.engine.delete_labeled_edges_tracked(edges)
    }

    fn edge_count(&self) -> usize {
        self.engine.edge_count()
    }

    fn set_threads(&mut self, threads: usize) {
        self.engine.set_threads(threads);
    }

    fn threads(&self) -> usize {
        self.engine.threads()
    }

    fn export_snapshot(&self) -> Option<SnapshotState> {
        Some(self.engine.export_storage())
    }

    fn restore_snapshot(&mut self, snapshot: &SnapshotState) -> bool {
        self.engine.restore_storage(snapshot)
    }

    fn label_stats(&self) -> graph_store::LabelStatsSnapshot {
        self.engine.label_stats()
    }

    fn export_rev_rows(&self) -> Vec<(NodeId, Vec<(NodeId, graph_store::Label)>)> {
        self.engine.export_rev_rows()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_edge_stream_builds_and_refines() {
        let graph = graph_gen::uniform::generate(400, 3.0, 5);
        let edges: Vec<(NodeId, NodeId)> = graph.edges().map(|(s, d, _)| (s, d)).collect();
        let system = MoctopusSystem::from_edge_stream(MoctopusConfig::small_test(), &edges);
        assert_eq!(system.edge_count(), edges.len());
        let metrics = system.partition_metrics();
        assert!(metrics.load_balance_factor < 2.0);
    }

    #[test]
    fn hubs_are_reported_on_the_host() {
        let cfg = graph_gen::powerlaw::PowerLawConfig {
            nodes: 1000,
            high_degree_fraction: 0.05,
            ..Default::default()
        };
        let graph = graph_gen::powerlaw::generate(&cfg, 2);
        let edges: Vec<(NodeId, NodeId)> = graph.edges().map(|(s, d, _)| (s, d)).collect();
        let system = MoctopusSystem::from_edge_stream(MoctopusConfig::small_test(), &edges);
        assert!(system.host_row_count() > 0);
        let metrics = system.partition_metrics();
        assert!(metrics.host_node_fraction > 0.0);
    }

    #[test]
    fn query_results_match_the_reference_evaluator() {
        let graph = graph_gen::uniform::generate(300, 4.0, 9);
        let edges: Vec<(NodeId, NodeId)> = graph.edges().map(|(s, d, _)| (s, d)).collect();
        let mut system = MoctopusSystem::from_edge_stream(MoctopusConfig::small_test(), &edges);
        let reference = rpq::ReferenceEvaluator::new(&graph);
        let sources: Vec<NodeId> = (0..16u64).map(NodeId).collect();
        for k in 1..=3usize {
            let (got, _) = system.k_hop_batch(&sources, k);
            let want = reference.k_hop(&sources, k);
            for (g, w) in got.iter().zip(want.iter()) {
                let w: Vec<NodeId> = w.iter().copied().collect();
                assert_eq!(g, &w, "mismatch at k = {k}");
            }
        }
    }

    #[test]
    fn load_imbalance_starts_at_one() {
        let system = MoctopusSystem::new(MoctopusConfig::small_test());
        assert_eq!(system.load_imbalance(), 1.0);
        assert_eq!(system.config().pim.num_modules, 8);
    }
}
