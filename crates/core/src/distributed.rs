//! The shared distributed PIM execution engine.
//!
//! Moctopus and the PIM-hash contrast system differ only in *where rows are
//! placed* (greedy-adaptive partitioning with labor division versus plain
//! hashing); the operator processors, the communication accounting, and the
//! update machinery are identical. [`DistributedPimEngine`] implements that
//! shared machinery once:
//!
//! * every PIM module owns a [`LocalGraphStorage`] hash-map segment of the
//!   adjacency matrix;
//! * the host owns a [`HeterogeneousStorage`] for high-degree rows (empty when
//!   labor division is off, as in PIM-hash);
//! * batch k-hop queries are executed hop by hop: each frontier entry is
//!   expanded by the computing node that owns its row, produced next-hops that
//!   leave the module are charged as inter-PIM communication (forwarded by the
//!   CPU), and each hop's PIM latency is the *slowest* module (stragglers from
//!   load imbalance are therefore visible in the result, exactly as on the
//!   real platform);
//! * general regular path queries run the same hop loop over the *product* of
//!   the graph and the query automaton: frontier entries become
//!   `(node, nfa_state)` pairs and rows are filtered by edge label
//!   ([`DistributedPimEngine::rpq_batch`]); plain `.{k}` shapes take the
//!   k-hop fast path unchanged;
//! * batch updates are routed to the owning computing node and charged to the
//!   narrow CPU↔PIM bus plus the owner's compute budget; edge labels ride
//!   along, with the default label elided on the wire.
//!
//! # Parallel execution
//!
//! The per-hop work of both query loops runs on a
//! [`moctopus_runtime::WorkerPool`]: every hop is split into a *plan* stage
//! (dispatch accounting, worker layout), an embarrassingly parallel *execute*
//! stage (each worker owns a disjoint slice of PIM modules — worker 0 also
//! owns the host lane — and expands only the frontier entries its computing
//! nodes own, accumulating into a private [`StatsDelta`] and private frontier
//! scratch), and a deterministic *merge* stage (worker deltas reduce in
//! ascending worker-id order, candidate frontiers are sorted and deduplicated
//! on the calling thread). Disjoint ownership plus the id-ordered merge keep
//! every simulated number — including the order floating-point charges
//! accumulate in — byte-identical at any thread count; CONCURRENCY.md walks
//! the full argument.

use crate::config::MoctopusConfig;
use crate::deps::{QueryDeps, UpdateFootprint};
use crate::stats::{QueryStats, StatsDelta, UpdateStats};
use graph_partition::{
    GreedyAdaptivePartitioner, HashPartitioner, MigrationReport, PartitionAssignment,
    PartitionMetrics, StreamingPartitioner,
};
use graph_store::{
    AdjacencyGraph, HeterogeneousStorage, HostRowSnapshot, Label, LabelStatsSnapshot,
    LocalGraphStorage, LocalModuleSnapshot, NodeId, PartitionId, SnapshotState,
};
use moctopus_runtime::{chunk_ranges, WorkerPool};
use pim_sim::{Phase, PimSystem, Timeline};
use rpq::{optimizer, LabelSpec, Nfa, PlanStrategy, RpqExpr};
use sparse::EpochMarks;
use std::collections::HashSet;
use std::ops::Range;

/// Bytes of one routed frontier entry: the destination node id. Query
/// membership is implicit in the per-query transfer buffers, so only the node
/// id crosses the bus (as in the paper's column-index result matrices).
const ENTRY_BYTES: u64 = 8;
/// Bytes of one routed edge: (source id, destination id). Labelled edges
/// additionally carry [`LABEL_BYTES`]; the default [`Label::ANY`] is elided
/// on the wire (the untyped relationship is the protocol default).
const EDGE_BYTES: u64 = 16;
/// Bytes of one node id.
const ID_BYTES: u64 = 8;
/// Bytes of one edge label (`u16`), charged explicitly whenever a non-default
/// label crosses a bus or is scanned by a label-constrained traversal.
const LABEL_BYTES: u64 = 2;
/// Bytes of one NFA state id attached to a routed product-frontier entry
/// during general RPQ evaluation (`u16` state index).
const STATE_BYTES: u64 = 2;

/// Wire bytes of one edge label: the default label is elided, every other
/// label costs [`LABEL_BYTES`].
fn label_wire_bytes(label: Label) -> u64 {
    if label == Label::ANY {
        0
    } else {
        LABEL_BYTES
    }
}

/// Wire bytes of the label array of a whole migrated row (default labels
/// elided, as on the per-edge paths).
fn row_label_wire_bytes(row: &[(NodeId, Label)]) -> u64 {
    row.iter().map(|&(_, l)| label_wire_bytes(l)).sum()
}

/// The placement policy driving a [`DistributedPimEngine`].
#[derive(Debug, Clone)]
pub enum PlacementPolicy {
    /// The paper's greedy-adaptive partitioner with labor division.
    GreedyAdaptive(GreedyAdaptivePartitioner),
    /// Consistent hashing over PIM modules (the PIM-hash contrast system).
    Hash(HashPartitioner),
}

impl PlacementPolicy {
    fn on_edge(&mut self, src: NodeId, dst: NodeId) {
        match self {
            PlacementPolicy::GreedyAdaptive(p) => p.on_edge(src, dst),
            PlacementPolicy::Hash(p) => p.on_edge(src, dst),
        }
    }

    fn on_edge_delete(&mut self, src: NodeId, dst: NodeId) {
        if let PlacementPolicy::GreedyAdaptive(p) = self {
            p.on_edge_delete(src, dst);
        }
    }

    fn partition_of(&self, node: NodeId) -> Option<PartitionId> {
        match self {
            PlacementPolicy::GreedyAdaptive(p) => p.partition_of(node),
            PlacementPolicy::Hash(p) => p.partition_of(node),
        }
    }

    fn assignment(&self) -> &PartitionAssignment {
        match self {
            PlacementPolicy::GreedyAdaptive(p) => p.assignment(),
            PlacementPolicy::Hash(p) => p.assignment(),
        }
    }
}

/// Reusable scratch state of the batch-frontier hop loop.
///
/// `k_hop_batch` is the innermost loop of every experiment binary, so its
/// working memory survives across hops, queries, and whole batches instead of
/// being allocated per hop:
///
/// * `marks` — one [`EpochMarks`] generation per `(query, hop)` deduplicates
///   produced next-hops in O(1) per entry, replacing the `sort` + `dedup`
///   over the duplicate-laden raw expansion;
/// * `pool` — recycled frontier buffers; each hop's spent frontiers are
///   returned to the pool and handed back out (capacity intact) as the next
///   hop's output buffers.
///
/// The scratch only changes *how* frontiers are materialised, never what the
/// cost model charges.
#[derive(Debug, Clone, Default)]
struct FrontierScratch {
    marks: EpochMarks,
    pool: Vec<Vec<NodeId>>,
}

impl FrontierScratch {
    /// Hands out an empty buffer, recycling capacity when the pool has one.
    fn take_buffer(&mut self) -> Vec<NodeId> {
        let mut buf = self.pool.pop().unwrap_or_default();
        buf.clear();
        buf
    }

    /// Returns a spent buffer to the pool.
    fn recycle(&mut self, buf: Vec<NodeId>) {
        self.pool.push(buf);
    }
}

/// Per-worker context of one k-hop execute stage: the worker's private
/// dedup marks and buffer pool, plus its per-query candidate frontiers.
///
/// Everything in here is owned exclusively by one worker while the execute
/// stage runs (determinism rule 2: private scratch); the merge stage drains
/// `nexts` on the calling thread and the scratch survives inside the engine
/// across hops, queries, and batches.
#[derive(Debug, Clone, Default)]
struct HopCtx {
    scratch: FrontierScratch,
    nexts: Vec<Vec<NodeId>>,
}

impl HopCtx {
    /// Hands out one candidate buffer per query for the coming hop.
    fn prepare(&mut self, queries: usize) {
        debug_assert!(self.nexts.is_empty(), "previous hop must have drained the candidates");
        for _ in 0..queries {
            let buf = self.scratch.take_buffer();
            self.nexts.push(buf);
        }
    }
}

/// Per-worker context of one NFA-product execute stage: a local product-pair
/// dedup set (cleared per query) plus per-query candidate lists.
///
/// Unlike the k-hop loop the product traversal's cross-hop dedup lives in the
/// per-query *global* visited sets; this local set only bounds what one
/// worker emits within one `(query, hop)` so candidate lists stay
/// duplicate-free before the merge.
#[derive(Debug, Clone, Default)]
struct NfaHopCtx {
    seen: HashSet<(NodeId, u32)>,
    nexts: Vec<Vec<(NodeId, u32)>>,
}

/// Worker count actually used for one hop: the batch-level layout width
/// clamped by the hop's total frontier size. A long-tail hop with three
/// entries gets at most three workers, and an empty one still gets one so
/// the merge has a delta to reduce; the determinism contract makes any
/// clamp value produce identical output, so this is purely a wall-clock
/// decision (spawn/join is not worth microseconds of expansion work).
fn active_workers(module_ranges: &[Range<usize>], frontier_entries: usize) -> usize {
    module_ranges.len().min(frontier_entries).max(1)
}

/// The k-hop merge stage: unions each query's per-worker candidate lists
/// into the hop's next frontier (worker-id order), sorts, and — when more
/// than one worker produced candidates — deduplicates entries that distinct
/// workers discovered independently.
///
/// The sequential loop's next frontier is the sorted set of all next-hops
/// produced this hop; worker-local epoch marks already make each candidate
/// list duplicate-free, so concatenate + sort + cross-worker dedup yields
/// exactly that set. With a single worker the candidate list *is* the
/// frontier (buffers are swapped, not copied), which is byte-for-byte the
/// sequential code path.
fn merge_khop_frontiers(ctxs: &mut [HopCtx], next_frontiers: &mut [Vec<NodeId>]) {
    if let [only] = ctxs {
        for (next, candidates) in next_frontiers.iter_mut().zip(only.nexts.iter_mut()) {
            std::mem::swap(next, candidates);
            next.sort_unstable();
        }
    } else {
        for (q, next) in next_frontiers.iter_mut().enumerate() {
            for ctx in ctxs.iter() {
                next.extend_from_slice(&ctx.nexts[q]);
            }
            next.sort_unstable();
            next.dedup();
        }
    }
    // Recycle every worker's spent candidate buffers into its own pool.
    for ctx in ctxs {
        for mut buf in ctx.nexts.drain(..) {
            buf.clear();
            ctx.scratch.recycle(buf);
        }
    }
}

/// Distributed graph engine over a simulated PIM platform.
#[derive(Debug, Clone)]
pub struct DistributedPimEngine {
    config: MoctopusConfig,
    pim: PimSystem,
    policy: PlacementPolicy,
    local_stores: Vec<LocalGraphStorage>,
    host_store: HeterogeneousStorage,
    edge_count: usize,
    scratch: FrontierScratch,
    pool: WorkerPool,
    /// One private [`FrontierScratch`] per worker, persisted across batches
    /// so hot-loop buffers and marks are never re-allocated per query.
    worker_scratch: Vec<FrontierScratch>,
    /// One private [`NfaHopCtx`] per worker, persisted across `rpq_batch`
    /// calls for the same reason.
    nfa_scratch: Vec<NfaHopCtx>,
}

impl DistributedPimEngine {
    /// Creates an engine with the given placement policy.
    ///
    /// The execution runtime uses `config.threads` host worker threads
    /// (`0` = available parallelism); see [`DistributedPimEngine::set_threads`].
    pub fn new(config: MoctopusConfig, policy: PlacementPolicy) -> Self {
        let pim = PimSystem::new(config.pim);
        let local_stores = (0..config.pim.num_modules).map(|_| LocalGraphStorage::new()).collect();
        DistributedPimEngine {
            pool: WorkerPool::new(config.threads),
            config,
            pim,
            policy,
            local_stores,
            host_store: HeterogeneousStorage::new(),
            edge_count: 0,
            scratch: FrontierScratch::default(),
            worker_scratch: Vec::new(),
            nfa_scratch: Vec::new(),
        }
    }

    /// Reconfigures the execution runtime to `threads` host worker threads
    /// (`0` = available parallelism).
    ///
    /// This only changes how much wall-clock parallelism the *simulator*
    /// uses; simulated results, `SimTime`, and transfer tallies are
    /// byte-identical at every thread count. The engine's
    /// [`config`](DistributedPimEngine::config) follows, so sibling engines
    /// built from a clone of it inherit the new thread count.
    pub fn set_threads(&mut self, threads: usize) {
        self.config.threads = threads;
        self.pool = WorkerPool::new(threads);
    }

    /// Host worker threads the execution runtime is configured for.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// The hop-loop worker layout for the current thread count: each worker
    /// owns one contiguous range of PIM modules (worker 0 additionally owns
    /// the host lane). At most one worker per module, so extra threads idle
    /// rather than splitting a module's (order-sensitive) float accumulator.
    fn worker_layout(&self) -> Vec<Range<usize>> {
        let module_count = self.config.pim.num_modules;
        chunk_ranges(module_count, self.pool.workers_for(module_count))
    }

    /// Takes the per-worker hop contexts out of the engine (grown on demand
    /// when the thread count rose since the last batch).
    fn take_hop_ctxs(&mut self, workers: usize) -> Vec<HopCtx> {
        self.worker_scratch.resize_with(workers.max(self.worker_scratch.len()), Default::default);
        self.worker_scratch
            .drain(..workers)
            .map(|scratch| HopCtx { scratch, nexts: Vec::new() })
            .collect()
    }

    /// Returns hop contexts to the engine so their scratch capacity survives
    /// into the next batch.
    fn put_hop_ctxs(&mut self, ctxs: Vec<HopCtx>) {
        let mut scratches: Vec<FrontierScratch> = ctxs.into_iter().map(|c| c.scratch).collect();
        scratches.append(&mut self.worker_scratch);
        self.worker_scratch = scratches;
    }

    /// Takes the per-worker NFA-product contexts out of the engine, sized to
    /// `workers` (grown on demand when the thread count rose since the last
    /// batch), so their hash-set and buffer capacities survive across
    /// `rpq_batch` calls like the k-hop worker scratch does.
    fn take_nfa_ctxs(&mut self, workers: usize) -> Vec<NfaHopCtx> {
        self.nfa_scratch.resize_with(workers.max(self.nfa_scratch.len()), Default::default);
        self.nfa_scratch.drain(..workers).collect()
    }

    /// Returns NFA-product contexts to the engine for the next batch.
    fn put_nfa_ctxs(&mut self, ctxs: Vec<NfaHopCtx>) {
        let mut scratches = ctxs;
        scratches.append(&mut self.nfa_scratch);
        self.nfa_scratch = scratches;
    }

    /// The system configuration.
    pub fn config(&self) -> &MoctopusConfig {
        &self.config
    }

    /// The simulated PIM platform (busy times, load imbalance, MRAM usage).
    pub fn pim(&self) -> &PimSystem {
        &self.pim
    }

    /// The current node-to-partition assignment.
    pub fn assignment(&self) -> &PartitionAssignment {
        self.policy.assignment()
    }

    /// Number of directed edges stored across all computing nodes.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Number of rows resident on the host (high-degree nodes).
    pub fn host_row_count(&self) -> usize {
        self.host_store.row_count()
    }

    /// Load-imbalance factor observed so far (max module busy time / mean).
    pub fn load_imbalance(&self) -> f64 {
        self.pim.load_imbalance()
    }

    /// Merged per-label statistics across the whole storage plane: every
    /// PIM module's local store (in module-id order) plus the host store.
    ///
    /// Each store maintains its table incrementally on its own mutation
    /// paths (including row promotion/migration), so this is a pure merge —
    /// no row is rescanned. The merge order is fixed, and
    /// [`LabelStatsSnapshot::merge`] is commutative summation, so the result
    /// is deterministic regardless of thread count.
    pub fn label_stats(&self) -> LabelStatsSnapshot {
        let mut merged = LabelStatsSnapshot::default();
        for store in &self.local_stores {
            merged.merge(&store.label_stats().snapshot());
        }
        merged.merge(&self.host_store.label_stats().snapshot());
        merged
    }

    /// The in-adjacency secondary index flattened to canonical reverse rows
    /// (nodes ascending, entries sorted), merged across every store.
    ///
    /// Every node's reverse row lives in exactly one store (it is colocated
    /// with the node's forward row), so concatenation plus a sort by node id
    /// is a faithful global view. Diagnostic surface: the differential tests
    /// use it to prove incremental maintenance, migration, and post-restore
    /// reconstruction all land on the same bits.
    pub fn export_rev_rows(&self) -> Vec<(NodeId, Vec<(NodeId, Label)>)> {
        let mut rows: Vec<(NodeId, Vec<(NodeId, Label)>)> = Vec::new();
        for store in &self.local_stores {
            rows.extend(store.export_rev_rows());
        }
        rows.extend(self.host_store.export_rev_rows());
        rows.sort_by_key(|&(n, _)| n);
        rows
    }

    /// The PIM module that stores the host-side supplementary maps for `row`
    /// (the `elem_position_map` / `free_list_map` shards).
    fn aux_module(&self, row: NodeId) -> usize {
        (row.0.wrapping_mul(0xff51_afd7_ed55_8ccd) % self.config.pim.num_modules as u64) as usize
    }

    /// Where the row of `node` currently lives. Falls back to a hash placement
    /// for nodes the partitioner has not seen (defensive; should not happen).
    fn owner(&self, node: NodeId) -> Option<PartitionId> {
        self.policy.partition_of(node)
    }

    // ------------------------------------------------------------------
    // Updates
    // ------------------------------------------------------------------

    /// Inserts a batch of unlabelled edges (they receive [`Label::ANY`]),
    /// routing each one to the computing node that owns the source row and
    /// charging the work to the cost model.
    pub fn insert_edges(&mut self, edges: &[(NodeId, NodeId)]) -> UpdateStats {
        self.insert_edges_impl(edges.iter().map(|&(s, d)| (s, d, Label::ANY)), edges.len(), None)
    }

    /// Inserts a batch of labelled edges. The default label travels for free
    /// (it is elided on the wire); every other label is charged
    /// `LABEL_BYTES` on the CPU→PIM bus and in the MRAM write.
    pub fn insert_labeled_edges(&mut self, edges: &[(NodeId, NodeId, Label)]) -> UpdateStats {
        self.insert_edges_impl(edges.iter().copied(), edges.len(), None)
    }

    /// [`DistributedPimEngine::insert_labeled_edges`] plus the batch's
    /// dependency footprint — the cache hook of the insert path.
    ///
    /// The footprint is the batch-derived base
    /// ([`UpdateFootprint::from_edges`]: per-label source buckets, structural
    /// source+destination buckets) with `host_store` set by the loop itself
    /// whenever a host-resident row was written or a promotion installed one
    /// (only the engine can observe those).
    pub fn insert_labeled_edges_tracked(
        &mut self,
        edges: &[(NodeId, NodeId, Label)],
    ) -> (UpdateStats, UpdateFootprint) {
        let mut footprint = UpdateFootprint::from_edges(edges);
        let stats =
            self.insert_edges_impl(edges.iter().copied(), edges.len(), Some(&mut footprint));
        (stats, footprint)
    }

    /// The shared insert loop; the unlabelled entry point streams `Label::ANY`
    /// in without materialising a labelled copy of the batch, and the tracked
    /// entry point passes a footprint for the host-store flag.
    fn insert_edges_impl(
        &mut self,
        edges: impl Iterator<Item = (NodeId, NodeId, Label)>,
        batch_len: usize,
        mut footprint: Option<&mut UpdateFootprint>,
    ) -> UpdateStats {
        // Update batches mutate the stores and the partitioner, so they stay
        // sequential; the shared `StatsDelta` accumulator replaces the loose
        // `&mut` counters the loop used to thread through every helper.
        let mut delta = StatsDelta::new(self.config.pim.num_modules);

        for (src, dst, label) in edges {
            // Partitioning decision happens on edge arrival (radical greedy).
            let before = self.owner(src);
            self.policy.on_edge(src, dst);
            // moctopus-lint: allow(panic-in-lib, reason = "on_edge unconditionally assigns src an owner on the line above")
            let after = self.owner(src).expect("source was just assigned");
            // Labor division: the node may have just crossed the threshold.
            if let (Some(PartitionId::Pim(old)), PartitionId::Host) = (before, after) {
                self.promote_to_host(src, old as usize, &mut delta);
            }
            if let Some(fp) = footprint.as_deref_mut() {
                // Host-store bytes move when the row is (or becomes)
                // host-resident — a promotion installs the row there.
                fp.host_store |= after == PartitionId::Host;
            }

            match after {
                PartitionId::Host => {
                    // Heterogeneous storage: PIM side checks existence and
                    // allocates the slot, host writes one position.
                    let outcome = self.host_store.insert_edge(src, dst, label);
                    let aux = self.aux_module(src);
                    delta.per_module[aux] += self.pim.pim_hash_lookup_cost(ID_BYTES)
                        * outcome.cost.pim_lookups as f64
                        + self.pim.pim_instructions_cost(60 * outcome.cost.pim_mutations);
                    delta.host_time +=
                        self.pim.host_sequential_read_cost(outcome.cost.host_bytes_written)
                            + self.pim.host_instructions_cost(40);
                    // The host exchanges a small request/response with the PIM
                    // side to learn the slot position.
                    delta.cpu_to_pim_bytes += EDGE_BYTES + label_wire_bytes(label);
                    delta.pim_to_cpu_bytes += ID_BYTES;
                    if outcome.changed {
                        delta.applied += 1;
                        self.edge_count += 1;
                        self.mirror_rev_insert(src, dst, label, &mut delta, &mut footprint);
                    }
                }
                PartitionId::Pim(m) => {
                    let m = m as usize;
                    delta.cpu_to_pim_bytes += EDGE_BYTES + label_wire_bytes(label);
                    let row_bytes = self.local_stores[m]
                        .row(src)
                        .map(|r| r.len() as u64 * ID_BYTES)
                        .unwrap_or(0);
                    delta.per_module[m] += self.pim.pim_hash_lookup_cost(row_bytes)
                        + self.pim.mram_write_cost(ID_BYTES + label_wire_bytes(label));
                    if self.local_stores[m].insert_edge(src, dst, label).is_ok() {
                        delta.applied += 1;
                        self.edge_count += 1;
                        self.mirror_rev_insert(src, dst, label, &mut delta, &mut footprint);
                    }
                }
            }
        }

        self.charge_update_delta(delta, batch_len)
    }

    /// Mirrors one **applied** labelled insert into the in-adjacency index at
    /// the destination row's owner (reverse rows colocate with the node's
    /// forward placement, so backward sweeps read them without extra
    /// routing). The mirrored write is charged explicitly: a PIM-resident
    /// reverse row pays the CPU→PIM routing of the edge plus one MRAM entry
    /// write; a host-resident one pays the host-side write (no bus crossing —
    /// the host coordinator already holds the edge).
    ///
    /// The mirror can never independently fail: the forward store just
    /// deduplicated the edge, and reverse rows are an unbounded secondary
    /// index (no capacity gate — see STORAGE.md).
    fn mirror_rev_insert(
        &mut self,
        src: NodeId,
        dst: NodeId,
        label: Label,
        delta: &mut StatsDelta,
        footprint: &mut Option<&mut UpdateFootprint>,
    ) {
        // Both partitioners assign the destination an owner on edge arrival,
        // so the lookup only misses for nodes outside the stream (defensive).
        let Some(rev_owner) = self.owner(dst) else { return };
        if let Some(fp) = footprint.as_deref_mut() {
            fp.host_store |= rev_owner == PartitionId::Host;
        }
        match rev_owner {
            PartitionId::Host => {
                let _ = self.host_store.insert_rev_edge(dst, src, label);
                delta.host_time +=
                    self.pim.host_sequential_read_cost(ID_BYTES + label_wire_bytes(label));
            }
            PartitionId::Pim(m) => {
                let m = m as usize;
                delta.cpu_to_pim_bytes += EDGE_BYTES + label_wire_bytes(label);
                delta.per_module[m] += self.pim.mram_write_cost(ID_BYTES + label_wire_bytes(label));
                let _ = self.local_stores[m].insert_rev_edge(dst, src, label);
            }
        }
    }

    /// Mirror of [`DistributedPimEngine::mirror_rev_insert`] for the delete
    /// path: removes the reverse entry at the destination row's owner and
    /// charges the mirrored write identically.
    fn mirror_rev_delete(
        &mut self,
        src: NodeId,
        dst: NodeId,
        label: Label,
        delta: &mut StatsDelta,
        footprint: &mut Option<&mut UpdateFootprint>,
    ) {
        let Some(rev_owner) = self.owner(dst) else { return };
        if let Some(fp) = footprint.as_deref_mut() {
            fp.host_store |= rev_owner == PartitionId::Host;
        }
        match rev_owner {
            PartitionId::Host => {
                let _ = self.host_store.remove_rev_edge(dst, src, label);
                delta.host_time +=
                    self.pim.host_sequential_read_cost(ID_BYTES + label_wire_bytes(label));
            }
            PartitionId::Pim(m) => {
                let m = m as usize;
                delta.cpu_to_pim_bytes += EDGE_BYTES + label_wire_bytes(label);
                delta.per_module[m] += self.pim.mram_write_cost(ID_BYTES + label_wire_bytes(label));
                let _ = self.local_stores[m].remove_rev_edge(dst, src, label);
            }
        }
    }

    /// Converts one update batch's accumulated [`StatsDelta`] into the
    /// reported [`UpdateStats`] (the barrier of the update path).
    fn charge_update_delta(&mut self, delta: StatsDelta, batch_len: usize) -> UpdateStats {
        let mut timeline = Timeline::new();
        let pim_time = self.pim.parallel_step(&delta.per_module);
        timeline.charge(Phase::PimCompute, pim_time);
        timeline.charge(Phase::HostCompute, delta.host_time);
        timeline.charge(
            Phase::Cpc,
            self.pim.cpc_transfer_cost(delta.cpu_to_pim_bytes)
                + self.pim.cpc_transfer_cost(delta.pim_to_cpu_bytes),
        );
        timeline.transfers.record_cpu_to_pim(delta.cpu_to_pim_bytes, batch_len as u64);
        timeline.transfers.record_pim_to_cpu(delta.pim_to_cpu_bytes, 1);
        UpdateStats { timeline, requested: batch_len, applied: delta.applied }
    }

    /// Deletes a batch of unlabelled ([`Label::ANY`]) edges.
    pub fn delete_edges(&mut self, edges: &[(NodeId, NodeId)]) -> UpdateStats {
        self.delete_edges_impl(edges.iter().map(|&(s, d)| (s, d, Label::ANY)), edges.len(), None)
    }

    /// Deletes a batch of labelled edges (label-byte accounting as on the
    /// insert path).
    pub fn delete_labeled_edges(&mut self, edges: &[(NodeId, NodeId, Label)]) -> UpdateStats {
        self.delete_edges_impl(edges.iter().copied(), edges.len(), None)
    }

    /// [`DistributedPimEngine::delete_labeled_edges`] plus the batch's
    /// dependency footprint; see
    /// [`DistributedPimEngine::insert_labeled_edges_tracked`].
    pub fn delete_labeled_edges_tracked(
        &mut self,
        edges: &[(NodeId, NodeId, Label)],
    ) -> (UpdateStats, UpdateFootprint) {
        let mut footprint = UpdateFootprint::from_edges(edges);
        let stats =
            self.delete_edges_impl(edges.iter().copied(), edges.len(), Some(&mut footprint));
        (stats, footprint)
    }

    /// The shared delete loop; see [`DistributedPimEngine::insert_edges_impl`].
    fn delete_edges_impl(
        &mut self,
        edges: impl Iterator<Item = (NodeId, NodeId, Label)>,
        batch_len: usize,
        mut footprint: Option<&mut UpdateFootprint>,
    ) -> UpdateStats {
        let mut delta = StatsDelta::new(self.config.pim.num_modules);

        for (src, dst, label) in edges {
            self.policy.on_edge_delete(src, dst);
            let Some(owner) = self.owner(src) else { continue };
            if let Some(fp) = footprint.as_deref_mut() {
                fp.host_store |= owner == PartitionId::Host;
            }
            match owner {
                PartitionId::Host => {
                    let outcome = self.host_store.delete_edge(src, dst, label);
                    let aux = self.aux_module(src);
                    delta.per_module[aux] += self.pim.pim_hash_lookup_cost(ID_BYTES)
                        * outcome.cost.pim_lookups.max(1) as f64
                        + self.pim.pim_instructions_cost(60 * outcome.cost.pim_mutations);
                    delta.host_time +=
                        self.pim.host_sequential_read_cost(outcome.cost.host_bytes_written)
                            + self.pim.host_instructions_cost(40);
                    delta.cpu_to_pim_bytes += EDGE_BYTES + label_wire_bytes(label);
                    delta.pim_to_cpu_bytes += ID_BYTES;
                    if outcome.changed {
                        delta.applied += 1;
                        self.edge_count -= 1;
                        self.mirror_rev_delete(src, dst, label, &mut delta, &mut footprint);
                    }
                }
                PartitionId::Pim(m) => {
                    let m = m as usize;
                    delta.cpu_to_pim_bytes += EDGE_BYTES + label_wire_bytes(label);
                    let row_bytes = self.local_stores[m]
                        .row(src)
                        .map(|r| r.len() as u64 * ID_BYTES)
                        .unwrap_or(0);
                    delta.per_module[m] += self.pim.pim_hash_lookup_cost(row_bytes)
                        + self.pim.mram_write_cost(ID_BYTES + label_wire_bytes(label));
                    if self.local_stores[m].remove_edge(src, dst, label).is_ok() {
                        delta.applied += 1;
                        self.edge_count -= 1;
                        self.mirror_rev_delete(src, dst, label, &mut delta, &mut footprint);
                    }
                }
            }
        }

        self.charge_update_delta(delta, batch_len)
    }

    /// Moves a newly promoted high-degree row from its PIM module to the host
    /// (the Node Migrator of Figure 1), charging into the batch's delta.
    fn promote_to_host(&mut self, node: NodeId, old_module: usize, delta: &mut StatsDelta) {
        if let Some(row) = self.local_stores[old_module].take_row(node) {
            let bytes = row.len() as u64 * ID_BYTES + row_label_wire_bytes(&row);
            delta.per_module[old_module] += self.pim.mram_read_cost(bytes);
            delta.pim_to_cpu_bytes += bytes;
            let cost = self.host_store.install_row(node, row);
            delta.host_time += self.pim.host_sequential_read_cost(cost.host_bytes_written);
        }
        // The reverse row rides along: in-adjacency colocates with the node's
        // forward placement, so it is read from the old module and written
        // into the host-side secondary index.
        if let Some(rev) = self.local_stores[old_module].take_rev_row(node) {
            let bytes = rev.len() as u64 * ID_BYTES + row_label_wire_bytes(&rev);
            delta.per_module[old_module] += self.pim.mram_read_cost(bytes);
            delta.pim_to_cpu_bytes += bytes;
            delta.host_time += self.pim.host_sequential_read_cost(bytes);
            self.host_store.install_rev_row(node, rev);
        }
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// Answers a batch k-hop path query with full cost accounting.
    ///
    /// The hop loop is a batch-frontier engine: owner lookups are single
    /// dense-directory loads, produced next-hops are deduplicated with
    /// epoch-stamped markers as they are pushed (the raw expansion is never
    /// materialised), and frontier buffers are recycled across hops and
    /// queries. Each hop runs as plan → execute → merge: the execute stage
    /// fans the frontier out over the worker pool (disjoint module ownership,
    /// private scratch), and the merge stage reduces the per-worker
    /// [`StatsDelta`]s in worker-id order and sorts the merged candidate
    /// frontiers. Every simulated charge — cpc/ipc/mram byte and
    /// instruction — is identical to the naive sequential formulation at any
    /// thread count, including the order float charges accumulate in, so
    /// same-seed experiment outputs do not move.
    pub fn k_hop_batch(&mut self, sources: &[NodeId], k: usize) -> (Vec<Vec<NodeId>>, QueryStats) {
        self.k_hop_batch_impl(sources, k, None)
    }

    /// [`DistributedPimEngine::k_hop_batch`] plus the execution's dependency
    /// footprint: the bucket of every visited node (sources and every hop's
    /// merged frontier) and whether the host lane expanded a row. Tracking
    /// reads only merged, thread-count-invariant state, so the deps — like
    /// the stats — are byte-identical at every thread count, and no simulated
    /// charge moves.
    pub fn k_hop_batch_tracked(
        &mut self,
        sources: &[NodeId],
        k: usize,
    ) -> (Vec<Vec<NodeId>>, QueryStats, QueryDeps) {
        let mut deps = QueryDeps::default();
        let (results, stats) = self.k_hop_batch_impl(sources, k, Some(&mut deps));
        (results, stats, deps)
    }

    /// The shared k-hop loop; the tracked entry point passes a deps
    /// accumulator, the plain one passes `None` (zero work added).
    fn k_hop_batch_impl(
        &mut self,
        sources: &[NodeId],
        k: usize,
        mut track: Option<&mut QueryDeps>,
    ) -> (Vec<Vec<NodeId>>, QueryStats) {
        let module_count = self.config.pim.num_modules;
        // Maintained incrementally by the heterogeneous storage; previously a
        // full iteration over every host row per query batch.
        let host_resident_bytes: u64 = self.host_store.live_bytes();
        let mut timeline = Timeline::new();
        let mut expansions = 0usize;

        // ---- plan: dispatch accounting and worker layout -----------------
        // Every source that lives on a PIM module must be shipped to it (the
        // Q matrix rows of the execution plan).
        let dispatch_bytes: u64 =
            sources.iter().filter(|&&s| matches!(self.owner(s), Some(PartitionId::Pim(_)))).count()
                as u64
                * ENTRY_BYTES;
        timeline.charge(Phase::Cpc, self.pim.cpc_transfer_cost(dispatch_bytes));
        timeline.transfers.record_cpu_to_pim(dispatch_bytes, 1);

        let module_ranges = self.worker_layout();
        let mut ctxs = self.take_hop_ctxs(module_ranges.len());

        if let Some(deps) = track.as_deref_mut() {
            for &s in sources {
                deps.nodes.insert(s);
            }
        }
        let mut scratch = std::mem::take(&mut self.scratch);
        let mut frontiers: Vec<Vec<NodeId>> = sources
            .iter()
            .map(|&s| {
                let mut f = scratch.take_buffer();
                f.push(s);
                f
            })
            .collect();
        // The second half of the double buffer; swapped with `frontiers`
        // every hop, its spent buffers recycled into the pool.
        let mut next_frontiers: Vec<Vec<NodeId>> = Vec::with_capacity(frontiers.len());

        for _hop in 0..k {
            // Every frontier entry counts as one expansion, whoever owns it.
            let frontier_entries = frontiers.iter().map(Vec::len).sum::<usize>();
            expansions += frontier_entries;

            // ---- execute: embarrassingly parallel over module slices. The
            // worker count is additionally clamped by the hop's total
            // frontier size: a long-tail hop with a handful of entries is
            // not worth a spawn/join barrier (output is thread-count
            // invariant, so re-chunking per hop is free).
            let active = active_workers(&module_ranges, frontier_entries);
            let hop_ranges = chunk_ranges(module_count, active);
            for ctx in &mut ctxs[..active] {
                ctx.prepare(frontiers.len());
            }
            let this: &DistributedPimEngine = self;
            let deltas = this.pool.run_with(&mut ctxs[..active], |worker, ctx| {
                this.khop_hop_worker(
                    &hop_ranges[worker],
                    worker == 0,
                    &frontiers,
                    host_resident_bytes,
                    ctx,
                )
            });

            // ---- merge: id-ordered delta reduction + frontier union ------
            let mut delta = StatsDelta::new(module_count);
            for worker_delta in &deltas {
                delta.merge(worker_delta);
            }
            let pim_time = self.pim.parallel_step(&delta.per_module);
            timeline.charge(Phase::PimCompute, pim_time);
            timeline.charge(Phase::HostCompute, delta.host_time);
            timeline.charge(Phase::Cpc, self.pim.cpc_transfer_cost(delta.cpc_bytes));
            // Inter-PIM forwarding has no hardware path on UPMEM: besides the
            // double bus crossing, the host CPU inspects and re-routes every
            // forwarded entry in software (~25 instructions each).
            timeline.charge(
                Phase::Ipc,
                self.pim.ipc_transfer_cost(delta.ipc_bytes)
                    + self.pim.host_instructions_cost(delta.ipc_messages * 25),
            );
            timeline.transfers.record_pim_to_cpu(delta.cpc_bytes, 1);
            timeline.transfers.record_inter_pim(delta.ipc_bytes, delta.ipc_messages);

            next_frontiers.clear();
            for _ in 0..frontiers.len() {
                let buf = scratch.take_buffer();
                next_frontiers.push(buf);
            }
            merge_khop_frontiers(&mut ctxs[..active], &mut next_frontiers);
            std::mem::swap(&mut frontiers, &mut next_frontiers);
            for spent in next_frontiers.drain(..) {
                scratch.recycle(spent);
            }
            if let Some(deps) = track.as_deref_mut() {
                // Merged state only: the hop's frontier union and the merged
                // delta are thread-count invariant, so the deps are too.
                deps.host_lane |= !delta.host_time.is_zero();
                for frontier in &frontiers {
                    for &v in frontier {
                        deps.nodes.insert(v);
                    }
                }
            }
        }
        self.scratch = scratch;
        self.put_hop_ctxs(ctxs);

        // Reduction (`mwait`): gather every query's final frontier to the host
        // and merge the per-module partial results.
        let matched_pairs: usize = frontiers.iter().map(Vec::len).sum();
        let gather_bytes = matched_pairs as u64 * ENTRY_BYTES;
        timeline.charge(Phase::Cpc, self.pim.cpc_transfer_cost(gather_bytes));
        timeline.transfers.record_pim_to_cpu(gather_bytes, 1);
        timeline.charge(
            Phase::Reduce,
            self.pim.host_sequential_read_cost(gather_bytes)
                + self.pim.host_instructions_cost(matched_pairs as u64 * 8),
        );

        let stats =
            QueryStats { timeline, batch_size: sources.len(), hops: k, matched_pairs, expansions };
        (frontiers, stats)
    }

    /// One worker's share of a k-hop execute stage.
    ///
    /// The worker walks **every** query's frontier in global order but
    /// expands only the entries whose row lives on one of its modules (or on
    /// the host, for the host-lane worker), so each `per_module` slot — and
    /// `host_time` — receives its floating-point charges in exactly the
    /// sequential order. Produced next-hops are deduplicated per
    /// `(query, hop)` with the worker's private epoch marks; transfer bytes
    /// are still charged per produced entry, exactly as in the sequential
    /// loop.
    fn khop_hop_worker(
        &self,
        my_modules: &Range<usize>,
        host_lane: bool,
        frontiers: &[Vec<NodeId>],
        host_resident_bytes: u64,
        ctx: &mut HopCtx,
    ) -> StatsDelta {
        let mut delta = StatsDelta::new(self.config.pim.num_modules);
        for (q, frontier) in frontiers.iter().enumerate() {
            let next = &mut ctx.nexts[q];
            // One marker generation per (query, hop): a produced entry is
            // pushed only on first sight, so the candidate list is
            // duplicate-free (within this worker) by construction.
            ctx.scratch.marks.next_epoch();
            for &v in frontier {
                match self.owner(v) {
                    Some(PartitionId::Host) if host_lane => {
                        let row_bytes = self.host_store.row_bytes(v);
                        delta.host_time += self.pim.host_random_access_cost(1, host_resident_bytes)
                            + self.pim.host_sequential_read_cost(row_bytes);
                        for (u, _) in self.host_store.neighbors_iter(v) {
                            // The host forwards the produced entry to the
                            // module owning it (or keeps it if the next
                            // row is also host-resident).
                            if matches!(self.owner(u), Some(PartitionId::Pim(_))) {
                                delta.cpc_bytes += ENTRY_BYTES;
                            }
                            if ctx.scratch.marks.mark(u.index()) {
                                next.push(u);
                            }
                        }
                    }
                    Some(PartitionId::Pim(m)) if my_modules.contains(&(m as usize)) => {
                        let m = m as usize;
                        let row = self.local_stores[m].row(v).unwrap_or(&[]);
                        let row_bytes = row.len() as u64 * ID_BYTES;
                        delta.per_module[m] += self.pim.pim_hash_lookup_cost(row_bytes);
                        for &(u, _) in row {
                            match self.owner(u) {
                                Some(PartitionId::Pim(m2)) if m2 as usize == m => {}
                                Some(PartitionId::Pim(_)) => {
                                    delta.ipc_bytes += ENTRY_BYTES;
                                    delta.ipc_messages += 1;
                                }
                                _ => {
                                    // Destination row lives on the host (or
                                    // is unknown): the entry is gathered
                                    // over the CPC link.
                                    delta.cpc_bytes += ENTRY_BYTES;
                                }
                            }
                            if ctx.scratch.marks.mark(u.index()) {
                                next.push(u);
                            }
                        }
                    }
                    _ => {
                        // Another worker's module, or a node that has never
                        // appeared in the edge stream (no outgoing edges).
                    }
                }
            }
        }
        delta
    }

    /// Answers a batch of general regular path queries with full cost
    /// accounting.
    ///
    /// Plain k-hop expressions (`.{k}` and concatenations of `.`) take the
    /// [`DistributedPimEngine::k_hop_batch`] fast path, whose cost model is
    /// untouched — same-seed experiment outputs do not move. Everything else
    /// is evaluated as an NFA product ([`DistributedPimEngine::nfa_product_batch`]).
    pub fn rpq_batch(
        &mut self,
        expr: &RpqExpr,
        sources: &[NodeId],
    ) -> (Vec<Vec<NodeId>>, QueryStats) {
        if let Some(k) = expr.as_k_hop() {
            return self.k_hop_batch(sources, k);
        }
        let nfa = Nfa::from_expr(expr);
        self.nfa_product_batch_impl(&nfa, sources, None)
    }

    /// [`DistributedPimEngine::rpq_batch`] plus the execution's dependency
    /// footprint (see [`DistributedPimEngine::k_hop_batch_tracked`]); k-hop
    /// shapes take the tracked fast path, everything else the tracked NFA
    /// product.
    pub fn rpq_batch_tracked(
        &mut self,
        expr: &RpqExpr,
        sources: &[NodeId],
    ) -> (Vec<Vec<NodeId>>, QueryStats, QueryDeps) {
        if let Some(k) = expr.as_k_hop() {
            return self.k_hop_batch_tracked(sources, k);
        }
        let nfa = Nfa::from_expr(expr);
        let mut deps = QueryDeps::default();
        let (results, stats) = self.nfa_product_batch_impl(&nfa, sources, Some(&mut deps));
        (results, stats, deps)
    }

    /// Answers a batch RPQ by **executing** the given plan strategy — the
    /// execution half of the `rpq::optimizer` contract.
    ///
    /// Served answers are byte-identical to
    /// [`DistributedPimEngine::rpq_batch`] under every strategy
    /// (`tests/plan_invariance.rs` and `tests/rpq_taxonomy.rs` prove it);
    /// only the simulated cost and workload counters differ.
    /// [`PlanStrategy::Forward`] *is* the canonical path — same code, same
    /// charges — and k-hop shapes always take it (plan choice is about label
    /// asymmetry, which `.{k}` does not have). The non-forward strategies run
    /// a sequential pruned product over the reverse adjacency index:
    ///
    /// * [`PlanStrategy::Bidirectional`] first sweeps the reversed automaton
    ///   backward over the in-adjacency rows to compute the *useful* product
    ///   pairs — those from which an accepting pair is still reachable — then
    ///   runs the forward product with its frontier restricted to useful
    ///   pairs. Every proper prefix pair of an accepting path is useful, so
    ///   pruning never drops an answer.
    /// * [`PlanStrategy::RareLabelSplit`] seeds the suffix automaton at the
    ///   pivot label's exact source set (from the reverse-maintained label
    ///   statistics), runs the prefix automaton pruned toward those pivots,
    ///   and joins the two halves on the host.
    ///
    /// A strategy that does not fit the expression (a split position with no
    /// mandatory exact pivot) falls back to the forward path.
    pub fn rpq_batch_planned(
        &mut self,
        expr: &RpqExpr,
        sources: &[NodeId],
        strategy: PlanStrategy,
    ) -> (Vec<Vec<NodeId>>, QueryStats) {
        match strategy {
            PlanStrategy::Forward => self.rpq_batch(expr, sources),
            _ if expr.as_k_hop().is_some() => self.rpq_batch(expr, sources),
            PlanStrategy::Bidirectional => {
                let nfa = Nfa::from_expr(expr);
                let mut backward = StatsDelta::new(self.config.pim.num_modules);
                let useful = self.useful_pairs(&nfa, None, &mut backward);
                self.pruned_product(&nfa, sources, Some(&useful), None, backward)
            }
            PlanStrategy::RareLabelSplit { split_at } => {
                let Some((prefix, suffix, pivot)) = optimizer::split_for(expr, split_at) else {
                    return self.rpq_batch(expr, sources);
                };
                self.split_product(&prefix, &suffix, pivot, sources)
            }
        }
    }

    /// All nodes with at least one `spec`-matching outgoing edge, ascending.
    ///
    /// Exact labels read the per-store label statistics — maintained
    /// incrementally by every mutation path, never by rescanning rows — whose
    /// distinct-source sets are exact under the one-store-per-row invariant.
    /// The any-label case walks the store row directories instead. Charged as
    /// one host-side pass over the gathered id list.
    fn spec_sources(&self, spec: LabelSpec, delta: &mut StatsDelta) -> Vec<NodeId> {
        let mut ids: Vec<NodeId> = Vec::new();
        match spec {
            LabelSpec::Exact(l) => {
                for store in &self.local_stores {
                    ids.extend(store.label_stats().sources_of(l));
                }
                ids.extend(self.host_store.label_stats().sources_of(l));
            }
            LabelSpec::Any => {
                for store in &self.local_stores {
                    for (src, row) in store.iter() {
                        if !row.is_empty() {
                            ids.push(src);
                        }
                    }
                }
                for (src, row) in self.host_store.iter() {
                    if !row.is_empty() {
                        ids.push(src);
                    }
                }
            }
        }
        ids.sort_unstable();
        ids.dedup();
        delta.host_time += self.pim.host_sequential_read_cost(ids.len() as u64 * ID_BYTES);
        ids
    }

    /// The in-adjacency row of `node`, read from wherever the node's forward
    /// row lives (the colocation invariant).
    fn rev_row_of(&self, node: NodeId) -> &[(NodeId, Label)] {
        match self.owner(node) {
            Some(PartitionId::Host) => self.host_store.rev_row(node).unwrap_or(&[]),
            Some(PartitionId::Pim(m)) => self.local_stores[m as usize].rev_row(node).unwrap_or(&[]),
            None => &[],
        }
    }

    /// Charges one backward scan of `node`'s reverse row into `delta`
    /// (id + label arrays, like the forward label-constrained scans).
    fn charge_rev_scan(&self, node: NodeId, delta: &mut StatsDelta) {
        let bytes = self.rev_row_of(node).len() as u64 * (ID_BYTES + LABEL_BYTES);
        match self.owner(node) {
            Some(PartitionId::Host) => {
                let resident = self.host_store.live_bytes() + self.host_store.rev_bytes();
                delta.host_time += self.pim.host_random_access_cost(1, resident)
                    + self.pim.host_sequential_read_cost(bytes);
            }
            Some(PartitionId::Pim(m)) => {
                delta.per_module[m as usize] += self.pim.pim_hash_lookup_cost(bytes);
            }
            None => {}
        }
    }

    /// The bidirectional plan's *useful set*: every product pair
    /// `(node, state)` from which at least one more transition can reach an
    /// accepting pair, computed by sweeping the reversed automaton backward
    /// over the in-adjacency index. With `accept_nodes` given (the split
    /// plan's prefix leg), acceptance is additionally restricted to those
    /// nodes, so the base seeds come from their reverse rows.
    ///
    /// Soundness of the downstream pruning: on any accepting product path,
    /// every pair except the final accepting one has a transition into the
    /// rest of the path, so it is in the useful set — restricting forward
    /// frontiers to useful pairs drops no answer. The computation is
    /// sequential and touches only sorted rows and sorted seed lists, so the
    /// charges it accumulates are deterministic; the set itself is a fixpoint
    /// (discovery order is irrelevant to membership).
    fn useful_pairs(
        &self,
        nfa: &Nfa,
        accept_nodes: Option<&[NodeId]>,
        delta: &mut StatsDelta,
    ) -> HashSet<(NodeId, u32)> {
        let rev = nfa.reversed_transitions();
        let mut useful: HashSet<(NodeId, u32)> = HashSet::new();
        let mut work: Vec<(NodeId, u32)> = Vec::new();

        // Base: pairs one matching transition away from an accepting pair.
        for (q_acc, rev_row) in rev.iter().enumerate() {
            if !nfa.is_accepting(q_acc) {
                continue;
            }
            for &(spec, from) in rev_row {
                match accept_nodes {
                    None => {
                        for n in self.spec_sources(spec, delta) {
                            if useful.insert((n, from as u32)) {
                                work.push((n, from as u32));
                                delta.cpc_bytes += ENTRY_BYTES + STATE_BYTES;
                            }
                        }
                    }
                    Some(ms) => {
                        for &m in ms {
                            self.charge_rev_scan(m, delta);
                            for &(n, label) in self.rev_row_of(m) {
                                if spec.matches(label) && useful.insert((n, from as u32)) {
                                    work.push((n, from as u32));
                                    delta.cpc_bytes += ENTRY_BYTES + STATE_BYTES;
                                }
                            }
                        }
                    }
                }
            }
        }

        // Closure: walk product transitions backward over reverse rows.
        while let Some((n, q)) = work.pop() {
            for &(spec, p) in &rev[q as usize] {
                self.charge_rev_scan(n, delta);
                for &(m, label) in self.rev_row_of(n) {
                    if spec.matches(label) && useful.insert((m, p as u32)) {
                        work.push((m, p as u32));
                        delta.cpc_bytes += ENTRY_BYTES + STATE_BYTES;
                    }
                }
            }
        }
        useful
    }

    /// The sequential pruned NFA product shared by the executed non-forward
    /// plans: the canonical forward expansion with the frontier restricted to
    /// `useful` pairs (`None` = no pruning, the split plan's suffix leg) and,
    /// for the split prefix leg, acceptance restricted to `accept_nodes`.
    ///
    /// Per-hop charges mirror the canonical loop's formulas — scan bytes per
    /// expanded row, routed bytes per matched transition, the 25-instruction
    /// host re-route per inter-PIM message, the final host reduce — and the
    /// caller's `preamble` delta (the backward useful-set sweep plus seed
    /// gathering) is charged up front as one aggregate bulk phase.
    fn pruned_product(
        &mut self,
        nfa: &Nfa,
        sources: &[NodeId],
        useful: Option<&HashSet<(NodeId, u32)>>,
        accept_nodes: Option<&HashSet<NodeId>>,
        preamble: StatsDelta,
    ) -> (Vec<Vec<NodeId>>, QueryStats) {
        let module_count = self.config.pim.num_modules;
        let host_resident_bytes = self.host_store.live_bytes();
        let mut timeline = Timeline::new();

        // The backward sweep: one aggregate bulk phase (its discovered pairs
        // were gathered to the coordinating host over the CPC link).
        let pre_pim = self.pim.parallel_step(&preamble.per_module);
        timeline.charge(Phase::PimCompute, pre_pim);
        timeline.charge(Phase::HostCompute, preamble.host_time);
        timeline.charge(Phase::Cpc, self.pim.cpc_transfer_cost(preamble.cpc_bytes));
        timeline.transfers.record_pim_to_cpu(preamble.cpc_bytes, 1);

        // Dispatch: every PIM-resident source ships with the start state.
        let dispatch_bytes: u64 =
            sources.iter().filter(|&&s| matches!(self.owner(s), Some(PartitionId::Pim(_)))).count()
                as u64
                * (ENTRY_BYTES + STATE_BYTES);
        timeline.charge(Phase::Cpc, self.pim.cpc_transfer_cost(dispatch_bytes));
        timeline.transfers.record_cpu_to_pim(dispatch_bytes, 1);

        let start = nfa.start() as u32;
        let accepts_empty = nfa.accepts_empty();
        let mut visited: Vec<HashSet<(NodeId, u32)>> = sources
            .iter()
            .map(|&s| {
                let mut seen = HashSet::new();
                seen.insert((s, start));
                seen
            })
            .collect();
        let mut results: Vec<Vec<NodeId>> = sources
            .iter()
            .map(|&s| {
                if accepts_empty && accept_nodes.is_none_or(|m| m.contains(&s)) {
                    vec![s]
                } else {
                    Vec::new()
                }
            })
            .collect();
        let mut frontiers: Vec<Vec<(NodeId, u32)>> = sources
            .iter()
            .map(|&s| {
                // A start pair outside the useful set can only contribute the
                // empty path, already reported above.
                if useful.is_none_or(|u| u.contains(&(s, start))) {
                    vec![(s, start)]
                } else {
                    Vec::new()
                }
            })
            .collect();

        let mut hops = 0usize;
        let mut expansions = 0usize;
        let mut candidates: Vec<(NodeId, u32)> = Vec::new();

        while frontiers.iter().any(|f| !f.is_empty()) {
            hops += 1;
            let frontier_entries = frontiers.iter().map(Vec::len).sum::<usize>();
            expansions += frontier_entries;
            let mut delta = StatsDelta::new(module_count);
            let mut new_frontiers: Vec<Vec<(NodeId, u32)>> = Vec::with_capacity(frontiers.len());

            for (q, frontier) in frontiers.iter().enumerate() {
                candidates.clear();
                for &(v, state) in frontier {
                    let transitions = nfa.transitions_from(state as usize);
                    match self.owner(v) {
                        Some(PartitionId::Host) => {
                            let scan_bytes =
                                self.host_store.slot_count(v) as u64 * (ID_BYTES + LABEL_BYTES);
                            delta.host_time +=
                                self.pim.host_random_access_cost(1, host_resident_bytes)
                                    + self.pim.host_sequential_read_cost(scan_bytes);
                            for (u, label) in self.host_store.neighbors_iter(v) {
                                for &(spec, next_state) in transitions {
                                    if !spec.matches(label) {
                                        continue;
                                    }
                                    if matches!(self.owner(u), Some(PartitionId::Pim(_))) {
                                        delta.cpc_bytes += ENTRY_BYTES + STATE_BYTES;
                                    }
                                    let pair = (u, next_state as u32);
                                    if !visited[q].contains(&pair) {
                                        candidates.push(pair);
                                    }
                                }
                            }
                        }
                        Some(PartitionId::Pim(m)) => {
                            let m = m as usize;
                            let row = self.local_stores[m].row(v).unwrap_or(&[]);
                            let scan_bytes = row.len() as u64 * (ID_BYTES + LABEL_BYTES);
                            delta.per_module[m] += self.pim.pim_hash_lookup_cost(scan_bytes);
                            for &(u, label) in row {
                                for &(spec, next_state) in transitions {
                                    if !spec.matches(label) {
                                        continue;
                                    }
                                    match self.owner(u) {
                                        Some(PartitionId::Pim(m2)) if m2 as usize == m => {}
                                        Some(PartitionId::Pim(_)) => {
                                            delta.ipc_bytes += ENTRY_BYTES + STATE_BYTES;
                                            delta.ipc_messages += 1;
                                        }
                                        _ => {
                                            delta.cpc_bytes += ENTRY_BYTES + STATE_BYTES;
                                        }
                                    }
                                    let pair = (u, next_state as u32);
                                    if !visited[q].contains(&pair) {
                                        candidates.push(pair);
                                    }
                                }
                            }
                        }
                        _ => {}
                    }
                }
                candidates.sort_unstable();
                candidates.dedup();
                let mut next: Vec<(NodeId, u32)> = Vec::new();
                for &pair in &candidates {
                    visited[q].insert(pair);
                    let (u, state) = pair;
                    if nfa.is_accepting(state as usize)
                        && accept_nodes.is_none_or(|m| m.contains(&u))
                    {
                        results[q].push(u);
                    }
                    if useful.is_none_or(|set| set.contains(&pair)) {
                        next.push(pair);
                    }
                }
                new_frontiers.push(next);
            }

            let pim_time = self.pim.parallel_step(&delta.per_module);
            timeline.charge(Phase::PimCompute, pim_time);
            timeline.charge(Phase::HostCompute, delta.host_time);
            timeline.charge(Phase::Cpc, self.pim.cpc_transfer_cost(delta.cpc_bytes));
            timeline.charge(
                Phase::Ipc,
                self.pim.ipc_transfer_cost(delta.ipc_bytes)
                    + self.pim.host_instructions_cost(delta.ipc_messages * 25),
            );
            timeline.transfers.record_pim_to_cpu(delta.cpc_bytes, 1);
            timeline.transfers.record_inter_pim(delta.ipc_bytes, delta.ipc_messages);
            frontiers = new_frontiers;
        }

        for r in results.iter_mut() {
            r.sort_unstable();
            r.dedup();
        }
        let matched_pairs: usize = results.iter().map(Vec::len).sum();
        let gather_bytes = matched_pairs as u64 * ENTRY_BYTES;
        timeline.charge(Phase::Cpc, self.pim.cpc_transfer_cost(gather_bytes));
        timeline.transfers.record_pim_to_cpu(gather_bytes, 1);
        timeline.charge(
            Phase::Reduce,
            self.pim.host_sequential_read_cost(gather_bytes)
                + self.pim.host_instructions_cost(matched_pairs as u64 * 8),
        );

        let stats =
            QueryStats { timeline, batch_size: sources.len(), hops, matched_pairs, expansions };
        (results, stats)
    }

    /// Executes the rare-label-split plan: the suffix automaton runs forward
    /// (unpruned) from the pivot label's exact source set, the prefix
    /// automaton runs pruned from the query sources with acceptance
    /// restricted to those pivot sources, and the per-source answers are
    /// joined on the host (charged as one reduce pass over the rows read out
    /// of the suffix answer table).
    fn split_product(
        &mut self,
        prefix: &RpqExpr,
        suffix: &RpqExpr,
        pivot: Label,
        sources: &[NodeId],
    ) -> (Vec<Vec<NodeId>>, QueryStats) {
        let module_count = self.config.pim.num_modules;
        let mut seed_delta = StatsDelta::new(module_count);
        let pivots = self.spec_sources(LabelSpec::Exact(pivot), &mut seed_delta);
        let suffix_nfa = Nfa::from_expr(suffix);
        let prefix_nfa = Nfa::from_expr(prefix);

        // Suffix leg: full forward product from the pivot sources (every
        // pivot row feeds the join, so there is nothing to prune).
        let (suffix_results, suffix_stats) =
            self.pruned_product(&suffix_nfa, &pivots, None, None, seed_delta);

        // Prefix leg: pruned toward the pivots — only pairs that can still
        // reach an accepting pair *at a pivot node* stay in the frontier.
        let mut backward = StatsDelta::new(module_count);
        let prefix_useful = self.useful_pairs(&prefix_nfa, Some(&pivots), &mut backward);
        let accept_set: HashSet<NodeId> = pivots.iter().copied().collect();
        let (mid_results, prefix_stats) = self.pruned_product(
            &prefix_nfa,
            sources,
            Some(&prefix_useful),
            Some(&accept_set),
            backward,
        );

        // Join on the host: each source's answer is the union of the suffix
        // answers of the pivots its prefix reached.
        let mut pivot_index: std::collections::HashMap<NodeId, usize> =
            std::collections::HashMap::new();
        for (i, &m) in pivots.iter().enumerate() {
            pivot_index.insert(m, i);
        }
        let mut join_bytes = 0u64;
        let mut results: Vec<Vec<NodeId>> = Vec::with_capacity(sources.len());
        for mids in &mid_results {
            let mut ans: Vec<NodeId> = Vec::new();
            for m in mids {
                if let Some(&i) = pivot_index.get(m) {
                    ans.extend_from_slice(&suffix_results[i]);
                    join_bytes += suffix_results[i].len() as u64 * ID_BYTES;
                }
            }
            ans.sort_unstable();
            ans.dedup();
            results.push(ans);
        }

        let matched_pairs: usize = results.iter().map(Vec::len).sum();
        let mut timeline = suffix_stats.timeline;
        timeline += prefix_stats.timeline;
        timeline.charge(
            Phase::Reduce,
            self.pim.host_sequential_read_cost(join_bytes)
                + self.pim.host_instructions_cost(matched_pairs as u64 * 8),
        );
        let stats = QueryStats {
            timeline,
            batch_size: sources.len(),
            hops: suffix_stats.hops.max(prefix_stats.hops),
            matched_pairs,
            expansions: suffix_stats.expansions + prefix_stats.expansions,
        };
        (results, stats)
    }

    /// Batch NFA-product evaluation: the generalisation of the k-hop loop to
    /// arbitrary label automata.
    ///
    /// Frontier entries become `(node, nfa_state)` pairs — the product of the
    /// data graph and the query automaton — deduplicated per query with a
    /// *global* visited set over `state × node` (required for termination on
    /// cyclic graphs under `*`/`+`). The per-hop structure is identical to
    /// [`DistributedPimEngine::k_hop_batch`]: each entry is expanded by the
    /// computing node owning its row, every produced entry that leaves the
    /// module is charged to the inter-PIM or CPC bus (`ENTRY_BYTES` plus
    /// `STATE_BYTES` for the automaton state riding along), each hop's PIM
    /// latency is the slowest module, and the final result is gathered and
    /// reduced on the host. Label-constrained row scans read both the id
    /// array and the label array, so they cost
    /// `row_len × (ID_BYTES + LABEL_BYTES)` instead of the k-hop loop's
    /// id-array-only `row_len × ID_BYTES`.
    ///
    /// A node is reported for a query as soon as *some* visited product state
    /// is accepting; if the automaton accepts the empty path the source
    /// itself is part of the answer, as in [`rpq::ReferenceEvaluator`].
    pub fn nfa_product_batch(
        &mut self,
        nfa: &Nfa,
        sources: &[NodeId],
    ) -> (Vec<Vec<NodeId>>, QueryStats) {
        self.nfa_product_batch_impl(nfa, sources, None)
    }

    /// The shared NFA-product loop; the tracked entry point passes a deps
    /// accumulator filled from the per-query visited sets (which contain
    /// every visited product pair, sources included) and the merged per-hop
    /// deltas (host lane).
    fn nfa_product_batch_impl(
        &mut self,
        nfa: &Nfa,
        sources: &[NodeId],
        mut track: Option<&mut QueryDeps>,
    ) -> (Vec<Vec<NodeId>>, QueryStats) {
        let module_count = self.config.pim.num_modules;
        let host_resident_bytes: u64 = self.host_store.live_bytes();
        let mut timeline = Timeline::new();
        let mut expansions = 0usize;

        // Dispatch: every PIM-resident source is shipped to its module
        // together with the automaton start state.
        let dispatch_bytes: u64 =
            sources.iter().filter(|&&s| matches!(self.owner(s), Some(PartitionId::Pim(_)))).count()
                as u64
                * (ENTRY_BYTES + STATE_BYTES);
        timeline.charge(Phase::Cpc, self.pim.cpc_transfer_cost(dispatch_bytes));
        timeline.transfers.record_cpu_to_pim(dispatch_bytes, 1);

        // Per-query visited sets are hash sets, not the k-hop loop's
        // `EpochMarks`: those dedup per `(query, hop)` generation, but the
        // product traversal needs every query's set to *persist across hops*
        // simultaneously, and one shared generation-stamped array cannot hold
        // `batch` interleaved persistent sets (per-query stamp arrays would
        // cost `nodes × states × batch` memory, where hash sets stay
        // proportional to what each query actually visits).
        let start = nfa.start() as u32;
        let mut visited: Vec<HashSet<(NodeId, u32)>> = sources
            .iter()
            .map(|&s| {
                let mut seen = HashSet::new();
                seen.insert((s, start));
                seen
            })
            .collect();
        let mut frontiers: Vec<Vec<(NodeId, u32)>> =
            sources.iter().map(|&s| vec![(s, start)]).collect();
        let mut next_frontiers: Vec<Vec<(NodeId, u32)>> = vec![Vec::new(); frontiers.len()];
        let mut hops = 0usize;

        let module_ranges = self.worker_layout();
        let mut ctxs = self.take_nfa_ctxs(module_ranges.len());

        while frontiers.iter().any(|f| !f.is_empty()) {
            hops += 1;
            let frontier_entries = frontiers.iter().map(Vec::len).sum::<usize>();
            expansions += frontier_entries;
            for buf in next_frontiers.iter_mut() {
                buf.clear();
            }

            // ---- execute: workers expand their modules' product entries,
            // reading the per-query visited sets as an immutable snapshot
            // (they are only extended at the merge barrier below). Like the
            // k-hop loop, the worker count is clamped by the hop's frontier
            // size so long-tail closure hops skip the spawn/join barrier.
            let active = active_workers(&module_ranges, frontier_entries);
            let hop_ranges = chunk_ranges(module_count, active);
            for ctx in &mut ctxs[..active] {
                ctx.nexts.resize(frontiers.len(), Vec::new());
            }
            let this: &DistributedPimEngine = self;
            let deltas = this.pool.run_with(&mut ctxs[..active], |worker, ctx| {
                this.nfa_hop_worker(
                    &hop_ranges[worker],
                    worker == 0,
                    nfa,
                    &frontiers,
                    &visited,
                    host_resident_bytes,
                    ctx,
                )
            });

            // ---- merge: id-ordered delta reduction, then the frontier
            // union. Candidates were filtered against the visited snapshot
            // and deduplicated per worker, so after the sorted cross-worker
            // dedup every surviving pair enters the visited set — producing
            // exactly the sequential loop's sorted, duplicate-free next
            // frontier and exactly its visited-set growth.
            let mut delta = StatsDelta::new(module_count);
            for worker_delta in &deltas {
                delta.merge(worker_delta);
            }
            let pim_time = self.pim.parallel_step(&delta.per_module);
            timeline.charge(Phase::PimCompute, pim_time);
            timeline.charge(Phase::HostCompute, delta.host_time);
            timeline.charge(Phase::Cpc, self.pim.cpc_transfer_cost(delta.cpc_bytes));
            timeline.charge(
                Phase::Ipc,
                self.pim.ipc_transfer_cost(delta.ipc_bytes)
                    + self.pim.host_instructions_cost(delta.ipc_messages * 25),
            );
            timeline.transfers.record_pim_to_cpu(delta.cpc_bytes, 1);
            timeline.transfers.record_inter_pim(delta.ipc_bytes, delta.ipc_messages);

            for (q, next) in next_frontiers.iter_mut().enumerate() {
                for ctx in &mut ctxs[..active] {
                    next.append(&mut ctx.nexts[q]);
                }
                next.sort_unstable();
                next.dedup();
                for &pair in next.iter() {
                    visited[q].insert(pair);
                }
            }
            if let Some(deps) = track.as_deref_mut() {
                // Merged-delta host time is thread-count invariant.
                deps.host_lane |= !delta.host_time.is_zero();
            }
            std::mem::swap(&mut frontiers, &mut next_frontiers);
        }
        self.put_nfa_ctxs(ctxs);

        if let Some(deps) = track {
            // The visited sets hold every reached product pair — sources
            // included — so they are exactly the node-dependency set. The
            // mask union is commutative, so hash-set iteration order is
            // irrelevant.
            for seen in &visited {
                // moctopus-lint: allow(hash-iter-order, reason = "set-union into DepMask is commutative; see comment above")
                for &(node, _) in seen {
                    deps.nodes.insert(node);
                }
            }
        }

        // Every visited accepting product state contributes its node to the
        // query's answer; a node reached in several accepting states is
        // reported once.
        let results: Vec<Vec<NodeId>> = visited
            .iter()
            .map(|seen| {
                // moctopus-lint: allow(hash-iter-order, reason = "collected then sort_unstable + dedup below before use")
                let mut nodes: Vec<NodeId> = seen
                    .iter()
                    .filter(|&&(_, state)| nfa.is_accepting(state as usize))
                    .map(|&(node, _)| node)
                    .collect();
                nodes.sort_unstable();
                nodes.dedup();
                nodes
            })
            .collect();

        // Reduction (`mwait`): gather every query's accepted destinations to
        // the host and merge the per-module partial results.
        let matched_pairs: usize = results.iter().map(Vec::len).sum();
        let gather_bytes = matched_pairs as u64 * ENTRY_BYTES;
        timeline.charge(Phase::Cpc, self.pim.cpc_transfer_cost(gather_bytes));
        timeline.transfers.record_pim_to_cpu(gather_bytes, 1);
        timeline.charge(
            Phase::Reduce,
            self.pim.host_sequential_read_cost(gather_bytes)
                + self.pim.host_instructions_cost(matched_pairs as u64 * 8),
        );

        let stats =
            QueryStats { timeline, batch_size: sources.len(), hops, matched_pairs, expansions };
        (results, stats)
    }

    /// One worker's share of an NFA-product execute stage (the labelled
    /// generalisation of [`DistributedPimEngine::khop_hop_worker`]).
    ///
    /// Same ownership discipline: the worker walks every query's frontier in
    /// global order, expands only product entries whose node row lives on its
    /// modules (or the host for the host-lane worker), and charges into its
    /// private delta. A candidate `(node, state)` pair is emitted when it is
    /// new to both the query's visited snapshot (immutable during the hop)
    /// and the worker's per-query local set; byte charges are per matched
    /// transition, unconditional, exactly as in the sequential loop.
    #[allow(clippy::too_many_arguments)]
    fn nfa_hop_worker(
        &self,
        my_modules: &Range<usize>,
        host_lane: bool,
        nfa: &Nfa,
        frontiers: &[Vec<(NodeId, u32)>],
        visited: &[HashSet<(NodeId, u32)>],
        host_resident_bytes: u64,
        ctx: &mut NfaHopCtx,
    ) -> StatsDelta {
        let mut delta = StatsDelta::new(self.config.pim.num_modules);
        for (q, frontier) in frontiers.iter().enumerate() {
            let next = &mut ctx.nexts[q];
            let snapshot = &visited[q];
            ctx.seen.clear();
            for &(v, state) in frontier {
                let transitions = nfa.transitions_from(state as usize);
                match self.owner(v) {
                    Some(PartitionId::Host) if host_lane => {
                        let scan_bytes =
                            self.host_store.slot_count(v) as u64 * (ID_BYTES + LABEL_BYTES);
                        delta.host_time += self.pim.host_random_access_cost(1, host_resident_bytes)
                            + self.pim.host_sequential_read_cost(scan_bytes);
                        for (u, label) in self.host_store.neighbors_iter(v) {
                            for &(spec, next_state) in transitions {
                                if !spec.matches(label) {
                                    continue;
                                }
                                if matches!(self.owner(u), Some(PartitionId::Pim(_))) {
                                    delta.cpc_bytes += ENTRY_BYTES + STATE_BYTES;
                                }
                                // Local-set first: duplicate productions (the
                                // common case under closures) cost one hash
                                // probe; the visited snapshot is consulted
                                // only on first local sight.
                                let pair = (u, next_state as u32);
                                if ctx.seen.insert(pair) && !snapshot.contains(&pair) {
                                    next.push(pair);
                                }
                            }
                        }
                    }
                    Some(PartitionId::Pim(m)) if my_modules.contains(&(m as usize)) => {
                        let m = m as usize;
                        let row = self.local_stores[m].row(v).unwrap_or(&[]);
                        let scan_bytes = row.len() as u64 * (ID_BYTES + LABEL_BYTES);
                        delta.per_module[m] += self.pim.pim_hash_lookup_cost(scan_bytes);
                        for &(u, label) in row {
                            for &(spec, next_state) in transitions {
                                if !spec.matches(label) {
                                    continue;
                                }
                                match self.owner(u) {
                                    Some(PartitionId::Pim(m2)) if m2 as usize == m => {}
                                    Some(PartitionId::Pim(_)) => {
                                        delta.ipc_bytes += ENTRY_BYTES + STATE_BYTES;
                                        delta.ipc_messages += 1;
                                    }
                                    _ => {
                                        delta.cpc_bytes += ENTRY_BYTES + STATE_BYTES;
                                    }
                                }
                                let pair = (u, next_state as u32);
                                if ctx.seen.insert(pair) && !snapshot.contains(&pair) {
                                    next.push(pair);
                                }
                            }
                        }
                    }
                    _ => {
                        // Another worker's module, or a node that has never
                        // appeared in the edge stream (no outgoing edges).
                    }
                }
            }
        }
        delta
    }

    // ------------------------------------------------------------------
    // Refinement and inspection
    // ------------------------------------------------------------------

    /// Reconstructs the logical whole-graph view from the distributed stores.
    ///
    /// Used by the refinement pass and by tests; the real system never needs
    /// this because detection happens inside the modules during path matching.
    pub fn graph_view(&self) -> AdjacencyGraph {
        let mut g = AdjacencyGraph::new();
        for store in &self.local_stores {
            for (src, row) in store.iter() {
                for &(dst, label) in row {
                    g.insert_edge(src, dst, label);
                }
            }
        }
        for (src, row) in self.host_store.iter() {
            for (dst, label) in row {
                g.insert_edge(src, dst, label);
            }
        }
        g
    }

    /// Runs the adaptive refinement: detects incorrectly partitioned nodes,
    /// migrates their rows to the module holding most of their neighbours, and
    /// charges the migration traffic.
    ///
    /// In the real system detection piggybacks on every batch of path-matching
    /// queries, so the placement keeps improving over time; this method models
    /// that steady state by iterating the detect-and-migrate pass until it
    /// converges (at most a handful of rounds). Returns the combined migration
    /// report and the simulated time of the whole pass. For the hash placement
    /// policy this is a no-op (the contrast system has no refinement).
    pub fn refine_locality(&mut self) -> (MigrationReport, Timeline) {
        const MAX_ROUNDS: usize = 4;
        let mut timeline = Timeline::new();
        let mut combined = MigrationReport::default();
        if matches!(self.policy, PlacementPolicy::Hash(_)) {
            return (combined, timeline);
        }
        // Refinement rounds only move rows between stores — the logical
        // topology never changes — so one materialised view serves every
        // round (the pass used to rebuild it from scratch up to four times).
        let view = self.graph_view();
        for _ in 0..MAX_ROUNDS {
            let report = match &mut self.policy {
                PlacementPolicy::GreedyAdaptive(p) => p.refine(&view),
                PlacementPolicy::Hash(_) => unreachable!("hash policy returned above"),
            };
            let mut ipc_bytes = 0u64;
            for &(node, from, to) in &report.migrations {
                let (PartitionId::Pim(from), PartitionId::Pim(to)) = (from, to) else { continue };
                if let Some(row) = self.local_stores[from as usize].take_row(node) {
                    let bytes = row.len() as u64 * ID_BYTES + row_label_wire_bytes(&row) + ID_BYTES;
                    ipc_bytes += bytes;
                    self.local_stores[to as usize].install_row(node, row);
                }
                // The reverse row migrates with the node (colocation
                // invariant), charged like the forward row.
                if let Some(rev) = self.local_stores[from as usize].take_rev_row(node) {
                    let bytes = rev.len() as u64 * ID_BYTES + row_label_wire_bytes(&rev) + ID_BYTES;
                    ipc_bytes += bytes;
                    self.local_stores[to as usize].install_rev_row(node, rev);
                }
            }
            timeline.charge(Phase::Ipc, self.pim.ipc_transfer_cost(ipc_bytes));
            timeline.transfers.record_inter_pim(ipc_bytes, report.migrated as u64);
            let done = report.migrated == 0;
            combined.examined += report.examined;
            combined.migrated += report.migrated;
            combined.migrations.extend(report.migrations);
            if done {
                break;
            }
        }
        (combined, timeline)
    }

    /// Partition-quality metrics of the current placement.
    pub fn partition_metrics(&self) -> PartitionMetrics {
        PartitionMetrics::compute(&self.graph_view(), self.policy.assignment())
    }

    // ------------------------------------------------------------------
    // Durable snapshots
    // ------------------------------------------------------------------

    /// Exports the engine's complete storage plane as a canonical
    /// [`SnapshotState`].
    ///
    /// The image captures everything that drives future behaviour: each
    /// module's local rows (and capacity limit), the host heterogeneous rows
    /// with their exact slot layout and free-list pop order (slot reuse and
    /// row-scan costs depend on both), the raw partition-assignment vector,
    /// and — under the greedy-adaptive policy — the degree table and
    /// promotion log. Accumulated simulator busy time is deliberately *not*
    /// part of the image: it only feeds the cosmetic
    /// [`DistributedPimEngine::load_imbalance`] metric, never a future result
    /// or charge.
    pub fn export_storage(&self) -> SnapshotState {
        let local_modules = self
            .local_stores
            .iter()
            .map(|s| LocalModuleSnapshot {
                rows: s.export_rows(),
                capacity_bytes: s.capacity_bytes(),
            })
            .collect();
        let host_rows = self
            .host_store
            .export_rows()
            .into_iter()
            .map(|(node, slots, free)| HostRowSnapshot { node, slots, free })
            .collect();
        let (degrees, promotions) = match &self.policy {
            PlacementPolicy::GreedyAdaptive(p) => {
                (p.degrees().export_entries(), p.promotions().to_vec())
            }
            PlacementPolicy::Hash(_) => (Vec::new(), Vec::new()),
        };
        SnapshotState {
            last_seq: 0,
            edge_count: self.edge_count as u64,
            local_modules,
            host_rows,
            assignment_slots: self.policy.assignment().export_slots(),
            degrees,
            promotions,
            adjacency_rows: Vec::new(),
            adjacency_id_bound: 0,
        }
    }

    /// Replaces the engine's storage plane with a previously exported image.
    ///
    /// Returns `false` — leaving the engine untouched — when the snapshot was
    /// written under a different PIM module count (its per-module section
    /// cannot map onto this configuration). The placement policy *kind* is
    /// taken from the live engine; only its state is replaced.
    pub fn restore_storage(&mut self, snapshot: &SnapshotState) -> bool {
        if snapshot.local_modules.len() != self.config.pim.num_modules {
            return false;
        }
        self.local_stores = snapshot
            .local_modules
            .iter()
            .map(|m| LocalGraphStorage::from_sorted_rows(m.rows.clone(), m.capacity_bytes))
            .collect();
        self.host_store = HeterogeneousStorage::from_rows(
            snapshot.host_rows.iter().map(|r| (r.node, r.slots.clone(), r.free.clone())).collect(),
        );
        self.policy = match &self.policy {
            PlacementPolicy::GreedyAdaptive(p) => {
                PlacementPolicy::GreedyAdaptive(GreedyAdaptivePartitioner::from_snapshot_parts(
                    *p.config(),
                    snapshot.assignment_slots.clone(),
                    snapshot.degrees.clone(),
                    snapshot.promotions.clone(),
                ))
            }
            PlacementPolicy::Hash(_) => {
                PlacementPolicy::Hash(HashPartitioner::from_snapshot_parts(
                    self.config.pim.num_modules,
                    snapshot.assignment_slots.clone(),
                ))
            }
        };
        self.edge_count = snapshot.edge_count as usize;
        self.rebuild_rev_rows();
        true
    }

    /// Deterministically reconstructs the in-adjacency secondary index (and
    /// its reverse label statistics) from freshly restored forward rows:
    /// every stored edge's reverse entry is routed to the destination row's
    /// owner under the restored assignment — exactly where incremental
    /// maintenance would have put it. Snapshots never carry reverse rows
    /// (see STORAGE.md): the stores keep them sorted on insert and every
    /// edge lives in exactly one forward store, so the rebuilt index is
    /// independent of the iteration order used here.
    fn rebuild_rev_rows(&mut self) {
        let mut edges: Vec<(NodeId, NodeId, Label)> = Vec::new();
        for store in &self.local_stores {
            for (src, row) in store.iter() {
                for &(dst, label) in row {
                    edges.push((src, dst, label));
                }
            }
        }
        for (src, row) in self.host_store.iter() {
            for (dst, label) in row {
                edges.push((src, dst, label));
            }
        }
        for (src, dst, label) in edges {
            match self.owner(dst) {
                Some(PartitionId::Host) => {
                    let _ = self.host_store.insert_rev_edge(dst, src, label);
                }
                Some(PartitionId::Pim(m)) => {
                    let _ = self.local_stores[m as usize].insert_rev_edge(dst, src, label);
                }
                None => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph_partition::GreedyAdaptivePartitioner;
    use pim_sim::SimTime;

    fn moctopus_engine() -> DistributedPimEngine {
        let cfg = MoctopusConfig::small_test();
        let policy = PlacementPolicy::GreedyAdaptive(GreedyAdaptivePartitioner::with_config(
            cfg.partitioner_config(),
        ));
        DistributedPimEngine::new(cfg, policy)
    }

    fn hash_engine() -> DistributedPimEngine {
        let cfg = MoctopusConfig::small_test();
        let policy = PlacementPolicy::Hash(HashPartitioner::new(cfg.pim.num_modules));
        DistributedPimEngine::new(cfg, policy)
    }

    fn ring_edges(n: u64) -> Vec<(NodeId, NodeId)> {
        (0..n).map(|i| (NodeId(i), NodeId((i + 1) % n))).collect()
    }

    #[test]
    fn insert_and_query_a_ring() {
        let mut e = moctopus_engine();
        let stats = e.insert_edges(&ring_edges(32));
        assert_eq!(stats.applied, 32);
        assert_eq!(e.edge_count(), 32);
        assert!(stats.latency() > SimTime::ZERO);

        let (results, qstats) = e.k_hop_batch(&[NodeId(0), NodeId(30)], 3);
        assert_eq!(results[0], vec![NodeId(3)]);
        assert_eq!(results[1], vec![NodeId(1)]);
        assert_eq!(qstats.batch_size, 2);
        assert_eq!(qstats.hops, 3);
        assert_eq!(qstats.matched_pairs, 2);
        assert!(qstats.latency() > SimTime::ZERO);
    }

    #[test]
    fn duplicate_inserts_are_not_applied_twice() {
        let mut e = moctopus_engine();
        e.insert_edges(&ring_edges(8));
        let stats = e.insert_edges(&ring_edges(8));
        assert_eq!(stats.applied, 0);
        assert_eq!(e.edge_count(), 8);
    }

    #[test]
    fn delete_removes_edges_and_affects_queries() {
        let mut e = moctopus_engine();
        e.insert_edges(&ring_edges(8));
        let del = e.delete_edges(&[(NodeId(0), NodeId(1))]);
        assert_eq!(del.applied, 1);
        assert_eq!(e.edge_count(), 7);
        let (results, _) = e.k_hop_batch(&[NodeId(0)], 1);
        assert!(results[0].is_empty());
        // Deleting a missing edge is a no-op.
        let del2 = e.delete_edges(&[(NodeId(0), NodeId(1))]);
        assert_eq!(del2.applied, 0);
    }

    #[test]
    fn high_degree_nodes_move_to_the_host_store() {
        let mut e = moctopus_engine();
        let hub_edges: Vec<(NodeId, NodeId)> =
            (1..=20u64).map(|i| (NodeId(0), NodeId(i))).collect();
        e.insert_edges(&hub_edges);
        assert_eq!(e.assignment().partition_of(NodeId(0)), Some(PartitionId::Host));
        assert_eq!(e.host_row_count(), 1);
        // The hub's row is complete on the host: a 1-hop query returns all 20.
        let (results, _) = e.k_hop_batch(&[NodeId(0)], 1);
        assert_eq!(results[0].len(), 20);
    }

    /// Merged per-label statistics stay incremental across the engine's
    /// structural paths — hub promotion to the host store, locality-driven
    /// row migration, deletes on both lanes — matching a from-scratch
    /// rebuild (the logical graph view populates its own table from zero)
    /// on **every** counter exactly: with reverse rows colocated at the
    /// destination's owner, distinct-target sets live in exactly one store
    /// each and summed counts are exact (they used to be an
    /// over-approximation band).
    #[test]
    fn label_stats_stay_incremental_across_promotion_and_migration() {
        let check = |e: &DistributedPimEngine, phase: &str| {
            let got = e.label_stats();
            assert_eq!(got.total_edges as usize, e.edge_count(), "{phase}: total_edges drifted");
            let want = e.graph_view().label_stats().snapshot();
            assert_eq!(got.per_label.len(), want.per_label.len(), "{phase}: label sets differ");
            for (&(l, g), &(lw, w)) in got.per_label.iter().zip(&want.per_label) {
                assert_eq!(l, lw, "{phase}: label order differs");
                assert_eq!(g.edges, w.edges, "{phase}: label {l:?} edge count drifted");
                // Every forward row lives in exactly one store, so summed
                // distinct source counts are exact — and the reverse rows'
                // colocation invariant makes the distinct target counts
                // exact too (each destination's in-degree entry lives only
                // in its owner's table).
                assert_eq!(g.sources, w.sources, "{phase}: label {l:?} source count drifted");
                assert_eq!(g.targets, w.targets, "{phase}: label {l:?} target count drifted");
            }
        };

        let mut edges: Vec<(NodeId, NodeId, Label)> = Vec::new();
        // A 20-out-degree hub (crosses HIGH_DEGREE_THRESHOLD → host
        // promotion under the greedy-adaptive policy) plus labelled churn.
        for i in 1..=20u64 {
            edges.push((NodeId(0), NodeId(i), Label((i % 3 + 1) as u16)));
        }
        for i in 1..40u64 {
            edges.push((NodeId(i), NodeId((i * 7) % 40), Label((i % 5 + 1) as u16)));
        }

        for mut e in [moctopus_engine(), hash_engine()] {
            e.insert_labeled_edges(&edges);
            check(&e, "after inserts");

            e.refine_locality();
            check(&e, "after migration");

            let victims: Vec<(NodeId, NodeId, Label)> = edges.iter().step_by(3).copied().collect();
            e.delete_labeled_edges(&victims);
            check(&e, "after deletes");

            // A twin restored from the durable image rebuilds the exact same
            // merged statistics, bit for bit.
            let mut twin = if matches!(e.policy, PlacementPolicy::Hash(_)) {
                hash_engine()
            } else {
                moctopus_engine()
            };
            assert!(twin.restore_storage(&e.export_storage()));
            assert_eq!(twin.label_stats(), e.label_stats(), "restored stats must be identical");
        }
        // The greedy engine really promoted the hub (the host-lane stats
        // paths were exercised, not just the PIM ones).
        let mut greedy = moctopus_engine();
        greedy.insert_labeled_edges(&edges);
        assert_eq!(greedy.assignment().partition_of(NodeId(0)), Some(PartitionId::Host));
    }

    #[test]
    fn hash_engine_keeps_hubs_on_pim_modules() {
        let mut e = hash_engine();
        let hub_edges: Vec<(NodeId, NodeId)> =
            (1..=20u64).map(|i| (NodeId(0), NodeId(i))).collect();
        e.insert_edges(&hub_edges);
        assert!(matches!(e.assignment().partition_of(NodeId(0)), Some(PartitionId::Pim(_))));
        assert_eq!(e.host_row_count(), 0);
        let (results, _) = e.k_hop_batch(&[NodeId(0)], 1);
        assert_eq!(results[0].len(), 20);
    }

    #[test]
    fn moctopus_and_hash_agree_on_query_results() {
        let graph = graph_gen::uniform::generate(300, 4.0, 7);
        let edges: Vec<(NodeId, NodeId)> = graph.edges().map(|(s, d, _)| (s, d)).collect();
        let mut a = moctopus_engine();
        let mut b = hash_engine();
        a.insert_edges(&edges);
        b.insert_edges(&edges);
        a.refine_locality();
        let sources: Vec<NodeId> = (0..20u64).map(NodeId).collect();
        for k in 1..=3 {
            let (ra, _) = a.k_hop_batch(&sources, k);
            let (rb, _) = b.k_hop_batch(&sources, k);
            assert_eq!(ra, rb, "engines disagree at k = {k}");
        }
    }

    #[test]
    fn locality_aware_placement_reduces_ipc() {
        // Community graph streamed in order: Moctopus should incur much less
        // inter-PIM traffic than hash placement (the Figure 5 effect).
        let cfg = graph_gen::powerlaw::PowerLawConfig {
            nodes: 2000,
            high_degree_fraction: 0.02,
            locality: 0.9,
            community_size: 128,
            ..Default::default()
        };
        let graph = graph_gen::powerlaw::generate(&cfg, 3);
        let mut edges: Vec<(NodeId, NodeId)> = graph.edges().map(|(s, d, _)| (s, d)).collect();
        edges.sort();
        let mut moc = moctopus_engine();
        let mut hash = hash_engine();
        moc.insert_edges(&edges);
        hash.insert_edges(&edges);
        moc.refine_locality();
        let sources: Vec<NodeId> = (0..256u64).map(NodeId).collect();
        let (_, moc_stats) = moc.k_hop_batch(&sources, 3);
        let (_, hash_stats) = hash.k_hop_batch(&sources, 3);
        assert!(
            moc_stats.timeline.transfers.inter_pim_bytes * 2
                < hash_stats.timeline.transfers.inter_pim_bytes,
            "moctopus ipc {} should be well below hash ipc {}",
            moc_stats.timeline.transfers.inter_pim_bytes,
            hash_stats.timeline.transfers.inter_pim_bytes
        );
    }

    #[test]
    fn refine_locality_moves_rows_and_charges_ipc() {
        let mut e = moctopus_engine();
        // Mis-leading stream: cross-cluster edges first.
        let mut edges = Vec::new();
        for i in 0..10u64 {
            edges.push((NodeId(i), NodeId(100 + i)));
        }
        for base in [0u64, 100] {
            for u in base..base + 10 {
                for v in base..base + 10 {
                    if u != v && (u + v) % 2 == 0 {
                        edges.push((NodeId(u), NodeId(v)));
                    }
                }
            }
        }
        e.insert_edges(&edges);
        let before = e.partition_metrics().locality;
        let (report, timeline) = e.refine_locality();
        let after = e.partition_metrics().locality;
        if report.migrated > 0 {
            assert!(timeline.transfers.inter_pim_bytes > 0);
            assert!(after >= before);
        }
        // Query results survive the migration.
        let (results, _) = e.k_hop_batch(&[NodeId(0)], 1);
        assert!(!results[0].is_empty());
    }

    #[test]
    fn query_timeline_charges_every_phase() {
        let graph = graph_gen::uniform::generate(500, 4.0, 11);
        let edges: Vec<(NodeId, NodeId)> = graph.edges().map(|(s, d, _)| (s, d)).collect();
        let mut e = moctopus_engine();
        e.insert_edges(&edges);
        let sources: Vec<NodeId> = (0..64u64).map(NodeId).collect();
        let (_, stats) = e.k_hop_batch(&sources, 2);
        assert!(stats.timeline.time(Phase::PimCompute) > SimTime::ZERO);
        assert!(stats.timeline.time(Phase::Cpc) > SimTime::ZERO);
        assert!(stats.timeline.time(Phase::Reduce) > SimTime::ZERO);
        assert!(stats.expansions >= 64);
    }

    #[test]
    fn zero_hop_query_returns_sources() {
        let mut e = moctopus_engine();
        e.insert_edges(&ring_edges(8));
        let (results, stats) = e.k_hop_batch(&[NodeId(3)], 0);
        assert_eq!(results[0], vec![NodeId(3)]);
        assert_eq!(stats.matched_pairs, 1);
    }

    #[test]
    fn unknown_sources_yield_empty_results() {
        let mut e = moctopus_engine();
        e.insert_edges(&ring_edges(8));
        let (results, _) = e.k_hop_batch(&[NodeId(999)], 2);
        assert!(results[0].is_empty());
    }

    #[test]
    fn rpq_k_hop_fast_path_charges_exactly_like_k_hop_batch() {
        let graph = graph_gen::uniform::generate(300, 4.0, 7);
        let edges: Vec<(NodeId, NodeId)> = graph.edges().map(|(s, d, _)| (s, d)).collect();
        let sources: Vec<NodeId> = (0..32u64).map(NodeId).collect();
        let mut a = moctopus_engine();
        let mut b = moctopus_engine();
        a.insert_edges(&edges);
        b.insert_edges(&edges);
        let (ra, sa) = a.rpq_batch(&rpq::RpqExpr::k_hop(3), &sources);
        let (rb, sb) = b.k_hop_batch(&sources, 3);
        assert_eq!(ra, rb);
        assert_eq!(sa, sb, "`.{{3}}` must take the k-hop path, cost model included");
    }

    #[test]
    fn labelled_rpq_follows_label_constraints() {
        let mut e = moctopus_engine();
        // 0 -1-> 1 -2-> 2, plus a decoy 0 -3-> 3 -2-> 4.
        e.insert_labeled_edges(&[
            (NodeId(0), NodeId(1), Label(1)),
            (NodeId(1), NodeId(2), Label(2)),
            (NodeId(0), NodeId(3), Label(3)),
            (NodeId(3), NodeId(4), Label(2)),
        ]);
        let expr = rpq::parser::parse("1/2").unwrap();
        let (results, stats) = e.rpq_batch(&expr, &[NodeId(0)]);
        assert_eq!(results[0], vec![NodeId(2)]);
        assert_eq!(stats.matched_pairs, 1);
        assert!(stats.latency() > SimTime::ZERO);

        // Transitive closure over any label reaches everything.
        let star = rpq::parser::parse(".*").unwrap();
        let (closure, _) = e.rpq_batch(&star, &[NodeId(0)]);
        assert_eq!(closure[0].len(), 5, "star includes the source itself");
    }

    #[test]
    fn labelled_updates_change_rpq_answers() {
        let mut e = moctopus_engine();
        e.insert_labeled_edges(&[(NodeId(0), NodeId(1), Label(1))]);
        let expr = rpq::parser::parse("1+").unwrap();
        let (before, _) = e.rpq_batch(&expr, &[NodeId(0)]);
        assert_eq!(before[0], vec![NodeId(1)]);

        e.insert_labeled_edges(&[(NodeId(1), NodeId(2), Label(1))]);
        let (extended, _) = e.rpq_batch(&expr, &[NodeId(0)]);
        assert_eq!(extended[0], vec![NodeId(1), NodeId(2)]);

        let del = e.delete_labeled_edges(&[(NodeId(1), NodeId(2), Label(1))]);
        assert_eq!(del.applied, 1);
        let (after, _) = e.rpq_batch(&expr, &[NodeId(0)]);
        assert_eq!(after[0], vec![NodeId(1)]);
        // Deleting under the wrong label is a no-op.
        let miss = e.delete_labeled_edges(&[(NodeId(0), NodeId(1), Label(9))]);
        assert_eq!(miss.applied, 0);
    }

    #[test]
    fn rpq_handles_cycles_and_hub_rows() {
        let mut e = moctopus_engine();
        // A hub that gets promoted to the host, with a label-1 cycle.
        let mut edges: Vec<(NodeId, NodeId, Label)> =
            (1..=20u64).map(|i| (NodeId(0), NodeId(i), Label(1))).collect();
        edges.push((NodeId(1), NodeId(0), Label(1)));
        e.insert_labeled_edges(&edges);
        assert_eq!(e.assignment().partition_of(NodeId(0)), Some(PartitionId::Host));
        let expr = rpq::parser::parse("1+").unwrap();
        let (results, stats) = e.rpq_batch(&expr, &[NodeId(1)]);
        // 1 -> 0 -> everything (including 0 and 1 themselves via the cycle).
        assert_eq!(results[0].len(), 21);
        assert!(stats.hops >= 2);
    }

    #[test]
    fn thread_count_never_changes_results_or_charges() {
        // The unit-level determinism check (tests/parallel_equivalence.rs
        // does the full property sweep): a 3-worker engine over 8 modules
        // must report bit-identical stats to the sequential one, on both
        // query loops, including after its scratch has been warmed up.
        let graph = graph_gen::uniform::generate(400, 4.0, 17);
        let edges: Vec<(NodeId, NodeId, Label)> =
            graph.edges().map(|(s, d, _)| (s, d, Label((d.0 % 3) as u16 + 1))).collect();
        let sources: Vec<NodeId> = (0..48u64).map(NodeId).collect();

        // Pin the baseline to one worker explicitly: `small_test()` honours
        // MOCTOPUS_THREADS, and the CI 4-thread leg must still compare the
        // parallel engine against the true sequential path.
        let serial_cfg = MoctopusConfig::small_test().with_threads(1);
        let serial_policy = PlacementPolicy::GreedyAdaptive(
            GreedyAdaptivePartitioner::with_config(serial_cfg.partitioner_config()),
        );
        let mut serial = DistributedPimEngine::new(serial_cfg, serial_policy);
        assert_eq!(serial.threads(), 1);
        let cfg = MoctopusConfig::small_test().with_threads(3);
        let policy = PlacementPolicy::GreedyAdaptive(GreedyAdaptivePartitioner::with_config(
            cfg.partitioner_config(),
        ));
        let mut parallel = DistributedPimEngine::new(cfg, policy);
        assert_eq!(parallel.threads(), 3);

        let serial_ins = serial.insert_labeled_edges(&edges);
        let parallel_ins = parallel.insert_labeled_edges(&edges);
        assert_eq!(serial_ins, parallel_ins);

        for round in 0..2 {
            for k in 1..=3 {
                let (want, want_stats) = serial.k_hop_batch(&sources, k);
                let (got, got_stats) = parallel.k_hop_batch(&sources, k);
                assert_eq!(got, want, "k = {k}, round {round}");
                assert_eq!(got_stats, want_stats, "k = {k}, round {round}");
            }
            let expr = rpq::parser::parse("1/(2|3)*/1").unwrap();
            let (want, want_stats) = serial.rpq_batch(&expr, &sources);
            let (got, got_stats) = parallel.rpq_batch(&expr, &sources);
            assert_eq!(got, want, "round {round}");
            assert_eq!(got_stats, want_stats, "round {round}");
        }
    }

    #[test]
    fn wire_charges_elide_the_default_label() {
        // The same topology inserted unlabelled and with Label::ANY must
        // charge identical transfer bytes; a non-default label pays extra.
        let edges: Vec<(NodeId, NodeId)> = ring_edges(16);
        let any: Vec<(NodeId, NodeId, Label)> =
            edges.iter().map(|&(s, d)| (s, d, Label::ANY)).collect();
        let labelled: Vec<(NodeId, NodeId, Label)> =
            edges.iter().map(|&(s, d)| (s, d, Label(5))).collect();

        let mut a = hash_engine();
        let mut b = hash_engine();
        let mut c = hash_engine();
        let sa = a.insert_edges(&edges);
        let sb = b.insert_labeled_edges(&any);
        let sc = c.insert_labeled_edges(&labelled);
        assert_eq!(
            sa.timeline.transfers, sb.timeline.transfers,
            "ANY-labelled inserts must charge like unlabelled ones"
        );
        assert_eq!(
            sc.timeline.transfers.cpu_to_pim_bytes,
            sb.timeline.transfers.cpu_to_pim_bytes + edges.len() as u64 * 4,
            "each non-default label costs LABEL_BYTES on the CPU->PIM bus, \
             once on the forward route and once on the mirrored reverse write"
        );
    }

    /// Tracking must be an observer: tracked calls return the same results
    /// and stats as untracked ones, and the deps cover every visited node.
    #[test]
    fn tracked_queries_match_untracked_and_cover_visited_nodes() {
        use crate::deps::DepMask;
        let edges = ring_edges(32);
        let mut plain = moctopus_engine();
        let mut tracked = moctopus_engine();
        plain.insert_edges(&edges);
        tracked.insert_edges(&edges);

        let sources = [NodeId(0), NodeId(9)];
        let expr = rpq::RpqExpr::k_hop(3);
        let (want, want_stats) = plain.rpq_batch(&expr, &sources);
        let (got, got_stats, deps) = tracked.rpq_batch_tracked(&expr, &sources);
        assert_eq!(got, want);
        assert_eq!(got_stats, want_stats);
        // Sources, every hop frontier, and the results are visited nodes.
        let mut expected = DepMask::EMPTY;
        for hop in 0..=3u64 {
            expected.insert(NodeId(hop));
            expected.insert(NodeId(9 + hop));
        }
        assert!(!deps.nodes.is_empty());
        assert!(deps.nodes.intersects(expected));
        for hop in 0..=3u64 {
            let mut one = DepMask::EMPTY;
            one.insert(NodeId(hop));
            assert!(deps.nodes.intersects(one), "hop node {hop} must be a dependency");
        }
        assert!(!deps.host_lane, "a low-degree ring never touches the host lane");

        // The NFA-product path tracks too (closure query on a labelled star).
        let mut engine = moctopus_engine();
        engine.insert_labeled_edges(&[
            (NodeId(0), NodeId(1), Label(1)),
            (NodeId(1), NodeId(2), Label(1)),
        ]);
        let star = rpq::parser::parse("1+").expect("query parses");
        let (r, _, deps) = engine.rpq_batch_tracked(&star, &[NodeId(0)]);
        assert_eq!(r[0], vec![NodeId(1), NodeId(2)]);
        for n in 0..=2u64 {
            let mut one = DepMask::EMPTY;
            one.insert(NodeId(n));
            assert!(deps.nodes.intersects(one), "visited node {n} must be a dependency");
        }
    }

    /// Hub promotion must raise the host-lane dependency on queries and the
    /// host-store flag on the updates that created/touched the hub.
    #[test]
    fn tracking_observes_the_host_lane() {
        let mut engine = moctopus_engine();
        let hub: Vec<(NodeId, NodeId, Label)> =
            (1..=20u64).map(|i| (NodeId(0), NodeId(i), Label::ANY)).collect();
        let (stats, fp) = engine.insert_labeled_edges_tracked(&hub);
        assert_eq!(stats.applied, 20);
        assert!(fp.host_store, "the batch promoted node 0 to the host store");
        assert!(!fp.cost_global && !fp.result_global);
        assert_eq!(fp.per_label.len(), 1, "one label in the batch");

        let (results, _, deps) = engine.rpq_batch_tracked(&rpq::RpqExpr::k_hop(1), &[NodeId(0)]);
        assert_eq!(results[0].len(), 20);
        assert!(deps.host_lane, "expanding the promoted hub row is host-lane work");

        // A PIM-only update reports no host-store involvement.
        let (_, fp2) = engine.insert_labeled_edges_tracked(&[(NodeId(5), NodeId(7), Label(2))]);
        assert!(!fp2.host_store);
    }

    /// The byte-identity half of the planner contract: every strategy —
    /// forward, bidirectional over the reverse rows, rare-label split — must
    /// serve the exact same answers as the canonical forward path, on both
    /// placement policies, including on an engine restored from a durable
    /// image (whose reverse rows were rebuilt, not copied).
    #[test]
    fn planned_execution_matches_forward_answers() {
        let graph = graph_gen::uniform::generate(300, 4.0, 13);
        let mut edges: Vec<(NodeId, NodeId, Label)> =
            graph.edges().map(|(s, d, _)| (s, d, Label((d.0 % 3) as u16 + 1))).collect();
        // Sprinkle a rare label 8 so the split pivot has real sources.
        for i in 0..12u64 {
            edges.push((NodeId(i * 17 % 300), NodeId((i * 23 + 5) % 300), Label(8)));
        }
        let sources: Vec<NodeId> = (0..40u64).map(NodeId).collect();
        let queries = ["1/2", "1+", "1/(2|3)*/1", "(1|2)*", "1*/8/2*", "3?/8"];
        let strategies = [
            PlanStrategy::Forward,
            PlanStrategy::Bidirectional,
            PlanStrategy::RareLabelSplit { split_at: 1 },
        ];

        for mut e in [moctopus_engine(), hash_engine()] {
            e.insert_labeled_edges(&edges);
            e.refine_locality();

            let mut twin = if matches!(e.policy, PlacementPolicy::Hash(_)) {
                hash_engine()
            } else {
                moctopus_engine()
            };
            assert!(twin.restore_storage(&e.export_storage()));

            for q in queries {
                let expr = rpq::parser::parse(q).expect("query parses");
                let (want, _) = e.rpq_batch(&expr, &sources);
                for strategy in strategies {
                    let (got, _) = e.rpq_batch_planned(&expr, &sources, strategy);
                    assert_eq!(got, want, "{q} under {} drifted", strategy.describe());
                    let (restored, _) = twin.rpq_batch_planned(&expr, &sources, strategy);
                    assert_eq!(
                        restored,
                        want,
                        "{q} under {} drifted on the restored twin",
                        strategy.describe()
                    );
                }
            }
        }
    }

    /// The cost half: a closure that must end in a rare label lets the
    /// bidirectional executor's backward useful-set pass prune the forward
    /// frontier down to the small pocket that can actually reach the rare
    /// edge, while the forward plan floods the whole common-label component.
    #[test]
    fn bidirectional_execution_prunes_rare_closures() {
        let mut edges: Vec<(NodeId, NodeId, Label)> = Vec::new();
        // A 300-node label-1 component with chords — none of it reaches label 9.
        for i in 0..300u64 {
            edges.push((NodeId(i), NodeId((i + 1) % 300), Label(1)));
            edges.push((NodeId(i), NodeId((i * 7 + 3) % 300), Label(1)));
        }
        // A small disjoint pocket whose chain ends in the rare label.
        for i in 1000..1008u64 {
            edges.push((NodeId(i), NodeId(i + 1), Label(1)));
        }
        edges.push((NodeId(1008), NodeId(2000), Label(9)));

        let mut sources: Vec<NodeId> = (0..32u64).map(NodeId).collect();
        sources.extend((1000..1004u64).map(NodeId));

        let expr = rpq::parser::parse("1*/9").expect("query parses");
        let mut fwd = moctopus_engine();
        fwd.insert_labeled_edges(&edges);
        let mut bidi = fwd.clone();

        let (want, fwd_stats) = fwd.rpq_batch_planned(&expr, &sources, PlanStrategy::Forward);
        let (got, bidi_stats) =
            bidi.rpq_batch_planned(&expr, &sources, PlanStrategy::Bidirectional);
        assert_eq!(got, want, "pruning must never change answers");
        assert!(want.iter().any(|r| !r.is_empty()), "the pocket sources must match");

        assert!(
            bidi_stats.expansions * 4 < fwd_stats.expansions,
            "bidirectional expansions {} should be well below forward's {}",
            bidi_stats.expansions,
            fwd_stats.expansions
        );
        assert!(
            bidi_stats.latency() < fwd_stats.latency(),
            "bidirectional simulated latency {:?} should beat forward's {:?}",
            bidi_stats.latency(),
            fwd_stats.latency()
        );
    }
}
