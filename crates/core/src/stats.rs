//! Query and update statistics reported by every engine.

use pim_sim::{SimTime, Timeline};
use serde::{Deserialize, Serialize};

/// Statistics of one batch query execution.
///
/// The `timeline` is the engine's simulated-time breakdown — the quantity the
/// paper's figures report — and the remaining fields describe the workload.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct QueryStats {
    /// Per-phase simulated time and transfer counters.
    pub timeline: Timeline,
    /// Number of queries in the batch.
    pub batch_size: usize,
    /// Number of hops requested.
    pub hops: usize,
    /// Total matched (query, destination) pairs across the batch.
    pub matched_pairs: usize,
    /// Total frontier expansions performed (a proxy for algorithmic work).
    pub expansions: usize,
}

impl QueryStats {
    /// End-to-end simulated latency of the batch.
    pub fn latency(&self) -> SimTime {
        self.timeline.total()
    }

    /// Simulated inter-PIM communication time (the Figure 5 metric).
    pub fn ipc_latency(&self) -> SimTime {
        self.timeline.time(pim_sim::Phase::Ipc)
    }

    /// Combines the statistics of executing disjoint sub-batches of one
    /// query (the sharded serving plane's gather step; see SERVING.md).
    ///
    /// Timelines, batch sizes, matched pairs and expansions add; `hops` is a
    /// per-sub-batch maximum (every sub-batch runs the same expression, so the
    /// deepest frontier sweep defines the whole query's hop count).
    ///
    /// Determinism: `SimTime` addition is IEEE-754 and therefore
    /// order-sensitive — callers must merge in a fixed order (the shard plane
    /// merges in ascending placement-group id) for byte-identical totals.
    pub fn merge(&mut self, other: &QueryStats) {
        self.timeline += other.timeline;
        self.batch_size += other.batch_size;
        self.hops = self.hops.max(other.hops);
        self.matched_pairs += other.matched_pairs;
        self.expansions += other.expansions;
    }
}

/// Statistics of one batch update (insertion or deletion) execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct UpdateStats {
    /// Per-phase simulated time and transfer counters.
    pub timeline: Timeline,
    /// Edges the batch asked to insert or delete.
    pub requested: usize,
    /// Edges that actually changed the graph (duplicates/missing skipped).
    pub applied: usize,
}

impl UpdateStats {
    /// End-to-end simulated latency of the batch.
    pub fn latency(&self) -> SimTime {
        self.timeline.total()
    }

    /// Combines two update statistics (e.g. per-module partial results).
    pub fn merge(&mut self, other: &UpdateStats) {
        self.timeline += other.timeline;
        self.requested += other.requested;
        self.applied += other.applied;
    }
}

/// Per-worker accumulator of one parallel execution stage (a hop of the
/// batch-frontier loop, or one update batch).
///
/// The hop loops used to thread half a dozen loose `&mut u64` / `&mut
/// SimTime` counters through every helper; parallel execution makes that
/// shape untenable (two workers cannot share one `&mut`). `StatsDelta`
/// instead gives **each worker its own** full set of accumulators, which the
/// barrier at the end of the stage reduces with [`StatsDelta::merge`] in
/// ascending worker-id order.
///
/// Determinism (see CONCURRENCY.md): workers own disjoint PIM-module slices,
/// so for every `per_module` slot at most one worker contributes a non-zero
/// value and the merge adds exact IEEE-754 zeros from the rest — the merged
/// delta is bit-identical to the one the sequential loop accumulates. The
/// same holds for `host_time` (only the host-lane worker charges it); the
/// byte and message counters are integers, where addition is exact and
/// order-free.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatsDelta {
    /// Simulated busy time charged to each PIM module this stage.
    pub per_module: Vec<SimTime>,
    /// Simulated host-CPU compute time charged this stage.
    pub host_time: SimTime,
    /// Bytes gathered to the host over the CPU↔PIM bus (query hop loops).
    pub cpc_bytes: u64,
    /// Bytes forwarded between PIM modules through the host CPU.
    pub ipc_bytes: u64,
    /// Number of forwarded inter-PIM messages (each one costs host
    /// re-routing instructions on UPMEM-like platforms).
    pub ipc_messages: u64,
    /// Bytes pushed from the CPU to PIM modules (update batches).
    pub cpu_to_pim_bytes: u64,
    /// Bytes pulled from PIM modules to the CPU (update batches).
    pub pim_to_cpu_bytes: u64,
    /// Updates that actually changed the graph this stage.
    pub applied: usize,
}

impl StatsDelta {
    /// Creates a zeroed delta with one `per_module` slot per PIM module.
    pub fn new(module_count: usize) -> Self {
        StatsDelta { per_module: vec![SimTime::ZERO; module_count], ..Default::default() }
    }

    /// Accumulates `other` into `self` (the id-ordered barrier reduction).
    ///
    /// # Panics
    ///
    /// Panics if the two deltas were sized for different module counts.
    pub fn merge(&mut self, other: &StatsDelta) {
        assert_eq!(
            self.per_module.len(),
            other.per_module.len(),
            "deltas must cover the same module count"
        );
        for (slot, &t) in self.per_module.iter_mut().zip(&other.per_module) {
            *slot += t;
        }
        self.host_time += other.host_time;
        self.cpc_bytes += other.cpc_bytes;
        self.ipc_bytes += other.ipc_bytes;
        self.ipc_messages += other.ipc_messages;
        self.cpu_to_pim_bytes += other.cpu_to_pim_bytes;
        self.pim_to_cpu_bytes += other.pim_to_cpu_bytes;
        self.applied += other.applied;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_sim::Phase;

    #[test]
    fn query_latency_is_timeline_total() {
        let mut s = QueryStats::default();
        s.timeline.charge(Phase::PimCompute, SimTime::from_micros(5.0));
        s.timeline.charge(Phase::Ipc, SimTime::from_micros(2.0));
        assert_eq!(s.latency().as_micros(), 7.0);
        assert_eq!(s.ipc_latency().as_micros(), 2.0);
    }

    #[test]
    fn update_stats_merge_accumulates() {
        let mut a = UpdateStats { requested: 10, applied: 8, ..Default::default() };
        a.timeline.charge(Phase::HostCompute, SimTime::from_nanos(100.0));
        let mut b = UpdateStats { requested: 5, applied: 5, ..Default::default() };
        b.timeline.charge(Phase::Cpc, SimTime::from_nanos(50.0));
        a.merge(&b);
        assert_eq!(a.requested, 15);
        assert_eq!(a.applied, 13);
        assert_eq!(a.latency().as_nanos(), 150.0);
    }

    #[test]
    fn query_stats_merge_combines_sub_batches() {
        let mut a = QueryStats {
            batch_size: 2,
            hops: 3,
            matched_pairs: 5,
            expansions: 7,
            ..Default::default()
        };
        a.timeline.charge(Phase::PimCompute, SimTime::from_nanos(10.0));
        let mut b = QueryStats {
            batch_size: 1,
            hops: 1,
            matched_pairs: 2,
            expansions: 4,
            ..Default::default()
        };
        b.timeline.charge(Phase::Ipc, SimTime::from_nanos(4.0));
        a.merge(&b);
        assert_eq!(a.batch_size, 3);
        assert_eq!(a.hops, 3, "hops is a per-sub-batch maximum");
        assert_eq!(a.matched_pairs, 7);
        assert_eq!(a.expansions, 11);
        assert_eq!(a.latency().as_nanos(), 14.0);
    }

    #[test]
    fn defaults_are_zero() {
        let q = QueryStats::default();
        assert_eq!(q.latency(), SimTime::ZERO);
        assert_eq!(q.matched_pairs, 0);
        let u = UpdateStats::default();
        assert_eq!(u.latency(), SimTime::ZERO);
    }

    /// Regression guard for the `StatsDelta` refactor: splitting a sequential
    /// accumulation across per-worker deltas with disjoint module ownership
    /// and merging them in worker order must reproduce the sequential totals
    /// bit for bit — including the floating-point `SimTime` slots.
    #[test]
    fn split_deltas_merge_to_the_sequential_totals() {
        // Sequential accumulation over 4 modules with awkward float values.
        let charges = [
            (0usize, 0.1f64),
            (2, 0.7),
            (0, 0.2),
            (3, 1e-9),
            (2, 3.33),
            (1, 0.001),
            (0, 123.456),
            (3, 2.5),
        ];
        let mut sequential = StatsDelta::new(4);
        for &(m, ns) in &charges {
            sequential.per_module[m] += SimTime::from_nanos(ns);
        }
        sequential.host_time = SimTime::from_nanos(42.42);
        sequential.cpc_bytes = 100;
        sequential.ipc_bytes = 30;
        sequential.ipc_messages = 3;
        sequential.applied = 7;

        // Two workers: worker 0 owns modules 0..2 and the host lane, worker 1
        // owns modules 2..4. Each replays the same charges in the same order,
        // filtered to its own slots.
        let mut worker0 = StatsDelta::new(4);
        let mut worker1 = StatsDelta::new(4);
        for &(m, ns) in &charges {
            let delta = if m < 2 { &mut worker0 } else { &mut worker1 };
            delta.per_module[m] += SimTime::from_nanos(ns);
        }
        worker0.host_time = SimTime::from_nanos(42.42);
        worker0.cpc_bytes = 60;
        worker1.cpc_bytes = 40;
        worker0.ipc_bytes = 30;
        worker1.ipc_messages = 3;
        worker0.applied = 5;
        worker1.applied = 2;

        let mut merged = StatsDelta::new(4);
        merged.merge(&worker0);
        merged.merge(&worker1);
        assert_eq!(merged, sequential, "id-ordered merge must be exact, not approximate");
    }

    #[test]
    #[should_panic(expected = "same module count")]
    fn merging_mismatched_deltas_panics() {
        let mut a = StatsDelta::new(2);
        a.merge(&StatsDelta::new(3));
    }
}
