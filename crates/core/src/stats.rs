//! Query and update statistics reported by every engine.

use pim_sim::{SimTime, Timeline};
use serde::{Deserialize, Serialize};

/// Statistics of one batch query execution.
///
/// The `timeline` is the engine's simulated-time breakdown — the quantity the
/// paper's figures report — and the remaining fields describe the workload.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct QueryStats {
    /// Per-phase simulated time and transfer counters.
    pub timeline: Timeline,
    /// Number of queries in the batch.
    pub batch_size: usize,
    /// Number of hops requested.
    pub hops: usize,
    /// Total matched (query, destination) pairs across the batch.
    pub matched_pairs: usize,
    /// Total frontier expansions performed (a proxy for algorithmic work).
    pub expansions: usize,
}

impl QueryStats {
    /// End-to-end simulated latency of the batch.
    pub fn latency(&self) -> SimTime {
        self.timeline.total()
    }

    /// Simulated inter-PIM communication time (the Figure 5 metric).
    pub fn ipc_latency(&self) -> SimTime {
        self.timeline.time(pim_sim::Phase::Ipc)
    }
}

/// Statistics of one batch update (insertion or deletion) execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct UpdateStats {
    /// Per-phase simulated time and transfer counters.
    pub timeline: Timeline,
    /// Edges the batch asked to insert or delete.
    pub requested: usize,
    /// Edges that actually changed the graph (duplicates/missing skipped).
    pub applied: usize,
}

impl UpdateStats {
    /// End-to-end simulated latency of the batch.
    pub fn latency(&self) -> SimTime {
        self.timeline.total()
    }

    /// Combines two update statistics (e.g. per-module partial results).
    pub fn merge(&mut self, other: &UpdateStats) {
        self.timeline += other.timeline;
        self.requested += other.requested;
        self.applied += other.applied;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_sim::Phase;

    #[test]
    fn query_latency_is_timeline_total() {
        let mut s = QueryStats::default();
        s.timeline.charge(Phase::PimCompute, SimTime::from_micros(5.0));
        s.timeline.charge(Phase::Ipc, SimTime::from_micros(2.0));
        assert_eq!(s.latency().as_micros(), 7.0);
        assert_eq!(s.ipc_latency().as_micros(), 2.0);
    }

    #[test]
    fn update_stats_merge_accumulates() {
        let mut a = UpdateStats { requested: 10, applied: 8, ..Default::default() };
        a.timeline.charge(Phase::HostCompute, SimTime::from_nanos(100.0));
        let mut b = UpdateStats { requested: 5, applied: 5, ..Default::default() };
        b.timeline.charge(Phase::Cpc, SimTime::from_nanos(50.0));
        a.merge(&b);
        assert_eq!(a.requested, 15);
        assert_eq!(a.applied, 13);
        assert_eq!(a.latency().as_nanos(), 150.0);
    }

    #[test]
    fn defaults_are_zero() {
        let q = QueryStats::default();
        assert_eq!(q.latency(), SimTime::ZERO);
        assert_eq!(q.matched_pairs, 0);
        let u = UpdateStats::default();
        assert_eq!(u.latency(), SimTime::ZERO);
    }
}
