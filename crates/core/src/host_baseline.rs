//! The RedisGraph-like host baseline.
//!
//! RedisGraph evaluates graph queries by compiling them into GraphBLAS sparse
//! matrix algebra and executing the plan on one dedicated CPU core. The
//! baseline here does exactly that, using the workspace's `sparse` kernels
//! through [`rpq::plan::HostMatrixEngine`], and charges the work to the same
//! host-side cost model the PIM engines use for their host portions:
//!
//! * each `smxm` operator pays one random DRAM access per adjacency-row fetch
//!   (pointer chasing through a matrix far larger than the last-level cache —
//!   the "memory wall" the paper opens with) plus the streaming cost of the
//!   row data it touches;
//! * graph updates pay a per-edge random access and bookkeeping cost plus the
//!   amortised cost of merging the delta into the CSR structure.

use crate::config::MoctopusConfig;
use crate::deps::UpdateFootprint;
use crate::engine::GraphEngine;
use crate::stats::{QueryStats, UpdateStats};
use graph_store::{AdjacencyGraph, Label, NodeId, SnapshotState};
use moctopus_runtime::{chunk_ranges, WorkerPool};
use pim_sim::{Phase, PimSystem, Timeline};
use rpq::plan::{HostExecutionStats, HostMatrixEngine};
use rpq::{optimizer, ExecutionPlan, Nfa, PlanStrategy, RpqExpr};

/// Instructions charged per inserted edge for sparse-matrix bookkeeping
/// (duplicate check, delta-matrix maintenance, property bookkeeping). The
/// paper's measurements imply roughly 1–8 µs of baseline work per updated
/// edge; 4500 simple instructions (~1 µs on the modeled core) sits at the
/// conservative end of that range.
const UPDATE_INSTRUCTIONS_PER_EDGE: u64 = 4500;

/// Additional instructions charged per *deleted* edge: deletion must locate
/// the entry inside the compressed row before compacting it, which RedisGraph
/// measures as noticeably more expensive than insertion (the paper's delete
/// speedups are ~1.75x its insert speedups).
const DELETE_EXTRA_INSTRUCTIONS_PER_EDGE: u64 = 3500;

/// The RedisGraph-like single-core sparse-matrix baseline.
///
/// # Examples
///
/// ```
/// use moctopus::{GraphEngine, HostBaseline, MoctopusConfig, NodeId};
/// let mut engine = HostBaseline::new(MoctopusConfig::small_test());
/// engine.insert_edges(&[(NodeId(0), NodeId(1)), (NodeId(1), NodeId(2))]);
/// let (results, stats) = engine.k_hop_batch(&[NodeId(0)], 2);
/// assert_eq!(results[0], vec![NodeId(2)]);
/// assert!(stats.latency().as_nanos() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct HostBaseline {
    /// Cost model (only the host-side helpers are used).
    pim: PimSystem,
    /// Logical graph contents (kept to rebuild the matrix engine after updates).
    graph: AdjacencyGraph,
    /// GraphBLAS-style execution engine over the current snapshot.
    matrix: HostMatrixEngine,
    /// True when `matrix` is stale relative to `graph`.
    dirty: bool,
    /// Execution runtime: query batches are chunked over these workers, each
    /// running the whole per-label matrix chain (or automaton sweep) for its
    /// chunk of sources. The *simulated* engine stays a single dedicated
    /// core — chunk statistics merge exactly, so charges do not move.
    pool: WorkerPool,
}

impl HostBaseline {
    /// Creates an empty baseline engine.
    pub fn new(config: MoctopusConfig) -> Self {
        let graph = AdjacencyGraph::new();
        HostBaseline {
            pim: PimSystem::new(config.pim),
            matrix: HostMatrixEngine::from_graph(&graph),
            graph,
            dirty: false,
            pool: WorkerPool::new(config.threads),
        }
    }

    /// Builds a baseline directly from an edge list.
    pub fn from_edge_stream(config: MoctopusConfig, edges: &[(NodeId, NodeId)]) -> Self {
        let mut engine = Self::new(config);
        engine.insert_edges(edges);
        engine
    }

    fn refresh_matrix(&mut self) {
        if self.dirty {
            self.matrix = HostMatrixEngine::from_graph(&self.graph);
            self.dirty = false;
        }
    }

    /// Bytes of the adjacency structure resident in DRAM, used to decide how
    /// much of the pointer chasing misses the last-level cache.
    fn resident_bytes(&self) -> u64 {
        self.graph.approx_bytes()
    }

    /// The shared insert loop; the unlabelled entry point streams
    /// [`Label::ANY`] in without materialising a labelled copy of the batch.
    fn insert_edges_impl(
        &mut self,
        edges: impl Iterator<Item = (NodeId, NodeId, Label)>,
        batch_len: usize,
    ) -> UpdateStats {
        let mut applied = 0usize;
        let resident = self.resident_bytes().max(1);
        let mut row_bytes_touched = 0u64;
        for (s, d, l) in edges {
            row_bytes_touched += (self.graph.out_degree(s) as u64 + 1) * 8;
            if self.graph.insert_edge(s, d, l) {
                applied += 1;
            }
        }
        self.dirty = true;

        let mut timeline = Timeline::new();
        // One random access into the matrix per edge, the row rewrite, and the
        // per-edge bookkeeping of the delta-matrix machinery.
        timeline.charge(
            Phase::HostCompute,
            self.pim.host_random_access_cost(batch_len as u64, resident)
                + self.pim.host_sequential_read_cost(row_bytes_touched)
                + self.pim.host_instructions_cost(batch_len as u64 * UPDATE_INSTRUCTIONS_PER_EDGE),
        );
        // Amortised delta merge: the whole matrix is eventually rewritten once
        // per update batch when the pending delta is flushed.
        timeline.charge(Phase::HostCompute, self.pim.host_sequential_read_cost(2 * resident));
        UpdateStats { timeline, requested: batch_len, applied }
    }

    /// The shared delete loop; see [`HostBaseline::insert_edges_impl`].
    fn delete_edges_impl(
        &mut self,
        edges: impl Iterator<Item = (NodeId, NodeId, Label)>,
        batch_len: usize,
    ) -> UpdateStats {
        let mut applied = 0usize;
        let resident = self.resident_bytes().max(1);
        let mut row_bytes_touched = 0u64;
        for (s, d, l) in edges {
            row_bytes_touched += (self.graph.out_degree(s) as u64).max(1) * 8;
            if self.graph.remove_edge(s, d, l) {
                applied += 1;
            }
        }
        self.dirty = true;

        let mut timeline = Timeline::new();
        timeline.charge(
            Phase::HostCompute,
            self.pim.host_random_access_cost(batch_len as u64, resident)
                + self.pim.host_sequential_read_cost(row_bytes_touched)
                + self.pim.host_instructions_cost(
                    batch_len as u64
                        * (UPDATE_INSTRUCTIONS_PER_EDGE + DELETE_EXTRA_INSTRUCTIONS_PER_EDGE),
                ),
        );
        timeline.charge(Phase::HostCompute, self.pim.host_sequential_read_cost(2 * resident));
        UpdateStats { timeline, requested: batch_len, applied }
    }

    /// Charges one executed plan's statistics to the host cost model —
    /// shared by the k-hop path and the general RPQ path so both execution
    /// strategies (matrix chain and automaton sweep) are priced identically
    /// per row fetch and per byte.
    fn charge_query(&self, exec: &HostExecutionStats) -> Timeline {
        let resident = self.resident_bytes().max(1);
        let mut timeline = Timeline::new();
        // Each fetched adjacency row also pays the GraphBLAS kernel overhead
        // (index arithmetic, scatter/gather into the accumulator) measured at
        // roughly 150 simple instructions per row in SuiteSparse-style
        // boolean mxm kernels.
        timeline.charge(
            Phase::HostCompute,
            self.pim.host_random_access_cost(exec.row_fetches, resident)
                + self.pim.host_sequential_read_cost(exec.bytes_read)
                + self.pim.host_instructions_cost(exec.row_fetches * 150)
                + self.pim.host_instructions_cost(exec.bytes_written / 2),
        );
        timeline.charge(
            Phase::Reduce,
            self.pim.host_sequential_read_cost(exec.result_entries as u64 * 8)
                + self.pim.host_instructions_cost(exec.result_entries as u64 * 8),
        );
        timeline
    }

    /// Builds the tracked-update footprint: empty when nothing was applied
    /// (the graph did not change), otherwise the batch's per-label base with
    /// `cost_global` set (every query cost on this engine reads the whole
    /// graph's resident bytes).
    fn baseline_footprint(edges: &[(NodeId, NodeId, Label)], applied: usize) -> UpdateFootprint {
        if applied == 0 {
            UpdateFootprint::empty()
        } else {
            UpdateFootprint { cost_global: true, ..UpdateFootprint::from_edges(edges) }
        }
    }

    /// Runs one source-batch evaluation (`run_chunk`) chunked across the
    /// worker pool: each worker executes the full per-label matrix chain (or
    /// automaton sweep) for a contiguous slice of the sources, and the
    /// outputs merge in chunk order — results by concatenation,
    /// [`HostExecutionStats`] with its exact integer merge — so the reported
    /// numbers are identical to the single-chunk run at any thread count.
    fn run_chunked<F>(
        &self,
        sources: &[NodeId],
        run_chunk: F,
    ) -> (Vec<Vec<NodeId>>, HostExecutionStats)
    where
        F: Fn(&[NodeId]) -> (Vec<Vec<NodeId>>, HostExecutionStats) + Sync,
    {
        let workers = self.pool.workers_for(sources.len());
        if workers == 1 {
            return run_chunk(sources);
        }
        let ranges = chunk_ranges(sources.len(), workers);
        let chunk_outputs = self.pool.run(workers, |w| run_chunk(&sources[ranges[w].clone()]));
        let mut results = Vec::with_capacity(sources.len());
        let mut exec = HostExecutionStats::default();
        for (chunk_results, chunk_exec) in chunk_outputs {
            results.extend(chunk_results);
            exec.merge(&chunk_exec);
        }
        (results, exec)
    }
}

impl GraphEngine for HostBaseline {
    fn name(&self) -> &'static str {
        "RedisGraph-like"
    }

    fn insert_edges(&mut self, edges: &[(NodeId, NodeId)]) -> UpdateStats {
        self.insert_edges_impl(edges.iter().map(|&(s, d)| (s, d, Label::ANY)), edges.len())
    }

    fn delete_edges(&mut self, edges: &[(NodeId, NodeId)]) -> UpdateStats {
        self.delete_edges_impl(edges.iter().map(|&(s, d)| (s, d, Label::ANY)), edges.len())
    }

    fn insert_labeled_edges(&mut self, edges: &[(NodeId, NodeId, Label)]) -> UpdateStats {
        self.insert_edges_impl(edges.iter().copied(), edges.len())
    }

    fn delete_labeled_edges(&mut self, edges: &[(NodeId, NodeId, Label)]) -> UpdateStats {
        self.delete_edges_impl(edges.iter().copied(), edges.len())
    }

    fn k_hop_batch(&mut self, sources: &[NodeId], k: usize) -> (Vec<Vec<NodeId>>, QueryStats) {
        self.refresh_matrix();
        let plan = ExecutionPlan::k_hop(k);
        let (results, exec) = self.run_chunked(sources, |chunk| self.matrix.run(&plan, chunk));
        let timeline = self.charge_query(&exec);

        let matched_pairs = results.iter().map(Vec::len).sum();
        let stats = QueryStats {
            timeline,
            batch_size: sources.len(),
            hops: k,
            matched_pairs,
            expansions: exec.row_fetches as usize,
        };
        (results, stats)
    }

    fn rpq_batch(&mut self, expr: &RpqExpr, sources: &[NodeId]) -> (Vec<Vec<NodeId>>, QueryStats) {
        // Plain k-hop shapes take the exact same path (and charges) as
        // `k_hop_batch`.
        if let Some(k) = expr.as_k_hop() {
            return self.k_hop_batch(sources, k);
        }
        self.refresh_matrix();
        // Fixed-length expressions stay matrix chains (`Q × A_l1 × … × A_lk`);
        // everything else sweeps the automaton over the per-label matrices.
        let (results, exec) = match ExecutionPlan::from_expr(expr) {
            Some(plan) => self.run_chunked(sources, |chunk| self.matrix.run(&plan, chunk)),
            None => {
                let nfa = Nfa::from_expr(expr);
                self.run_chunked(sources, |chunk| self.matrix.run_nfa(&nfa, chunk))
            }
        };
        let timeline = self.charge_query(&exec);

        let matched_pairs = results.iter().map(Vec::len).sum();
        let stats = QueryStats {
            timeline,
            batch_size: sources.len(),
            hops: exec.frontier_levels,
            matched_pairs,
            expansions: exec.row_fetches as usize,
        };
        (results, stats)
    }

    /// Planned execution over the matrix engine's transposed per-label
    /// matrices: bidirectional runs the backward useful-set sweep, the
    /// rare-label split seeds the suffix automaton at the pivot label's
    /// source rows (taken from the incremental label statistics). Answers
    /// are byte-identical to [`GraphEngine::rpq_batch`] under every
    /// strategy; only the executed row-fetch/byte profile differs.
    ///
    /// Unlike the forward path this is **not** chunked over the worker
    /// pool: the shared backward pass (and the split's suffix leg) would be
    /// re-run — and re-charged — once per chunk, so a single sequential
    /// sweep is what keeps the reported charges thread-invariant.
    fn rpq_batch_planned(
        &mut self,
        expr: &RpqExpr,
        sources: &[NodeId],
        strategy: PlanStrategy,
    ) -> (Vec<Vec<NodeId>>, QueryStats) {
        if matches!(strategy, PlanStrategy::Forward) || expr.as_k_hop().is_some() {
            return self.rpq_batch(expr, sources);
        }
        self.refresh_matrix();
        let (results, exec) = match strategy {
            PlanStrategy::Forward => unreachable!("handled above"),
            PlanStrategy::Bidirectional => {
                let nfa = Nfa::from_expr(expr);
                self.matrix.run_nfa_bidirectional(&nfa, sources)
            }
            PlanStrategy::RareLabelSplit { split_at } => {
                let Some((prefix, suffix, pivot)) = optimizer::split_for(expr, split_at) else {
                    return self.rpq_batch(expr, sources);
                };
                let prefix_nfa = Nfa::from_expr(&prefix);
                let suffix_nfa = Nfa::from_expr(&suffix);
                let pivots = self.graph.label_stats().sources_of(pivot);
                self.matrix.run_nfa_split(&prefix_nfa, &suffix_nfa, &pivots, sources)
            }
        };
        let timeline = self.charge_query(&exec);
        let matched_pairs = results.iter().map(Vec::len).sum();
        let stats = QueryStats {
            timeline,
            batch_size: sources.len(),
            hops: exec.frontier_levels,
            matched_pairs,
            expansions: exec.row_fetches as usize,
        };
        (results, stats)
    }

    /// The baseline's update footprint: per-label result dependencies come
    /// from the batch, but the *cost* of every query on this engine reads the
    /// whole graph's resident byte count (the cache-residency interpolation
    /// in `host_random_access_cost`), so any batch that changed the graph
    /// sets [`UpdateFootprint::cost_global`]. A batch that applied nothing
    /// left the graph — and therefore every cached answer and cost —
    /// untouched.
    ///
    /// Queries keep the default [`GraphEngine::rpq_batch_tracked`]
    /// ("touched everything"), consistent with that global cost coupling.
    fn insert_labeled_edges_tracked(
        &mut self,
        edges: &[(NodeId, NodeId, Label)],
    ) -> (UpdateStats, UpdateFootprint) {
        let stats = self.insert_labeled_edges(edges);
        (stats, Self::baseline_footprint(edges, stats.applied))
    }

    /// See [`HostBaseline::insert_labeled_edges_tracked`] (same footprint
    /// rule).
    fn delete_labeled_edges_tracked(
        &mut self,
        edges: &[(NodeId, NodeId, Label)],
    ) -> (UpdateStats, UpdateFootprint) {
        let stats = self.delete_labeled_edges(edges);
        (stats, Self::baseline_footprint(edges, stats.applied))
    }

    fn edge_count(&self) -> usize {
        self.graph.edge_count()
    }

    fn set_threads(&mut self, threads: usize) {
        self.pool = WorkerPool::new(threads);
    }

    fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// The baseline's storage plane is its adjacency graph; the matrix engine
    /// is a pure function of it and is rebuilt lazily.
    fn export_snapshot(&self) -> Option<SnapshotState> {
        Some(SnapshotState {
            edge_count: self.graph.edge_count() as u64,
            adjacency_rows: self.graph.export_rows(),
            adjacency_id_bound: self.graph.id_bound(),
            ..SnapshotState::default()
        })
    }

    /// Restoring marks the matrix engine dirty; the next query rebuilds it
    /// from the restored graph (rebuilds are simulation-cost-free, so live
    /// and restored engines stay output-identical).
    fn restore_snapshot(&mut self, snapshot: &SnapshotState) -> bool {
        self.graph =
            AdjacencyGraph::from_rows(snapshot.adjacency_rows.clone(), snapshot.adjacency_id_bound);
        self.dirty = true;
        true
    }

    fn label_stats(&self) -> graph_store::LabelStatsSnapshot {
        self.graph.label_stats().snapshot()
    }

    fn export_rev_rows(&self) -> Vec<(NodeId, Vec<(NodeId, graph_store::Label)>)> {
        self.graph.export_rev_rows()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MoctopusSystem;

    #[test]
    fn matches_reference_evaluator() {
        let graph = graph_gen::uniform::generate(300, 4.0, 13);
        let edges: Vec<(NodeId, NodeId)> = graph.edges().map(|(s, d, _)| (s, d)).collect();
        let mut baseline = HostBaseline::from_edge_stream(MoctopusConfig::small_test(), &edges);
        let reference = rpq::ReferenceEvaluator::new(&graph);
        let sources: Vec<NodeId> = (0..16u64).map(NodeId).collect();
        for k in 1..=3usize {
            let (got, _) = baseline.k_hop_batch(&sources, k);
            let want = reference.k_hop(&sources, k);
            for (g, w) in got.iter().zip(want.iter()) {
                let w: Vec<NodeId> = w.iter().copied().collect();
                assert_eq!(g, &w, "mismatch at k = {k}");
            }
        }
    }

    #[test]
    fn matches_moctopus_results() {
        let graph = graph_gen::road::generate(300, 0.1, 2);
        let edges: Vec<(NodeId, NodeId)> = graph.edges().map(|(s, d, _)| (s, d)).collect();
        let mut baseline = HostBaseline::from_edge_stream(MoctopusConfig::small_test(), &edges);
        let mut moc = MoctopusSystem::from_edge_stream(MoctopusConfig::small_test(), &edges);
        let sources: Vec<NodeId> = (0..32u64).map(NodeId).collect();
        let (a, _) = baseline.k_hop_batch(&sources, 3);
        let (b, _) = moc.k_hop_batch(&sources, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn updates_change_results_and_cost_time() {
        let mut baseline = HostBaseline::new(MoctopusConfig::small_test());
        let ins = baseline.insert_edges(&[(NodeId(0), NodeId(1)), (NodeId(1), NodeId(2))]);
        assert_eq!(ins.applied, 2);
        assert!(ins.latency().as_nanos() > 0.0);
        assert_eq!(baseline.edge_count(), 2);

        let (before, _) = baseline.k_hop_batch(&[NodeId(0)], 2);
        assert_eq!(before[0], vec![NodeId(2)]);

        let del = baseline.delete_edges(&[(NodeId(1), NodeId(2))]);
        assert_eq!(del.applied, 1);
        let (after, _) = baseline.k_hop_batch(&[NodeId(0)], 2);
        assert!(after[0].is_empty());
    }

    #[test]
    fn duplicate_updates_are_not_applied() {
        let mut baseline = HostBaseline::new(MoctopusConfig::small_test());
        baseline.insert_edges(&[(NodeId(0), NodeId(1))]);
        let again = baseline.insert_edges(&[(NodeId(0), NodeId(1))]);
        assert_eq!(again.applied, 0);
        let missing = baseline.delete_edges(&[(NodeId(5), NodeId(6))]);
        assert_eq!(missing.applied, 0);
    }

    #[test]
    fn planned_execution_matches_forward_answers() {
        let graph = graph_gen::uniform::generate(250, 4.0, 19);
        let mut edges: Vec<(NodeId, NodeId, Label)> =
            graph.edges().map(|(s, d, _)| (s, d, Label((d.0 % 3) as u16 + 1))).collect();
        for i in 0..10u64 {
            edges.push((NodeId(i * 13 % 250), NodeId((i * 29 + 7) % 250), Label(8)));
        }
        let mut baseline = HostBaseline::new(MoctopusConfig::small_test());
        baseline.insert_labeled_edges(&edges);
        let sources: Vec<NodeId> = (0..32u64).map(NodeId).collect();
        for q in ["1/2", "1+", "1*/8/2*", "(1|2)*"] {
            let expr = rpq::parser::parse(q).expect("query parses");
            let (want, _) = baseline.rpq_batch(&expr, &sources);
            for strategy in [
                PlanStrategy::Forward,
                PlanStrategy::Bidirectional,
                PlanStrategy::RareLabelSplit { split_at: 1 },
            ] {
                let (got, _) = baseline.rpq_batch_planned(&expr, &sources, strategy);
                assert_eq!(got, want, "{q} under {} drifted", strategy.describe());
            }
        }
    }

    #[test]
    fn query_cost_grows_with_hops() {
        let graph = graph_gen::uniform::generate(2000, 5.0, 21);
        let edges: Vec<(NodeId, NodeId)> = graph.edges().map(|(s, d, _)| (s, d)).collect();
        let mut baseline = HostBaseline::from_edge_stream(MoctopusConfig::small_test(), &edges);
        let sources: Vec<NodeId> = (0..64u64).map(NodeId).collect();
        let (_, one) = baseline.k_hop_batch(&sources, 1);
        let (_, three) = baseline.k_hop_batch(&sources, 3);
        assert!(three.latency() > one.latency());
        assert!(three.expansions > one.expansions);
    }
}
