//! System configuration shared by the PIM-based engines.

use graph_partition::GreedyAdaptiveConfig;
use pim_sim::PimConfig;

/// Configuration of a Moctopus (or PIM-hash) deployment.
///
/// # Examples
///
/// ```
/// use moctopus::MoctopusConfig;
/// let cfg = MoctopusConfig::paper_defaults();
/// assert_eq!(cfg.pim.num_modules, 64);
/// assert!(cfg.labor_division);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MoctopusConfig {
    /// The simulated PIM platform (module count, bandwidths, latencies).
    pub pim: PimConfig,
    /// Out-degree above which a node is promoted to the host (paper: 16).
    pub high_degree_threshold: usize,
    /// Capacity slack of the dynamic load-balance constraint (paper: 1.05).
    pub capacity_slack: f64,
    /// Enables labor division (host handles high-degree nodes). Disabled for
    /// the PIM-hash contrast system and for ablations.
    pub labor_division: bool,
    /// Fraction of locally-hit next-hops below which a node counts as
    /// incorrectly partitioned during refinement.
    pub mislocal_threshold: f64,
    /// Host worker threads the engines use to execute per-module work in
    /// parallel (`moctopus_runtime::WorkerPool`). `0` means "use the
    /// machine's available parallelism". This knob changes **wall-clock
    /// only**: simulated results, `SimTime`, and transfer tallies are
    /// byte-identical at every thread count (see CONCURRENCY.md).
    pub threads: usize,
}

impl MoctopusConfig {
    /// The configuration used in the paper's evaluation: one UPMEM rank
    /// (64 PIM modules) plus a dedicated host core.
    ///
    /// The execution-runtime thread count defaults to 1 (the deterministic
    /// baseline the unit tests pin their cost oracles against) unless the
    /// `MOCTOPUS_THREADS` environment variable overrides it — that override
    /// is how CI runs the whole test suite at `--threads 4` to prove the
    /// suite's assertions hold at any thread count. Experiment binaries set
    /// their own default (available parallelism) through `--threads`.
    pub fn paper_defaults() -> Self {
        MoctopusConfig {
            pim: PimConfig::upmem_rank(),
            high_degree_threshold: graph_store::HIGH_DEGREE_THRESHOLD,
            capacity_slack: 1.05,
            labor_division: true,
            mislocal_threshold: 0.5,
            threads: Self::default_threads(),
        }
    }

    /// The default worker-thread count: `MOCTOPUS_THREADS` if set and
    /// parseable, 1 otherwise.
    fn default_threads() -> usize {
        std::env::var("MOCTOPUS_THREADS").ok().and_then(|v| v.parse().ok()).unwrap_or(1)
    }

    /// Returns a copy configured for a different worker-thread count
    /// (`0` = available parallelism).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// A small 8-module configuration for unit tests and doc examples.
    pub fn small_test() -> Self {
        MoctopusConfig { pim: PimConfig::small_test(), ..Self::paper_defaults() }
    }

    /// Returns a copy configured for a different number of PIM modules.
    pub fn with_modules(mut self, num_modules: usize) -> Self {
        self.pim = self.pim.with_modules(num_modules);
        self
    }

    /// The partitioner configuration implied by this system configuration.
    pub fn partitioner_config(&self) -> GreedyAdaptiveConfig {
        GreedyAdaptiveConfig {
            num_pim_modules: self.pim.num_modules,
            high_degree_threshold: self.high_degree_threshold,
            capacity_slack: self.capacity_slack,
            labor_division: self.labor_division,
            mislocal_threshold: self.mislocal_threshold,
        }
    }
}

impl Default for MoctopusConfig {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_paper_parameters() {
        let cfg = MoctopusConfig::paper_defaults();
        assert_eq!(cfg.pim.num_modules, 64);
        assert_eq!(cfg.high_degree_threshold, 16);
        assert!((cfg.capacity_slack - 1.05).abs() < 1e-9);
        assert!(cfg.labor_division);
    }

    #[test]
    fn with_modules_propagates_to_pim_config() {
        let cfg = MoctopusConfig::paper_defaults().with_modules(16);
        assert_eq!(cfg.pim.num_modules, 16);
        assert_eq!(cfg.partitioner_config().num_pim_modules, 16);
    }

    #[test]
    fn partitioner_config_mirrors_flags() {
        let mut cfg = MoctopusConfig::small_test();
        cfg.labor_division = false;
        cfg.mislocal_threshold = 0.25;
        let p = cfg.partitioner_config();
        assert!(!p.labor_division);
        assert_eq!(p.mislocal_threshold, 0.25);
        assert_eq!(p.num_pim_modules, 8);
    }

    #[test]
    fn default_is_paper_defaults() {
        assert_eq!(MoctopusConfig::default(), MoctopusConfig::paper_defaults());
    }

    #[test]
    fn with_threads_overrides_the_worker_count() {
        let cfg = MoctopusConfig::small_test().with_threads(4);
        assert_eq!(cfg.threads, 4);
        // `0` is the "available parallelism" sentinel, resolved by the pool.
        assert_eq!(MoctopusConfig::small_test().with_threads(0).threads, 0);
    }
}
