//! Dependency footprints for update-consistent result caching.
//!
//! A result cache over [`GraphEngine`](crate::GraphEngine) batches must
//! answer one question precisely: *which graph updates can change (the result
//! or the simulated cost of) a cached query?* This module provides the two
//! halves of that contract:
//!
//! * [`QueryDeps`] — what a query execution **touched**, reported by the
//!   engine alongside the results
//!   ([`GraphEngine::rpq_batch_tracked`](crate::GraphEngine::rpq_batch_tracked)):
//!   the dependency buckets of every node the traversal visited, plus
//!   whether the host lane (labor-division hub rows) was involved.
//! * [`UpdateFootprint`] — what an update batch **may have changed**,
//!   reported by the engine's update path
//!   ([`GraphEngine::insert_labeled_edges_tracked`](crate::GraphEngine::insert_labeled_edges_tracked)):
//!   per-label source buckets (result dependencies), label-blind
//!   source+destination buckets (cost/placement dependencies), and
//!   engine-level coupling flags.
//!
//! # Why buckets are *stable hashes*, not PIM partitions
//!
//! The obvious dependency key — the engine's own partition of a node — is
//! **unsound** under Moctopus's dynamic placement: labor division promotes
//! rows to the host and refinement migrates rows between modules, so the
//! partition recorded when a query ran can differ from the partition consulted
//! when a later update arrives, and the intersection test would silently miss
//! real dependencies. Cache dependency buckets are therefore a *fixed* hash
//! of the node id ([`dep_bucket`]): stable across migrations, identical for
//! every engine, and O(1) to compute. The trade-off is that a bucket no
//! longer corresponds to a physical module — it is purely an invalidation
//! index. SERVING.md §3 carries the full argument.

use graph_store::{Label, NodeId};
use std::collections::BTreeMap;
use std::fmt;

/// Number of dependency buckets node ids hash into. 64 keeps a bucket set in
/// one machine word ([`DepMask`]), making footprint intersection a single
/// `AND`.
pub const DEP_BUCKETS: u32 = 64;

/// The stable dependency bucket of a node: a splitmix64-style hash of the id
/// reduced to [`DEP_BUCKETS`]. Deliberately unrelated to the engine's dynamic
/// node placement (see the module docs).
pub fn dep_bucket(node: NodeId) -> u32 {
    let mut x = node.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    ((x ^ (x >> 31)) % DEP_BUCKETS as u64) as u32
}

/// A set of dependency buckets, stored as a 64-bit mask (one bit per
/// [`dep_bucket`] value).
///
/// # Examples
///
/// ```
/// use graph_store::NodeId;
/// use moctopus::deps::DepMask;
/// let mut touched = DepMask::EMPTY;
/// touched.insert(NodeId(7));
/// let mut updated = DepMask::EMPTY;
/// updated.insert(NodeId(7));
/// assert!(touched.intersects(updated));
/// assert!(!touched.intersects(DepMask::EMPTY));
/// assert!(DepMask::ALL.intersects(updated));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct DepMask(u64);

impl DepMask {
    /// The empty bucket set.
    pub const EMPTY: DepMask = DepMask(0);

    /// Every bucket — the sound over-approximation used by engines that do
    /// not track dependencies precisely.
    pub const ALL: DepMask = DepMask(u64::MAX);

    /// Adds `node`'s bucket to the set.
    #[inline]
    pub fn insert(&mut self, node: NodeId) {
        self.0 |= 1u64 << dep_bucket(node);
    }

    /// Returns `true` if the two sets share a bucket.
    #[inline]
    pub fn intersects(self, other: DepMask) -> bool {
        self.0 & other.0 != 0
    }

    /// Unions `other` into `self`.
    #[inline]
    pub fn union(&mut self, other: DepMask) {
        self.0 |= other.0;
    }

    /// Returns `true` if no bucket is set.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of buckets in the set.
    pub fn len(self) -> u32 {
        self.0.count_ones()
    }
}

impl fmt::Display for DepMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// What one tracked query execution depended on, reported by
/// [`GraphEngine::rpq_batch_tracked`](crate::GraphEngine::rpq_batch_tracked).
///
/// `nodes` holds the dependency bucket of **every node the traversal
/// visited** — all sources and every per-hop frontier member, which for the
/// NFA product is the node of every visited `(node, state)` pair. `host_lane`
/// records whether any visited row was host-resident: host-lane query cost
/// depends on the host store's total resident bytes, a *global* quantity, so
/// such entries must additionally be invalidated by any update that changes
/// the host store (see [`UpdateFootprint::host_store`]).
///
/// Determinism: both fields are derived from the merged (thread-count
/// invariant) frontiers, so tracked deps are byte-identical at every
/// `--threads` value — asserted by `tests/serve_cache_equivalence.rs`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryDeps {
    /// Buckets of every node the traversal visited.
    pub nodes: DepMask,
    /// `true` if the traversal expanded a host-resident (labor-division) row.
    pub host_lane: bool,
}

impl QueryDeps {
    /// The sound over-approximation: depends on everything. Used by the
    /// default [`rpq_batch_tracked`](crate::GraphEngine::rpq_batch_tracked)
    /// implementation for engines without precise tracking (the cache then
    /// invalidates such entries on every update — correct, just imprecise).
    pub fn all() -> QueryDeps {
        QueryDeps { nodes: DepMask::ALL, host_lane: true }
    }

    /// Unions another execution's footprint into this one — the shard-aware
    /// merge of the sharded serving plane's gather step.
    ///
    /// Soundness across shards needs no order sensitivity: buckets are stable
    /// hashes of node ids ([`dep_bucket`]), identical on every shard replica,
    /// so the union of per-sub-batch footprints covers exactly the nodes the
    /// whole batch would have visited on one engine (bitwise OR is
    /// commutative, associative and idempotent — shard *count* cannot change
    /// the merged mask).
    pub fn merge(&mut self, other: &QueryDeps) {
        self.nodes.union(other.nodes);
        self.host_lane |= other.host_lane;
    }
}

/// What one update batch may have changed, reported by the tracked update
/// hooks ([`GraphEngine::insert_labeled_edges_tracked`](crate::GraphEngine::insert_labeled_edges_tracked)
/// and the delete counterpart).
///
/// The footprint has a two-tier structure mirroring the two consistency
/// levels a cache can offer (see SERVING.md §3):
///
/// * **Result dependencies** (`per_label`): an update edge `(u, v, L)` can
///   change a query's *answer* only if the query visited `u` **and** its
///   expression can traverse label `L` — so each edge contributes its source
///   bucket under its label.
/// * **Cost dependencies** (`structural`, `host_store`, `cost_global`):
///   simulated cost is more sensitive than the answer. Any applied edge
///   changes its source row's length (label-oblivious scans charge
///   `row_len × ID_BYTES` for *every* label), an insert can assign or promote
///   a node and thereby change routing charges, and host-store mutations move
///   the global `live_bytes` input of every host-lane random access. These
///   are label-blind, and `structural` therefore covers source **and**
///   destination buckets (a destination can be newly assigned a partition).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UpdateFootprint {
    /// Per-label source-node buckets: the result-dependency tier, sorted by
    /// label (built through a `BTreeMap`, so equal batches produce equal
    /// footprints).
    pub per_label: Vec<(Label, DepMask)>,
    /// Label-blind source+destination buckets: the cost-dependency tier.
    pub structural: DepMask,
    /// `true` if the update may have changed the host store (row contents,
    /// promotions, `live_bytes`) — invalidates entries whose query touched
    /// the host lane.
    pub host_store: bool,
    /// `true` if the engine couples *every* query's simulated cost to this
    /// update (e.g. the host baseline's cache-residency model reads the whole
    /// graph's byte size). Invalidates all entries under cost-exact
    /// consistency but leaves result-exact precision intact.
    pub cost_global: bool,
    /// `true` if nothing can be said at all: every cached entry must go, in
    /// every consistency mode. Default for engines without tracked hooks.
    pub result_global: bool,
}

impl UpdateFootprint {
    /// The footprint of an update that changed nothing.
    pub fn empty() -> UpdateFootprint {
        UpdateFootprint::default()
    }

    /// The sound worst case: invalidates everything in every mode. Used by
    /// the default tracked-update implementations.
    pub fn everything() -> UpdateFootprint {
        UpdateFootprint {
            per_label: Vec::new(),
            structural: DepMask::ALL,
            host_store: true,
            cost_global: true,
            result_global: true,
        }
    }

    /// The batch-derived base footprint: per-label source buckets and
    /// label-blind source+destination buckets. Engines extend it with the
    /// flags only they can observe (`host_store`, `cost_global`).
    pub fn from_edges(edges: &[(NodeId, NodeId, Label)]) -> UpdateFootprint {
        let mut per_label: BTreeMap<Label, DepMask> = BTreeMap::new();
        let mut structural = DepMask::EMPTY;
        for &(src, dst, label) in edges {
            per_label.entry(label).or_insert(DepMask::EMPTY).insert(src);
            structural.insert(src);
            structural.insert(dst);
        }
        UpdateFootprint {
            per_label: per_label.into_iter().collect(),
            structural,
            ..Default::default()
        }
    }

    /// Returns `true` if no dependency of any kind is recorded.
    pub fn is_empty(&self) -> bool {
        self.per_label.is_empty()
            && self.structural.is_empty()
            && !self.host_store
            && !self.cost_global
            && !self.result_global
    }

    /// Result-tier test: can this update change the *answer* of a query with
    /// the given deps whose expression traverses labels accepted by
    /// `alphabet_contains`?
    ///
    /// (`alphabet_contains` abstracts `rpq::LabelAlphabet::contains` so this
    /// crate does not name the higher-level type.)
    pub fn invalidates_results(
        &self,
        deps: &QueryDeps,
        mut alphabet_contains: impl FnMut(Label) -> bool,
    ) -> bool {
        self.result_global
            || self
                .per_label
                .iter()
                .any(|&(label, mask)| alphabet_contains(label) && deps.nodes.intersects(mask))
    }

    /// Cost-tier test: can this update change the *simulated cost* of a query
    /// with the given deps (label-blind; see the type docs)?
    pub fn invalidates_costs(&self, deps: &QueryDeps) -> bool {
        self.result_global
            || self.cost_global
            || (self.host_store && deps.host_lane)
            || deps.nodes.intersects(self.structural)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_stable_and_in_range() {
        for id in [0u64, 1, 63, 64, 12345, u64::MAX] {
            let b = dep_bucket(NodeId(id));
            assert!(b < DEP_BUCKETS);
            assert_eq!(b, dep_bucket(NodeId(id)), "bucket must be a pure function of the id");
        }
        // The hash must actually spread ids (not collapse to one bucket).
        let distinct: std::collections::HashSet<u32> =
            (0..256u64).map(|i| dep_bucket(NodeId(i))).collect();
        assert!(distinct.len() > DEP_BUCKETS as usize / 2);
    }

    #[test]
    fn mask_set_operations() {
        let mut a = DepMask::EMPTY;
        assert!(a.is_empty());
        a.insert(NodeId(3));
        a.insert(NodeId(3));
        assert_eq!(a.len(), 1);
        let mut b = DepMask::EMPTY;
        b.insert(NodeId(3));
        b.insert(NodeId(1000));
        assert!(a.intersects(b));
        let mut c = DepMask::EMPTY;
        c.union(a);
        assert_eq!(c, a);
    }

    #[test]
    fn query_deps_merge_unions_masks_and_lanes() {
        let mut a = QueryDeps::default();
        a.nodes.insert(NodeId(1));
        let mut b = QueryDeps { host_lane: true, ..QueryDeps::default() };
        b.nodes.insert(NodeId(1000));
        a.merge(&b);
        assert!(a.host_lane);
        let mut want = DepMask::EMPTY;
        want.insert(NodeId(1));
        want.insert(NodeId(1000));
        assert_eq!(a.nodes, want);
        // Idempotent and order-free: merging in any order or repeatedly
        // produces the same mask (the sharding soundness argument).
        let snapshot = a;
        a.merge(&b);
        assert_eq!(a, snapshot);
    }

    #[test]
    fn footprint_from_edges_partitions_by_label() {
        let edges = [(NodeId(1), NodeId(2), Label(1)), (NodeId(3), NodeId(4), Label(2))];
        let fp = UpdateFootprint::from_edges(&edges);
        assert_eq!(fp.per_label.len(), 2);
        assert_eq!(fp.per_label[0].0, Label(1));
        let mut src1 = DepMask::EMPTY;
        src1.insert(NodeId(1));
        assert_eq!(fp.per_label[0].1, src1);
        // Structural covers sources *and* destinations.
        let mut all = DepMask::EMPTY;
        for n in [1u64, 2, 3, 4] {
            all.insert(NodeId(n));
        }
        assert_eq!(fp.structural, all);
        assert!(!fp.host_store && !fp.cost_global && !fp.result_global);
    }

    #[test]
    fn invalidation_tiers_behave() {
        let edges = [(NodeId(1), NodeId(2), Label(5))];
        let fp = UpdateFootprint::from_edges(&edges);
        let mut visited = DepMask::EMPTY;
        visited.insert(NodeId(1));
        let deps = QueryDeps { nodes: visited, host_lane: false };

        // Result tier is label-sensitive.
        assert!(fp.invalidates_results(&deps, |l| l == Label(5)));
        assert!(!fp.invalidates_results(&deps, |l| l == Label(9)));
        // Cost tier is label-blind.
        assert!(fp.invalidates_costs(&deps));

        // A query that visited nothing relevant is untouched by both tiers.
        let far = QueryDeps { nodes: DepMask::EMPTY, host_lane: false };
        assert!(!fp.invalidates_results(&far, |_| true));
        assert!(!fp.invalidates_costs(&far));

        // Host-store flag hits host-lane entries only.
        let mut hosty = fp.clone();
        hosty.host_store = true;
        let lane = QueryDeps { nodes: DepMask::EMPTY, host_lane: true };
        assert!(hosty.invalidates_costs(&lane));
        assert!(!fp.invalidates_costs(&lane));

        // Global tiers dominate.
        assert!(UpdateFootprint::everything().invalidates_results(&deps, |_| false));
        assert!(UpdateFootprint::everything().invalidates_costs(&QueryDeps::default()));
        assert!(UpdateFootprint::empty().is_empty());
    }
}
