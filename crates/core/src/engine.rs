//! The common interface implemented by every evaluated engine.

use crate::deps::{QueryDeps, UpdateFootprint};
use crate::stats::{QueryStats, UpdateStats};
use graph_store::{Label, LabelStatsSnapshot, NodeId, SnapshotState};
use rpq::{PlanStrategy, RpqExpr};

/// A graph engine that can ingest labelled edges, apply updates, and answer
/// batch path queries — from the paper's k-hop workhorse to general regular
/// path queries — reporting simulated costs for each operation.
///
/// [`MoctopusSystem`](crate::MoctopusSystem),
/// [`PimHashSystem`](crate::PimHashSystem) and
/// [`HostBaseline`](crate::HostBaseline) all implement this trait so the
/// benchmark harness can sweep the three systems uniformly, exactly as the
/// paper's figures do.
pub trait GraphEngine {
    /// Short human-readable engine name used in experiment output.
    fn name(&self) -> &'static str;

    /// Inserts a batch of directed unlabelled edges (they receive
    /// [`Label::ANY`]), returning simulated update costs.
    ///
    /// The default materialises a labelled copy of the batch; the in-tree
    /// engines override it with an allocation-free streaming path.
    fn insert_edges(&mut self, edges: &[(NodeId, NodeId)]) -> UpdateStats {
        let labelled: Vec<(NodeId, NodeId, Label)> =
            edges.iter().map(|&(s, d)| (s, d, Label::ANY)).collect();
        self.insert_labeled_edges(&labelled)
    }

    /// Deletes a batch of directed unlabelled ([`Label::ANY`]) edges,
    /// returning simulated update costs.
    fn delete_edges(&mut self, edges: &[(NodeId, NodeId)]) -> UpdateStats {
        let labelled: Vec<(NodeId, NodeId, Label)> =
            edges.iter().map(|&(s, d)| (s, d, Label::ANY)).collect();
        self.delete_labeled_edges(&labelled)
    }

    /// Inserts a batch of directed labelled edges, returning simulated update
    /// costs.
    fn insert_labeled_edges(&mut self, edges: &[(NodeId, NodeId, Label)]) -> UpdateStats;

    /// Deletes a batch of directed labelled edges, returning simulated update
    /// costs.
    fn delete_labeled_edges(&mut self, edges: &[(NodeId, NodeId, Label)]) -> UpdateStats;

    /// Answers a batch k-hop path query: for every start node, the set of
    /// nodes reachable by a path of exactly `k` edges (boolean semantics,
    /// any label), sorted ascending. Also returns the simulated query costs.
    fn k_hop_batch(&mut self, sources: &[NodeId], k: usize) -> (Vec<Vec<NodeId>>, QueryStats);

    /// Answers a batch regular path query: for every start node, the sorted
    /// set of nodes reachable by a path whose label sequence matches `expr`.
    ///
    /// Results must agree with [`rpq::ReferenceEvaluator::evaluate`]; plain
    /// k-hop shapes (`.{k}`) must take the same execution path — and charge
    /// the same simulated costs — as
    /// [`GraphEngine::k_hop_batch`].
    fn rpq_batch(&mut self, expr: &RpqExpr, sources: &[NodeId]) -> (Vec<Vec<NodeId>>, QueryStats);

    /// [`GraphEngine::rpq_batch`] executed under an explicit plan strategy —
    /// the execution half of the `rpq::optimizer` contract.
    ///
    /// Served answers must be **byte-identical** to [`GraphEngine::rpq_batch`]
    /// under every strategy; only the simulated cost (and workload counters
    /// such as `expansions`) may differ. Cache dependency footprints are
    /// *not* produced by planned execution: a pruned traversal's visited set
    /// is not a sound invalidation cover for future inserts, so deps always
    /// come from the canonical forward path
    /// ([`GraphEngine::rpq_batch_tracked`]).
    ///
    /// The default ignores the strategy and runs the canonical forward path,
    /// which is always correct; the in-tree engines override it with real
    /// bidirectional / rare-label-split executors over their reverse
    /// adjacency indexes.
    fn rpq_batch_planned(
        &mut self,
        expr: &RpqExpr,
        sources: &[NodeId],
        strategy: PlanStrategy,
    ) -> (Vec<Vec<NodeId>>, QueryStats) {
        let _ = strategy;
        self.rpq_batch(expr, sources)
    }

    /// [`GraphEngine::rpq_batch`] plus the execution's dependency footprint,
    /// for update-consistent result caching (the `moctopus-server` crate).
    ///
    /// The returned [`QueryDeps`] must be a sound over-approximation of what
    /// the execution touched: the bucket of **every visited node** (sources
    /// and every frontier member) and whether any host-resident row was
    /// expanded. It must also be deterministic — byte-identical at every
    /// thread count, like the stats themselves.
    ///
    /// The default implementation returns [`QueryDeps::all`] ("touched
    /// everything"), which is always sound: a cache built on it simply
    /// invalidates such entries on every update. The in-tree PIM engines
    /// override it with precise tracking; the host baseline keeps the
    /// default because its simulated cost already couples to the whole
    /// graph's resident bytes (see
    /// [`UpdateFootprint::cost_global`]).
    fn rpq_batch_tracked(
        &mut self,
        expr: &RpqExpr,
        sources: &[NodeId],
    ) -> (Vec<Vec<NodeId>>, QueryStats, QueryDeps) {
        let (results, stats) = self.rpq_batch(expr, sources);
        (results, stats, QueryDeps::all())
    }

    /// [`GraphEngine::insert_labeled_edges`] plus the update's dependency
    /// footprint — the cache hook of the update path.
    ///
    /// The returned [`UpdateFootprint`] must cover everything the batch may
    /// have changed (row contents, node placement, host-store bytes); see the
    /// [`crate::deps`] module docs for the two-tier structure. The default
    /// implementation returns [`UpdateFootprint::everything`], which
    /// invalidates every cached entry — always sound.
    fn insert_labeled_edges_tracked(
        &mut self,
        edges: &[(NodeId, NodeId, Label)],
    ) -> (UpdateStats, UpdateFootprint) {
        (self.insert_labeled_edges(edges), UpdateFootprint::everything())
    }

    /// [`GraphEngine::delete_labeled_edges`] plus the update's dependency
    /// footprint; same contract as
    /// [`GraphEngine::insert_labeled_edges_tracked`].
    fn delete_labeled_edges_tracked(
        &mut self,
        edges: &[(NodeId, NodeId, Label)],
    ) -> (UpdateStats, UpdateFootprint) {
        (self.delete_labeled_edges(edges), UpdateFootprint::everything())
    }

    /// Number of directed edges currently stored (labelled parallel edges
    /// count once per label).
    fn edge_count(&self) -> usize;

    /// Reconfigures the engine's execution runtime to `threads` host worker
    /// threads (`0` = the machine's available parallelism).
    ///
    /// Implementations must keep simulated results, `SimTime`, and transfer
    /// tallies **byte-identical** at every thread count — the knob trades
    /// wall-clock only (see CONCURRENCY.md). The harness uses this to sweep
    /// `--threads` over boxed engines uniformly.
    fn set_threads(&mut self, threads: usize);

    /// Host worker threads the engine's execution runtime currently uses.
    fn threads(&self) -> usize;

    /// Exports a complete durable image of the engine's storage plane, or
    /// `None` if the engine does not support snapshots (the default).
    ///
    /// The contract is **observational bit-identity**: an engine restored
    /// from the exported state (on the same configuration) must answer every
    /// future query and update with byte-identical results, stats, and
    /// dependency footprints. `SnapshotState::last_seq` is left `0`; the
    /// durability layer stamps it before persisting.
    fn export_snapshot(&self) -> Option<SnapshotState> {
        None
    }

    /// Replaces the engine's storage plane with a previously exported image.
    ///
    /// Returns `false` — leaving the engine untouched — when the engine does
    /// not support snapshots (the default) or the image is structurally
    /// incompatible (e.g. written under a different PIM module count).
    fn restore_snapshot(&mut self, snapshot: &SnapshotState) -> bool {
        let _ = snapshot;
        false
    }

    /// A deterministic snapshot of the engine's per-label degree/cardinality
    /// statistics, the input of the cost-based RPQ plan optimizer
    /// (`rpq::optimizer`).
    ///
    /// The statistics must be maintained **incrementally** on every labelled
    /// update — never by rescanning stored rows — and must be a pure
    /// observable: reading them can never change served results, query
    /// statistics, or dependency footprints. The default returns an empty
    /// snapshot, under which the optimizer degenerates to the left-to-right
    /// forward plan (always sound).
    fn label_stats(&self) -> LabelStatsSnapshot {
        LabelStatsSnapshot::default()
    }

    /// The engine's in-adjacency secondary index, flattened to canonical
    /// reverse rows: nodes ascending, each row's `(source, label)` entries
    /// strictly sorted, no empty rows.
    ///
    /// This is a pure diagnostic observable — the differential tests use it
    /// to prove the reverse index is exactly the transpose of the forward
    /// rows and comes back bit-identical through snapshot restore and WAL
    /// replay. Engines without a reverse index return an empty list (the
    /// default); engines with one must keep it byte-deterministic at every
    /// thread count, like every other observable.
    fn export_rev_rows(&self) -> Vec<(NodeId, Vec<(NodeId, Label)>)> {
        Vec::new()
    }
}

/// Boxed engines are engines: forwarding impl so harnesses and the serving
/// layer can hold `Box<dyn GraphEngine + Send>` and still pass it wherever an
/// `impl GraphEngine` is expected (every call forwards to the boxed value's
/// own implementation, overridden methods included).
impl<T: GraphEngine + ?Sized> GraphEngine for Box<T> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn insert_edges(&mut self, edges: &[(NodeId, NodeId)]) -> UpdateStats {
        (**self).insert_edges(edges)
    }

    fn delete_edges(&mut self, edges: &[(NodeId, NodeId)]) -> UpdateStats {
        (**self).delete_edges(edges)
    }

    fn insert_labeled_edges(&mut self, edges: &[(NodeId, NodeId, Label)]) -> UpdateStats {
        (**self).insert_labeled_edges(edges)
    }

    fn delete_labeled_edges(&mut self, edges: &[(NodeId, NodeId, Label)]) -> UpdateStats {
        (**self).delete_labeled_edges(edges)
    }

    fn k_hop_batch(&mut self, sources: &[NodeId], k: usize) -> (Vec<Vec<NodeId>>, QueryStats) {
        (**self).k_hop_batch(sources, k)
    }

    fn rpq_batch(&mut self, expr: &RpqExpr, sources: &[NodeId]) -> (Vec<Vec<NodeId>>, QueryStats) {
        (**self).rpq_batch(expr, sources)
    }

    fn rpq_batch_planned(
        &mut self,
        expr: &RpqExpr,
        sources: &[NodeId],
        strategy: PlanStrategy,
    ) -> (Vec<Vec<NodeId>>, QueryStats) {
        (**self).rpq_batch_planned(expr, sources, strategy)
    }

    fn rpq_batch_tracked(
        &mut self,
        expr: &RpqExpr,
        sources: &[NodeId],
    ) -> (Vec<Vec<NodeId>>, QueryStats, QueryDeps) {
        (**self).rpq_batch_tracked(expr, sources)
    }

    fn insert_labeled_edges_tracked(
        &mut self,
        edges: &[(NodeId, NodeId, Label)],
    ) -> (UpdateStats, UpdateFootprint) {
        (**self).insert_labeled_edges_tracked(edges)
    }

    fn delete_labeled_edges_tracked(
        &mut self,
        edges: &[(NodeId, NodeId, Label)],
    ) -> (UpdateStats, UpdateFootprint) {
        (**self).delete_labeled_edges_tracked(edges)
    }

    fn edge_count(&self) -> usize {
        (**self).edge_count()
    }

    fn set_threads(&mut self, threads: usize) {
        (**self).set_threads(threads)
    }

    fn threads(&self) -> usize {
        (**self).threads()
    }

    fn export_snapshot(&self) -> Option<SnapshotState> {
        (**self).export_snapshot()
    }

    fn restore_snapshot(&mut self, snapshot: &SnapshotState) -> bool {
        (**self).restore_snapshot(snapshot)
    }

    fn label_stats(&self) -> LabelStatsSnapshot {
        (**self).label_stats()
    }

    fn export_rev_rows(&self) -> Vec<(NodeId, Vec<(NodeId, Label)>)> {
        (**self).export_rev_rows()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HostBaseline, MoctopusConfig, MoctopusSystem, PimHashSystem};

    /// The trait must stay object-safe so harnesses can hold `Box<dyn GraphEngine>`.
    #[test]
    fn engines_are_usable_as_trait_objects() {
        let engines: Vec<Box<dyn GraphEngine>> = vec![
            Box::new(MoctopusSystem::new(MoctopusConfig::small_test())),
            Box::new(PimHashSystem::new(MoctopusConfig::small_test())),
            Box::new(HostBaseline::new(MoctopusConfig::small_test())),
        ];
        let names: Vec<&str> = engines.iter().map(|e| e.name()).collect();
        assert_eq!(names, vec!["Moctopus", "PIM-hash", "RedisGraph-like"]);
    }

    #[test]
    fn empty_engines_report_zero_edges() {
        let engines: Vec<Box<dyn GraphEngine>> = vec![
            Box::new(MoctopusSystem::new(MoctopusConfig::small_test())),
            Box::new(PimHashSystem::new(MoctopusConfig::small_test())),
            Box::new(HostBaseline::new(MoctopusConfig::small_test())),
        ];
        for e in &engines {
            assert_eq!(e.edge_count(), 0, "{} should start empty", e.name());
        }
    }
}
