//! The common interface implemented by every evaluated engine.

use crate::stats::{QueryStats, UpdateStats};
use graph_store::NodeId;

/// A graph engine that can ingest edges, apply updates, and answer batch
/// k-hop path queries, reporting simulated costs for each operation.
///
/// [`MoctopusSystem`](crate::MoctopusSystem),
/// [`PimHashSystem`](crate::PimHashSystem) and
/// [`HostBaseline`](crate::HostBaseline) all implement this trait so the
/// benchmark harness can sweep the three systems uniformly, exactly as the
/// paper's figures do.
pub trait GraphEngine {
    /// Short human-readable engine name used in experiment output.
    fn name(&self) -> &'static str;

    /// Inserts a batch of directed edges, returning simulated update costs.
    fn insert_edges(&mut self, edges: &[(NodeId, NodeId)]) -> UpdateStats;

    /// Deletes a batch of directed edges, returning simulated update costs.
    fn delete_edges(&mut self, edges: &[(NodeId, NodeId)]) -> UpdateStats;

    /// Answers a batch k-hop path query: for every start node, the set of
    /// nodes reachable by a path of exactly `k` edges (boolean semantics),
    /// sorted ascending. Also returns the simulated query costs.
    fn k_hop_batch(&mut self, sources: &[NodeId], k: usize) -> (Vec<Vec<NodeId>>, QueryStats);

    /// Number of directed edges currently stored.
    fn edge_count(&self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HostBaseline, MoctopusConfig, MoctopusSystem, PimHashSystem};

    /// The trait must stay object-safe so harnesses can hold `Box<dyn GraphEngine>`.
    #[test]
    fn engines_are_usable_as_trait_objects() {
        let engines: Vec<Box<dyn GraphEngine>> = vec![
            Box::new(MoctopusSystem::new(MoctopusConfig::small_test())),
            Box::new(PimHashSystem::new(MoctopusConfig::small_test())),
            Box::new(HostBaseline::new(MoctopusConfig::small_test())),
        ];
        let names: Vec<&str> = engines.iter().map(|e| e.name()).collect();
        assert_eq!(names, vec!["Moctopus", "PIM-hash", "RedisGraph-like"]);
    }

    #[test]
    fn empty_engines_report_zero_edges() {
        let engines: Vec<Box<dyn GraphEngine>> = vec![
            Box::new(MoctopusSystem::new(MoctopusConfig::small_test())),
            Box::new(PimHashSystem::new(MoctopusConfig::small_test())),
            Box::new(HostBaseline::new(MoctopusConfig::small_test())),
        ];
        for e in &engines {
            assert_eq!(e.edge_count(), 0, "{} should start empty", e.name());
        }
    }
}
