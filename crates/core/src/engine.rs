//! The common interface implemented by every evaluated engine.

use crate::stats::{QueryStats, UpdateStats};
use graph_store::{Label, NodeId};
use rpq::RpqExpr;

/// A graph engine that can ingest labelled edges, apply updates, and answer
/// batch path queries — from the paper's k-hop workhorse to general regular
/// path queries — reporting simulated costs for each operation.
///
/// [`MoctopusSystem`](crate::MoctopusSystem),
/// [`PimHashSystem`](crate::PimHashSystem) and
/// [`HostBaseline`](crate::HostBaseline) all implement this trait so the
/// benchmark harness can sweep the three systems uniformly, exactly as the
/// paper's figures do.
pub trait GraphEngine {
    /// Short human-readable engine name used in experiment output.
    fn name(&self) -> &'static str;

    /// Inserts a batch of directed unlabelled edges (they receive
    /// [`Label::ANY`]), returning simulated update costs.
    ///
    /// The default materialises a labelled copy of the batch; the in-tree
    /// engines override it with an allocation-free streaming path.
    fn insert_edges(&mut self, edges: &[(NodeId, NodeId)]) -> UpdateStats {
        let labelled: Vec<(NodeId, NodeId, Label)> =
            edges.iter().map(|&(s, d)| (s, d, Label::ANY)).collect();
        self.insert_labeled_edges(&labelled)
    }

    /// Deletes a batch of directed unlabelled ([`Label::ANY`]) edges,
    /// returning simulated update costs.
    fn delete_edges(&mut self, edges: &[(NodeId, NodeId)]) -> UpdateStats {
        let labelled: Vec<(NodeId, NodeId, Label)> =
            edges.iter().map(|&(s, d)| (s, d, Label::ANY)).collect();
        self.delete_labeled_edges(&labelled)
    }

    /// Inserts a batch of directed labelled edges, returning simulated update
    /// costs.
    fn insert_labeled_edges(&mut self, edges: &[(NodeId, NodeId, Label)]) -> UpdateStats;

    /// Deletes a batch of directed labelled edges, returning simulated update
    /// costs.
    fn delete_labeled_edges(&mut self, edges: &[(NodeId, NodeId, Label)]) -> UpdateStats;

    /// Answers a batch k-hop path query: for every start node, the set of
    /// nodes reachable by a path of exactly `k` edges (boolean semantics,
    /// any label), sorted ascending. Also returns the simulated query costs.
    fn k_hop_batch(&mut self, sources: &[NodeId], k: usize) -> (Vec<Vec<NodeId>>, QueryStats);

    /// Answers a batch regular path query: for every start node, the sorted
    /// set of nodes reachable by a path whose label sequence matches `expr`.
    ///
    /// Results must agree with [`rpq::ReferenceEvaluator::evaluate`]; plain
    /// k-hop shapes (`.{k}`) must take the same execution path — and charge
    /// the same simulated costs — as
    /// [`GraphEngine::k_hop_batch`].
    fn rpq_batch(&mut self, expr: &RpqExpr, sources: &[NodeId]) -> (Vec<Vec<NodeId>>, QueryStats);

    /// Number of directed edges currently stored (labelled parallel edges
    /// count once per label).
    fn edge_count(&self) -> usize;

    /// Reconfigures the engine's execution runtime to `threads` host worker
    /// threads (`0` = the machine's available parallelism).
    ///
    /// Implementations must keep simulated results, `SimTime`, and transfer
    /// tallies **byte-identical** at every thread count — the knob trades
    /// wall-clock only (see CONCURRENCY.md). The harness uses this to sweep
    /// `--threads` over boxed engines uniformly.
    fn set_threads(&mut self, threads: usize);

    /// Host worker threads the engine's execution runtime currently uses.
    fn threads(&self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HostBaseline, MoctopusConfig, MoctopusSystem, PimHashSystem};

    /// The trait must stay object-safe so harnesses can hold `Box<dyn GraphEngine>`.
    #[test]
    fn engines_are_usable_as_trait_objects() {
        let engines: Vec<Box<dyn GraphEngine>> = vec![
            Box::new(MoctopusSystem::new(MoctopusConfig::small_test())),
            Box::new(PimHashSystem::new(MoctopusConfig::small_test())),
            Box::new(HostBaseline::new(MoctopusConfig::small_test())),
        ];
        let names: Vec<&str> = engines.iter().map(|e| e.name()).collect();
        assert_eq!(names, vec!["Moctopus", "PIM-hash", "RedisGraph-like"]);
    }

    #[test]
    fn empty_engines_report_zero_edges() {
        let engines: Vec<Box<dyn GraphEngine>> = vec![
            Box::new(MoctopusSystem::new(MoctopusConfig::small_test())),
            Box::new(PimHashSystem::new(MoctopusConfig::small_test())),
            Box::new(HostBaseline::new(MoctopusConfig::small_test())),
        ];
        for e in &engines {
            assert_eq!(e.edge_count(), 0, "{} should start empty", e.name());
        }
    }
}
