//! Moctopus: a PIM-based data management system for regular path queries over
//! graph databases — reproduction of the DAC 2024 paper.
//!
//! The crate assembles the workspace's substrates into the three systems the
//! paper evaluates:
//!
//! * [`MoctopusSystem`] — the paper's contribution: the query processor
//!   dispatches matrix-based operators to simulated PIM modules, the
//!   PIM-friendly greedy-adaptive partitioner with labor division places
//!   low-degree rows on PIM modules and high-degree rows on the host, the node
//!   migrator promotes hubs and repairs incorrectly partitioned nodes, and the
//!   heterogeneous graph storage amortises host-side update cost to the PIM
//!   side.
//! * [`PimHashSystem`] — the contrast system: the identical PIM execution
//!   engine but hash partitioning and no labor division.
//! * [`HostBaseline`] — the RedisGraph-like baseline: GraphBLAS-style sparse
//!   matrix execution on a single dedicated host core.
//!
//! All three implement the [`GraphEngine`] trait so experiments can sweep over
//! them uniformly, and all three charge their work to the same
//! [`pim_sim`] cost model, which reports a per-phase [`pim_sim::Timeline`]
//! (host compute, PIM compute, CPC, IPC, reduction) as the paper does.
//!
//! # Quick start
//!
//! ```
//! use moctopus::{GraphEngine, MoctopusConfig, MoctopusSystem};
//! use graph_store::NodeId;
//!
//! // A small ring graph, streamed in as a graph database would ingest it.
//! let edges: Vec<(NodeId, NodeId)> = (0..64u64)
//!     .map(|i| (NodeId(i), NodeId((i + 1) % 64)))
//!     .collect();
//! let mut system = MoctopusSystem::new(MoctopusConfig::small_test());
//! system.insert_edges(&edges);
//!
//! let (results, stats) = system.k_hop_batch(&[NodeId(0), NodeId(5)], 2);
//! assert_eq!(results[0], vec![NodeId(2)]);
//! assert_eq!(results[1], vec![NodeId(7)]);
//! assert!(stats.timeline.total().as_nanos() > 0.0);
//! ```

pub mod config;
pub mod deps;
pub mod distributed;
pub mod engine;
pub mod host_baseline;
pub mod pim_hash;
pub mod stats;
pub mod system;

pub use config::MoctopusConfig;
pub use deps::{dep_bucket, DepMask, QueryDeps, UpdateFootprint};
pub use engine::GraphEngine;
pub use host_baseline::HostBaseline;
pub use pim_hash::PimHashSystem;
pub use stats::{QueryStats, StatsDelta, UpdateStats};
pub use system::MoctopusSystem;

pub use graph_store::{Label, NodeId, PartitionId};
pub use pim_sim::{Phase, SimTime, Timeline};
