//! Automaton construction for RPQ expressions.
//!
//! Expressions compile to a non-deterministic finite automaton whose
//! transitions are labelled with [`LabelSpec`]s. Construction goes through a
//! Thompson-style ε-NFA and then eliminates ε-transitions, producing the
//! ε-free automaton (equivalent to the Glushkov construction) that the
//! product-graph evaluator traverses.

use crate::ast::{LabelSpec, RpqExpr};
use std::collections::HashSet;

/// Largest expression expansion (atom copies after unrolling bounded
/// repeats, [`RpqExpr::expansion_weight`]) [`Nfa::from_expr`] accepts.
///
/// The text parser already rejects queries past [`crate::parser::MAX_REPEAT`]
/// per repetition construct; this larger cap is the defence for
/// *programmatically built* expressions, where a single
/// `Repeat { min: 1e9, max: 1e9 }` node would otherwise allocate ~1e9 NFA
/// states before construction even finishes.
pub const MAX_NFA_EXPANSION: usize = 1 << 20;

/// An ε-free non-deterministic finite automaton over edge labels.
///
/// # Examples
///
/// ```
/// use rpq::{Nfa, RpqExpr};
/// let nfa = Nfa::from_expr(&RpqExpr::k_hop(2));
/// assert!(!nfa.accepts_empty());
/// assert_eq!(nfa.start(), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Nfa {
    /// transitions[state] = list of (label spec, destination state).
    transitions: Vec<Vec<(LabelSpec, usize)>>,
    accepting: Vec<bool>,
    start: usize,
}

impl Nfa {
    /// Compiles an expression into an ε-free NFA.
    ///
    /// # Panics
    ///
    /// Panics if the expression expands past [`MAX_NFA_EXPANSION`] atoms —
    /// a deliberate guard so an adversarial programmatic `Repeat` fails fast
    /// with a message instead of exhausting memory mid-construction. Parsed
    /// queries can never hit this: [`crate::parser::parse`] rejects any
    /// expression whose total expansion exceeds the same cap.
    pub fn from_expr(expr: &RpqExpr) -> Self {
        let weight = expr.expansion_weight();
        assert!(
            weight <= MAX_NFA_EXPANSION,
            "expression expands to {weight} atoms, past the NFA construction cap of \
             {MAX_NFA_EXPANSION}"
        );
        let mut builder = EpsilonNfa::new();
        let start = builder.new_state();
        let accept = builder.new_state();
        builder.compile(expr, start, accept);
        builder.into_epsilon_free(start, accept)
    }

    /// The start state (always 0 after construction).
    pub fn start(&self) -> usize {
        self.start
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.transitions.len()
    }

    /// Returns `true` if `state` is accepting.
    pub fn is_accepting(&self, state: usize) -> bool {
        self.accepting.get(state).copied().unwrap_or(false)
    }

    /// Returns `true` if the automaton accepts the empty path (zero edges).
    pub fn accepts_empty(&self) -> bool {
        self.is_accepting(self.start)
    }

    /// Outgoing transitions of `state` as `(label spec, destination)` pairs.
    pub fn transitions_from(&self, state: usize) -> &[(LabelSpec, usize)] {
        self.transitions.get(state).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Total number of transitions.
    pub fn transition_count(&self) -> usize {
        self.transitions.iter().map(Vec::len).sum()
    }

    /// The reversed transition index: entry `to` lists `(spec, from)` for
    /// every transition `from --spec--> to`, in the deterministic order the
    /// forward transitions are stored. Backward (useful-set) sweeps walk
    /// this index over reverse adjacency rows.
    pub fn reversed_transitions(&self) -> Vec<Vec<(LabelSpec, usize)>> {
        let mut rev = vec![Vec::new(); self.transitions.len()];
        for (from, outs) in self.transitions.iter().enumerate() {
            for &(spec, to) in outs {
                if to < rev.len() {
                    rev[to].push((spec, from));
                }
            }
        }
        rev
    }
}

/// Thompson-style NFA with ε-transitions, used only during construction.
struct EpsilonNfa {
    labelled: Vec<Vec<(LabelSpec, usize)>>,
    epsilon: Vec<Vec<usize>>,
}

impl EpsilonNfa {
    fn new() -> Self {
        EpsilonNfa { labelled: Vec::new(), epsilon: Vec::new() }
    }

    fn new_state(&mut self) -> usize {
        self.labelled.push(Vec::new());
        self.epsilon.push(Vec::new());
        self.labelled.len() - 1
    }

    fn add_label(&mut self, from: usize, spec: LabelSpec, to: usize) {
        self.labelled[from].push((spec, to));
    }

    fn add_epsilon(&mut self, from: usize, to: usize) {
        self.epsilon[from].push(to);
    }

    /// Compiles `expr` as a fragment from `start` to `accept`.
    fn compile(&mut self, expr: &RpqExpr, start: usize, accept: usize) {
        match expr {
            RpqExpr::Atom(spec) => self.add_label(start, *spec, accept),
            RpqExpr::Concat(parts) => {
                if parts.is_empty() {
                    self.add_epsilon(start, accept);
                    return;
                }
                let mut current = start;
                for (i, part) in parts.iter().enumerate() {
                    let next = if i + 1 == parts.len() { accept } else { self.new_state() };
                    self.compile(part, current, next);
                    current = next;
                }
            }
            RpqExpr::Alt(branches) => {
                for branch in branches {
                    let s = self.new_state();
                    let a = self.new_state();
                    self.add_epsilon(start, s);
                    self.compile(branch, s, a);
                    self.add_epsilon(a, accept);
                }
            }
            RpqExpr::Star(inner) => {
                let s = self.new_state();
                let a = self.new_state();
                self.add_epsilon(start, s);
                self.add_epsilon(start, accept);
                self.compile(inner, s, a);
                self.add_epsilon(a, s);
                self.add_epsilon(a, accept);
            }
            RpqExpr::Plus(inner) => {
                let s = self.new_state();
                let a = self.new_state();
                self.add_epsilon(start, s);
                self.compile(inner, s, a);
                self.add_epsilon(a, s);
                self.add_epsilon(a, accept);
            }
            RpqExpr::Optional(inner) => {
                self.add_epsilon(start, accept);
                self.compile(inner, start, accept);
            }
            RpqExpr::Repeat { expr, min, max } => {
                // Expand into `min` mandatory copies followed by `max - min`
                // optional copies; path-query repetition counts are small.
                let mut current = start;
                for _ in 0..*min {
                    let next = self.new_state();
                    self.compile(expr, current, next);
                    current = next;
                }
                for _ in *min..*max {
                    let next = self.new_state();
                    self.add_epsilon(current, next);
                    let mid = self.new_state();
                    self.add_epsilon(current, mid);
                    self.compile(expr, mid, next);
                    current = next;
                }
                self.add_epsilon(current, accept);
            }
        }
    }

    /// ε-closure of one state.
    fn closure(&self, state: usize) -> Vec<usize> {
        let mut seen = vec![false; self.labelled.len()];
        let mut stack = vec![state];
        let mut out = Vec::new();
        while let Some(s) = stack.pop() {
            if seen[s] {
                continue;
            }
            seen[s] = true;
            out.push(s);
            for &t in &self.epsilon[s] {
                stack.push(t);
            }
        }
        out
    }

    /// Eliminates ε-transitions, producing the final [`Nfa`].
    ///
    /// The ε-free automaton keeps the same state ids; state `s` gets every
    /// labelled transition reachable from its ε-closure, and is accepting if
    /// its closure contains the accept state. Unreachable states are kept
    /// (harmless) so ids stay stable; state 0 is the start.
    fn into_epsilon_free(self, start: usize, accept: usize) -> Nfa {
        let n = self.labelled.len();
        let mut transitions = vec![Vec::new(); n];
        let mut accepting = vec![false; n];
        // Dedup per state with a hash set instead of `Vec::contains`: states
        // in alternation-heavy expressions accumulate hundreds of transitions
        // through their ε-closures, and the linear re-scan per candidate made
        // construction quadratic in that degree.
        let mut seen: HashSet<(LabelSpec, usize)> = HashSet::new();
        for s in 0..n {
            let closure = self.closure(s);
            if closure.contains(&accept) {
                accepting[s] = true;
            }
            seen.clear();
            for &c in &closure {
                for &(spec, to) in &self.labelled[c] {
                    if seen.insert((spec, to)) {
                        transitions[s].push((spec, to));
                    }
                }
            }
        }
        debug_assert_eq!(start, 0, "the start state is always created first");
        Nfa { transitions, accepting, start }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph_store::Label;

    /// Checks whether the NFA accepts a given label sequence, by brute force.
    fn accepts(nfa: &Nfa, labels: &[Label]) -> bool {
        let mut states = vec![nfa.start()];
        for &label in labels {
            let mut next = Vec::new();
            for &s in &states {
                for &(spec, to) in nfa.transitions_from(s) {
                    if spec.matches(label) && !next.contains(&to) {
                        next.push(to);
                    }
                }
            }
            states = next;
            if states.is_empty() {
                return false;
            }
        }
        states.iter().any(|&s| nfa.is_accepting(s))
    }

    #[test]
    fn k_hop_accepts_exactly_k_edges() {
        let nfa = Nfa::from_expr(&RpqExpr::k_hop(3));
        assert!(!accepts(&nfa, &[Label(0); 2]));
        assert!(accepts(&nfa, &[Label(0); 3]));
        assert!(accepts(&nfa, &[Label(1), Label(2), Label(3)]));
        assert!(!accepts(&nfa, &[Label(0); 4]));
        assert!(!nfa.accepts_empty());
    }

    #[test]
    fn concat_requires_label_sequence() {
        let expr = RpqExpr::concat(vec![RpqExpr::label(1), RpqExpr::label(2)]);
        let nfa = Nfa::from_expr(&expr);
        assert!(accepts(&nfa, &[Label(1), Label(2)]));
        assert!(!accepts(&nfa, &[Label(2), Label(1)]));
        assert!(!accepts(&nfa, &[Label(1)]));
    }

    #[test]
    fn alternation_accepts_either_branch() {
        let expr = RpqExpr::alt(vec![RpqExpr::label(1), RpqExpr::label(2)]);
        let nfa = Nfa::from_expr(&expr);
        assert!(accepts(&nfa, &[Label(1)]));
        assert!(accepts(&nfa, &[Label(2)]));
        assert!(!accepts(&nfa, &[Label(3)]));
    }

    #[test]
    fn star_accepts_zero_or_more() {
        let expr = RpqExpr::Star(Box::new(RpqExpr::label(1)));
        let nfa = Nfa::from_expr(&expr);
        assert!(nfa.accepts_empty());
        assert!(accepts(&nfa, &[]));
        assert!(accepts(&nfa, &[Label(1)]));
        assert!(accepts(&nfa, &[Label(1); 5]));
        assert!(!accepts(&nfa, &[Label(2)]));
    }

    #[test]
    fn plus_requires_at_least_one() {
        let expr = RpqExpr::Plus(Box::new(RpqExpr::label(1)));
        let nfa = Nfa::from_expr(&expr);
        assert!(!nfa.accepts_empty());
        assert!(accepts(&nfa, &[Label(1)]));
        assert!(accepts(&nfa, &[Label(1), Label(1)]));
    }

    #[test]
    fn optional_accepts_zero_or_one() {
        let expr = RpqExpr::Optional(Box::new(RpqExpr::label(1)));
        let nfa = Nfa::from_expr(&expr);
        assert!(nfa.accepts_empty());
        assert!(accepts(&nfa, &[Label(1)]));
        assert!(!accepts(&nfa, &[Label(1), Label(1)]));
    }

    #[test]
    fn bounded_repeat_respects_range() {
        let expr = RpqExpr::Repeat { expr: Box::new(RpqExpr::label(1)), min: 1, max: 3 };
        let nfa = Nfa::from_expr(&expr);
        assert!(!accepts(&nfa, &[]));
        assert!(accepts(&nfa, &[Label(1)]));
        assert!(accepts(&nfa, &[Label(1); 2]));
        assert!(accepts(&nfa, &[Label(1); 3]));
        assert!(!accepts(&nfa, &[Label(1); 4]));
    }

    #[test]
    #[should_panic(expected = "NFA construction cap")]
    fn oversized_programmatic_repeat_panics_instead_of_allocating() {
        // Programmatic expressions bypass the parser's MAX_REPEAT check; the
        // construction cap turns the would-be OOM into a fast panic.
        let expr =
            RpqExpr::Repeat { expr: Box::new(RpqExpr::label(1)), min: 1 << 30, max: 1 << 30 };
        let _ = Nfa::from_expr(&expr);
    }

    #[test]
    fn complex_expression() {
        // 1/(2|3)*/4
        let expr = RpqExpr::concat(vec![
            RpqExpr::label(1),
            RpqExpr::Star(Box::new(RpqExpr::alt(vec![RpqExpr::label(2), RpqExpr::label(3)]))),
            RpqExpr::label(4),
        ]);
        let nfa = Nfa::from_expr(&expr);
        assert!(accepts(&nfa, &[Label(1), Label(4)]));
        assert!(accepts(&nfa, &[Label(1), Label(2), Label(3), Label(4)]));
        assert!(!accepts(&nfa, &[Label(1), Label(5), Label(4)]));
        assert!(nfa.state_count() > 2);
        assert!(nfa.transition_count() >= 4);
    }
}
