//! Canonical forms for RPQ expressions: normalization, a stable structural
//! fingerprint, and the label alphabet.
//!
//! A result cache keyed on [`RpqExpr`] must treat semantically identical
//! spellings of a query as one key: `1/2` parsed from text, the same tree
//! assembled programmatically, `(1)/(2)` with redundant grouping, or `././.`
//! versus `.{3}`. [`RpqExpr::normalize`] rewrites an expression into one
//! canonical shape using only language-preserving identities, so equal
//! languages that differ by *spelling* collapse to equal trees (full semantic
//! equivalence of regular expressions is PSPACE-complete and is not
//! attempted — two genuinely different automata simply occupy two cache
//! slots).
//!
//! [`RpqExpr::fingerprint`] is a stable 64-bit structural hash of the tree
//! (FNV-1a over a tagged pre-order encoding). Unlike `std::hash::Hash` +
//! `RandomState` it does not change between processes, so fingerprints can be
//! logged, compared across runs, and recorded in bench baselines.
//!
//! [`RpqExpr::label_alphabet`] reports which edge labels an expression can
//! possibly traverse — the label half of a cache entry's dependency set: an
//! edge update whose label is outside the alphabet can never change the
//! query's answer (see SERVING.md §3 for the full argument).

use crate::ast::{LabelSpec, RpqExpr};
use graph_store::Label;
use std::collections::BTreeSet;

impl RpqExpr {
    /// The canonical empty-path expression (`ε`): a repetition executed zero
    /// times. Matches exactly the empty path, so evaluating it returns each
    /// source itself.
    pub fn epsilon() -> RpqExpr {
        RpqExpr::Repeat { expr: Box::new(RpqExpr::any()), min: 0, max: 0 }
    }

    /// Returns `true` if the expression matches *only* the empty path.
    ///
    /// An expression whose maximum path length is zero cannot traverse any
    /// edge, and every such expression is nullable (a bounded repetition with
    /// `max == 0` accepts zero repetitions), so its language is exactly `{ε}`.
    pub fn is_epsilon(&self) -> bool {
        self.max_path_length() == Some(0)
    }

    /// Returns `true` if the empty path matches (the language contains `ε`).
    pub fn is_nullable(&self) -> bool {
        self.min_path_length() == 0
    }

    /// Rewrites the expression into a canonical form with the same language.
    ///
    /// The rewrite applies spelling-level identities only — each step
    /// preserves the matched path language exactly, which is what makes the
    /// result safe to use as a cache key:
    ///
    /// * concatenations and alternations flatten, and single-element groups
    ///   collapse (`(1)/(2)` → `1/2`);
    /// * alternation branches sort into a canonical order and deduplicate
    ///   (`2|1|2` → `1|2`);
    /// * ε-only parts drop out of concatenations, and any ε-only expression
    ///   becomes the one canonical [`RpqExpr::epsilon`];
    /// * nested closures collapse (`(e*)*` → `e*`, `(e+)?` → `e*`,
    ///   `(e?)+` → `e*`, `e??` → `e?`), and `e?` collapses to `e` when `e`
    ///   is already nullable;
    /// * bounded repetitions simplify (`e{1}` → `e`, `e{0,1}` → `e?`), and
    ///   any-label hop chains become the canonical k-hop shape
    ///   (`././.` → `.{3}`, matching [`RpqExpr::k_hop`]).
    ///
    /// The function is idempotent: `normalize(normalize(e)) == normalize(e)`.
    /// Both properties are property-tested against
    /// [`crate::ReferenceEvaluator`].
    ///
    /// # Examples
    ///
    /// ```
    /// use rpq::{parser, RpqExpr};
    /// let a = parser::parse("././.")?.normalize();
    /// let b = parser::parse(".{3}")?.normalize();
    /// assert_eq!(a, b);
    /// assert_eq!(a, RpqExpr::k_hop(3));
    /// # Ok::<(), rpq::parser::ParseRpqError>(())
    /// ```
    pub fn normalize(&self) -> RpqExpr {
        let out = match self {
            RpqExpr::Atom(spec) => RpqExpr::Atom(*spec),
            RpqExpr::Concat(parts) => {
                let normed: Vec<RpqExpr> =
                    parts.iter().map(RpqExpr::normalize).filter(|p| !p.is_epsilon()).collect();
                if normed.is_empty() {
                    RpqExpr::epsilon()
                } else {
                    // `concat` flattens nested concatenations produced by the
                    // recursive normalization and collapses singletons.
                    RpqExpr::concat(normed)
                }
            }
            RpqExpr::Alt(branches) => {
                let normed: Vec<RpqExpr> = branches.iter().map(RpqExpr::normalize).collect();
                // Flatten once more (normalizing a branch can surface a
                // nested Alt), then order and deduplicate the branches.
                let flat = RpqExpr::alt(normed);
                match flat {
                    RpqExpr::Alt(mut inner) => {
                        inner.sort();
                        inner.dedup();
                        RpqExpr::alt(inner)
                    }
                    other => other,
                }
            }
            RpqExpr::Star(inner) => match inner.normalize() {
                e if e.is_epsilon() => RpqExpr::epsilon(),
                // (e*)* = (e+)* = (e?)* = e*
                RpqExpr::Star(x) | RpqExpr::Plus(x) | RpqExpr::Optional(x) => RpqExpr::Star(x),
                e => RpqExpr::Star(Box::new(e)),
            },
            RpqExpr::Plus(inner) => match inner.normalize() {
                e if e.is_epsilon() => RpqExpr::epsilon(),
                // (e*)+ = e*, (e+)+ = e+, (e?)+ = e*
                RpqExpr::Star(x) | RpqExpr::Optional(x) => RpqExpr::Star(x),
                RpqExpr::Plus(x) => RpqExpr::Plus(x),
                // ε ∈ L(e) already, so one-or-more equals zero-or-more.
                e if e.is_nullable() => RpqExpr::Star(Box::new(e)),
                e => RpqExpr::Plus(Box::new(e)),
            },
            RpqExpr::Optional(inner) => match inner.normalize() {
                e if e.is_epsilon() => RpqExpr::epsilon(),
                // (e*)? = e*, (e+)? = e*, (e?)? = e?
                RpqExpr::Star(x) | RpqExpr::Plus(x) => RpqExpr::Star(x),
                RpqExpr::Optional(x) => RpqExpr::Optional(x),
                // Adding ε to a language that already contains it is a no-op.
                e if e.is_nullable() => e,
                e => RpqExpr::Optional(Box::new(e)),
            },
            RpqExpr::Repeat { expr, min, max } => {
                let e = expr.normalize();
                if min > max {
                    // Unsatisfiable bound ranges are rejected by the parser;
                    // a programmatic tree keeps its shape (normalized body).
                    RpqExpr::Repeat { expr: Box::new(e), min: *min, max: *max }
                } else if *max == 0 || e.is_epsilon() {
                    RpqExpr::epsilon()
                } else if (*min, *max) == (1, 1) {
                    e
                } else if (*min, *max) == (0, 1) {
                    RpqExpr::Optional(Box::new(e)).normalize()
                } else {
                    RpqExpr::Repeat { expr: Box::new(e), min: *min, max: *max }
                }
            }
        };
        // Canonical k-hop: any chain/repetition matching "exactly k edges of
        // any label" becomes the `RpqExpr::k_hop(k)` shape (a single `.` for
        // k = 1). `as_k_hop` only accepts Atom/Repeat/Concat-of-those, so
        // this cannot undo the closure rewrites above.
        match out.as_k_hop() {
            Some(1) => RpqExpr::any(),
            Some(k) if !matches!(out, RpqExpr::Repeat { .. }) => RpqExpr::k_hop(k),
            _ => out,
        }
    }

    /// A stable 64-bit structural fingerprint of the expression tree.
    ///
    /// FNV-1a over a tagged pre-order encoding: equal trees always produce
    /// equal fingerprints, in every process and on every platform, so the
    /// value is usable in logs and bench records (unlike `Hash`, whose output
    /// std randomizes per process via `RandomState`). Collisions are
    /// possible in principle (64-bit), so fingerprints identify cache
    /// entries in *reporting*; correctness-critical lookups compare full
    /// trees.
    ///
    /// # Examples
    ///
    /// ```
    /// use rpq::parser;
    /// let a = parser::parse("1/(2|3)*")?.normalize();
    /// let b = parser::parse("1/((3|2))*")?.normalize();
    /// assert_eq!(a.fingerprint(), b.fingerprint());
    /// # Ok::<(), rpq::parser::ParseRpqError>(())
    /// ```
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv1a::new();
        self.feed(&mut h);
        h.finish()
    }

    /// Feeds the tagged pre-order encoding of the tree into the hasher.
    fn feed(&self, h: &mut Fnv1a) {
        match self {
            RpqExpr::Atom(LabelSpec::Any) => h.write_u64(0x01),
            RpqExpr::Atom(LabelSpec::Exact(l)) => {
                h.write_u64(0x02);
                h.write_u64(l.0 as u64);
            }
            RpqExpr::Concat(parts) => {
                h.write_u64(0x03);
                h.write_u64(parts.len() as u64);
                parts.iter().for_each(|p| p.feed(h));
            }
            RpqExpr::Alt(branches) => {
                h.write_u64(0x04);
                h.write_u64(branches.len() as u64);
                branches.iter().for_each(|b| b.feed(h));
            }
            RpqExpr::Star(inner) => {
                h.write_u64(0x05);
                inner.feed(h);
            }
            RpqExpr::Plus(inner) => {
                h.write_u64(0x06);
                inner.feed(h);
            }
            RpqExpr::Optional(inner) => {
                h.write_u64(0x07);
                inner.feed(h);
            }
            RpqExpr::Repeat { expr, min, max } => {
                h.write_u64(0x08);
                h.write_u64(*min as u64);
                h.write_u64(*max as u64);
                expr.feed(h);
            }
        }
    }

    /// The language-reversal of the expression: `w` matches `e` exactly when
    /// the reversed label sequence matches `e.reverse()`.
    ///
    /// Structurally, concatenations reverse their part order (recursively)
    /// and every other variant keeps its shape while reversing its children —
    /// the standard regular-language reversal. The operation is an
    /// involution up to normalization: `e.reverse().reverse()` is `e` itself.
    ///
    /// The cost-based optimizer uses this to *cost* the bidirectional plan:
    /// expanding a reversed automaton from the target side of the graph
    /// traverses the same label multiset as the reversed expression does
    /// forward, so the reversed tree priced against in-side statistics is
    /// the simulated cost of the backward sweep (see `rpq::optimizer`).
    ///
    /// # Examples
    ///
    /// ```
    /// use rpq::parser;
    /// let e = parser::parse("1/2*/3")?;
    /// assert_eq!(e.reverse(), parser::parse("3/2*/1")?);
    /// assert_eq!(e.reverse().reverse(), e);
    /// # Ok::<(), rpq::parser::ParseRpqError>(())
    /// ```
    pub fn reverse(&self) -> RpqExpr {
        match self {
            RpqExpr::Atom(spec) => RpqExpr::Atom(*spec),
            RpqExpr::Concat(parts) => {
                RpqExpr::Concat(parts.iter().rev().map(RpqExpr::reverse).collect())
            }
            RpqExpr::Alt(branches) => RpqExpr::Alt(branches.iter().map(RpqExpr::reverse).collect()),
            RpqExpr::Star(inner) => RpqExpr::Star(Box::new(inner.reverse())),
            RpqExpr::Plus(inner) => RpqExpr::Plus(Box::new(inner.reverse())),
            RpqExpr::Optional(inner) => RpqExpr::Optional(Box::new(inner.reverse())),
            RpqExpr::Repeat { expr, min, max } => {
                RpqExpr::Repeat { expr: Box::new(expr.reverse()), min: *min, max: *max }
            }
        }
    }

    /// The set of edge labels this expression can traverse.
    ///
    /// Every path matched by the expression uses only edges whose label is in
    /// the alphabet; an expression containing a `.` atom can traverse any
    /// label. This is deliberately an over-approximation computed without
    /// reachability analysis (e.g. the unmatchable `1` inside `(1){0}` still
    /// contributes) — an alphabet that is too *large* only costs cache
    /// precision, never correctness.
    ///
    /// # Examples
    ///
    /// ```
    /// use graph_store::Label;
    /// use rpq::{parser, LabelAlphabet};
    /// let a = parser::parse("1/(2|3)+")?.label_alphabet();
    /// assert!(a.contains(Label(2)) && !a.contains(Label(4)));
    /// assert_eq!(parser::parse(".{3}")?.label_alphabet(), LabelAlphabet::Any);
    /// # Ok::<(), rpq::parser::ParseRpqError>(())
    /// ```
    pub fn label_alphabet(&self) -> LabelAlphabet {
        let mut labels = BTreeSet::new();
        if self.collect_alphabet(&mut labels) {
            LabelAlphabet::Labels(labels)
        } else {
            LabelAlphabet::Any
        }
    }

    /// Collects exact labels into `out`; returns `false` on the first `.`
    /// atom (the alphabet is then unbounded).
    fn collect_alphabet(&self, out: &mut BTreeSet<Label>) -> bool {
        match self {
            RpqExpr::Atom(LabelSpec::Any) => false,
            RpqExpr::Atom(LabelSpec::Exact(l)) => {
                out.insert(*l);
                true
            }
            RpqExpr::Concat(parts) | RpqExpr::Alt(parts) => {
                parts.iter().all(|p| p.collect_alphabet(out))
            }
            RpqExpr::Star(inner) | RpqExpr::Plus(inner) | RpqExpr::Optional(inner) => {
                inner.collect_alphabet(out)
            }
            RpqExpr::Repeat { expr, .. } => expr.collect_alphabet(out),
        }
    }
}

/// The labels an RPQ expression can traverse — the label half of a cached
/// result's dependency set.
///
/// # Examples
///
/// ```
/// use graph_store::Label;
/// use rpq::LabelAlphabet;
/// let a = LabelAlphabet::Labels([Label(1), Label(2)].into_iter().collect());
/// assert!(a.contains(Label(1)));
/// assert!(!a.contains(Label(9)));
/// assert!(LabelAlphabet::Any.contains(Label(9)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LabelAlphabet {
    /// The expression contains a `.` atom: every edge label is traversable.
    Any,
    /// Only these exact labels are traversable.
    Labels(BTreeSet<Label>),
}

impl LabelAlphabet {
    /// Returns `true` if an edge carrying `label` could be traversed by the
    /// expression this alphabet was computed from.
    pub fn contains(&self, label: Label) -> bool {
        match self {
            LabelAlphabet::Any => true,
            LabelAlphabet::Labels(set) => set.contains(&label),
        }
    }
}

/// Minimal FNV-1a hasher (stable across processes and platforms, unlike
/// `std::collections::hash_map::RandomState`).
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    fn write_u64(&mut self, v: u64) {
        for byte in v.to_le_bytes() {
            self.0 ^= byte as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn norm(text: &str) -> RpqExpr {
        parse(text).expect("test query must parse").normalize()
    }

    #[test]
    fn spelling_variants_collapse_to_one_tree() {
        assert_eq!(norm("(1)/(2)"), norm("1/2"));
        assert_eq!(norm("2|1|2"), norm("1|2"));
        assert_eq!(norm("././."), norm(".{3}"));
        assert_eq!(norm("."), RpqExpr::any());
        assert_eq!(norm(".{3}"), RpqExpr::k_hop(3));
        assert_eq!(norm("1{1}"), RpqExpr::label(1));
        assert_eq!(norm("1{0,1}"), RpqExpr::Optional(Box::new(RpqExpr::label(1))));
    }

    #[test]
    fn closure_nests_collapse() {
        assert_eq!(norm("(1*)*"), norm("1*"));
        assert_eq!(norm("(1+)+"), norm("1+"));
        assert_eq!(norm("(1*)+"), norm("1*"));
        assert_eq!(norm("(1+)?"), norm("1*"));
        assert_eq!(norm("(1?)+"), norm("1*"));
        assert_eq!(norm("(1?)?"), norm("1?"));
        // `e?` when `e` is nullable is `e` itself.
        assert_eq!(norm("(1*)?"), norm("1*"));
        assert_eq!(norm("((1?)|2)?"), norm("(1?)|2"));
    }

    #[test]
    fn epsilon_only_expressions_become_canonical_epsilon() {
        assert_eq!(norm("1{0}"), RpqExpr::epsilon());
        assert_eq!(norm("(1{0})*"), RpqExpr::epsilon());
        assert_eq!(norm("1{0}/2"), RpqExpr::label(2));
        assert!(RpqExpr::epsilon().is_epsilon());
        assert!(RpqExpr::epsilon().is_nullable());
    }

    #[test]
    fn normalize_is_idempotent_on_query_corpus() {
        for text in
            ["1/2/3", "1/(2|3)*/4", ".{2}", "1+", "((1|2))?", "(.{2})/(.)", "3{0,4}", "(1/2){2,3}"]
        {
            let once = norm(text);
            assert_eq!(once.normalize(), once, "normalize must be idempotent for {text:?}");
        }
    }

    #[test]
    fn normalize_preserves_the_language() {
        use crate::ReferenceEvaluator;
        use graph_store::{AdjacencyGraph, NodeId};
        let mut g = AdjacencyGraph::new();
        // A small labelled diamond with a cycle.
        for &(s, d, l) in
            &[(0u64, 1u64, 1u16), (1, 2, 2), (1, 3, 3), (2, 4, 1), (3, 4, 2), (4, 1, 3), (0, 4, 2)]
        {
            g.insert_edge(NodeId(s), NodeId(d), Label(l));
        }
        let eval = ReferenceEvaluator::new(&g);
        let sources: Vec<NodeId> = (0..5u64).map(NodeId).collect();
        for text in
            ["1/2", "1/(2|3)*", "././.", "1{0}/2", "(1*)*", "(2?)+", "(3|2|3)", ".{2}", "2{0,2}"]
        {
            let expr = parse(text).expect("query must parse");
            let want = eval.evaluate(&expr, &sources);
            let got = eval.evaluate(&expr.normalize(), &sources);
            assert_eq!(got, want, "normalize changed the language of {text:?}");
        }
    }

    #[test]
    fn fingerprints_are_stable_and_structural() {
        let a = norm("1/(2|3)*");
        assert_eq!(a.fingerprint(), norm("1/((3|2))*").fingerprint());
        assert_ne!(a.fingerprint(), norm("1/(2|4)*").fingerprint());
        // Pinned value: the fingerprint is part of the observable bench
        // surface (BENCH_PR5.json), so accidental encoding changes must show.
        assert_eq!(RpqExpr::any().fingerprint(), {
            let mut h = Fnv1a::new();
            h.write_u64(0x01);
            h.finish()
        });
    }

    #[test]
    fn reverse_is_an_involution_and_reverses_the_language() {
        use crate::ReferenceEvaluator;
        use graph_store::{AdjacencyGraph, NodeId};
        let mut fwd = AdjacencyGraph::new();
        let mut rev = AdjacencyGraph::new();
        for &(s, d, l) in
            &[(0u64, 1u64, 1u16), (1, 2, 2), (1, 3, 3), (2, 4, 1), (3, 4, 2), (4, 1, 3), (0, 4, 2)]
        {
            fwd.insert_edge(NodeId(s), NodeId(d), Label(l));
            rev.insert_edge(NodeId(d), NodeId(s), Label(l));
        }
        let sources: Vec<NodeId> = (0..5u64).map(NodeId).collect();
        for text in ["1/2/3", "1/(2|3)*", "1/2*/3", "(1/2)|3", ".{2}", "2{0,2}/1", "1+/2"] {
            let expr = parse(text).expect("query must parse");
            assert_eq!(
                expr.reverse().reverse(),
                expr,
                "reverse must be an involution for {text:?}"
            );
            // (u, v) matched by e on the graph  ⟺  (v, u) matched by
            // reverse(e) on the edge-reversed graph.
            let mut want: Vec<(NodeId, NodeId)> = Vec::new();
            for (i, row) in
                ReferenceEvaluator::new(&fwd).evaluate(&expr, &sources).iter().enumerate()
            {
                want.extend(row.iter().map(|&t| (sources[i], t)));
            }
            let mut got: Vec<(NodeId, NodeId)> = Vec::new();
            for (i, row) in
                ReferenceEvaluator::new(&rev).evaluate(&expr.reverse(), &sources).iter().enumerate()
            {
                got.extend(row.iter().map(|&t| (t, sources[i])));
            }
            want.sort_unstable();
            got.sort_unstable();
            assert_eq!(got, want, "reverse changed the matched pair set of {text:?}");
        }
    }

    #[test]
    fn alphabet_covers_all_reachable_labels() {
        let a = norm("1/(2|3)+").label_alphabet();
        match &a {
            LabelAlphabet::Labels(set) => {
                assert_eq!(set.len(), 3);
                assert!(a.contains(Label(1)) && a.contains(Label(2)) && a.contains(Label(3)));
                assert!(!a.contains(Label::ANY));
            }
            LabelAlphabet::Any => panic!("exact-label expression must have a bounded alphabet"),
        }
        assert_eq!(norm("1/./2").label_alphabet(), LabelAlphabet::Any);
    }
}
