//! Text syntax for regular path queries.
//!
//! The syntax follows SPARQL property paths restricted to numeric label ids:
//!
//! ```text
//! expr     := alt
//! alt      := concat ('|' concat)*
//! concat   := postfix ('/' postfix)*
//! postfix  := atom ('*' | '+' | '?' | '{' n (',' n)? '}')*
//! atom     := NUMBER | '.' | '(' expr ')'
//! ```
//!
//! `NUMBER` is an edge-label id, `.` matches any label. Whitespace is ignored.
//! A plain k-hop query is written `.{k}`.
//!
//! Repetition bounds are capped at [`MAX_REPEAT`]: the automaton builder
//! expands `e{min,max}` into `max` copies of `e`, so an unbounded count would
//! let a ten-character query allocate billions of NFA states.

use crate::ast::RpqExpr;
use std::error::Error;
use std::fmt;

/// Largest allowed *expansion* of a repetition: the bound in `{n}` /
/// `{min,max}` multiplied by the expanded size of the repeated
/// sub-expression, so nesting cannot multiply past the cap
/// (`(.{1024}){1024}` is rejected just like `.{1048576}` would be).
///
/// Path queries in practice use single-digit repetition counts; the cap only
/// exists to keep adversarial inputs like `.{1000000000}` from exhausting
/// memory during NFA construction, which expands bounded repeats by copying.
pub const MAX_REPEAT: usize = 1024;

/// Error produced when parsing an RPQ string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRpqError {
    message: String,
    position: usize,
}

impl ParseRpqError {
    fn new(message: impl Into<String>, position: usize) -> Self {
        ParseRpqError { message: message.into(), position }
    }

    /// Byte offset in the input where the error was detected.
    pub fn position(&self) -> usize {
        self.position
    }
}

impl fmt::Display for ParseRpqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid regular path query at offset {}: {}", self.position, self.message)
    }
}

impl Error for ParseRpqError {}

/// Parses an RPQ expression from its text form.
///
/// # Errors
///
/// Returns [`ParseRpqError`] when the input is not a valid expression.
///
/// # Examples
///
/// ```
/// use rpq::{parser, RpqExpr};
/// assert_eq!(parser::parse(".{3}")?, RpqExpr::k_hop(3));
/// assert!(parser::parse("1/(2|3)*").is_ok());
/// assert!(parser::parse("1//2").is_err());
/// # Ok::<(), rpq::parser::ParseRpqError>(())
/// ```
pub fn parse(input: &str) -> Result<RpqExpr, ParseRpqError> {
    let mut parser = Parser { chars: input.char_indices().collect(), pos: 0 };
    let expr = parser.parse_alt()?;
    parser.skip_ws();
    if parser.pos < parser.chars.len() {
        return Err(ParseRpqError::new("unexpected trailing input", parser.offset()));
    }
    // The per-construct MAX_REPEAT check bounds each repetition, but
    // concatenating/alternating many maximal repeats still sums; bound the
    // whole expression so NFA construction can never trip its own guard on
    // parsed input.
    let weight = expr.expansion_weight();
    if weight > crate::nfa::MAX_NFA_EXPANSION {
        return Err(ParseRpqError::new(
            format!(
                "query expands to {weight} atoms, exceeding the construction cap of {}",
                crate::nfa::MAX_NFA_EXPANSION
            ),
            0,
        ));
    }
    Ok(expr)
}

struct Parser {
    chars: Vec<(usize, char)>,
    pos: usize,
}

impl Parser {
    fn offset(&self) -> usize {
        self.chars
            .get(self.pos)
            .map(|&(o, _)| o)
            .unwrap_or_else(|| self.chars.last().map(|&(o, c)| o + c.len_utf8()).unwrap_or(0))
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).map(|&(_, c)| c)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, expected: char) -> Result<(), ParseRpqError> {
        self.skip_ws();
        match self.peek() {
            Some(c) if c == expected => {
                self.pos += 1;
                Ok(())
            }
            other => Err(ParseRpqError::new(
                format!("expected {expected:?}, found {other:?}"),
                self.offset(),
            )),
        }
    }

    fn parse_alt(&mut self) -> Result<RpqExpr, ParseRpqError> {
        let mut branches = vec![self.parse_concat()?];
        loop {
            self.skip_ws();
            if self.peek() == Some('|') {
                self.pos += 1;
                branches.push(self.parse_concat()?);
            } else {
                break;
            }
        }
        Ok(RpqExpr::alt(branches))
    }

    fn parse_concat(&mut self) -> Result<RpqExpr, ParseRpqError> {
        let mut parts = vec![self.parse_postfix()?];
        loop {
            self.skip_ws();
            if self.peek() == Some('/') {
                self.pos += 1;
                parts.push(self.parse_postfix()?);
            } else {
                break;
            }
        }
        Ok(RpqExpr::concat(parts))
    }

    fn parse_postfix(&mut self) -> Result<RpqExpr, ParseRpqError> {
        let mut expr = self.parse_atom()?;
        loop {
            self.skip_ws();
            match self.peek() {
                Some('*') => {
                    self.pos += 1;
                    expr = RpqExpr::Star(Box::new(expr));
                }
                Some('+') => {
                    self.pos += 1;
                    expr = RpqExpr::Plus(Box::new(expr));
                }
                Some('?') => {
                    self.pos += 1;
                    expr = RpqExpr::Optional(Box::new(expr));
                }
                Some('{') => {
                    self.pos += 1;
                    self.skip_ws();
                    let min_offset = self.offset();
                    let min = self.parse_bounded_repeat_count(min_offset)?;
                    self.skip_ws();
                    let (max, max_offset) = if self.peek() == Some(',') {
                        self.pos += 1;
                        self.skip_ws();
                        let offset = self.offset();
                        (self.parse_bounded_repeat_count(offset)?, offset)
                    } else {
                        (min, min_offset)
                    };
                    // Validate the bounds *before* consuming the closing
                    // brace, so the reported offset points at the offending
                    // bound instead of past the whole construct.
                    if max < min {
                        return Err(ParseRpqError::new("repetition max below min", max_offset));
                    }
                    // The cap bounds the *total* expansion: nested repeats
                    // multiply, so each construct's `max × inner weight`
                    // must stay within MAX_REPEAT.
                    let weight = expr.expansion_weight().saturating_mul(max.max(1));
                    if weight > MAX_REPEAT {
                        return Err(ParseRpqError::new(
                            format!(
                                "repetition expands to {weight} atoms, exceeding the maximum of {MAX_REPEAT}"
                            ),
                            max_offset,
                        ));
                    }
                    self.expect('}')?;
                    expr = RpqExpr::Repeat { expr: Box::new(expr), min, max };
                }
                _ => break,
            }
        }
        Ok(expr)
    }

    fn parse_atom(&mut self) -> Result<RpqExpr, ParseRpqError> {
        self.skip_ws();
        match self.peek() {
            Some('.') => {
                self.pos += 1;
                Ok(RpqExpr::any())
            }
            Some('(') => {
                self.pos += 1;
                let inner = self.parse_alt()?;
                self.expect(')')?;
                Ok(inner)
            }
            Some(c) if c.is_ascii_digit() => {
                let n = self.parse_number()?;
                if n > u16::MAX as usize {
                    return Err(ParseRpqError::new("label id exceeds u16::MAX", self.offset()));
                }
                Ok(RpqExpr::label(n as u16))
            }
            other => {
                Err(ParseRpqError::new(format!("expected atom, found {other:?}"), self.offset()))
            }
        }
    }

    /// Parses one `{...}` repetition bound and enforces [`MAX_REPEAT`],
    /// reporting the error at the bound's own offset.
    fn parse_bounded_repeat_count(&mut self, offset: usize) -> Result<usize, ParseRpqError> {
        let count = self.parse_number()?;
        if count > MAX_REPEAT {
            return Err(ParseRpqError::new(
                format!("repetition count {count} exceeds the maximum of {MAX_REPEAT}"),
                offset,
            ));
        }
        Ok(count)
    }

    fn parse_number(&mut self) -> Result<usize, ParseRpqError> {
        self.skip_ws();
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(ParseRpqError::new("expected a number", self.offset()));
        }
        let text: String = self.chars[start..self.pos].iter().map(|&(_, c)| c).collect();
        text.parse::<usize>().map_err(|_| ParseRpqError::new("number out of range", self.offset()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::LabelSpec;
    use graph_store::Label;

    #[test]
    fn parses_k_hop() {
        assert_eq!(parse(".{5}").unwrap(), RpqExpr::k_hop(5));
        assert_eq!(parse(".").unwrap(), RpqExpr::any());
        assert_eq!(parse(" . { 2 } ").unwrap(), RpqExpr::k_hop(2));
    }

    #[test]
    fn parses_labels_and_concat() {
        let e = parse("1/2/3").unwrap();
        assert_eq!(
            e,
            RpqExpr::concat(vec![RpqExpr::label(1), RpqExpr::label(2), RpqExpr::label(3)])
        );
    }

    #[test]
    fn parses_alternation_and_precedence() {
        // '/' binds tighter than '|'.
        let e = parse("1/2|3").unwrap();
        assert_eq!(
            e,
            RpqExpr::alt(vec![
                RpqExpr::concat(vec![RpqExpr::label(1), RpqExpr::label(2)]),
                RpqExpr::label(3)
            ])
        );
    }

    #[test]
    fn parses_postfix_operators() {
        assert_eq!(parse("7*").unwrap(), RpqExpr::Star(Box::new(RpqExpr::label(7))));
        assert_eq!(parse("7+").unwrap(), RpqExpr::Plus(Box::new(RpqExpr::label(7))));
        assert_eq!(parse("7?").unwrap(), RpqExpr::Optional(Box::new(RpqExpr::label(7))));
        assert_eq!(
            parse("(1|2){2,4}").unwrap(),
            RpqExpr::Repeat {
                expr: Box::new(RpqExpr::alt(vec![RpqExpr::label(1), RpqExpr::label(2)])),
                min: 2,
                max: 4
            }
        );
    }

    #[test]
    fn parses_parentheses() {
        let e = parse("(1/2)*").unwrap();
        match e {
            RpqExpr::Star(inner) => {
                assert_eq!(*inner, RpqExpr::concat(vec![RpqExpr::label(1), RpqExpr::label(2)]));
            }
            other => panic!("unexpected parse: {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "1//2", "(1", "1)", "{3}", "1{2,1}", ".{", "|1", "1|", "99999999"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn error_reports_position() {
        let err = parse("1/(2|)").unwrap_err();
        assert!(err.position() > 0);
        assert!(err.to_string().contains("offset"));
    }

    #[test]
    fn repetition_counts_are_capped() {
        // The classic OOM input: a billion-state NFA from ten characters.
        let err = parse(".{1000000000}").unwrap_err();
        assert!(err.to_string().contains("exceeds the maximum"));
        assert_eq!(err.position(), 2, "error points at the offending bound");
        // The cap itself is accepted; one past it is not, on either bound.
        assert!(parse(&format!(".{{{MAX_REPEAT}}}")).is_ok());
        assert!(parse(&format!(".{{{}}}", MAX_REPEAT + 1)).is_err());
        let err = parse(&format!(".{{1,{}}}", MAX_REPEAT + 1)).unwrap_err();
        assert_eq!(err.position(), 4);
    }

    #[test]
    fn nested_repetitions_cannot_multiply_past_the_cap() {
        // Each bound is individually within MAX_REPEAT, but the expansions
        // multiply: ((.{1024}){1024}){1024} would build ~2^30 NFA states.
        assert!(parse("((.{1024}){1024}){1024}").is_err());
        let err = parse("(.{64}){64}").unwrap_err(); // 4096 atoms > 1024
        assert!(err.to_string().contains("expands to 4096 atoms"));
        // Small nested products stay legal, as do closures over repeats.
        assert!(parse("(.{4}){4}").is_ok());
        assert!(parse("(.{2}){512}").is_ok()); // exactly the cap
        assert!(parse("((1|2){8})*").is_ok());
    }

    #[test]
    fn concatenated_repeats_cannot_sum_past_the_construction_cap() {
        // Each construct is within MAX_REPEAT, but 1025 concatenated maximal
        // repeats sum past the whole-expression cap — this must be a parse
        // error, not an NFA-construction panic.
        let query = vec![".{1024}"; 1025].join("/");
        let err = parse(&query).unwrap_err();
        assert!(err.to_string().contains("construction cap"), "{err}");
        // A large-but-legal sum still parses (and builds an NFA).
        let legal = [".{1024}"; 4].join("/");
        assert!(parse(&legal).is_ok());
    }

    #[test]
    fn inverted_repetition_range_reports_the_max_bound() {
        // "1{2,1}": the offending max bound "1" sits at byte offset 4; the
        // error used to be raised only after consuming '}' (offset 6).
        let err = parse("1{2,1}").unwrap_err();
        assert!(err.to_string().contains("repetition max below min"));
        assert_eq!(err.position(), 4);
        // Whitespace before the bound does not shift the blame.
        let err = parse("1{2, 1}").unwrap_err();
        assert_eq!(err.position(), 5);
    }

    #[test]
    fn roundtrips_display_output() {
        for text in [".{4}", "1/2", "(1|2)", "(1/2)*", "(.){1,3}"] {
            let e = parse(text).unwrap();
            let reparsed = parse(&e.to_string()).unwrap();
            assert_eq!(e, reparsed, "roundtrip failed for {text}");
        }
    }

    #[test]
    fn label_atoms_use_exact_spec() {
        match parse("42").unwrap() {
            RpqExpr::Atom(LabelSpec::Exact(l)) => assert_eq!(l, Label(42)),
            other => panic!("unexpected parse: {other:?}"),
        }
    }
}
