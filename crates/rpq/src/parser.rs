//! Text syntax for regular path queries.
//!
//! The syntax follows SPARQL property paths restricted to numeric label ids:
//!
//! ```text
//! expr     := alt
//! alt      := concat ('|' concat)*
//! concat   := postfix ('/' postfix)*
//! postfix  := atom ('*' | '+' | '?' | '{' n (',' n)? '}')*
//! atom     := NUMBER | '.' | '(' expr ')'
//! ```
//!
//! `NUMBER` is an edge-label id, `.` matches any label. Whitespace is ignored.
//! A plain k-hop query is written `.{k}`.

use crate::ast::RpqExpr;
use std::error::Error;
use std::fmt;

/// Error produced when parsing an RPQ string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRpqError {
    message: String,
    position: usize,
}

impl ParseRpqError {
    fn new(message: impl Into<String>, position: usize) -> Self {
        ParseRpqError { message: message.into(), position }
    }

    /// Byte offset in the input where the error was detected.
    pub fn position(&self) -> usize {
        self.position
    }
}

impl fmt::Display for ParseRpqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid regular path query at offset {}: {}", self.position, self.message)
    }
}

impl Error for ParseRpqError {}

/// Parses an RPQ expression from its text form.
///
/// # Errors
///
/// Returns [`ParseRpqError`] when the input is not a valid expression.
///
/// # Examples
///
/// ```
/// use rpq::{parser, RpqExpr};
/// assert_eq!(parser::parse(".{3}")?, RpqExpr::k_hop(3));
/// assert!(parser::parse("1/(2|3)*").is_ok());
/// assert!(parser::parse("1//2").is_err());
/// # Ok::<(), rpq::parser::ParseRpqError>(())
/// ```
pub fn parse(input: &str) -> Result<RpqExpr, ParseRpqError> {
    let mut parser = Parser { chars: input.char_indices().collect(), pos: 0 };
    let expr = parser.parse_alt()?;
    parser.skip_ws();
    if parser.pos < parser.chars.len() {
        return Err(ParseRpqError::new("unexpected trailing input", parser.offset()));
    }
    Ok(expr)
}

struct Parser {
    chars: Vec<(usize, char)>,
    pos: usize,
}

impl Parser {
    fn offset(&self) -> usize {
        self.chars
            .get(self.pos)
            .map(|&(o, _)| o)
            .unwrap_or_else(|| self.chars.last().map(|&(o, c)| o + c.len_utf8()).unwrap_or(0))
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).map(|&(_, c)| c)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, expected: char) -> Result<(), ParseRpqError> {
        self.skip_ws();
        match self.peek() {
            Some(c) if c == expected => {
                self.pos += 1;
                Ok(())
            }
            other => Err(ParseRpqError::new(
                format!("expected {expected:?}, found {other:?}"),
                self.offset(),
            )),
        }
    }

    fn parse_alt(&mut self) -> Result<RpqExpr, ParseRpqError> {
        let mut branches = vec![self.parse_concat()?];
        loop {
            self.skip_ws();
            if self.peek() == Some('|') {
                self.pos += 1;
                branches.push(self.parse_concat()?);
            } else {
                break;
            }
        }
        Ok(RpqExpr::alt(branches))
    }

    fn parse_concat(&mut self) -> Result<RpqExpr, ParseRpqError> {
        let mut parts = vec![self.parse_postfix()?];
        loop {
            self.skip_ws();
            if self.peek() == Some('/') {
                self.pos += 1;
                parts.push(self.parse_postfix()?);
            } else {
                break;
            }
        }
        Ok(RpqExpr::concat(parts))
    }

    fn parse_postfix(&mut self) -> Result<RpqExpr, ParseRpqError> {
        let mut expr = self.parse_atom()?;
        loop {
            self.skip_ws();
            match self.peek() {
                Some('*') => {
                    self.pos += 1;
                    expr = RpqExpr::Star(Box::new(expr));
                }
                Some('+') => {
                    self.pos += 1;
                    expr = RpqExpr::Plus(Box::new(expr));
                }
                Some('?') => {
                    self.pos += 1;
                    expr = RpqExpr::Optional(Box::new(expr));
                }
                Some('{') => {
                    self.pos += 1;
                    let min = self.parse_number()?;
                    self.skip_ws();
                    let max = if self.peek() == Some(',') {
                        self.pos += 1;
                        self.parse_number()?
                    } else {
                        min
                    };
                    self.expect('}')?;
                    if max < min {
                        return Err(ParseRpqError::new("repetition max below min", self.offset()));
                    }
                    expr = RpqExpr::Repeat { expr: Box::new(expr), min, max };
                }
                _ => break,
            }
        }
        Ok(expr)
    }

    fn parse_atom(&mut self) -> Result<RpqExpr, ParseRpqError> {
        self.skip_ws();
        match self.peek() {
            Some('.') => {
                self.pos += 1;
                Ok(RpqExpr::any())
            }
            Some('(') => {
                self.pos += 1;
                let inner = self.parse_alt()?;
                self.expect(')')?;
                Ok(inner)
            }
            Some(c) if c.is_ascii_digit() => {
                let n = self.parse_number()?;
                if n > u16::MAX as usize {
                    return Err(ParseRpqError::new("label id exceeds u16::MAX", self.offset()));
                }
                Ok(RpqExpr::label(n as u16))
            }
            other => {
                Err(ParseRpqError::new(format!("expected atom, found {other:?}"), self.offset()))
            }
        }
    }

    fn parse_number(&mut self) -> Result<usize, ParseRpqError> {
        self.skip_ws();
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(ParseRpqError::new("expected a number", self.offset()));
        }
        let text: String = self.chars[start..self.pos].iter().map(|&(_, c)| c).collect();
        text.parse::<usize>().map_err(|_| ParseRpqError::new("number out of range", self.offset()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::LabelSpec;
    use graph_store::Label;

    #[test]
    fn parses_k_hop() {
        assert_eq!(parse(".{5}").unwrap(), RpqExpr::k_hop(5));
        assert_eq!(parse(".").unwrap(), RpqExpr::any());
        assert_eq!(parse(" . { 2 } ").unwrap(), RpqExpr::k_hop(2));
    }

    #[test]
    fn parses_labels_and_concat() {
        let e = parse("1/2/3").unwrap();
        assert_eq!(
            e,
            RpqExpr::concat(vec![RpqExpr::label(1), RpqExpr::label(2), RpqExpr::label(3)])
        );
    }

    #[test]
    fn parses_alternation_and_precedence() {
        // '/' binds tighter than '|'.
        let e = parse("1/2|3").unwrap();
        assert_eq!(
            e,
            RpqExpr::alt(vec![
                RpqExpr::concat(vec![RpqExpr::label(1), RpqExpr::label(2)]),
                RpqExpr::label(3)
            ])
        );
    }

    #[test]
    fn parses_postfix_operators() {
        assert_eq!(parse("7*").unwrap(), RpqExpr::Star(Box::new(RpqExpr::label(7))));
        assert_eq!(parse("7+").unwrap(), RpqExpr::Plus(Box::new(RpqExpr::label(7))));
        assert_eq!(parse("7?").unwrap(), RpqExpr::Optional(Box::new(RpqExpr::label(7))));
        assert_eq!(
            parse("(1|2){2,4}").unwrap(),
            RpqExpr::Repeat {
                expr: Box::new(RpqExpr::alt(vec![RpqExpr::label(1), RpqExpr::label(2)])),
                min: 2,
                max: 4
            }
        );
    }

    #[test]
    fn parses_parentheses() {
        let e = parse("(1/2)*").unwrap();
        match e {
            RpqExpr::Star(inner) => {
                assert_eq!(*inner, RpqExpr::concat(vec![RpqExpr::label(1), RpqExpr::label(2)]));
            }
            other => panic!("unexpected parse: {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "1//2", "(1", "1)", "{3}", "1{2,1}", ".{", "|1", "1|", "99999999"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn error_reports_position() {
        let err = parse("1/(2|)").unwrap_err();
        assert!(err.position() > 0);
        assert!(err.to_string().contains("offset"));
    }

    #[test]
    fn roundtrips_display_output() {
        for text in [".{4}", "1/2", "(1|2)", "(1/2)*", "(.){1,3}"] {
            let e = parse(text).unwrap();
            let reparsed = parse(&e.to_string()).unwrap();
            assert_eq!(e, reparsed, "roundtrip failed for {text}");
        }
    }

    #[test]
    fn label_atoms_use_exact_spec() {
        match parse("42").unwrap() {
            RpqExpr::Atom(LabelSpec::Exact(l)) => assert_eq!(l, Label(42)),
            other => panic!("unexpected parse: {other:?}"),
        }
    }
}
