//! Matrix-based execution plans (the paper's `smxm` / `mwait` / `add` / `sub`
//! operators) and a host-side executor over sparse matrices.
//!
//! The Query Processor translates a batch RPQ into a plan
//! `ans = Q × Adj × … × Adj`: one [`PlanOp::Smxm`] per hop followed by an
//! [`PlanOp::MWait`] that reduces/gathers the result. Graph updates become
//! [`PlanOp::Add`] / [`PlanOp::Sub`] operators over a delta matrix. The
//! [`HostMatrixEngine`] in this module executes such plans on the host with
//! GraphBLAS-style sparse kernels — exactly what the RedisGraph baseline does —
//! and reports how much matrix data each operator touched so the simulator can
//! charge memory-system costs.

use crate::ast::{LabelSpec, RpqExpr};
use crate::nfa::Nfa;
use graph_store::{AdjacencyGraph, Label, NodeId};
use sparse::{ops, MatrixBuilder, SparseBoolMatrix};
use std::collections::{BTreeMap, HashMap, HashSet};

/// One operator of a matrix-based execution plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanOp {
    /// Sparse matrix × matrix multiplication against the adjacency matrix of
    /// the given label (one hop of path matching).
    Smxm(LabelSpec),
    /// Wait for all partial products and reduce them into the result matrix.
    MWait,
    /// Apply an edge-insertion delta to the adjacency matrix (`Adj + delta`).
    Add,
    /// Apply an edge-deletion delta to the adjacency matrix (`Adj - delta`).
    Sub,
}

/// A sequence of matrix operators produced by the query planner.
///
/// # Examples
///
/// ```
/// use rpq::{ExecutionPlan, RpqExpr, PlanOp};
/// let plan = ExecutionPlan::from_expr(&RpqExpr::k_hop(3)).expect("k-hop plans are supported");
/// assert_eq!(plan.hop_count(), 3);
/// assert_eq!(plan.ops().last(), Some(&PlanOp::MWait));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecutionPlan {
    ops: Vec<PlanOp>,
}

impl ExecutionPlan {
    /// The plan for a k-hop path query over any label.
    pub fn k_hop(k: usize) -> Self {
        let mut ops = vec![PlanOp::Smxm(LabelSpec::Any); k];
        ops.push(PlanOp::MWait);
        ExecutionPlan { ops }
    }

    /// The plan for a batch of edge insertions.
    pub fn insert_batch() -> Self {
        ExecutionPlan { ops: vec![PlanOp::Add] }
    }

    /// The plan for a batch of edge deletions.
    pub fn delete_batch() -> Self {
        ExecutionPlan { ops: vec![PlanOp::Sub] }
    }

    /// Compiles an RPQ expression into a chain of `smxm` operators.
    ///
    /// Only *fixed-length* expressions — concatenations of atoms and bounded
    /// repeats with `min == max` — have a pure matrix-chain plan; anything
    /// containing `*`, `+`, `?`, alternation, or ranged repetition returns
    /// `None` and must be evaluated with the automaton-based engine instead.
    pub fn from_expr(expr: &RpqExpr) -> Option<Self> {
        let mut specs = Vec::new();
        collect_chain(expr, &mut specs)?;
        let mut ops: Vec<PlanOp> = specs.into_iter().map(PlanOp::Smxm).collect();
        ops.push(PlanOp::MWait);
        Some(ExecutionPlan { ops })
    }

    /// The operators in execution order.
    pub fn ops(&self) -> &[PlanOp] {
        &self.ops
    }

    /// Number of `smxm` (hop) operators in the plan.
    pub fn hop_count(&self) -> usize {
        self.ops.iter().filter(|op| matches!(op, PlanOp::Smxm(_))).count()
    }
}

/// Flattens a fixed-length expression into the label of each hop.
fn collect_chain(expr: &RpqExpr, out: &mut Vec<LabelSpec>) -> Option<()> {
    match expr {
        RpqExpr::Atom(spec) => {
            out.push(*spec);
            Some(())
        }
        RpqExpr::Concat(parts) => {
            for p in parts {
                collect_chain(p, out)?;
            }
            Some(())
        }
        RpqExpr::Repeat { expr, min, max } if min == max => {
            for _ in 0..*min {
                collect_chain(expr, out)?;
            }
            Some(())
        }
        _ => None,
    }
}

/// Execution statistics of one plan run on the host engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HostExecutionStats {
    /// Bytes of matrix data read across all operators (8 bytes per entry;
    /// only the adjacency rows actually touched by Gustavson's algorithm).
    pub bytes_read: u64,
    /// Bytes of result data produced (8 bytes per entry).
    pub bytes_written: u64,
    /// Number of adjacency-row fetches performed (each one is a random access
    /// into the CSR structure on a real machine).
    pub row_fetches: u64,
    /// Number of `smxm` operators executed.
    pub smxm_ops: usize,
    /// Total result entries after the final reduction.
    pub result_entries: usize,
    /// Frontier levels executed: equals `smxm_ops` for matrix-chain plans,
    /// and the deepest BFS level for automaton sweeps
    /// ([`HostMatrixEngine::run_nfa`]).
    pub frontier_levels: usize,
}

impl HostExecutionStats {
    /// Accumulates the statistics of running the *same* plan (or automaton)
    /// over another disjoint chunk of the source batch.
    ///
    /// Both [`HostMatrixEngine::run`] and [`HostMatrixEngine::run_nfa`]
    /// account work per source row, so executing a batch as disjoint chunks
    /// and merging in chunk order reproduces the whole-batch statistics
    /// exactly: byte and fetch counters add, while `smxm_ops` (identical in
    /// every chunk of a chain; zero for sweeps) and `frontier_levels` (a
    /// per-source maximum) combine with `max`. All fields are integers, so
    /// the merge is exact regardless of how the batch was chunked.
    pub fn merge(&mut self, other: &HostExecutionStats) {
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
        self.row_fetches += other.row_fetches;
        self.smxm_ops = self.smxm_ops.max(other.smxm_ops);
        self.result_entries += other.result_entries;
        self.frontier_levels = self.frontier_levels.max(other.frontier_levels);
    }
}

/// Host-side (RedisGraph-like) matrix engine: per-label adjacency matrices
/// plus a plan executor.
///
/// # Examples
///
/// ```
/// use graph_store::{AdjacencyGraph, Label, NodeId};
/// use rpq::plan::HostMatrixEngine;
/// use rpq::ExecutionPlan;
///
/// let mut g = AdjacencyGraph::new();
/// g.insert_edge(NodeId(0), NodeId(1), Label(0));
/// g.insert_edge(NodeId(1), NodeId(2), Label(0));
/// let engine = HostMatrixEngine::from_graph(&g);
/// let (result, stats) = engine.run(&ExecutionPlan::k_hop(2), &[NodeId(0)]);
/// assert_eq!(result[0], vec![NodeId(2)]);
/// assert!(stats.bytes_read > 0);
/// ```
#[derive(Debug, Clone)]
pub struct HostMatrixEngine {
    node_bound: usize,
    any: SparseBoolMatrix,
    by_label: HashMap<Label, SparseBoolMatrix>,
    /// Transpose of `any`: row `d` lists the sources with an edge into `d`.
    /// Maintained on every update path so reversed sweeps (the ALPHA-PIM
    /// style transposed matrix chain) never rebuild from scratch.
    any_t: SparseBoolMatrix,
    /// Transposes of the per-label matrices, maintained alongside them.
    by_label_t: HashMap<Label, SparseBoolMatrix>,
}

impl HostMatrixEngine {
    /// Builds per-label adjacency matrices (and their transposes) from a
    /// graph snapshot.
    pub fn from_graph(graph: &AdjacencyGraph) -> Self {
        let n = graph.id_bound() as usize;
        let mut any = MatrixBuilder::new(n, n);
        let mut any_t = MatrixBuilder::new(n, n);
        let mut per_label: HashMap<Label, MatrixBuilder> = HashMap::new();
        let mut per_label_t: HashMap<Label, MatrixBuilder> = HashMap::new();
        for (s, d, l) in graph.edges() {
            any.set(s.index(), d.index());
            any_t.set(d.index(), s.index());
            per_label
                .entry(l)
                .or_insert_with(|| MatrixBuilder::new(n, n))
                .set(s.index(), d.index());
            per_label_t
                .entry(l)
                .or_insert_with(|| MatrixBuilder::new(n, n))
                .set(d.index(), s.index());
        }
        HostMatrixEngine {
            node_bound: n,
            any: any.build(),
            any_t: any_t.build(),
            // moctopus-lint: allow(hash-iter-order, reason = "map-to-map rebuild; MatrixBuilder::build sorts, so each value is order-independent")
            by_label: per_label.into_iter().map(|(l, b)| (l, b.build())).collect(),
            // moctopus-lint: allow(hash-iter-order, reason = "map-to-map rebuild; MatrixBuilder::build sorts, so each value is order-independent")
            by_label_t: per_label_t.into_iter().map(|(l, b)| (l, b.build())).collect(),
        }
    }

    /// Number of rows/columns of the adjacency matrices.
    pub fn node_bound(&self) -> usize {
        self.node_bound
    }

    /// The label-oblivious adjacency matrix.
    pub fn adjacency(&self) -> &SparseBoolMatrix {
        &self.any
    }

    /// The adjacency matrix restricted to one label, borrowed: the plan
    /// executor runs one `smxm` per hop per source chunk, so cloning the
    /// whole adjacency matrix per operator (multiplied by the worker count
    /// under chunked execution) would dominate; only the
    /// missing-label case materialises an (empty) owned matrix.
    fn adjacency_cow(&self, spec: LabelSpec) -> std::borrow::Cow<'_, SparseBoolMatrix> {
        use std::borrow::Cow;
        match spec {
            LabelSpec::Any => Cow::Borrowed(&self.any),
            LabelSpec::Exact(l) => self.by_label.get(&l).map(Cow::Borrowed).unwrap_or_else(|| {
                Cow::Owned(SparseBoolMatrix::zeros(self.node_bound, self.node_bound))
            }),
        }
    }

    /// Executes a query plan for a batch of source nodes.
    ///
    /// Returns the matched destinations per source (sorted) and the execution
    /// statistics used for cost modelling.
    ///
    /// # Panics
    ///
    /// Panics if the plan contains `Add`/`Sub` operators (updates are applied
    /// through [`HostMatrixEngine::apply_insertions`] /
    /// [`HostMatrixEngine::apply_deletions`]).
    pub fn run(
        &self,
        plan: &ExecutionPlan,
        sources: &[NodeId],
    ) -> (Vec<Vec<NodeId>>, HostExecutionStats) {
        // A zero-hop query plan (`[MWait]` alone — the normal form of `.{0}`
        // and every other epsilon expression) matches exactly the empty path:
        // every source reaches itself and nothing else. The Q-matrix below
        // cannot express that for sources beyond the matrix bound (their rows
        // would be empty), so answer it directly. Per-source accounting keeps
        // the chunk-merge contract of [`HostExecutionStats::merge`] intact.
        if plan.ops().iter().all(|op| matches!(op, PlanOp::MWait)) {
            let stats = HostExecutionStats {
                bytes_read: sources.len() as u64 * 8,
                result_entries: sources.len(),
                ..HostExecutionStats::default()
            };
            return (sources.iter().map(|&s| vec![s]).collect(), stats);
        }
        let mut stats = HostExecutionStats::default();
        // Build the Q matrix: one row per query in the batch.
        let mut q_builder = MatrixBuilder::new(sources.len(), self.node_bound);
        for (row, src) in sources.iter().enumerate() {
            if src.index() < self.node_bound {
                q_builder.set(row, src.index());
            }
        }
        let mut current = q_builder.build();
        for op in plan.ops() {
            match op {
                PlanOp::Smxm(spec) => {
                    let adj = self.adjacency_cow(*spec);
                    stats.smxm_ops += 1;
                    // Gustavson's algorithm touches one adjacency row per set
                    // entry of the current frontier matrix.
                    let mut touched_bytes = 0u64;
                    let mut fetches = 0u64;
                    for (_, col) in current.iter() {
                        fetches += 1;
                        touched_bytes += adj.row_nnz(col) as u64 * 8;
                    }
                    stats.row_fetches += fetches;
                    stats.bytes_read += current.nnz() as u64 * 8 + touched_bytes;
                    current = ops::mxm(&current, &adj);
                    stats.bytes_written += current.nnz() as u64 * 8;
                }
                PlanOp::MWait => {
                    stats.bytes_read += current.nnz() as u64 * 8;
                    stats.result_entries = current.nnz();
                }
                PlanOp::Add | PlanOp::Sub => {
                    // moctopus-lint: allow(panic-in-lib, reason = "plan construction never emits update ops into query plans; reaching this is a compiler bug")
                    panic!("update operators are not part of a query plan");
                }
            }
        }
        let results = (0..sources.len())
            .map(|row| current.row(row).iter().map(|&c| NodeId(c as u64)).collect())
            .collect();
        stats.frontier_levels = stats.smxm_ops;
        (results, stats)
    }

    /// Evaluates a general RPQ automaton with a per-label frontier sweep: the
    /// host-side fallback for expressions that have no fixed-length matrix
    /// chain (`*`, `+`, `?`, alternation, ranged repetition).
    ///
    /// For every source, the product of the graph and the automaton is
    /// traversed level by level; each `(frontier node, transition)` pair
    /// fetches one row of the transition label's adjacency matrix — exactly
    /// the per-label sub-matrix accesses a GraphBLAS engine would issue — and
    /// the statistics account each fetch like an `smxm` row fetch so the cost
    /// model treats both execution strategies uniformly.
    ///
    /// Results match [`crate::ReferenceEvaluator::evaluate`].
    pub fn run_nfa(&self, nfa: &Nfa, sources: &[NodeId]) -> (Vec<Vec<NodeId>>, HostExecutionStats) {
        let mut stats = HostExecutionStats::default();
        let mut results = Vec::with_capacity(sources.len());
        let mut frontier: Vec<(usize, usize)> = Vec::new();
        let mut next: Vec<(usize, usize)> = Vec::new();
        for &src in sources {
            let mut visited: HashSet<(usize, usize)> = HashSet::new();
            let mut out: Vec<NodeId> = Vec::new();
            frontier.clear();
            if nfa.accepts_empty() {
                out.push(src);
            }
            if src.index() < self.node_bound {
                visited.insert((src.index(), nfa.start()));
                frontier.push((src.index(), nfa.start()));
            }
            let mut levels = 0usize;
            while !frontier.is_empty() {
                levels += 1;
                next.clear();
                for &(node, state) in frontier.iter() {
                    for &(spec, next_state) in nfa.transitions_from(state) {
                        let row = self.row_for(spec, node);
                        stats.row_fetches += 1;
                        stats.bytes_read += row.len() as u64 * 8;
                        for &dst in row {
                            if visited.insert((dst, next_state)) {
                                stats.bytes_written += 8;
                                if nfa.is_accepting(next_state) {
                                    out.push(NodeId(dst as u64));
                                }
                                next.push((dst, next_state));
                            }
                        }
                    }
                }
                std::mem::swap(&mut frontier, &mut next);
            }
            out.sort_unstable();
            out.dedup();
            stats.result_entries += out.len();
            stats.frontier_levels = stats.frontier_levels.max(levels);
            results.push(out);
        }
        (results, stats)
    }

    /// The adjacency row of `node` under one transition's label spec, without
    /// materialising a matrix copy.
    fn row_for(&self, spec: LabelSpec, node: usize) -> &[usize] {
        match spec {
            LabelSpec::Any => self.any.row(node),
            LabelSpec::Exact(l) => self.by_label.get(&l).map(|m| m.row(node)).unwrap_or(&[]),
        }
    }

    /// The **reverse** adjacency row of `node` under one transition's label
    /// spec: the sources with a spec-matching edge into `node`, read from the
    /// transposed matrices.
    fn rev_row_for(&self, spec: LabelSpec, node: usize) -> &[usize] {
        match spec {
            LabelSpec::Any => self.any_t.row(node),
            LabelSpec::Exact(l) => self.by_label_t.get(&l).map(|m| m.row(node)).unwrap_or(&[]),
        }
    }

    /// Nodes with at least one out-edge matching `spec`, ascending — the
    /// deterministic seed set for backward useful-set sweeps. Charged as one
    /// sequential scan of the matrix row-pointer array.
    fn spec_sources(&self, spec: LabelSpec, stats: &mut HostExecutionStats) -> Vec<usize> {
        stats.bytes_read += self.node_bound as u64 * 8;
        let m: &SparseBoolMatrix = match spec {
            LabelSpec::Any => &self.any,
            LabelSpec::Exact(l) => match self.by_label.get(&l) {
                Some(m) => m,
                None => return Vec::new(),
            },
        };
        (0..self.node_bound).filter(|&r| m.row_nnz(r) > 0).collect()
    }

    /// Backward useful-set sweep over the transposed matrices.
    ///
    /// Returns the set of product pairs `(node, state)` from which an
    /// accepting pair is reachable in **one or more** transitions. With
    /// `accept_nodes` set, acceptance is restricted to landing on one of
    /// those nodes (the split executor's pivot set); without it, any node
    /// reached in an accepting state counts.
    ///
    /// Work is accounted like the forward sweep: one row fetch plus the
    /// row's bytes per `(frontier pair, reversed transition)`, 8 bytes
    /// written per newly useful pair.
    fn useful_pairs(
        &self,
        nfa: &Nfa,
        accept_nodes: Option<&HashSet<usize>>,
        stats: &mut HostExecutionStats,
    ) -> HashSet<(usize, usize)> {
        let rev_trans = nfa.reversed_transitions();
        let mut useful: HashSet<(usize, usize)> = HashSet::new();
        let mut frontier: Vec<(usize, usize)> = Vec::new();
        let push = |pair: (usize, usize),
                    useful: &mut HashSet<(usize, usize)>,
                    frontier: &mut Vec<(usize, usize)>,
                    stats: &mut HostExecutionStats| {
            if useful.insert(pair) {
                stats.bytes_written += 8;
                frontier.push(pair);
            }
        };
        // Base seeds: pairs that can take one transition straight into an
        // accepting state.
        for q in 0..nfa.state_count() {
            for &(spec, q_acc) in nfa.transitions_from(q) {
                if !nfa.is_accepting(q_acc) {
                    continue;
                }
                match accept_nodes {
                    None => {
                        for n in self.spec_sources(spec, stats) {
                            push((n, q), &mut useful, &mut frontier, stats);
                        }
                    }
                    Some(targets) => {
                        let mut sorted: Vec<usize> = targets.iter().copied().collect();
                        sorted.sort_unstable();
                        for m in sorted {
                            let row = self.rev_row_for(spec, m);
                            stats.row_fetches += 1;
                            stats.bytes_read += row.len() as u64 * 8;
                            for &n in row {
                                push((n, q), &mut useful, &mut frontier, stats);
                            }
                        }
                    }
                }
            }
        }
        // Backward closure: a pair is useful if an edge leads from it to a
        // useful pair under some transition.
        while let Some((m, q2)) = frontier.pop() {
            for &(spec, q) in &rev_trans[q2] {
                let row = self.rev_row_for(spec, m);
                stats.row_fetches += 1;
                stats.bytes_read += row.len() as u64 * 8;
                for &n in row {
                    if useful.insert((n, q)) {
                        stats.bytes_written += 8;
                        frontier.push((n, q));
                    }
                }
            }
        }
        useful
    }

    /// Evaluates an RPQ automaton with the **bidirectional** strategy: a
    /// backward useful-set sweep over the transposed matrices first, then the
    /// forward product pruned to pairs that can still reach an accepting
    /// state. Results are identical to [`HostMatrixEngine::run_nfa`] — every
    /// prefix of an accepting path is useful, so no accepting pair is ever
    /// pruned — while the work accounted can be far smaller when acceptance
    /// hinges on a rare label.
    pub fn run_nfa_bidirectional(
        &self,
        nfa: &Nfa,
        sources: &[NodeId],
    ) -> (Vec<Vec<NodeId>>, HostExecutionStats) {
        let mut stats = HostExecutionStats::default();
        let useful = self.useful_pairs(nfa, None, &mut stats);
        let mut results = Vec::with_capacity(sources.len());
        let mut frontier: Vec<(usize, usize)> = Vec::new();
        let mut next: Vec<(usize, usize)> = Vec::new();
        for &src in sources {
            let mut visited: HashSet<(usize, usize)> = HashSet::new();
            let mut out: Vec<NodeId> = Vec::new();
            frontier.clear();
            if nfa.accepts_empty() {
                out.push(src);
            }
            if src.index() < self.node_bound {
                visited.insert((src.index(), nfa.start()));
                // A start pair with no useful continuation cannot produce
                // results beyond the empty path; skip its row fetches.
                if useful.contains(&(src.index(), nfa.start())) {
                    frontier.push((src.index(), nfa.start()));
                }
            }
            let mut levels = 0usize;
            while !frontier.is_empty() {
                levels += 1;
                next.clear();
                for &(node, state) in frontier.iter() {
                    for &(spec, next_state) in nfa.transitions_from(state) {
                        let row = self.row_for(spec, node);
                        stats.row_fetches += 1;
                        stats.bytes_read += row.len() as u64 * 8;
                        for &dst in row {
                            if visited.insert((dst, next_state)) {
                                stats.bytes_written += 8;
                                if nfa.is_accepting(next_state) {
                                    out.push(NodeId(dst as u64));
                                }
                                if useful.contains(&(dst, next_state)) {
                                    next.push((dst, next_state));
                                }
                            }
                        }
                    }
                }
                std::mem::swap(&mut frontier, &mut next);
            }
            out.sort_unstable();
            out.dedup();
            stats.result_entries += out.len();
            stats.frontier_levels = stats.frontier_levels.max(levels);
            results.push(out);
        }
        (results, stats)
    }

    /// Evaluates a concatenation split at a rare exact-label pivot: the
    /// suffix automaton runs forward from the pivot's source set `M`, the
    /// prefix automaton runs forward from the real sources pruned by a
    /// backward sweep whose acceptance is restricted to `M`, and the per-mid
    /// answers join. `pivot_sources` must be exactly the nodes with an
    /// out-edge of the pivot label; results are identical to running the full
    /// automaton forward.
    pub fn run_nfa_split(
        &self,
        prefix: &Nfa,
        suffix: &Nfa,
        pivot_sources: &[NodeId],
        sources: &[NodeId],
    ) -> (Vec<Vec<NodeId>>, HostExecutionStats) {
        let mut stats = HostExecutionStats::default();
        let mids: Vec<usize> =
            pivot_sources.iter().map(|n| n.index()).filter(|&n| n < self.node_bound).collect();
        let mid_set: HashSet<usize> = mids.iter().copied().collect();
        // Suffix leg: full forward sweep from every possible mid.
        let (suffix_results, suffix_stats) = self.run_nfa(suffix, pivot_sources);
        stats.merge(&suffix_stats);
        let mut suffix_answers: HashMap<usize, &Vec<NodeId>> = HashMap::new();
        for (m, ans) in pivot_sources.iter().zip(suffix_results.iter()) {
            suffix_answers.insert(m.index(), ans);
        }
        // Prefix leg: forward product pruned by usefulness towards M.
        let useful = self.useful_pairs(prefix, Some(&mid_set), &mut stats);
        let mut results = Vec::with_capacity(sources.len());
        let mut frontier: Vec<(usize, usize)> = Vec::new();
        let mut next: Vec<(usize, usize)> = Vec::new();
        for &src in sources {
            let mut visited: HashSet<(usize, usize)> = HashSet::new();
            let mut mids_hit: Vec<usize> = Vec::new();
            frontier.clear();
            if prefix.accepts_empty() && mid_set.contains(&src.index()) {
                mids_hit.push(src.index());
            }
            if src.index() < self.node_bound {
                visited.insert((src.index(), prefix.start()));
                if useful.contains(&(src.index(), prefix.start())) {
                    frontier.push((src.index(), prefix.start()));
                }
            }
            let mut levels = 0usize;
            while !frontier.is_empty() {
                levels += 1;
                next.clear();
                for &(node, state) in frontier.iter() {
                    for &(spec, next_state) in prefix.transitions_from(state) {
                        let row = self.row_for(spec, node);
                        stats.row_fetches += 1;
                        stats.bytes_read += row.len() as u64 * 8;
                        for &dst in row {
                            if visited.insert((dst, next_state)) {
                                stats.bytes_written += 8;
                                if prefix.is_accepting(next_state) && mid_set.contains(&dst) {
                                    mids_hit.push(dst);
                                }
                                if useful.contains(&(dst, next_state)) {
                                    next.push((dst, next_state));
                                }
                            }
                        }
                    }
                }
                std::mem::swap(&mut frontier, &mut next);
            }
            // Join: union of the suffix answers of every mid this source
            // reaches through the prefix.
            let mut out: Vec<NodeId> = Vec::new();
            mids_hit.sort_unstable();
            mids_hit.dedup();
            for m in mids_hit {
                if let Some(ans) = suffix_answers.get(&m) {
                    stats.bytes_read += ans.len() as u64 * 8;
                    out.extend(ans.iter().copied());
                }
            }
            out.sort_unstable();
            out.dedup();
            stats.result_entries += out.len();
            stats.frontier_levels = stats.frontier_levels.max(levels);
            results.push(out);
        }
        (results, stats)
    }

    /// Applies a batch of labelled edge insertions (`Adj + delta`) and returns
    /// the bytes of matrix data rewritten.
    ///
    /// The label-oblivious matrix receives the combined delta; each distinct
    /// label's matrix receives exactly the edges carrying that label, so
    /// `Exact(label)` plans see the update immediately. (The update path used
    /// to touch only the [`Label::ANY`] matrix, leaving every other per-label
    /// matrix stale.)
    pub fn apply_insertions(&mut self, edges: &[(NodeId, NodeId, Label)]) -> u64 {
        let delta_any = self.delta_matrix(edges, false);
        let delta_any_t = self.delta_matrix(edges, true);
        let before = self.any.nnz();
        self.any = ops::ewise_union(&self.any, &delta_any);
        let mut rewritten = (self.any.nnz() + before) as u64 * 8;
        // The transposed mirror is rewritten alongside and charged
        // explicitly: reverse indexes are not free to maintain.
        let before_t = self.any_t.nnz();
        self.any_t = ops::ewise_union(&self.any_t, &delta_any_t);
        rewritten += (self.any_t.nnz() + before_t) as u64 * 8;
        for transposed in [false, true] {
            for (label, delta) in self.per_label_deltas(edges, transposed) {
                let map = if transposed { &mut self.by_label_t } else { &mut self.by_label };
                let entry = map
                    .entry(label)
                    .or_insert_with(|| SparseBoolMatrix::zeros(self.node_bound, self.node_bound));
                let before = entry.nnz();
                *entry = ops::ewise_union(entry, &delta);
                rewritten += (entry.nnz() + before) as u64 * 8;
            }
        }
        rewritten
    }

    /// Applies a batch of labelled edge deletions (`Adj - delta`) and returns
    /// the bytes of matrix data rewritten.
    ///
    /// Per-label matrices are updated like on the insertion path. The
    /// label-oblivious matrix drops a `(src, dst)` entry only when *no* label
    /// still connects the pair after the batch, so deleting one label of a
    /// multi-label pair leaves `.`-queries correct.
    pub fn apply_deletions(&mut self, edges: &[(NodeId, NodeId, Label)]) -> u64 {
        self.grow_for(edges);
        let mut rewritten = 0u64;
        for transposed in [false, true] {
            for (label, delta) in self.per_label_deltas(edges, transposed) {
                let map = if transposed { &mut self.by_label_t } else { &mut self.by_label };
                let entry = map
                    .entry(label)
                    .or_insert_with(|| SparseBoolMatrix::zeros(self.node_bound, self.node_bound));
                let before = entry.nnz();
                *entry = ops::ewise_difference(entry, &delta);
                rewritten += (entry.nnz() + before) as u64 * 8;
            }
        }
        // With every per-label matrix updated, a pair leaves the
        // label-oblivious matrix only if no label carries it any more.
        let gone: Vec<(usize, usize)> = edges
            .iter()
            .map(|&(s, d, _)| (s.index(), d.index()))
            // moctopus-lint: allow(hash-iter-order, reason = "existential probe over all values; any() over every label is order-independent")
            .filter(|&(s, d)| !self.by_label.values().any(|m| m.contains(s, d)))
            .collect();
        let gone_t: Vec<(usize, usize)> = gone.iter().map(|&(s, d)| (d, s)).collect();
        let delta_any = SparseBoolMatrix::from_triplets(self.node_bound, self.node_bound, &gone);
        let before = self.any.nnz();
        self.any = ops::ewise_difference(&self.any, &delta_any);
        rewritten += (self.any.nnz() + before) as u64 * 8;
        let delta_any_t =
            SparseBoolMatrix::from_triplets(self.node_bound, self.node_bound, &gone_t);
        let before_t = self.any_t.nnz();
        self.any_t = ops::ewise_difference(&self.any_t, &delta_any_t);
        rewritten += (self.any_t.nnz() + before_t) as u64 * 8;
        rewritten
    }

    /// Grows the matrices so every endpoint in `edges` is addressable.
    fn grow_for(&mut self, edges: &[(NodeId, NodeId, Label)]) {
        let needed = edges.iter().map(|&(s, d, _)| s.index().max(d.index()) + 1).max().unwrap_or(0);
        if needed > self.node_bound {
            self.grow(needed);
        }
    }

    /// Combined delta matrix over all labels (grows the engine if needed);
    /// `transposed` swaps the coordinates for the mirrored matrices.
    fn delta_matrix(
        &mut self,
        edges: &[(NodeId, NodeId, Label)],
        transposed: bool,
    ) -> SparseBoolMatrix {
        self.grow_for(edges);
        let triplets: Vec<(usize, usize)> = edges
            .iter()
            .map(
                |&(s, d, _)| {
                    if transposed {
                        (d.index(), s.index())
                    } else {
                        (s.index(), d.index())
                    }
                },
            )
            .collect();
        SparseBoolMatrix::from_triplets(self.node_bound, self.node_bound, &triplets)
    }

    /// One delta matrix per distinct label in the batch, in label order;
    /// `transposed` swaps the coordinates for the mirrored matrices.
    fn per_label_deltas(
        &self,
        edges: &[(NodeId, NodeId, Label)],
        transposed: bool,
    ) -> Vec<(Label, SparseBoolMatrix)> {
        let mut grouped: BTreeMap<Label, Vec<(usize, usize)>> = BTreeMap::new();
        for &(s, d, l) in edges {
            grouped.entry(l).or_default().push(if transposed {
                (d.index(), s.index())
            } else {
                (s.index(), d.index())
            });
        }
        grouped
            .into_iter()
            .map(|(l, triplets)| {
                (l, SparseBoolMatrix::from_triplets(self.node_bound, self.node_bound, &triplets))
            })
            .collect()
    }

    fn grow(&mut self, new_bound: usize) {
        let grow_matrix = |m: &SparseBoolMatrix| {
            SparseBoolMatrix::from_triplets(new_bound, new_bound, &m.to_triplets())
        };
        self.any = grow_matrix(&self.any);
        self.any_t = grow_matrix(&self.any_t);
        // moctopus-lint: allow(hash-iter-order, reason = "map-to-map rebuild; from_triplets sorts, so each grown matrix is order-independent")
        self.by_label = self.by_label.iter().map(|(&l, m)| (l, grow_matrix(m))).collect();
        // moctopus-lint: allow(hash-iter-order, reason = "map-to-map rebuild; from_triplets sorts, so each grown matrix is order-independent")
        self.by_label_t = self.by_label_t.iter().map(|(&l, m)| (l, grow_matrix(m))).collect();
        self.node_bound = new_bound;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_graph() -> AdjacencyGraph {
        let mut g = AdjacencyGraph::new();
        for i in 0..6u64 {
            g.insert_edge(NodeId(i), NodeId(i + 1), Label(0));
        }
        g.insert_edge(NodeId(0), NodeId(3), Label(1));
        g
    }

    #[test]
    fn k_hop_plan_shape() {
        let plan = ExecutionPlan::k_hop(4);
        assert_eq!(plan.hop_count(), 4);
        assert_eq!(plan.ops().len(), 5);
        assert_eq!(plan.ops()[4], PlanOp::MWait);
    }

    #[test]
    fn from_expr_accepts_fixed_length_shapes() {
        assert_eq!(ExecutionPlan::from_expr(&RpqExpr::k_hop(2)).unwrap().hop_count(), 2);
        let labelled = RpqExpr::concat(vec![RpqExpr::label(1), RpqExpr::any()]);
        let plan = ExecutionPlan::from_expr(&labelled).unwrap();
        assert_eq!(plan.ops()[0], PlanOp::Smxm(LabelSpec::Exact(Label(1))));
        assert_eq!(plan.ops()[1], PlanOp::Smxm(LabelSpec::Any));
    }

    #[test]
    fn from_expr_rejects_unbounded_shapes() {
        assert!(ExecutionPlan::from_expr(&RpqExpr::Star(Box::new(RpqExpr::any()))).is_none());
        assert!(ExecutionPlan::from_expr(&RpqExpr::alt(vec![
            RpqExpr::label(1),
            RpqExpr::label(2)
        ]))
        .is_none());
        let ranged = RpqExpr::Repeat { expr: Box::new(RpqExpr::any()), min: 1, max: 2 };
        assert!(ExecutionPlan::from_expr(&ranged).is_none());
    }

    #[test]
    fn update_plans_are_single_operators() {
        assert_eq!(ExecutionPlan::insert_batch().ops(), &[PlanOp::Add]);
        assert_eq!(ExecutionPlan::delete_batch().ops(), &[PlanOp::Sub]);
    }

    #[test]
    fn host_engine_matches_reference_two_hop() {
        let g = chain_graph();
        let engine = HostMatrixEngine::from_graph(&g);
        let (result, stats) = engine.run(&ExecutionPlan::k_hop(2), &[NodeId(0), NodeId(4)]);
        assert_eq!(result[0], vec![NodeId(2), NodeId(4)]); // 0->1->2 and 0->3->4
        assert_eq!(result[1], vec![NodeId(6)]);
        assert_eq!(stats.smxm_ops, 2);
        assert_eq!(stats.result_entries, 3);
        assert!(stats.bytes_read > 0);
    }

    #[test]
    fn label_restricted_plan_uses_label_matrix() {
        let g = chain_graph();
        let engine = HostMatrixEngine::from_graph(&g);
        let expr = RpqExpr::concat(vec![RpqExpr::label(1), RpqExpr::label(0)]);
        let plan = ExecutionPlan::from_expr(&expr).unwrap();
        let (result, _) = engine.run(&plan, &[NodeId(0)]);
        // 0 -(label1)-> 3 -(label0)-> 4.
        assert_eq!(result[0], vec![NodeId(4)]);
        // Missing label yields an empty matrix and therefore no results.
        let missing = ExecutionPlan::from_expr(&RpqExpr::label(9)).unwrap();
        let (empty, _) = engine.run(&missing, &[NodeId(0)]);
        assert!(empty[0].is_empty());
    }

    #[test]
    fn sources_outside_the_matrix_yield_empty_rows() {
        let g = chain_graph();
        let engine = HostMatrixEngine::from_graph(&g);
        let (result, _) = engine.run(&ExecutionPlan::k_hop(1), &[NodeId(1000)]);
        assert!(result[0].is_empty());
    }

    #[test]
    fn zero_hop_plans_match_every_source_to_itself() {
        // Regression test: the zero-hop plan used to answer from the Q-matrix
        // rows, which are empty for sources beyond the matrix bound — the
        // empty path matches *every* source, in or out of the matrix — and
        // `result_entries` undercounted accordingly.
        let g = chain_graph();
        let engine = HostMatrixEngine::from_graph(&g);
        let plan = ExecutionPlan::from_expr(&RpqExpr::k_hop(0)).unwrap();
        assert_eq!(plan.hop_count(), 0);
        let sources = [NodeId(0), NodeId(1000), NodeId(3)];
        let (results, stats) = engine.run(&plan, &sources);
        assert_eq!(results, vec![vec![NodeId(0)], vec![NodeId(1000)], vec![NodeId(3)]]);
        assert_eq!(stats.result_entries, 3);
        assert_eq!(stats.smxm_ops, 0);
        assert_eq!(stats.frontier_levels, 0);
        // Chunked execution merges back to the whole-batch statistics.
        let (_, first) = engine.run(&plan, &sources[..1]);
        let (_, rest) = engine.run(&plan, &sources[1..]);
        let mut merged = first;
        merged.merge(&rest);
        assert_eq!(merged, stats);
    }

    #[test]
    fn insertions_and_deletions_update_query_results() {
        let g = chain_graph();
        let mut engine = HostMatrixEngine::from_graph(&g);
        let plan = ExecutionPlan::k_hop(1);
        let (before, _) = engine.run(&plan, &[NodeId(6)]);
        assert!(before[0].is_empty());

        let bytes = engine.apply_insertions(&[(NodeId(6), NodeId(0), Label::ANY)]);
        assert!(bytes > 0);
        let (after, _) = engine.run(&plan, &[NodeId(6)]);
        assert_eq!(after[0], vec![NodeId(0)]);

        engine.apply_deletions(&[(NodeId(6), NodeId(0), Label::ANY)]);
        let (removed, _) = engine.run(&plan, &[NodeId(6)]);
        assert!(removed[0].is_empty());
    }

    #[test]
    fn labelled_updates_reach_the_per_label_matrix() {
        // Regression test for the stale label-matrix bug: structural updates
        // used to touch only the `Label::ANY` matrix, so an `Exact(label)`
        // plan kept answering from the build-time snapshot.
        let g = chain_graph();
        let mut engine = HostMatrixEngine::from_graph(&g);
        let plan = ExecutionPlan::from_expr(&RpqExpr::label(1)).unwrap();
        let (before, _) = engine.run(&plan, &[NodeId(5)]);
        assert!(before[0].is_empty());

        engine.apply_insertions(&[(NodeId(5), NodeId(0), Label(1))]);
        let (inserted, _) = engine.run(&plan, &[NodeId(5)]);
        assert_eq!(inserted[0], vec![NodeId(0)], "label-1 plan must see the new label-1 edge");
        // The any-label matrix saw the same structural update.
        let (any_hop, _) = engine.run(&ExecutionPlan::k_hop(1), &[NodeId(5)]);
        assert_eq!(any_hop[0], vec![NodeId(0), NodeId(6)]);

        engine.apply_deletions(&[(NodeId(5), NodeId(0), Label(1))]);
        let (deleted, _) = engine.run(&plan, &[NodeId(5)]);
        assert!(deleted[0].is_empty(), "label-1 plan must see the label-1 deletion");
    }

    #[test]
    fn deleting_one_label_of_a_multi_label_pair_keeps_any_queries_correct() {
        let mut engine = HostMatrixEngine::from_graph(&AdjacencyGraph::new());
        engine.apply_insertions(&[
            (NodeId(0), NodeId(1), Label(1)),
            (NodeId(0), NodeId(1), Label(2)),
        ]);
        engine.apply_deletions(&[(NodeId(0), NodeId(1), Label(1))]);

        // The pair is still connected under label 2, so `.`-queries keep it…
        let (any_hop, _) = engine.run(&ExecutionPlan::k_hop(1), &[NodeId(0)]);
        assert_eq!(any_hop[0], vec![NodeId(1)]);
        // …while the label-1 plan no longer matches it.
        let label1 = ExecutionPlan::from_expr(&RpqExpr::label(1)).unwrap();
        let (l1, _) = engine.run(&label1, &[NodeId(0)]);
        assert!(l1[0].is_empty());

        // Removing the last remaining label finally clears the ANY matrix.
        engine.apply_deletions(&[(NodeId(0), NodeId(1), Label(2))]);
        let (none, _) = engine.run(&ExecutionPlan::k_hop(1), &[NodeId(0)]);
        assert!(none[0].is_empty());
    }

    #[test]
    fn insertions_can_grow_the_matrix() {
        let g = chain_graph();
        let mut engine = HostMatrixEngine::from_graph(&g);
        let old_bound = engine.node_bound();
        engine.apply_insertions(&[(NodeId(50), NodeId(51), Label::ANY)]);
        assert!(engine.node_bound() > old_bound);
        let (result, _) = engine.run(&ExecutionPlan::k_hop(1), &[NodeId(50)]);
        assert_eq!(result[0], vec![NodeId(51)]);
    }

    #[test]
    fn run_nfa_matches_reference_on_unbounded_queries() {
        let mut g = AdjacencyGraph::new();
        // 0 -1-> 1 -2-> 2 -2-> 3 -3-> 4, with a label-2 cycle 2 -> 1.
        g.insert_edge(NodeId(0), NodeId(1), Label(1));
        g.insert_edge(NodeId(1), NodeId(2), Label(2));
        g.insert_edge(NodeId(2), NodeId(3), Label(2));
        g.insert_edge(NodeId(2), NodeId(1), Label(2));
        g.insert_edge(NodeId(3), NodeId(4), Label(3));
        let engine = HostMatrixEngine::from_graph(&g);
        let reference = crate::ReferenceEvaluator::new(&g);
        let sources: Vec<NodeId> = (0..5u64).map(NodeId).collect();
        for expr in [
            RpqExpr::concat(vec![
                RpqExpr::label(1),
                RpqExpr::Star(Box::new(RpqExpr::label(2))),
                RpqExpr::label(3),
            ]),
            RpqExpr::Plus(Box::new(RpqExpr::label(2))),
            RpqExpr::Star(Box::new(RpqExpr::any())),
        ] {
            let nfa = Nfa::from_expr(&expr);
            let (got, stats) = engine.run_nfa(&nfa, &sources);
            let want = reference.evaluate(&expr, &sources);
            for (g, w) in got.iter().zip(want.iter()) {
                let w: Vec<NodeId> = w.iter().copied().collect();
                assert_eq!(g, &w, "run_nfa disagrees with the reference for {expr}");
            }
            assert!(stats.row_fetches > 0);
            assert!(stats.frontier_levels > 0);
        }
    }

    #[test]
    #[should_panic(expected = "update operators")]
    fn running_update_ops_as_a_query_panics() {
        let g = chain_graph();
        let engine = HostMatrixEngine::from_graph(&g);
        let _ = engine.run(&ExecutionPlan::insert_batch(), &[NodeId(0)]);
    }

    fn rare_label_graph() -> AdjacencyGraph {
        let mut g = AdjacencyGraph::new();
        // A dense any-label mesh with one rare label-9 edge hanging off it.
        for i in 0..8u64 {
            for j in 0..8u64 {
                if i != j && (i + j) % 3 != 0 {
                    g.insert_edge(NodeId(i), NodeId(j), Label(1));
                }
            }
        }
        g.insert_edge(NodeId(3), NodeId(20), Label(9));
        g.insert_edge(NodeId(20), NodeId(21), Label(1));
        g
    }

    #[test]
    fn bidirectional_matches_forward_run_nfa() {
        let g = rare_label_graph();
        let engine = HostMatrixEngine::from_graph(&g);
        let sources: Vec<NodeId> = (0..22u64).map(NodeId).collect();
        for expr in [
            RpqExpr::concat(vec![RpqExpr::Star(Box::new(RpqExpr::any())), RpqExpr::label(9)]),
            RpqExpr::concat(vec![
                RpqExpr::Plus(Box::new(RpqExpr::label(1))),
                RpqExpr::label(9),
                RpqExpr::label(1),
            ]),
            RpqExpr::Star(Box::new(RpqExpr::label(2))),
            RpqExpr::Optional(Box::new(RpqExpr::label(9))),
        ] {
            let nfa = Nfa::from_expr(&expr);
            let (forward, fwd_stats) = engine.run_nfa(&nfa, &sources);
            let (bidi, _) = engine.run_nfa_bidirectional(&nfa, &sources);
            assert_eq!(forward, bidi, "bidirectional diverged for {expr}");
            assert!(fwd_stats.result_entries == bidi.iter().map(Vec::len).sum::<usize>());
        }
    }

    #[test]
    fn bidirectional_prunes_rare_label_closures() {
        let g = rare_label_graph();
        let engine = HostMatrixEngine::from_graph(&g);
        let sources: Vec<NodeId> = (0..22u64).map(NodeId).collect();
        let expr = RpqExpr::concat(vec![
            RpqExpr::Star(Box::new(RpqExpr::any())),
            RpqExpr::label(9),
            RpqExpr::label(1),
        ]);
        let nfa = Nfa::from_expr(&expr);
        let (_, fwd) = engine.run_nfa(&nfa, &sources);
        let (_, bidi) = engine.run_nfa_bidirectional(&nfa, &sources);
        assert!(
            bidi.row_fetches < fwd.row_fetches,
            "pruned sweep must fetch fewer rows: {} vs {}",
            bidi.row_fetches,
            fwd.row_fetches
        );
    }

    #[test]
    fn split_matches_forward_run_nfa() {
        let g = rare_label_graph();
        let engine = HostMatrixEngine::from_graph(&g);
        let sources: Vec<NodeId> = (0..22u64).map(NodeId).collect();
        let prefix_expr = RpqExpr::Star(Box::new(RpqExpr::label(1)));
        let suffix_expr = RpqExpr::concat(vec![RpqExpr::label(9), RpqExpr::label(1)]);
        let whole = RpqExpr::concat(vec![prefix_expr.clone(), suffix_expr.clone()]);
        let pivots = g.label_stats().sources_of(Label(9));
        let (forward, _) = engine.run_nfa(&Nfa::from_expr(&whole), &sources);
        let (split, _) = engine.run_nfa_split(
            &Nfa::from_expr(&prefix_expr),
            &Nfa::from_expr(&suffix_expr),
            &pivots,
            &sources,
        );
        assert_eq!(forward, split);
    }

    #[test]
    fn transposes_stay_in_sync_under_updates() {
        let mut engine = HostMatrixEngine::from_graph(&rare_label_graph());
        engine.apply_insertions(&[
            (NodeId(30), NodeId(31), Label(4)),
            (NodeId(31), NodeId(3), Label(1)),
        ]);
        engine.apply_deletions(&[(NodeId(3), NodeId(20), Label(9))]);
        for node in 0..engine.node_bound() {
            for spec in [LabelSpec::Any, LabelSpec::Exact(Label(1)), LabelSpec::Exact(Label(9))] {
                for &dst in engine.row_for(spec, node) {
                    assert!(
                        engine.rev_row_for(spec, dst).contains(&node),
                        "missing transposed entry {node}->{dst} under {spec:?}"
                    );
                }
                for &src in engine.rev_row_for(spec, node) {
                    assert!(
                        engine.row_for(spec, src).contains(&node),
                        "stale transposed entry {src}->{node} under {spec:?}"
                    );
                }
            }
        }
    }
}
