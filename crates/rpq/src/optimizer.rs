//! Cost-based RPQ plan selection over incremental per-label statistics.
//!
//! The optimizer chooses *how* an RPQ would best be evaluated — left-to-right
//! ([`PlanStrategy::Forward`]), from the automaton end that touches the rarer
//! label with the NFA reversed ([`PlanStrategy::Bidirectional`]), or by
//! splitting a top-level concatenation at a rare-label pivot and growing both
//! halves out of it ([`PlanStrategy::RareLabelSplit`]) — using only the
//! [`LabelStatsSnapshot`] that every engine maintains incrementally on its
//! labelled update paths (never by rescanning stored rows).
//!
//! # The plan-invariance contract
//!
//! Plan choice is **observable only as simulated cost**. Served results,
//! query statistics, and dependency footprints are always produced by the one
//! canonical forward NFA-product execution, so they are bit-identical under
//! every strategy by construction; what [`choose_plan`] adds is a
//! deterministic estimate of how much simulated work each strategy *would*
//! perform, and the argmin over those estimates. Two further guarantees are
//! load-bearing and enforced by tests:
//!
//! * **Never worse than left-to-right.** [`PlanStrategy::Forward`] is always
//!   a candidate and ties break in its favour, so
//!   `chosen_cost <= forward_cost` on every query
//!   ([`PlanChoice::chosen_cost`]).
//! * **One cache row per language spelling.** [`rewritten_for`] respells an
//!   expression the way the chosen strategy would factor it, and every
//!   respelling normalizes back to the identical canonical tree — a query
//!   and its plan-rewritten form share one cache key in `moctopus-server`.
//!
//! # The cost model
//!
//! Costs are abstract *edge-traversal units* computed by a deterministic,
//! integer-only walk of the expression tree. A frontier of `f` product
//! entries expanding through an exact label `l` scans an estimated
//! `f * edges(l) / sources(l)` labelled slots forward (out-expansion), or
//! `f * edges(l) / targets(l)` backward (in-expansion) — the per-source and
//! per-target mean degrees the statistics table maintains. Any-label atoms
//! expand by the whole graph's mean degree. Three structural bounds keep the
//! estimates honest:
//!
//! * one sweep of an atom traverses at most the label's total edge count
//!   (boolean semantics dedups repeat visits);
//! * its output frontier lands only on the label's target population
//!   (source population, backward), and never exceeds
//!   [`LabelStatsSnapshot::node_hint`];
//! * closures flow only the *newly discovered* part of the reachable set
//!   into the next round, stopping at a fixpoint or a fixed horizon — the
//!   fixpoint-detection pass itself is (optimistically) free.
//!
//! All arithmetic is saturating `u64` with `u128` intermediates — no floats,
//! so the estimate is byte-identical on every platform and at every thread
//! count.

use crate::ast::{LabelSpec, RpqExpr};
use graph_store::{Label, LabelCounters, LabelStatsSnapshot};

/// Iteration horizon for unbounded closures (`*`, `+`) and the cap on
/// bounded-repetition unrolling. Eight steps saturate every realistic
/// frontier (the cap is the node population, and expansion is geometric);
/// a finite horizon keeps the estimate total and cheap.
const CLOSURE_HORIZON: u32 = 8;

/// Evaluation strategy for one RPQ, chosen by [`choose_plan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PlanStrategy {
    /// Canonical left-to-right expansion from the query sources.
    Forward,
    /// Expand from the automaton end touching the rarer label: run the
    /// reversed NFA from the target side, then reconcile with the sources.
    Bidirectional,
    /// Split a top-level concatenation at a rare-label pivot: seed from the
    /// pivot label's source set, grow the suffix forward and the prefix
    /// backward, and join at the seed.
    RareLabelSplit {
        /// Index into the normalized top-level concatenation's parts at
        /// which the suffix begins (`1..len`); the pivot atom is
        /// `parts[split_at]`.
        split_at: usize,
    },
}

impl PlanStrategy {
    /// Short stable name for experiment output (`"forward"`,
    /// `"bidirectional"`, `"rare-split@N"`).
    pub fn describe(&self) -> String {
        match self {
            PlanStrategy::Forward => "forward".to_string(),
            PlanStrategy::Bidirectional => "bidirectional".to_string(),
            PlanStrategy::RareLabelSplit { split_at } => format!("rare-split@{split_at}"),
        }
    }
}

/// The outcome of cost-based plan selection for one query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanChoice {
    /// The strategy with the lowest simulated cost (ties favour the earlier
    /// candidate in the fixed order forward, bidirectional, rare-split).
    pub strategy: PlanStrategy,
    /// Simulated cost of the baseline left-to-right plan, in edge-traversal
    /// units.
    pub forward_cost: u64,
    /// Simulated cost of the chosen plan; `<= forward_cost` always.
    pub chosen_cost: u64,
}

impl PlanChoice {
    /// `forward_cost / chosen_cost` as a ratio scaled by 1000 (integer
    /// millis), the simulated-speedup figure recorded in bench artifacts.
    /// Returns 1000 (parity) when either cost is zero.
    pub fn simulated_speedup_millis(&self) -> u64 {
        if self.chosen_cost == 0 || self.forward_cost == 0 {
            return 1000;
        }
        ((self.forward_cost as u128 * 1000) / self.chosen_cost as u128).min(u64::MAX as u128) as u64
    }
}

/// Which adjacency direction a sweep traverses; selects which cardinality
/// (distinct sources vs distinct targets) divides the label's edge count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    Forward,
    Reverse,
}

/// Saturating `f * num / den` with a `u128` intermediate (den >= 1).
fn scale(f: u64, num: u64, den: u64) -> u64 {
    let den = den.max(1) as u128;
    ((f as u128 * num as u128) / den).min(u64::MAX as u128) as u64
}

/// Per-atom expansion factors in one direction: edge pool, the cardinality
/// dividing it (mean-degree denominator), and the landing population the
/// output frontier cannot exceed.
struct AtomFactors {
    edges: u64,
    fanout_div: u64,
    landing: u64,
}

fn atom_factors(spec: LabelSpec, stats: &LabelStatsSnapshot, dir: Direction) -> AtomFactors {
    match spec {
        LabelSpec::Any => AtomFactors {
            edges: stats.total_edges,
            fanout_div: stats.node_hint(),
            landing: u64::MAX,
        },
        LabelSpec::Exact(l) => {
            let LabelCounters { edges, sources, targets } = stats.counters(l);
            match dir {
                Direction::Forward => AtomFactors { edges, fanout_div: sources, landing: targets },
                Direction::Reverse => AtomFactors { edges, fanout_div: targets, landing: sources },
            }
        }
    }
}

/// Estimated (cost, output frontier) of sweeping `expr` over a frontier of
/// `f` entries. `cap` bounds every frontier estimate (boolean semantics).
///
/// The walk always consumes the tree left to right; a backward sweep is
/// priced by passing the *reversed* expression (see [`RpqExpr::reverse`])
/// with `Direction::Reverse` selecting in-side cardinalities.
fn sweep_cost(
    expr: &RpqExpr,
    f: u64,
    stats: &LabelStatsSnapshot,
    dir: Direction,
    cap: u64,
) -> (u64, u64) {
    match expr {
        RpqExpr::Atom(spec) => {
            let fct = atom_factors(*spec, stats, dir);
            // A single boolean-semantics sweep visits each labelled edge at
            // most once, and lands only inside the label's landing
            // population.
            let traversed = scale(f, fct.edges, fct.fanout_div).min(fct.edges);
            (traversed, traversed.min(fct.landing).min(cap))
        }
        RpqExpr::Concat(parts) => {
            let mut cost = 0u64;
            let mut frontier = f;
            for part in parts {
                let (c, out) = sweep_cost(part, frontier, stats, dir, cap);
                cost = cost.saturating_add(c);
                frontier = out;
            }
            (cost, frontier)
        }
        RpqExpr::Alt(branches) => {
            let mut cost = 0u64;
            let mut out = 0u64;
            for branch in branches {
                let (c, o) = sweep_cost(branch, f, stats, dir, cap);
                cost = cost.saturating_add(c);
                out = out.saturating_add(o);
            }
            (cost, out.min(cap))
        }
        RpqExpr::Star(inner) => closure_cost(inner, f, stats, dir, cap, true),
        RpqExpr::Plus(inner) => closure_cost(inner, f, stats, dir, cap, false),
        RpqExpr::Optional(inner) => {
            let (c, out) = sweep_cost(inner, f, stats, dir, cap);
            (c, f.saturating_add(out).min(cap))
        }
        RpqExpr::Repeat { expr: body, min, max } => {
            let mut cost = 0u64;
            let mut frontier = f;
            // Reached set: frontiers alive after >= min repetitions.
            let mut reach = if *min == 0 { f } else { 0 };
            let rounds = (*max).min(CLOSURE_HORIZON as usize);
            for i in 1..=rounds {
                let (c, out) = sweep_cost(body, frontier, stats, dir, cap);
                cost = cost.saturating_add(c);
                frontier = out;
                if i >= *min {
                    reach = reach.saturating_add(out).min(cap);
                }
                if out == 0 {
                    break;
                }
            }
            (cost, reach)
        }
    }
}

/// Closure (`*` / `+`) estimate: BFS-style iteration where only the *newly*
/// reached part of the estimate flows into the next round, until the
/// reachable set stops growing (that fixpoint-detection pass is priced at
/// zero — a deterministic, mildly optimistic choice) or the horizon is hit.
fn closure_cost(
    body: &RpqExpr,
    f: u64,
    stats: &LabelStatsSnapshot,
    dir: Direction,
    cap: u64,
    include_input: bool,
) -> (u64, u64) {
    let mut cost = 0u64;
    let mut frontier = f;
    let mut reach = if include_input { f.min(cap) } else { 0 };
    for _ in 0..CLOSURE_HORIZON {
        if frontier == 0 {
            break;
        }
        let (c, out) = sweep_cost(body, frontier, stats, dir, cap);
        let grown = reach.saturating_add(out).min(cap);
        let newly = grown - reach;
        if newly == 0 {
            break;
        }
        cost = cost.saturating_add(c);
        reach = grown;
        frontier = newly;
    }
    (cost, reach)
}

/// First atom a sweep of `expr` must traverse, when that atom is an exact
/// label and is *mandatory* (not skippable via nullability) — the pivot
/// requirement of [`PlanStrategy::RareLabelSplit`].
fn leading_exact_label(expr: &RpqExpr) -> Option<Label> {
    match expr {
        RpqExpr::Atom(LabelSpec::Exact(l)) => Some(*l),
        RpqExpr::Atom(LabelSpec::Any) => None,
        RpqExpr::Concat(parts) => parts.first().and_then(leading_exact_label),
        RpqExpr::Plus(inner) => leading_exact_label(inner),
        RpqExpr::Repeat { expr, min, .. } if *min >= 1 => leading_exact_label(expr),
        // Alternations, optionals, stars and zero-min repeats have no single
        // mandatory leading label.
        _ => None,
    }
}

/// Decomposes `expr` (assumed normalized) for executing
/// [`PlanStrategy::RareLabelSplit`]: the prefix and suffix halves around
/// `split_at` (both normalized) plus the suffix's mandatory leading exact
/// label — the pivot whose source set seeds the split execution. Returns
/// `None` when the strategy does not fit the tree (not a top-level
/// concatenation, split position out of range, or no mandatory exact pivot);
/// executors fall back to the forward plan in that case.
///
/// Because the pivot is *mandatory* (never skippable via nullability, see
/// [`leading_exact_label`]), the suffix accepts no empty word and every
/// suffix match starts with a pivot-labelled edge — so seeding evaluation at
/// the pivot label's exact source set loses no answers.
pub fn split_for(expr: &RpqExpr, split_at: usize) -> Option<(RpqExpr, RpqExpr, Label)> {
    let RpqExpr::Concat(parts) = expr else { return None };
    if split_at == 0 || split_at >= parts.len() {
        return None;
    }
    let pivot = leading_exact_label(&parts[split_at])?;
    let prefix = RpqExpr::Concat(parts[..split_at].to_vec()).normalize();
    let suffix = RpqExpr::Concat(parts[split_at..].to_vec()).normalize();
    Some((prefix, suffix, pivot))
}

/// Whether `expr` accepts the empty word (expression-level nullability,
/// agreeing with `Nfa::accepts_empty` on the compiled automaton).
fn nullable(expr: &RpqExpr) -> bool {
    match expr {
        RpqExpr::Atom(_) => false,
        RpqExpr::Concat(parts) => parts.iter().all(nullable),
        RpqExpr::Alt(branches) => branches.iter().any(nullable),
        RpqExpr::Star(_) | RpqExpr::Optional(_) => true,
        RpqExpr::Plus(inner) => nullable(inner),
        RpqExpr::Repeat { expr, min, .. } => *min == 0 || nullable(expr),
    }
}

/// Estimated size of the backward base seed for `reversed` (the reversed
/// expression): the population an executor's useful-set pass must enumerate
/// before any reverse row is walked. Executors cannot know which end nodes
/// matter, so the backward plan starts from *every* node carrying a
/// leading-atom edge — `sources(l)` for an exact leading label (the
/// statistics table's distinct-source set, which is exactly what
/// `spec_sources` materializes), the whole node population for an any-label
/// atom. Leading alternation branches add up; a nullable leading part also
/// exposes the part after it.
fn seed_population(reversed: &RpqExpr, stats: &LabelStatsSnapshot, cap: u64) -> u64 {
    let seed = match reversed {
        RpqExpr::Atom(LabelSpec::Exact(l)) => stats.counters(*l).sources,
        RpqExpr::Atom(LabelSpec::Any) => cap,
        RpqExpr::Concat(parts) => {
            let mut seed = 0u64;
            for part in parts {
                seed = seed.saturating_add(seed_population(part, stats, cap));
                if !nullable(part) {
                    break;
                }
            }
            seed
        }
        RpqExpr::Alt(branches) => {
            branches.iter().fold(0u64, |acc, b| acc.saturating_add(seed_population(b, stats, cap)))
        }
        RpqExpr::Star(inner) | RpqExpr::Plus(inner) | RpqExpr::Optional(inner) => {
            seed_population(inner, stats, cap)
        }
        RpqExpr::Repeat { expr, .. } => seed_population(expr, stats, cap),
    };
    seed.min(cap)
}

/// Simulated cost of the bidirectional plan: a full sweep of the reversed
/// expression from the target side, plus a reconciliation surcharge of one
/// pass over the source batch (anchoring the backward-reached sets to each
/// query source). The per-node join work is already priced inside the sweep.
///
/// The backward sweep starts from [`seed_population`] — the full population
/// of possible end anchors, **not** the query batch. An executor running the
/// plan has no target list to start from, so it seeds its useful-set pass
/// from every node with a final-atom edge; pricing the sweep against the
/// batch instead would make the plan look cheap exactly on queries ending in
/// a *common* label, where the executed backward pass is at its most
/// expensive. One additional `seed`-sized pass prices gathering that base
/// set from the statistics table.
fn bidirectional_cost(expr: &RpqExpr, stats: &LabelStatsSnapshot, batch: u64, cap: u64) -> u64 {
    let reversed = expr.reverse();
    let seed = seed_population(&reversed, stats, cap);
    let (c, _) = sweep_cost(&reversed, seed, stats, Direction::Reverse, cap);
    c.saturating_add(seed).saturating_add(batch)
}

/// Simulated cost of splitting `parts` at `split_at`: seed from the pivot
/// label's source population (independent of the batch size — the whole
/// point of rare-label-first evaluation), sweep the suffix forward and the
/// reversed prefix backward from that seed, then *anchor* to the query
/// sources: the executor still runs a forward product of the prefix from
/// the batch — pruned to the pairs the backward prefix sweep marked useful
/// — before joining at the pivots. That anchored pass is priced as a
/// forward prefix sweep whose frontier is confined to the useful
/// population (the backward sweep's reach estimate); omitting it makes the
/// split look free exactly when the prefix floods and pruning buys
/// nothing, which is where the executed plan degenerates to forward work
/// plus seeding overhead.
fn split_cost(
    parts: &[RpqExpr],
    split_at: usize,
    pivot: Label,
    stats: &LabelStatsSnapshot,
    batch: u64,
    cap: u64,
) -> u64 {
    let seed = stats.counters(pivot).sources.min(cap);
    let suffix = RpqExpr::Concat(parts[split_at..].to_vec());
    let prefix_fwd = RpqExpr::Concat(parts[..split_at].to_vec());
    let prefix_rev = prefix_fwd.reverse();
    let (fwd_c, _) = sweep_cost(&suffix, seed, stats, Direction::Forward, cap);
    let (rev_c, useful) = sweep_cost(&prefix_rev, seed, stats, Direction::Reverse, cap);
    let (anchor_c, _) =
        sweep_cost(&prefix_fwd, batch, stats, Direction::Forward, cap.min(useful.max(1)));
    fwd_c.saturating_add(rev_c).saturating_add(anchor_c).saturating_add(batch)
}

/// Chooses the cheapest evaluation strategy for `expr` over a source batch
/// of `batch_size` under the given statistics.
///
/// The expression should be normalized ([`RpqExpr::normalize`]) — the
/// rare-label-split candidates are enumerated over the *top-level* parts of
/// a normalized concatenation. Candidates are costed in the fixed order
/// forward, bidirectional, then each split position ascending, and a later
/// candidate replaces the incumbent only when **strictly** cheaper — so the
/// choice is deterministic and `chosen_cost <= forward_cost` always holds.
///
/// The forward start-frontier is `batch_size`; backward-anchored plans
/// start from the population of possible end anchors instead (see
/// [`seed_population`]) — the caller knows its source count but never the
/// matching target set, and an executor pays for that asymmetry.
///
/// # Examples
///
/// ```
/// use rpq::{optimizer, parser};
/// use graph_store::LabelStatsSnapshot;
/// let expr = parser::parse("1*/8")?.normalize();
/// // Empty statistics: everything costs zero, the forward plan wins ties.
/// let choice = optimizer::choose_plan(&expr, &LabelStatsSnapshot::default(), 16);
/// assert_eq!(choice.strategy, optimizer::PlanStrategy::Forward);
/// assert!(choice.chosen_cost <= choice.forward_cost);
/// # Ok::<(), rpq::parser::ParseRpqError>(())
/// ```
pub fn choose_plan(expr: &RpqExpr, stats: &LabelStatsSnapshot, batch_size: usize) -> PlanChoice {
    let cap = stats.node_hint();
    let batch = (batch_size as u64).max(1);
    let forward_cost = sweep_cost(expr, batch, stats, Direction::Forward, cap).0;

    let mut strategy = PlanStrategy::Forward;
    let mut chosen_cost = forward_cost;

    let bidi = bidirectional_cost(expr, stats, batch, cap);
    if bidi < chosen_cost {
        strategy = PlanStrategy::Bidirectional;
        chosen_cost = bidi;
    }

    if let RpqExpr::Concat(parts) = expr {
        for split_at in 1..parts.len() {
            let Some(pivot) = leading_exact_label(&parts[split_at]) else { continue };
            let cost = split_cost(parts, split_at, pivot, stats, batch, cap);
            if cost < chosen_cost {
                strategy = PlanStrategy::RareLabelSplit { split_at };
                chosen_cost = cost;
            }
        }
    }

    PlanChoice { strategy, forward_cost, chosen_cost }
}

/// Respells `expr` (assumed normalized) the way `strategy` factors it, such
/// that the respelling **normalizes back to `expr` exactly** — the chosen
/// strategy becomes part of the normalized form, and a query and its
/// plan-rewritten form always share one cache row.
///
/// * [`PlanStrategy::Forward`] — the identity spelling.
/// * [`PlanStrategy::Bidirectional`] — an `ε`-prefixed concatenation
///   (`ε/e`): the reversed-sweep factorization anchored at the target end;
///   normalization drops the `ε`.
/// * [`PlanStrategy::RareLabelSplit`] — the two-part grouping
///   `(prefix)/(suffix)` around the pivot; normalization flattens the
///   nested concatenations.
///
/// # Examples
///
/// ```
/// use rpq::{optimizer, parser};
/// let e = parser::parse("1/2/8")?.normalize();
/// let split = optimizer::PlanStrategy::RareLabelSplit { split_at: 2 };
/// let respelt = optimizer::rewritten_for(&e, split);
/// assert_ne!(respelt, e);            // a different spelling…
/// assert_eq!(respelt.normalize(), e); // …of the same canonical form.
/// # Ok::<(), rpq::parser::ParseRpqError>(())
/// ```
pub fn rewritten_for(expr: &RpqExpr, strategy: PlanStrategy) -> RpqExpr {
    match strategy {
        PlanStrategy::Forward => expr.clone(),
        PlanStrategy::Bidirectional => RpqExpr::Concat(vec![RpqExpr::epsilon(), expr.clone()]),
        PlanStrategy::RareLabelSplit { split_at } => match expr {
            RpqExpr::Concat(parts) if split_at >= 1 && split_at < parts.len() => {
                RpqExpr::Concat(vec![
                    RpqExpr::Concat(parts[..split_at].to_vec()),
                    RpqExpr::Concat(parts[split_at..].to_vec()),
                ])
            }
            // A split position that does not match the tree degenerates to
            // the ε-prefixed spelling (still normalizes to `expr`).
            _ => RpqExpr::Concat(vec![RpqExpr::epsilon(), expr.clone()]),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    /// A synthetic Zipf-ish statistics table: label 1 common, label 4 mid,
    /// label 8 rare.
    fn stats() -> LabelStatsSnapshot {
        LabelStatsSnapshot {
            per_label: vec![
                (Label(1), LabelCounters { edges: 4000, sources: 900, targets: 900 }),
                (Label(4), LabelCounters { edges: 500, sources: 300, targets: 300 }),
                (Label(8), LabelCounters { edges: 20, sources: 15, targets: 15 }),
            ],
            total_edges: 4520,
        }
    }

    fn norm(text: &str) -> RpqExpr {
        parse(text).expect("test query must parse").normalize()
    }

    #[test]
    fn forward_always_bounds_the_chosen_cost() {
        let s = stats();
        for text in
            ["1/2/3", "1/(2|3)*/4", ".{2}", "1+", "1*/8", "8/1*", "1/8", "4|(1/8)", "1{2,5}/8"]
        {
            let choice = choose_plan(&norm(text), &s, 16);
            assert!(
                choice.chosen_cost <= choice.forward_cost,
                "{text}: chosen {} > forward {}",
                choice.chosen_cost,
                choice.forward_cost
            );
        }
    }

    #[test]
    fn rare_tail_prefers_a_non_forward_plan() {
        let s = stats();
        // `1*/8` (the `a*.b` rare-tail class): forward floods through the
        // common label before filtering on the rare one; sweeping from the
        // rare end first is cheaper.
        let choice = choose_plan(&norm("1*/8"), &s, 16);
        assert_ne!(choice.strategy, PlanStrategy::Forward);
        assert!(choice.chosen_cost < choice.forward_cost);
    }

    #[test]
    fn rare_branch_tail_wins_big_on_wide_batches() {
        let s = stats();
        // `(4|1)/8` (the `(c|a).b` class) over a wide batch: the forward
        // plan pays both branches' fan-out before the rare filter; the
        // backward sweep seeds from the rare label's tiny source set and
        // never floods.
        let choice = choose_plan(&norm("(4|1)/8"), &s, 64);
        assert_ne!(choice.strategy, PlanStrategy::Forward);
        assert!(
            choice.simulated_speedup_millis() >= 1500,
            "expected >= 1.5x simulated win, got {}x/1000",
            choice.simulated_speedup_millis()
        );
    }

    #[test]
    fn common_tail_keeps_the_forward_plan() {
        let s = stats();
        // `4?/1` ends in the *most common* label: the backward plan would
        // have to seed its useful-set pass from nearly every node, so the
        // honest price keeps left-to-right even though the query starts
        // with an optional (skippable) atom.
        let choice = choose_plan(&norm("4?/1"), &s, 16);
        assert_eq!(choice.strategy, PlanStrategy::Forward);
        assert_eq!(choice.chosen_cost, choice.forward_cost);
    }

    #[test]
    fn rare_head_keeps_the_forward_plan() {
        let s = stats();
        // `8/1*`: the rare label already leads, so left-to-right is optimal
        // and the fixed tie-break keeps it.
        let choice = choose_plan(&norm("8/1*"), &s, 16);
        assert_eq!(choice.strategy, PlanStrategy::Forward);
        assert_eq!(choice.chosen_cost, choice.forward_cost);
    }

    #[test]
    fn empty_stats_degenerate_to_forward() {
        let empty = LabelStatsSnapshot::default();
        for text in ["1/8", "1*/8", "(1|8)+", "."] {
            let choice = choose_plan(&norm(text), &empty, 8);
            assert_eq!(choice.strategy, PlanStrategy::Forward, "{text}");
        }
    }

    #[test]
    fn choice_is_deterministic() {
        let s = stats();
        let e = norm("1/(2|3)*/8");
        let a = choose_plan(&e, &s, 32);
        let b = choose_plan(&e, &s, 32);
        assert_eq!(a, b);
    }

    #[test]
    fn rewritten_spellings_normalize_to_the_same_tree() {
        let s = stats();
        for text in ["1/2/3", "1/(2|3)*/4", "1*/8", "1/8", "1+", ".{2}", "(1|8)+"] {
            let e = norm(text);
            let choice = choose_plan(&e, &s, 16);
            for strat in [
                PlanStrategy::Forward,
                PlanStrategy::Bidirectional,
                choice.strategy,
                PlanStrategy::RareLabelSplit { split_at: 1 },
            ] {
                let respelt = rewritten_for(&e, strat);
                assert_eq!(
                    respelt.normalize(),
                    e,
                    "{text}: {} respelling must normalize back",
                    strat.describe()
                );
            }
        }
    }

    #[test]
    fn split_requires_a_mandatory_exact_pivot() {
        assert_eq!(leading_exact_label(&norm("8/1")), Some(Label(8)));
        assert_eq!(leading_exact_label(&norm("8+/1")), Some(Label(8)));
        assert_eq!(leading_exact_label(&norm("8*/1")), None);
        assert_eq!(leading_exact_label(&norm("(8|4)/1")), None);
        assert_eq!(leading_exact_label(&norm(".{2}")), None);
    }

    #[test]
    fn split_for_extracts_the_pivot_halves() {
        let e = norm("1*/8/1");
        let (prefix, suffix, pivot) = split_for(&e, 1).expect("mandatory pivot at 1");
        assert_eq!(pivot, Label(8));
        assert_eq!(prefix, norm("1*"));
        assert_eq!(suffix, norm("8/1"));
        assert!(split_for(&e, 0).is_none(), "split before the first part is meaningless");
        assert!(split_for(&e, 3).is_none(), "split past the last part is out of range");
        assert!(split_for(&norm("1|8"), 1).is_none(), "only concatenations split");
        assert!(split_for(&norm("1/8*/1"), 1).is_none(), "a nullable part cannot pivot");
    }

    #[test]
    fn strategy_names_are_stable() {
        assert_eq!(PlanStrategy::Forward.describe(), "forward");
        assert_eq!(PlanStrategy::Bidirectional.describe(), "bidirectional");
        assert_eq!(PlanStrategy::RareLabelSplit { split_at: 3 }.describe(), "rare-split@3");
    }
}
