//! The RPQ expression tree.

use graph_store::Label;
use std::fmt;

/// What an atom of the expression matches: one specific edge label or any edge.
///
/// The `Ord` impl is structural (variant order, then label id); it exists so
/// [`RpqExpr`] values can be sorted into the canonical branch order
/// [`RpqExpr::normalize`] produces, not because the order means anything.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LabelSpec {
    /// Matches edges carrying exactly this label.
    Exact(Label),
    /// Matches any edge regardless of label (written `.` in the text syntax).
    Any,
}

impl LabelSpec {
    /// Returns `true` if an edge with `label` matches this atom.
    pub fn matches(self, label: Label) -> bool {
        match self {
            LabelSpec::Any => true,
            LabelSpec::Exact(l) => l == label,
        }
    }
}

impl fmt::Display for LabelSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LabelSpec::Any => write!(f, "."),
            LabelSpec::Exact(l) => write!(f, "{}", l.0),
        }
    }
}

/// A regular path query expression over edge labels.
///
/// # Examples
///
/// ```
/// use rpq::RpqExpr;
/// // knows/knows — friend-of-friend over label 1.
/// let fof = RpqExpr::concat(vec![RpqExpr::label(1), RpqExpr::label(1)]);
/// assert_eq!(fof.min_path_length(), 2);
/// assert_eq!(RpqExpr::k_hop(3).max_path_length(), Some(3));
/// ```
/// `Hash` and `Ord` are structural: two expressions compare equal only when
/// their trees are identical. Semantically equal but structurally different
/// expressions (`1/2` vs `(1/2)`) are first brought to one shape by
/// [`RpqExpr::normalize`]; cache layers key on the normalized tree.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RpqExpr {
    /// A single edge matching the given label specification.
    Atom(LabelSpec),
    /// Concatenation: a path matching each part in sequence.
    Concat(Vec<RpqExpr>),
    /// Alternation: a path matching any one of the branches.
    Alt(Vec<RpqExpr>),
    /// Kleene star: zero or more repetitions.
    Star(Box<RpqExpr>),
    /// One or more repetitions.
    Plus(Box<RpqExpr>),
    /// Zero or one occurrence.
    Optional(Box<RpqExpr>),
    /// Bounded repetition: between `min` and `max` occurrences (inclusive).
    Repeat {
        /// The repeated sub-expression.
        expr: Box<RpqExpr>,
        /// Minimum number of repetitions.
        min: usize,
        /// Maximum number of repetitions.
        max: usize,
    },
}

impl RpqExpr {
    /// An atom matching edges with label id `id`.
    pub fn label(id: u16) -> RpqExpr {
        RpqExpr::Atom(LabelSpec::Exact(Label(id)))
    }

    /// An atom matching any edge.
    pub fn any() -> RpqExpr {
        RpqExpr::Atom(LabelSpec::Any)
    }

    /// The k-hop path query used throughout the paper's evaluation: exactly
    /// `k` hops over any edge label.
    pub fn k_hop(k: usize) -> RpqExpr {
        RpqExpr::Repeat { expr: Box::new(RpqExpr::any()), min: k, max: k }
    }

    /// Concatenation of several parts (flattens nested concatenations).
    pub fn concat(parts: Vec<RpqExpr>) -> RpqExpr {
        let mut flat = Vec::with_capacity(parts.len());
        for p in parts {
            match p {
                RpqExpr::Concat(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        if flat.len() == 1 {
            // moctopus-lint: allow(panic-in-lib, reason = "pop of a vec whose length the branch guard pins to 1")
            flat.pop().expect("length checked")
        } else {
            RpqExpr::Concat(flat)
        }
    }

    /// Alternation of several branches (flattens nested alternations).
    pub fn alt(branches: Vec<RpqExpr>) -> RpqExpr {
        let mut flat = Vec::with_capacity(branches.len());
        for b in branches {
            match b {
                RpqExpr::Alt(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        if flat.len() == 1 {
            // moctopus-lint: allow(panic-in-lib, reason = "pop of a vec whose length the branch guard pins to 1")
            flat.pop().expect("length checked")
        } else {
            RpqExpr::Alt(flat)
        }
    }

    /// The minimum number of edges a matching path can have.
    pub fn min_path_length(&self) -> usize {
        match self {
            RpqExpr::Atom(_) => 1,
            RpqExpr::Concat(parts) => parts.iter().map(RpqExpr::min_path_length).sum(),
            RpqExpr::Alt(branches) => {
                branches.iter().map(RpqExpr::min_path_length).min().unwrap_or(0)
            }
            RpqExpr::Star(_) | RpqExpr::Optional(_) => 0,
            RpqExpr::Plus(inner) => inner.min_path_length(),
            RpqExpr::Repeat { expr, min, .. } => expr.min_path_length() * min,
        }
    }

    /// The maximum number of edges a matching path can have, or `None` if the
    /// expression is unbounded (contains `*` or `+`).
    pub fn max_path_length(&self) -> Option<usize> {
        match self {
            RpqExpr::Atom(_) => Some(1),
            RpqExpr::Concat(parts) => {
                parts.iter().map(RpqExpr::max_path_length).try_fold(0usize, |a, b| Some(a + b?))
            }
            RpqExpr::Alt(branches) => branches
                .iter()
                .map(RpqExpr::max_path_length)
                .try_fold(0usize, |a, b| Some(a.max(b?))),
            RpqExpr::Star(_) | RpqExpr::Plus(_) => None,
            RpqExpr::Optional(inner) => inner.max_path_length(),
            RpqExpr::Repeat { expr, max, .. } => Some(expr.max_path_length()? * max),
        }
    }

    /// Number of atom copies this expression expands to during NFA
    /// construction (saturating): bounded repeats unroll into `max` copies of
    /// their body, so nested repeats multiply. The parser bounds this per
    /// repetition construct ([`crate::parser::MAX_REPEAT`]) and
    /// [`crate::Nfa::from_expr`] guards the total
    /// ([`crate::nfa::MAX_NFA_EXPANSION`]).
    pub fn expansion_weight(&self) -> usize {
        match self {
            RpqExpr::Atom(_) => 1,
            RpqExpr::Concat(parts) | RpqExpr::Alt(parts) => {
                parts.iter().map(RpqExpr::expansion_weight).fold(0usize, usize::saturating_add)
            }
            RpqExpr::Star(inner) | RpqExpr::Plus(inner) | RpqExpr::Optional(inner) => {
                inner.expansion_weight()
            }
            RpqExpr::Repeat { expr, max, .. } => {
                expr.expansion_weight().saturating_mul((*max).max(1))
            }
        }
    }

    /// Returns `true` if the expression is a plain k-hop query over any label,
    /// the shape the matrix planner compiles into a chain of `smxm` operators.
    pub fn as_k_hop(&self) -> Option<usize> {
        match self {
            RpqExpr::Atom(LabelSpec::Any) => Some(1),
            RpqExpr::Repeat { expr, min, max } if min == max => {
                matches!(**expr, RpqExpr::Atom(LabelSpec::Any)).then_some(*min)
            }
            RpqExpr::Concat(parts) => {
                let mut total = 0usize;
                for p in parts {
                    total += p.as_k_hop()?;
                }
                Some(total)
            }
            _ => None,
        }
    }
}

impl fmt::Display for RpqExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RpqExpr::Atom(spec) => write!(f, "{spec}"),
            RpqExpr::Concat(parts) => {
                let strs: Vec<String> = parts.iter().map(|p| format!("{p}")).collect();
                write!(f, "{}", strs.join("/"))
            }
            RpqExpr::Alt(branches) => {
                let strs: Vec<String> = branches.iter().map(|p| format!("{p}")).collect();
                write!(f, "({})", strs.join("|"))
            }
            RpqExpr::Star(inner) => write!(f, "({inner})*"),
            RpqExpr::Plus(inner) => write!(f, "({inner})+"),
            RpqExpr::Optional(inner) => write!(f, "({inner})?"),
            RpqExpr::Repeat { expr, min, max } if min == max => write!(f, "({expr}){{{min}}}"),
            RpqExpr::Repeat { expr, min, max } => write!(f, "({expr}){{{min},{max}}}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_spec_matching() {
        assert!(LabelSpec::Any.matches(Label(7)));
        assert!(LabelSpec::Exact(Label(3)).matches(Label(3)));
        assert!(!LabelSpec::Exact(Label(3)).matches(Label(4)));
    }

    #[test]
    fn k_hop_shape_is_recognised() {
        assert_eq!(RpqExpr::k_hop(3).as_k_hop(), Some(3));
        assert_eq!(RpqExpr::any().as_k_hop(), Some(1));
        let chain = RpqExpr::concat(vec![RpqExpr::any(), RpqExpr::k_hop(2)]);
        assert_eq!(chain.as_k_hop(), Some(3));
        assert_eq!(RpqExpr::label(1).as_k_hop(), None);
        assert_eq!(RpqExpr::Star(Box::new(RpqExpr::any())).as_k_hop(), None);
    }

    #[test]
    fn path_length_bounds() {
        let e = RpqExpr::concat(vec![
            RpqExpr::label(1),
            RpqExpr::Optional(Box::new(RpqExpr::label(2))),
        ]);
        assert_eq!(e.min_path_length(), 1);
        assert_eq!(e.max_path_length(), Some(2));

        let star = RpqExpr::Star(Box::new(RpqExpr::label(1)));
        assert_eq!(star.min_path_length(), 0);
        assert_eq!(star.max_path_length(), None);

        let alt = RpqExpr::alt(vec![RpqExpr::k_hop(2), RpqExpr::label(5)]);
        assert_eq!(alt.min_path_length(), 1);
        assert_eq!(alt.max_path_length(), Some(2));

        let plus = RpqExpr::Plus(Box::new(RpqExpr::label(1)));
        assert_eq!(plus.min_path_length(), 1);
        assert_eq!(plus.max_path_length(), None);
    }

    #[test]
    fn constructors_flatten_nesting() {
        let c = RpqExpr::concat(vec![
            RpqExpr::concat(vec![RpqExpr::label(1), RpqExpr::label(2)]),
            RpqExpr::label(3),
        ]);
        assert!(matches!(&c, RpqExpr::Concat(parts) if parts.len() == 3));
        let a = RpqExpr::alt(vec![
            RpqExpr::alt(vec![RpqExpr::label(1), RpqExpr::label(2)]),
            RpqExpr::label(3),
        ]);
        assert!(matches!(&a, RpqExpr::Alt(parts) if parts.len() == 3));
        // Single-element constructors collapse to the element itself.
        assert_eq!(RpqExpr::concat(vec![RpqExpr::label(9)]), RpqExpr::label(9));
        assert_eq!(RpqExpr::alt(vec![RpqExpr::label(9)]), RpqExpr::label(9));
    }

    #[test]
    fn display_is_parseable_syntax() {
        assert_eq!(RpqExpr::k_hop(4).to_string(), "(.){4}");
        assert_eq!(RpqExpr::concat(vec![RpqExpr::label(1), RpqExpr::label(2)]).to_string(), "1/2");
        assert_eq!(RpqExpr::alt(vec![RpqExpr::label(1), RpqExpr::label(2)]).to_string(), "(1|2)");
        let r = RpqExpr::Repeat { expr: Box::new(RpqExpr::any()), min: 1, max: 3 };
        assert_eq!(r.to_string(), "(.){1,3}");
    }
}
