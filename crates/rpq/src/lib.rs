//! Regular path query (RPQ) engine.
//!
//! An RPQ is a regular expression over edge labels; evaluating it over a graph
//! returns all endpoint pairs connected by a path whose label sequence matches
//! the expression. The Moctopus paper's evaluation focuses on the most common
//! RPQ shape — the *k-hop path query* with fixed start nodes, processed in
//! batches — and compiles it into a matrix-based execution plan
//! (`ans = Q × Adj × … × Adj`) made of `smxm`/`mwait` operators.
//!
//! This crate provides the full pipeline:
//!
//! * [`ast`] — the RPQ expression tree ([`RpqExpr`]), including the
//!   [`RpqExpr::k_hop`] constructor used throughout the evaluation.
//! * [`parser`] — a SPARQL-property-path-flavoured text syntax
//!   (`"1/2*"`, `".{3}"`, `"(1|2)+"`).
//! * [`nfa`] — Glushkov (ε-free) automaton construction.
//! * [`eval`] — a reference evaluator (product-automaton BFS) used to verify
//!   every other engine in the workspace.
//! * [`plan`] — matrix-based execution plans (`smxm`, `mwait`, `add`, `sub`
//!   operators) and the host-side executor over [`sparse`] matrices, which is
//!   the RedisGraph-like baseline's query path.
//! * [`optimizer`] — cost-based plan selection (forward vs bidirectional vs
//!   rare-label-first split) over incrementally maintained per-label
//!   statistics, with the plan-invariance contract that served results are
//!   bit-identical under every choice.
//!
//! # Examples
//!
//! ```
//! use rpq::{RpqExpr, parser};
//!
//! let by_text = parser::parse(".{2}")?;
//! assert_eq!(by_text, RpqExpr::k_hop(2));
//! # Ok::<(), rpq::parser::ParseRpqError>(())
//! ```

pub mod ast;
pub mod eval;
pub mod nfa;
pub mod norm;
pub mod optimizer;
pub mod parser;
pub mod plan;

pub use ast::{LabelSpec, RpqExpr};
pub use eval::ReferenceEvaluator;
pub use nfa::Nfa;
pub use norm::LabelAlphabet;
pub use optimizer::{choose_plan, rewritten_for, PlanChoice, PlanStrategy};
pub use plan::{ExecutionPlan, PlanOp};
