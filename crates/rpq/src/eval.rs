//! Reference RPQ evaluation by product-automaton BFS.
//!
//! [`ReferenceEvaluator`] walks the product of the data graph and the query
//! automaton. It makes no attempt at being fast — its job is to define the
//! correct answer that every other engine in the workspace (the host matrix
//! baseline, the PIM-hash system, and Moctopus itself) is tested against.

use crate::ast::RpqExpr;
use crate::nfa::Nfa;
use graph_store::{AdjacencyGraph, NodeId};
use std::collections::{BTreeSet, HashSet, VecDeque};

/// Reference evaluator over a fully materialised adjacency graph.
///
/// # Examples
///
/// ```
/// use graph_store::{AdjacencyGraph, Label, NodeId};
/// use rpq::{ReferenceEvaluator, RpqExpr};
///
/// let mut g = AdjacencyGraph::new();
/// g.insert_edge(NodeId(0), NodeId(1), Label(0));
/// g.insert_edge(NodeId(1), NodeId(2), Label(0));
/// let eval = ReferenceEvaluator::new(&g);
/// let result = eval.evaluate(&RpqExpr::k_hop(2), &[NodeId(0)]);
/// assert!(result[0].contains(&NodeId(2)));
/// assert_eq!(result[0].len(), 1);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ReferenceEvaluator<'g> {
    graph: &'g AdjacencyGraph,
}

impl<'g> ReferenceEvaluator<'g> {
    /// Creates an evaluator over `graph`.
    pub fn new(graph: &'g AdjacencyGraph) -> Self {
        ReferenceEvaluator { graph }
    }

    /// Evaluates `expr` from each source node, returning the set of matched
    /// destination nodes per source (in source order).
    pub fn evaluate(&self, expr: &RpqExpr, sources: &[NodeId]) -> Vec<BTreeSet<NodeId>> {
        let nfa = Nfa::from_expr(expr);
        sources.iter().map(|&s| self.evaluate_single(&nfa, s)).collect()
    }

    fn evaluate_single(&self, nfa: &Nfa, source: NodeId) -> BTreeSet<NodeId> {
        let mut results = BTreeSet::new();
        let mut visited: HashSet<(NodeId, usize)> = HashSet::new();
        let mut queue: VecDeque<(NodeId, usize)> = VecDeque::new();
        let start = (source, nfa.start());
        visited.insert(start);
        queue.push_back(start);
        if nfa.accepts_empty() {
            results.insert(source);
        }
        while let Some((node, state)) = queue.pop_front() {
            for &(dst, label) in self.graph.neighbors(node) {
                for &(spec, next_state) in nfa.transitions_from(state) {
                    if !spec.matches(label) {
                        continue;
                    }
                    // An already-visited product state has contributed its
                    // destination to `results` on first visit, so only new
                    // states need any work.
                    if visited.insert((dst, next_state)) {
                        if nfa.is_accepting(next_state) {
                            results.insert(dst);
                        }
                        queue.push_back((dst, next_state));
                    }
                }
            }
        }
        results
    }

    /// Direct level-by-level k-hop evaluation (boolean frontier semantics:
    /// nodes reachable by *some* path of exactly `k` edges).
    ///
    /// This matches `Q × Adj^k` over the boolean semiring and is used as an
    /// independent cross-check of [`ReferenceEvaluator::evaluate`].
    pub fn k_hop(&self, sources: &[NodeId], k: usize) -> Vec<BTreeSet<NodeId>> {
        sources
            .iter()
            .map(|&s| {
                let mut frontier: BTreeSet<NodeId> = BTreeSet::new();
                frontier.insert(s);
                for _ in 0..k {
                    let mut next = BTreeSet::new();
                    for &n in &frontier {
                        for &(dst, _) in self.graph.neighbors(n) {
                            next.insert(dst);
                        }
                    }
                    frontier = next;
                    if frontier.is_empty() {
                        break;
                    }
                }
                frontier
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph_store::Label;

    /// Figure 2's routing-connection graph (10 nodes).
    fn figure2_graph() -> AdjacencyGraph {
        let mut g = AdjacencyGraph::new();
        let edges = [
            (0, 1),
            (1, 2),
            (1, 4),
            (2, 3),
            (2, 5),
            (3, 6),
            (4, 5),
            (5, 6),
            (5, 8),
            (6, 9),
            (3, 9),
            (8, 9),
        ];
        for (s, d) in edges {
            g.insert_edge(NodeId(s), NodeId(d), Label(0));
        }
        g
    }

    #[test]
    fn two_hop_matches_manual_expansion() {
        let g = figure2_graph();
        let eval = ReferenceEvaluator::new(&g);
        let result = eval.evaluate(&RpqExpr::k_hop(2), &[NodeId(2), NodeId(3)]);
        // From node 2: 2 -> {3,5} -> {6, 9, 6, 8} = {6, 8, 9}.
        let expected2: BTreeSet<NodeId> = [NodeId(6), NodeId(8), NodeId(9)].into_iter().collect();
        assert_eq!(result[0], expected2);
        // From node 3: 3 -> {6,9} -> {9}.
        let expected3: BTreeSet<NodeId> = [NodeId(9)].into_iter().collect();
        assert_eq!(result[1], expected3);
    }

    #[test]
    fn nfa_evaluation_agrees_with_direct_k_hop() {
        let g = graph_gen_like_chain();
        let eval = ReferenceEvaluator::new(&g);
        let sources = [NodeId(0), NodeId(3), NodeId(7)];
        for k in 0..5 {
            assert_eq!(
                eval.evaluate(&RpqExpr::k_hop(k), &sources),
                eval.k_hop(&sources, k),
                "mismatch at k = {k}"
            );
        }
    }

    fn graph_gen_like_chain() -> AdjacencyGraph {
        // A chain with some shortcuts to create branching.
        let mut g = AdjacencyGraph::new();
        for i in 0..10u64 {
            g.insert_edge(NodeId(i), NodeId(i + 1), Label(0));
        }
        g.insert_edge(NodeId(0), NodeId(5), Label(0));
        g.insert_edge(NodeId(2), NodeId(7), Label(0));
        g.insert_edge(NodeId(7), NodeId(2), Label(0));
        g
    }

    #[test]
    fn label_constrained_paths() {
        let mut g = AdjacencyGraph::new();
        g.insert_edge(NodeId(0), NodeId(1), Label(1)); // follows
        g.insert_edge(NodeId(0), NodeId(2), Label(2)); // blocks
        g.insert_edge(NodeId(1), NodeId(3), Label(1));
        g.insert_edge(NodeId(2), NodeId(3), Label(1));
        let eval = ReferenceEvaluator::new(&g);

        // follows/follows reaches 3 only through node 1.
        let expr = RpqExpr::concat(vec![RpqExpr::label(1), RpqExpr::label(1)]);
        let r = eval.evaluate(&expr, &[NodeId(0)]);
        assert_eq!(r[0], [NodeId(3)].into_iter().collect());

        // blocks/follows also reaches 3, via node 2.
        let expr2 = RpqExpr::concat(vec![RpqExpr::label(2), RpqExpr::label(1)]);
        let r2 = eval.evaluate(&expr2, &[NodeId(0)]);
        assert_eq!(r2[0], [NodeId(3)].into_iter().collect());

        // follows-only transitive closure never uses the label-2 edge.
        let expr3 = RpqExpr::Plus(Box::new(RpqExpr::label(1)));
        let r3 = eval.evaluate(&expr3, &[NodeId(0)]);
        assert_eq!(r3[0], [NodeId(1), NodeId(3)].into_iter().collect());
    }

    #[test]
    fn star_includes_the_source_itself() {
        let g = figure2_graph();
        let eval = ReferenceEvaluator::new(&g);
        let expr = RpqExpr::Star(Box::new(RpqExpr::any()));
        let r = eval.evaluate(&expr, &[NodeId(5)]);
        assert!(r[0].contains(&NodeId(5)));
        assert!(r[0].contains(&NodeId(9)));
        assert!(!r[0].contains(&NodeId(0)), "node 0 is not reachable from 5");
    }

    #[test]
    fn zero_hop_returns_the_source() {
        let g = figure2_graph();
        let eval = ReferenceEvaluator::new(&g);
        let r = eval.k_hop(&[NodeId(4)], 0);
        assert_eq!(r[0], [NodeId(4)].into_iter().collect());
    }

    #[test]
    fn unreachable_sources_return_empty_sets() {
        let g = figure2_graph();
        let eval = ReferenceEvaluator::new(&g);
        // Node 9 has no outgoing edges.
        let r = eval.evaluate(&RpqExpr::k_hop(2), &[NodeId(9)]);
        assert!(r[0].is_empty());
    }

    #[test]
    fn cycles_do_not_hang_unbounded_queries() {
        let mut g = AdjacencyGraph::new();
        g.insert_edge(NodeId(0), NodeId(1), Label(0));
        g.insert_edge(NodeId(1), NodeId(0), Label(0));
        let eval = ReferenceEvaluator::new(&g);
        let expr = RpqExpr::Plus(Box::new(RpqExpr::any()));
        let r = eval.evaluate(&expr, &[NodeId(0)]);
        assert_eq!(r[0], [NodeId(0), NodeId(1)].into_iter().collect());
    }
}
