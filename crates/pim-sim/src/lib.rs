//! Cost-model simulator of an UPMEM-like processing-in-memory (PIM) platform.
//!
//! The Moctopus paper evaluates on real UPMEM DIMMs: a powerful host CPU plus
//! ranks of 64 PIM modules, each with a wimpy general-purpose core and 64 MB
//! of local MRAM. That hardware is not available here, so this crate provides
//! a *functional + analytic* substitute: callers execute their algorithms
//! normally (the data structures live in ordinary process memory) and charge
//! every memory access, computation, and transfer to the simulator, which
//! converts the charges into simulated time using published UPMEM bandwidth
//! and latency figures.
//!
//! The crate models the three properties the paper's evaluation hinges on:
//!
//! 1. **Abundant intra-PIM bandwidth** — every module has its own MRAM link
//!    (~625 MB/s), so aggregate bandwidth scales with the number of modules.
//! 2. **Scarce CPU↔PIM bandwidth** — all CPC (CPU–PIM communication) and IPC
//!    (inter-PIM communication, realised by CPU forwarding) share one narrow
//!    bus (<2 % of aggregate intra-PIM bandwidth).
//! 3. **Parallel execution with stragglers** — a batch step completes when the
//!    *slowest* module finishes, which is how load imbalance from graph
//!    skewness turns into latency.
//!
//! # Examples
//!
//! ```
//! use pim_sim::{PimConfig, PimSystem, SimTime};
//!
//! let mut sys = PimSystem::new(PimConfig::upmem_rank());
//! // Charge a parallel step: module 0 reads 1 KiB, the rest are idle.
//! let times: Vec<_> = (0..sys.module_count())
//!     .map(|m| if m == 0 { sys.mram_read_cost(1024) } else { SimTime::ZERO })
//!     .collect();
//! let step = sys.parallel_step(&times);
//! assert!(step > SimTime::ZERO);
//! ```

pub mod config;
pub mod energy;
pub mod module;
pub mod system;
pub mod time;
pub mod timeline;
pub mod transfer;

pub use config::{HostConfig, PimConfig};
pub use energy::{EnergyEstimate, EnergyModel};
pub use module::PimModule;
pub use system::PimSystem;
pub use time::SimTime;
pub use timeline::{Phase, Timeline};
pub use transfer::TransferStats;
