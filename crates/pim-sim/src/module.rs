//! Per-module state: memory occupancy and busy-time accounting.

use crate::config::PimConfig;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// State of one PIM module (one UPMEM DPU): MRAM occupancy and the busy time
/// it has accumulated, used to quantify load (im)balance across modules.
///
/// # Examples
///
/// ```
/// use pim_sim::{PimConfig, PimModule, SimTime};
/// let cfg = PimConfig::small_test();
/// let mut m = PimModule::new(0, &cfg);
/// m.reserve_bytes(1024)?;
/// m.add_busy_time(SimTime::from_micros(5.0));
/// assert_eq!(m.mram_used_bytes(), 1024);
/// # Ok::<(), pim_sim::module::MramOverflow>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PimModule {
    id: usize,
    mram_capacity_bytes: u64,
    mram_used_bytes: u64,
    busy_time: SimTime,
    tasks_executed: u64,
}

/// Error returned when a module's MRAM capacity would be exceeded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MramOverflow {
    /// Module that overflowed.
    pub module: usize,
    /// Bytes requested beyond capacity.
    pub requested: u64,
    /// Module capacity in bytes.
    pub capacity: u64,
}

impl std::fmt::Display for MramOverflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "mram overflow on module {}: requested {} bytes with capacity {}",
            self.module, self.requested, self.capacity
        )
    }
}

impl std::error::Error for MramOverflow {}

impl PimModule {
    /// Creates a module with the capacity from `config`.
    pub fn new(id: usize, config: &PimConfig) -> Self {
        PimModule {
            id,
            mram_capacity_bytes: config.mram_capacity_bytes,
            mram_used_bytes: 0,
            busy_time: SimTime::ZERO,
            tasks_executed: 0,
        }
    }

    /// The module's index within its rank.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Reserves MRAM for graph data placed on this module.
    ///
    /// # Errors
    ///
    /// Returns [`MramOverflow`] if the reservation would exceed the module's
    /// MRAM capacity.
    pub fn reserve_bytes(&mut self, bytes: u64) -> Result<(), MramOverflow> {
        let new_total = self.mram_used_bytes + bytes;
        if new_total > self.mram_capacity_bytes {
            return Err(MramOverflow {
                module: self.id,
                requested: new_total,
                capacity: self.mram_capacity_bytes,
            });
        }
        self.mram_used_bytes = new_total;
        Ok(())
    }

    /// Releases previously reserved MRAM (saturating at zero).
    pub fn release_bytes(&mut self, bytes: u64) {
        self.mram_used_bytes = self.mram_used_bytes.saturating_sub(bytes);
    }

    /// Currently reserved MRAM bytes.
    pub fn mram_used_bytes(&self) -> u64 {
        self.mram_used_bytes
    }

    /// MRAM capacity in bytes.
    pub fn mram_capacity_bytes(&self) -> u64 {
        self.mram_capacity_bytes
    }

    /// Fraction of MRAM currently in use.
    pub fn mram_utilization(&self) -> f64 {
        if self.mram_capacity_bytes == 0 {
            0.0
        } else {
            self.mram_used_bytes as f64 / self.mram_capacity_bytes as f64
        }
    }

    /// Adds busy time accumulated by a task executed on this module.
    pub fn add_busy_time(&mut self, t: SimTime) {
        self.busy_time += t;
        self.tasks_executed += 1;
    }

    /// Total busy time accumulated so far.
    pub fn busy_time(&self) -> SimTime {
        self.busy_time
    }

    /// Number of tasks charged to this module.
    pub fn tasks_executed(&self) -> u64 {
        self.tasks_executed
    }

    /// Resets busy-time accounting (memory occupancy is preserved).
    pub fn reset_busy_time(&mut self) {
        self.busy_time = SimTime::ZERO;
        self.tasks_executed = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_and_release_memory() {
        let cfg = PimConfig::small_test();
        let mut m = PimModule::new(3, &cfg);
        m.reserve_bytes(1000).unwrap();
        assert_eq!(m.mram_used_bytes(), 1000);
        m.release_bytes(400);
        assert_eq!(m.mram_used_bytes(), 600);
        m.release_bytes(10_000);
        assert_eq!(m.mram_used_bytes(), 0);
    }

    #[test]
    fn overflow_is_detected() {
        let cfg = PimConfig::small_test();
        let mut m = PimModule::new(1, &cfg);
        let cap = m.mram_capacity_bytes();
        m.reserve_bytes(cap).unwrap();
        let err = m.reserve_bytes(1).unwrap_err();
        assert_eq!(err.module, 1);
        assert_eq!(err.capacity, cap);
        assert!(err.to_string().contains("mram overflow"));
    }

    #[test]
    fn busy_time_accumulates_and_resets() {
        let cfg = PimConfig::small_test();
        let mut m = PimModule::new(0, &cfg);
        m.add_busy_time(SimTime::from_micros(1.0));
        m.add_busy_time(SimTime::from_micros(2.0));
        assert_eq!(m.busy_time().as_micros(), 3.0);
        assert_eq!(m.tasks_executed(), 2);
        m.reset_busy_time();
        assert!(m.busy_time().is_zero());
        assert_eq!(m.tasks_executed(), 0);
    }

    #[test]
    fn utilization_is_a_fraction() {
        let cfg = PimConfig::small_test();
        let mut m = PimModule::new(0, &cfg);
        assert_eq!(m.mram_utilization(), 0.0);
        m.reserve_bytes(cfg.mram_capacity_bytes / 2).unwrap();
        assert!((m.mram_utilization() - 0.5).abs() < 1e-9);
    }
}
