//! First-order energy model.
//!
//! The paper motivates PIM partly through the energy cost of data movement
//! ("excessive data movement results in ... considerable energy costs"). The
//! evaluation does not report energy numbers, so this model is an extension:
//! it converts the byte counters already collected by the simulator into an
//! energy estimate using per-byte figures commonly used in the PIM literature
//! (DRAM access ≈ 20 pJ/byte on the host path, ≈ 5 pJ/byte inside a PIM
//! module, and ≈ 60 pJ/byte for crossing the off-chip CPU↔PIM bus).

use crate::transfer::TransferStats;
use serde::{Deserialize, Serialize};

/// Per-byte energy coefficients in picojoules.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Energy per byte read/written by the host from DRAM.
    pub host_dram_pj_per_byte: f64,
    /// Energy per byte accessed inside a PIM module's MRAM.
    pub pim_mram_pj_per_byte: f64,
    /// Energy per byte crossing the CPU↔PIM bus.
    pub bus_pj_per_byte: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            host_dram_pj_per_byte: 20.0,
            pim_mram_pj_per_byte: 5.0,
            bus_pj_per_byte: 60.0,
        }
    }
}

/// An energy estimate broken down by component, in picojoules.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyEstimate {
    /// Energy spent by host DRAM traffic.
    pub host_pj: f64,
    /// Energy spent by PIM-local MRAM traffic.
    pub pim_pj: f64,
    /// Energy spent moving data across the CPU↔PIM bus.
    pub bus_pj: f64,
}

impl EnergyEstimate {
    /// Total energy in picojoules.
    pub fn total_pj(&self) -> f64 {
        self.host_pj + self.pim_pj + self.bus_pj
    }

    /// Total energy in microjoules.
    pub fn total_uj(&self) -> f64 {
        self.total_pj() / 1e6
    }
}

impl EnergyModel {
    /// Estimates energy from byte counters.
    ///
    /// `host_bytes` and `pim_bytes` are the memory bytes touched on each side;
    /// bus traffic is taken from `transfers` (IPC bytes cross the bus twice).
    pub fn estimate(
        &self,
        host_bytes: u64,
        pim_bytes: u64,
        transfers: &TransferStats,
    ) -> EnergyEstimate {
        let bus_bytes = transfers.cpc_bytes() + 2 * transfers.inter_pim_bytes;
        EnergyEstimate {
            host_pj: host_bytes as f64 * self.host_dram_pj_per_byte,
            pim_pj: pim_bytes as f64 * self.pim_mram_pj_per_byte,
            bus_pj: bus_bytes as f64 * self.bus_pj_per_byte,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_coefficients_order() {
        let m = EnergyModel::default();
        assert!(m.bus_pj_per_byte > m.host_dram_pj_per_byte);
        assert!(m.host_dram_pj_per_byte > m.pim_mram_pj_per_byte);
    }

    #[test]
    fn estimate_accounts_double_bus_crossing_for_ipc() {
        let m = EnergyModel::default();
        let mut t = TransferStats::default();
        t.record_inter_pim(100, 1);
        let e = m.estimate(0, 0, &t);
        assert_eq!(e.bus_pj, 200.0 * m.bus_pj_per_byte);
        assert_eq!(e.host_pj, 0.0);
    }

    #[test]
    fn totals_sum_components() {
        let m = EnergyModel::default();
        let mut t = TransferStats::default();
        t.record_cpu_to_pim(10, 1);
        let e = m.estimate(100, 1000, &t);
        let expected = 100.0 * 20.0 + 1000.0 * 5.0 + 10.0 * 60.0;
        assert!((e.total_pj() - expected).abs() < 1e-9);
        assert!((e.total_uj() - expected / 1e6).abs() < 1e-12);
    }
}
