//! Accounting of data movement between the host and the PIM modules.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign};

/// Byte and message counters for every class of data movement.
///
/// The paper distinguishes CPU–PIM communication (CPC: dispatching operators,
/// pushing frontiers, gathering results) from inter-PIM communication (IPC:
/// next-hops that land on a different module, realised by CPU forwarding).
///
/// # Examples
///
/// ```
/// use pim_sim::TransferStats;
/// let mut stats = TransferStats::default();
/// stats.record_cpu_to_pim(1024, 1);
/// stats.record_inter_pim(256, 4);
/// assert_eq!(stats.total_bytes(), 1280);
/// assert_eq!(stats.inter_pim_bytes, 256);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransferStats {
    /// Bytes pushed from the host CPU to PIM modules.
    pub cpu_to_pim_bytes: u64,
    /// Bytes gathered from PIM modules back to the host CPU.
    pub pim_to_cpu_bytes: u64,
    /// Bytes exchanged between PIM modules (forwarded through the CPU).
    pub inter_pim_bytes: u64,
    /// Number of CPU→PIM transfer batches.
    pub cpu_to_pim_messages: u64,
    /// Number of PIM→CPU transfer batches.
    pub pim_to_cpu_messages: u64,
    /// Number of inter-PIM forwarded messages.
    pub inter_pim_messages: u64,
}

impl TransferStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a host→module transfer batch.
    pub fn record_cpu_to_pim(&mut self, bytes: u64, messages: u64) {
        self.cpu_to_pim_bytes += bytes;
        self.cpu_to_pim_messages += messages;
    }

    /// Records a module→host transfer batch.
    pub fn record_pim_to_cpu(&mut self, bytes: u64, messages: u64) {
        self.pim_to_cpu_bytes += bytes;
        self.pim_to_cpu_messages += messages;
    }

    /// Records an inter-module transfer (forwarded through the CPU).
    pub fn record_inter_pim(&mut self, bytes: u64, messages: u64) {
        self.inter_pim_bytes += bytes;
        self.inter_pim_messages += messages;
    }

    /// Total bytes moved over the narrow CPU↔PIM bus.
    ///
    /// IPC bytes are counted once here even though the CPU forwards them
    /// (receive + resend); the time model charges the double crossing.
    pub fn total_bytes(&self) -> u64 {
        self.cpu_to_pim_bytes + self.pim_to_cpu_bytes + self.inter_pim_bytes
    }

    /// Total CPC bytes (excludes inter-PIM forwarding).
    pub fn cpc_bytes(&self) -> u64 {
        self.cpu_to_pim_bytes + self.pim_to_cpu_bytes
    }
}

impl Add for TransferStats {
    type Output = TransferStats;
    fn add(self, rhs: TransferStats) -> TransferStats {
        TransferStats {
            cpu_to_pim_bytes: self.cpu_to_pim_bytes + rhs.cpu_to_pim_bytes,
            pim_to_cpu_bytes: self.pim_to_cpu_bytes + rhs.pim_to_cpu_bytes,
            inter_pim_bytes: self.inter_pim_bytes + rhs.inter_pim_bytes,
            cpu_to_pim_messages: self.cpu_to_pim_messages + rhs.cpu_to_pim_messages,
            pim_to_cpu_messages: self.pim_to_cpu_messages + rhs.pim_to_cpu_messages,
            inter_pim_messages: self.inter_pim_messages + rhs.inter_pim_messages,
        }
    }
}

impl AddAssign for TransferStats {
    fn add_assign(&mut self, rhs: TransferStats) {
        *self = *self + rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = TransferStats::new();
        s.record_cpu_to_pim(100, 2);
        s.record_pim_to_cpu(50, 1);
        s.record_inter_pim(25, 5);
        assert_eq!(s.cpc_bytes(), 150);
        assert_eq!(s.total_bytes(), 175);
        assert_eq!(s.cpu_to_pim_messages, 2);
        assert_eq!(s.inter_pim_messages, 5);
    }

    #[test]
    fn add_combines_all_fields() {
        let mut a = TransferStats::new();
        a.record_cpu_to_pim(10, 1);
        let mut b = TransferStats::new();
        b.record_inter_pim(20, 2);
        b.record_pim_to_cpu(5, 1);
        let c = a + b;
        assert_eq!(c.cpu_to_pim_bytes, 10);
        assert_eq!(c.inter_pim_bytes, 20);
        assert_eq!(c.pim_to_cpu_bytes, 5);
        a += b;
        assert_eq!(a, c);
    }

    #[test]
    fn default_is_zero() {
        let s = TransferStats::default();
        assert_eq!(s.total_bytes(), 0);
        assert_eq!(s.cpc_bytes(), 0);
    }
}
