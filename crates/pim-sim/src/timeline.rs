//! Per-phase breakdown of a simulated operation.
//!
//! The paper attributes query latency to distinct phases: host-side compute,
//! PIM-side compute, CPU–PIM communication (CPC), inter-PIM communication
//! (IPC, forwarded by the CPU), and the final result reduction. [`Timeline`]
//! accumulates time into those phases and carries the raw
//! [`TransferStats`] so experiments such as Figure 5
//! (IPC cost) can be reported directly.

use crate::time::SimTime;
use crate::transfer::TransferStats;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign};

/// The phase a charged cost belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Phase {
    /// Work executed on the host CPU (high-degree rows, planning, merging).
    HostCompute,
    /// Work executed inside PIM modules (low-degree rows).
    PimCompute,
    /// CPU→PIM and PIM→CPU transfers (dispatch and gather).
    Cpc,
    /// Inter-PIM transfers, forwarded through the host CPU.
    Ipc,
    /// Result reduction / deduplication on the host (the `mwait` operator).
    Reduce,
}

impl Phase {
    /// All phases, in reporting order.
    pub const ALL: [Phase; 5] =
        [Phase::HostCompute, Phase::PimCompute, Phase::Cpc, Phase::Ipc, Phase::Reduce];
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Phase::HostCompute => "host",
            Phase::PimCompute => "pim",
            Phase::Cpc => "cpc",
            Phase::Ipc => "ipc",
            Phase::Reduce => "reduce",
        };
        write!(f, "{s}")
    }
}

/// Accumulated simulated time per phase plus transfer statistics.
///
/// # Examples
///
/// ```
/// use pim_sim::{Phase, SimTime, Timeline};
/// let mut t = Timeline::new();
/// t.charge(Phase::PimCompute, SimTime::from_micros(10.0));
/// t.charge(Phase::Ipc, SimTime::from_micros(2.0));
/// assert_eq!(t.total().as_micros(), 12.0);
/// assert_eq!(t.time(Phase::Ipc).as_micros(), 2.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Timeline {
    host_compute: SimTime,
    pim_compute: SimTime,
    cpc: SimTime,
    ipc: SimTime,
    reduce: SimTime,
    /// Raw transfer counters accumulated alongside the time charges.
    pub transfers: TransferStats,
}

impl Timeline {
    /// Creates an empty timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `time` to the given phase.
    pub fn charge(&mut self, phase: Phase, time: SimTime) {
        match phase {
            Phase::HostCompute => self.host_compute += time,
            Phase::PimCompute => self.pim_compute += time,
            Phase::Cpc => self.cpc += time,
            Phase::Ipc => self.ipc += time,
            Phase::Reduce => self.reduce += time,
        }
    }

    /// Time accumulated in one phase.
    pub fn time(&self, phase: Phase) -> SimTime {
        match phase {
            Phase::HostCompute => self.host_compute,
            Phase::PimCompute => self.pim_compute,
            Phase::Cpc => self.cpc,
            Phase::Ipc => self.ipc,
            Phase::Reduce => self.reduce,
        }
    }

    /// End-to-end simulated time (phases are executed sequentially).
    ///
    /// Host and PIM compute of the same hop overlap only partially in the real
    /// system; summing them is the conservative model the reproduction uses
    /// consistently for every engine, so relative comparisons remain fair.
    pub fn total(&self) -> SimTime {
        self.host_compute + self.pim_compute + self.cpc + self.ipc + self.reduce
    }

    /// Communication time (CPC + IPC).
    pub fn communication(&self) -> SimTime {
        self.cpc + self.ipc
    }

    /// Returns the dominant phase (largest accumulated time).
    pub fn dominant_phase(&self) -> Phase {
        // moctopus-lint: allow(panic-in-lib, reason = "SimTime nanos are never NaN and Phase::ALL is a non-empty const array")
        Phase::ALL
            .into_iter()
            .max_by(|&a, &b| {
                self.time(a)
                    .as_nanos()
                    .partial_cmp(&self.time(b).as_nanos())
                    .expect("phase times are finite")
            })
            .expect("ALL is non-empty")
    }
}

impl Add for Timeline {
    type Output = Timeline;
    fn add(self, rhs: Timeline) -> Timeline {
        Timeline {
            host_compute: self.host_compute + rhs.host_compute,
            pim_compute: self.pim_compute + rhs.pim_compute,
            cpc: self.cpc + rhs.cpc,
            ipc: self.ipc + rhs.ipc,
            reduce: self.reduce + rhs.reduce,
            transfers: self.transfers + rhs.transfers,
        }
    }
}

impl AddAssign for Timeline {
    fn add_assign(&mut self, rhs: Timeline) {
        *self = *self + rhs;
    }
}

impl fmt::Display for Timeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "total {} (host {}, pim {}, cpc {}, ipc {}, reduce {})",
            self.total(),
            self.host_compute,
            self.pim_compute,
            self.cpc,
            self.ipc,
            self.reduce
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate_per_phase() {
        let mut t = Timeline::new();
        t.charge(Phase::HostCompute, SimTime::from_nanos(10.0));
        t.charge(Phase::HostCompute, SimTime::from_nanos(5.0));
        t.charge(Phase::Cpc, SimTime::from_nanos(20.0));
        assert_eq!(t.time(Phase::HostCompute).as_nanos(), 15.0);
        assert_eq!(t.time(Phase::Cpc).as_nanos(), 20.0);
        assert_eq!(t.time(Phase::Reduce), SimTime::ZERO);
        assert_eq!(t.total().as_nanos(), 35.0);
    }

    #[test]
    fn communication_sums_cpc_and_ipc() {
        let mut t = Timeline::new();
        t.charge(Phase::Cpc, SimTime::from_nanos(7.0));
        t.charge(Phase::Ipc, SimTime::from_nanos(3.0));
        assert_eq!(t.communication().as_nanos(), 10.0);
    }

    #[test]
    fn dominant_phase_is_reported() {
        let mut t = Timeline::new();
        t.charge(Phase::PimCompute, SimTime::from_micros(1.0));
        t.charge(Phase::Ipc, SimTime::from_micros(9.0));
        assert_eq!(t.dominant_phase(), Phase::Ipc);
    }

    #[test]
    fn timelines_add_componentwise() {
        let mut a = Timeline::new();
        a.charge(Phase::PimCompute, SimTime::from_nanos(1.0));
        a.transfers.record_inter_pim(8, 1);
        let mut b = Timeline::new();
        b.charge(Phase::Reduce, SimTime::from_nanos(2.0));
        b.transfers.record_cpu_to_pim(16, 1);
        let c = a + b;
        assert_eq!(c.total().as_nanos(), 3.0);
        assert_eq!(c.transfers.inter_pim_bytes, 8);
        assert_eq!(c.transfers.cpu_to_pim_bytes, 16);
        a += b;
        assert_eq!(a, c);
    }

    #[test]
    fn phase_display_names() {
        let names: Vec<String> = Phase::ALL.iter().map(|p| p.to_string()).collect();
        assert_eq!(names, vec!["host", "pim", "cpc", "ipc", "reduce"]);
    }

    #[test]
    fn display_mentions_total() {
        let mut t = Timeline::new();
        t.charge(Phase::Reduce, SimTime::from_millis(1.0));
        assert!(t.to_string().contains("total"));
    }
}
