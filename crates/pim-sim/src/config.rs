//! Platform configuration: bandwidths, latencies, capacities.
//!
//! Default figures follow the UPMEM platform characterisation used by the
//! paper (Gómez-Luna et al., "Benchmarking a new paradigm", 2021) and the
//! paper's own Section 2.2/4.1: 64 PIM modules per rank, 64 MB MRAM per
//! module, ~1.28 TB/s aggregate intra-PIM bandwidth across 2048 modules
//! (~625 MB/s per module), and ~25 GB/s of total CPU↔PIM bandwidth across the
//! whole 2048-module system — which is what makes CPC/IPC "less than 2 % of
//! intra-PIM bandwidth".

use serde::{Deserialize, Serialize};

/// Host-CPU cost-model parameters (one dedicated core, as in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HostConfig {
    /// Sequential DRAM read bandwidth available to the dedicated core, bytes/s.
    pub sequential_bandwidth: f64,
    /// Latency of a random DRAM access that misses the last-level cache, ns.
    pub random_access_latency_ns: f64,
    /// Latency of a last-level-cache hit, ns.
    pub cache_hit_latency_ns: f64,
    /// Last-level cache capacity in bytes (22 MB L3 in the paper's Xeon).
    pub cache_capacity_bytes: u64,
    /// Cache line size in bytes.
    pub cache_line_bytes: u64,
    /// Simple-instruction throughput of the core, instructions/s.
    pub instruction_rate: f64,
}

impl Default for HostConfig {
    fn default() -> Self {
        HostConfig {
            sequential_bandwidth: 12.0e9,
            random_access_latency_ns: 90.0,
            cache_hit_latency_ns: 18.0,
            cache_capacity_bytes: 22 * 1024 * 1024,
            cache_line_bytes: 64,
            instruction_rate: 2.1e9 * 2.0, // 2.1 GHz, ~2 IPC on simple loops
        }
    }
}

/// Full PIM-platform configuration.
///
/// # Examples
///
/// ```
/// use pim_sim::PimConfig;
/// let cfg = PimConfig::upmem_rank();
/// assert_eq!(cfg.num_modules, 64);
/// // System-wide, CPU<->PIM bandwidth is a tiny fraction of aggregate
/// // intra-PIM bandwidth (the paper's "< 2%" figure).
/// assert!(cfg.communication_ratio() < 0.02);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PimConfig {
    /// Number of PIM modules available to the system (a rank = 64 on UPMEM).
    pub num_modules: usize,
    /// Local memory (MRAM) capacity per module, bytes (64 MB on UPMEM).
    pub mram_capacity_bytes: u64,
    /// Streaming MRAM bandwidth available to one module's core, bytes/s.
    pub intra_pim_bandwidth: f64,
    /// Fixed latency of issuing one MRAM transfer from the module core, ns.
    pub mram_access_latency_ns: f64,
    /// Simple-instruction throughput of one PIM core, instructions/s.
    pub pim_instruction_rate: f64,
    /// Total CPU<->PIM (CPC) bandwidth shared by all modules in use, bytes/s.
    pub cpc_bandwidth: f64,
    /// Fixed per-transfer latency of a CPC batch (driver + DMA setup), ns.
    pub cpc_latency_ns: f64,
    /// Cost model of the host CPU core that orchestrates the system.
    pub host: HostConfig,
}

impl PimConfig {
    /// Total CPU↔PIM bandwidth of the full 2048-module system (bytes/s); the
    /// "roughly 25 GB/s" figure the paper quotes against 1.28 TB/s of
    /// aggregate intra-PIM bandwidth (< 2 %).
    pub const SYSTEM_CPC_BANDWIDTH: f64 = 25.0e9;
    /// Number of PIM modules in the full system the paper describes.
    pub const SYSTEM_MODULES: usize = 2048;

    /// Configuration of one UPMEM rank (64 modules), the setup used in the
    /// paper's evaluation alongside a dedicated host core.
    pub fn upmem_rank() -> Self {
        PimConfig {
            num_modules: 64,
            mram_capacity_bytes: 64 * 1024 * 1024,
            // 1.28 TB/s over 2048 modules => 625 MB/s per module.
            intra_pim_bandwidth: 625.0e6,
            mram_access_latency_ns: 600.0,
            // 350 MHz DPU, roughly one simple instruction per cycle.
            pim_instruction_rate: 350.0e6,
            // Rank-level CPU<->DPU DMA bandwidth (PrIM characterisation);
            // using more ranks shares the ~25 GB/s system total.
            cpc_bandwidth: 6.0e9,
            cpc_latency_ns: 2000.0,
            host: HostConfig::default(),
        }
    }

    /// A small configuration for unit tests and doc examples (8 modules).
    pub fn small_test() -> Self {
        PimConfig { num_modules: 8, ..PimConfig::upmem_rank() }
    }

    /// Returns a copy with a different module count. Per-module MRAM bandwidth
    /// is preserved; CPU↔PIM bandwidth scales with the number of ranks in use
    /// but never exceeds the ~25 GB/s system total.
    pub fn with_modules(self, num_modules: usize) -> Self {
        let ranks = (num_modules as f64 / 64.0).max(1.0);
        PimConfig {
            num_modules,
            cpc_bandwidth: (6.0e9 * ranks).min(Self::SYSTEM_CPC_BANDWIDTH),
            ..self
        }
    }

    /// Aggregate streaming bandwidth of all modules combined, bytes/s.
    pub fn aggregate_intra_bandwidth(&self) -> f64 {
        self.intra_pim_bandwidth * self.num_modules as f64
    }

    /// Ratio of the full system's CPU↔PIM bandwidth to its aggregate intra-PIM
    /// bandwidth (25 GB/s against 1.28 TB/s).
    ///
    /// On the real platform this is below 2 %, the imbalance that motivates
    /// locality-preserving partitioning.
    pub fn communication_ratio(&self) -> f64 {
        Self::SYSTEM_CPC_BANDWIDTH / (self.intra_pim_bandwidth * Self::SYSTEM_MODULES as f64)
    }
}

impl Default for PimConfig {
    fn default() -> Self {
        PimConfig::upmem_rank()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upmem_rank_matches_paper_figures() {
        let cfg = PimConfig::upmem_rank();
        assert_eq!(cfg.num_modules, 64);
        assert_eq!(cfg.mram_capacity_bytes, 64 * 1024 * 1024);
        // The CPC/intra ratio must be below the 2% the paper quotes.
        assert!(cfg.communication_ratio() < 0.02, "ratio = {}", cfg.communication_ratio());
    }

    #[test]
    fn with_modules_rescales_cpc_up_to_the_system_cap() {
        let full = PimConfig::upmem_rank().with_modules(2048);
        assert!((full.cpc_bandwidth - PimConfig::SYSTEM_CPC_BANDWIDTH).abs() < 1.0);
        assert_eq!(full.num_modules, 2048);
        let rank = full.with_modules(64);
        assert!(rank.cpc_bandwidth < full.cpc_bandwidth);
        // Fewer modules than a rank still get the rank's DMA bandwidth.
        let tiny = full.with_modules(8);
        assert!((tiny.cpc_bandwidth - 6.0e9).abs() < 1.0);
    }

    #[test]
    fn small_test_config_is_smaller() {
        let cfg = PimConfig::small_test();
        assert_eq!(cfg.num_modules, 8);
        assert_eq!(cfg.mram_capacity_bytes, PimConfig::upmem_rank().mram_capacity_bytes);
    }

    #[test]
    fn default_host_config_is_sane() {
        let host = HostConfig::default();
        assert!(host.sequential_bandwidth > 1e9);
        assert!(host.random_access_latency_ns > host.cache_hit_latency_ns);
        assert_eq!(host.cache_line_bytes, 64);
    }

    #[test]
    fn aggregate_bandwidth_scales_with_modules() {
        let a = PimConfig::upmem_rank();
        let b = a.with_modules(128);
        assert!((b.aggregate_intra_bandwidth() - 2.0 * a.aggregate_intra_bandwidth()).abs() < 1.0);
    }
}
