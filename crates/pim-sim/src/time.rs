//! Simulated time.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A span of simulated time, stored in nanoseconds.
///
/// `SimTime` is the unit every cost-model function returns. It is a simple
/// wrapper over `f64` nanoseconds with saturating-at-zero subtraction and the
/// arithmetic needed for accumulating phase breakdowns.
///
/// # Examples
///
/// ```
/// use pim_sim::SimTime;
/// let a = SimTime::from_micros(2.0);
/// let b = SimTime::from_nanos(500.0);
/// assert_eq!((a + b).as_nanos(), 2500.0);
/// assert!(a.max(b) == a);
/// assert_eq!(SimTime::from_millis(1.0).as_micros(), 1000.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct SimTime(f64);

impl SimTime {
    /// Zero elapsed time.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a time span from nanoseconds.
    pub fn from_nanos(ns: f64) -> Self {
        SimTime(ns.max(0.0))
    }

    /// Creates a time span from microseconds.
    pub fn from_micros(us: f64) -> Self {
        SimTime::from_nanos(us * 1e3)
    }

    /// Creates a time span from milliseconds.
    pub fn from_millis(ms: f64) -> Self {
        SimTime::from_nanos(ms * 1e6)
    }

    /// Creates a time span from seconds.
    pub fn from_secs(s: f64) -> Self {
        SimTime::from_nanos(s * 1e9)
    }

    /// The span in nanoseconds.
    pub fn as_nanos(self) -> f64 {
        self.0
    }

    /// The span in microseconds.
    pub fn as_micros(self) -> f64 {
        self.0 / 1e3
    }

    /// The span in milliseconds.
    pub fn as_millis(self) -> f64 {
        self.0 / 1e6
    }

    /// The span in seconds.
    pub fn as_secs(self) -> f64 {
        self.0 / 1e9
    }

    /// Returns the larger of two spans.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of two spans.
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns `true` if the span is exactly zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    /// Saturating subtraction: never produces a negative span.
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime((self.0 - rhs.0).max(0.0))
    }
}

impl Mul<f64> for SimTime {
    type Output = SimTime;
    fn mul(self, rhs: f64) -> SimTime {
        SimTime::from_nanos(self.0 * rhs)
    }
}

impl Div<f64> for SimTime {
    type Output = SimTime;
    fn div(self, rhs: f64) -> SimTime {
        SimTime::from_nanos(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1e9 {
            write!(f, "{:.3}s", self.as_secs())
        } else if self.0 >= 1e6 {
            write!(f, "{:.3}ms", self.as_millis())
        } else if self.0 >= 1e3 {
            write!(f, "{:.3}us", self.as_micros())
        } else {
            write!(f, "{:.1}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_are_consistent() {
        let t = SimTime::from_secs(1.5);
        assert_eq!(t.as_millis(), 1500.0);
        assert_eq!(t.as_micros(), 1.5e6);
        assert_eq!(t.as_nanos(), 1.5e9);
    }

    #[test]
    fn negative_inputs_clamp_to_zero() {
        assert_eq!(SimTime::from_nanos(-5.0), SimTime::ZERO);
        assert_eq!(SimTime::from_nanos(3.0) - SimTime::from_nanos(10.0), SimTime::ZERO);
    }

    #[test]
    fn arithmetic_works() {
        let a = SimTime::from_nanos(100.0);
        let b = SimTime::from_nanos(50.0);
        assert_eq!((a + b).as_nanos(), 150.0);
        assert_eq!((a - b).as_nanos(), 50.0);
        assert_eq!((a * 2.0).as_nanos(), 200.0);
        assert_eq!((a / 4.0).as_nanos(), 25.0);
        let mut c = a;
        c += b;
        assert_eq!(c.as_nanos(), 150.0);
    }

    #[test]
    fn sum_and_max_min() {
        let spans = [SimTime::from_nanos(1.0), SimTime::from_nanos(2.0), SimTime::from_nanos(3.0)];
        let total: SimTime = spans.iter().copied().sum();
        assert_eq!(total.as_nanos(), 6.0);
        assert_eq!(spans[0].max(spans[2]).as_nanos(), 3.0);
        assert_eq!(spans[0].min(spans[2]).as_nanos(), 1.0);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimTime::from_nanos(12.0).to_string(), "12.0ns");
        assert_eq!(SimTime::from_micros(3.5).to_string(), "3.500us");
        assert_eq!(SimTime::from_millis(7.25).to_string(), "7.250ms");
        assert_eq!(SimTime::from_secs(2.0).to_string(), "2.000s");
    }

    #[test]
    fn zero_detection() {
        assert!(SimTime::ZERO.is_zero());
        assert!(!SimTime::from_nanos(0.1).is_zero());
    }
}
