//! The simulated PIM system: cost-model entry points.

use crate::config::PimConfig;
use crate::module::{MramOverflow, PimModule};
use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// A host CPU plus a set of PIM modules, with cost-model helpers.
///
/// `PimSystem` does not execute user code; the query engines execute their
/// algorithms directly and call these helpers to convert the work they did
/// (bytes touched, lookups performed, items transferred) into simulated time.
/// Keeping the cost model in one place guarantees that Moctopus, PIM-hash and
/// the host baseline are charged with identical rules.
///
/// # Examples
///
/// ```
/// use pim_sim::{PimConfig, PimSystem};
///
/// let sys = PimSystem::new(PimConfig::upmem_rank());
/// // Moving a batch over the shared CPU<->PIM bus is far slower than every
/// // module streaming its share of the same data from local MRAM in parallel.
/// let total_bytes = 8 << 20;
/// let per_module = total_bytes / sys.module_count() as u64;
/// assert!(sys.cpc_transfer_cost(total_bytes) > sys.mram_read_cost(per_module));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PimSystem {
    config: PimConfig,
    modules: Vec<PimModule>,
}

impl PimSystem {
    /// Creates a system with `config.num_modules` idle modules.
    pub fn new(config: PimConfig) -> Self {
        let modules = (0..config.num_modules).map(|i| PimModule::new(i, &config)).collect();
        PimSystem { config, modules }
    }

    /// The platform configuration.
    pub fn config(&self) -> &PimConfig {
        &self.config
    }

    /// Number of PIM modules.
    pub fn module_count(&self) -> usize {
        self.modules.len()
    }

    /// Immutable access to a module's state.
    ///
    /// # Panics
    ///
    /// Panics if `index >= module_count()`.
    pub fn module(&self, index: usize) -> &PimModule {
        &self.modules[index]
    }

    /// Mutable access to a module's state.
    ///
    /// # Panics
    ///
    /// Panics if `index >= module_count()`.
    pub fn module_mut(&mut self, index: usize) -> &mut PimModule {
        &mut self.modules[index]
    }

    /// Reserves `bytes` of MRAM on module `index` (graph data placement).
    ///
    /// # Errors
    ///
    /// Returns [`MramOverflow`] if the module's 64 MB capacity is exceeded.
    pub fn reserve_mram(&mut self, index: usize, bytes: u64) -> Result<(), MramOverflow> {
        self.modules[index].reserve_bytes(bytes)
    }

    // ------------------------------------------------------------------
    // PIM-side costs
    // ------------------------------------------------------------------

    /// Time for one module to stream `bytes` from its MRAM.
    pub fn mram_read_cost(&self, bytes: u64) -> SimTime {
        if bytes == 0 {
            return SimTime::ZERO;
        }
        let transfer = bytes as f64 / self.config.intra_pim_bandwidth * 1e9;
        SimTime::from_nanos(self.config.mram_access_latency_ns + transfer)
    }

    /// Time for one module to write `bytes` to its MRAM.
    pub fn mram_write_cost(&self, bytes: u64) -> SimTime {
        // Write bandwidth on UPMEM is close to read bandwidth; reuse the model.
        self.mram_read_cost(bytes)
    }

    /// Time for one module to execute `count` simple instructions (hash
    /// probes, comparisons, pointer arithmetic) from its working memory.
    pub fn pim_instructions_cost(&self, count: u64) -> SimTime {
        SimTime::from_nanos(count as f64 / self.config.pim_instruction_rate * 1e9)
    }

    /// Time for one module to perform a hash-map lookup over a row of
    /// `row_bytes` bytes: one MRAM access for the bucket plus a streaming read
    /// of the row data, plus the probe instructions.
    pub fn pim_hash_lookup_cost(&self, row_bytes: u64) -> SimTime {
        self.mram_read_cost(row_bytes.max(8)) + self.pim_instructions_cost(40)
    }

    /// Completes a parallel step: every module `i` is charged
    /// `per_module[i]`, and the step's latency is the slowest module.
    ///
    /// # Panics
    ///
    /// Panics if `per_module.len() != module_count()`.
    pub fn parallel_step(&mut self, per_module: &[SimTime]) -> SimTime {
        assert_eq!(per_module.len(), self.modules.len(), "one time entry per module is required");
        let mut max = SimTime::ZERO;
        for (module, &t) in self.modules.iter_mut().zip(per_module) {
            if !t.is_zero() {
                module.add_busy_time(t);
            }
            max = max.max(t);
        }
        max
    }

    // ------------------------------------------------------------------
    // Communication costs
    // ------------------------------------------------------------------

    /// Time to move `bytes` across the CPU↔PIM bus in one direction.
    pub fn cpc_transfer_cost(&self, bytes: u64) -> SimTime {
        if bytes == 0 {
            return SimTime::ZERO;
        }
        let transfer = bytes as f64 / self.config.cpc_bandwidth * 1e9;
        SimTime::from_nanos(self.config.cpc_latency_ns + transfer)
    }

    /// Time to move `bytes` between two PIM modules.
    ///
    /// UPMEM has no direct module-to-module link: the CPU reads the data out
    /// of the source module and writes it into the destination module, so the
    /// bytes cross the narrow bus twice.
    pub fn ipc_transfer_cost(&self, bytes: u64) -> SimTime {
        if bytes == 0 {
            return SimTime::ZERO;
        }
        self.cpc_transfer_cost(bytes) + self.cpc_transfer_cost(bytes)
    }

    // ------------------------------------------------------------------
    // Host-side costs
    // ------------------------------------------------------------------

    /// Time for the host core to stream `bytes` sequentially from DRAM,
    /// assuming the data misses the last-level cache (graph data is far larger
    /// than the cache in the paper's workloads).
    pub fn host_sequential_read_cost(&self, bytes: u64) -> SimTime {
        if bytes == 0 {
            return SimTime::ZERO;
        }
        SimTime::from_nanos(bytes as f64 / self.config.host.sequential_bandwidth * 1e9)
    }

    /// Time for the host core to perform `count` random accesses, each
    /// touching one cache line. `resident_bytes` is the size of the structure
    /// being accessed; accesses to structures that fit in the last-level cache
    /// are charged the cache-hit latency instead of a DRAM miss.
    pub fn host_random_access_cost(&self, count: u64, resident_bytes: u64) -> SimTime {
        if count == 0 {
            return SimTime::ZERO;
        }
        let per_access = if resident_bytes <= self.config.host.cache_capacity_bytes {
            self.config.host.cache_hit_latency_ns
        } else {
            // Partial cache residency: interpolate between hit and miss cost.
            let fit = self.config.host.cache_capacity_bytes as f64 / resident_bytes as f64;
            fit * self.config.host.cache_hit_latency_ns
                + (1.0 - fit) * self.config.host.random_access_latency_ns
        };
        SimTime::from_nanos(count as f64 * per_access)
    }

    /// Time for the host core to execute `count` simple instructions.
    pub fn host_instructions_cost(&self, count: u64) -> SimTime {
        SimTime::from_nanos(count as f64 / self.config.host.instruction_rate * 1e9)
    }

    // ------------------------------------------------------------------
    // Load-balance reporting
    // ------------------------------------------------------------------

    /// Busy time of every module, in module order.
    pub fn busy_times(&self) -> Vec<SimTime> {
        self.modules.iter().map(|m| m.busy_time()).collect()
    }

    /// Load-imbalance factor: max module busy time divided by the mean.
    ///
    /// Returns 1.0 when all modules are idle.
    pub fn load_imbalance(&self) -> f64 {
        let times: Vec<f64> = self.modules.iter().map(|m| m.busy_time().as_nanos()).collect();
        let max = times.iter().cloned().fold(0.0, f64::max);
        let mean = times.iter().sum::<f64>() / times.len().max(1) as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }

    /// Resets the busy-time counters of every module.
    pub fn reset_busy_times(&mut self) {
        for m in &mut self.modules {
            m.reset_busy_time();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> PimSystem {
        PimSystem::new(PimConfig::small_test())
    }

    #[test]
    fn mram_read_cost_scales_with_bytes() {
        let s = sys();
        let small = s.mram_read_cost(64);
        let large = s.mram_read_cost(64 * 1024);
        assert!(large > small);
        assert_eq!(s.mram_read_cost(0), SimTime::ZERO);
    }

    #[test]
    fn cpc_is_much_slower_than_aggregate_mram() {
        // The CPU<->PIM bus is shared by all modules of a rank, so moving N
        // bytes over it is far slower than every module streaming its N/P
        // share of the same data from local MRAM in parallel.
        let s = PimSystem::new(PimConfig::upmem_rank());
        let total_bytes: u64 = 8 << 20;
        let per_module = total_bytes / s.module_count() as u64;
        let parallel_local = s.mram_read_cost(per_module);
        let bus = s.cpc_transfer_cost(total_bytes);
        assert!(bus > parallel_local * 2.0);
    }

    #[test]
    fn ipc_costs_two_bus_crossings() {
        let s = sys();
        let one_way = s.cpc_transfer_cost(1024);
        let ipc = s.ipc_transfer_cost(1024);
        assert!((ipc.as_nanos() - 2.0 * one_way.as_nanos()).abs() < 1e-6);
        assert_eq!(s.ipc_transfer_cost(0), SimTime::ZERO);
    }

    #[test]
    fn parallel_step_latency_is_the_straggler() {
        let mut s = sys();
        let mut times = vec![SimTime::ZERO; s.module_count()];
        times[2] = SimTime::from_micros(10.0);
        times[5] = SimTime::from_micros(3.0);
        let step = s.parallel_step(&times);
        assert_eq!(step.as_micros(), 10.0);
        assert_eq!(s.module(2).busy_time().as_micros(), 10.0);
        assert_eq!(s.module(0).busy_time(), SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "one time entry per module")]
    fn parallel_step_requires_full_vector() {
        let mut s = sys();
        let _ = s.parallel_step(&[SimTime::ZERO]);
    }

    #[test]
    fn load_imbalance_reflects_skew() {
        let mut s = sys();
        assert_eq!(s.load_imbalance(), 1.0);
        let mut even = vec![SimTime::from_micros(1.0); s.module_count()];
        s.parallel_step(&even);
        assert!((s.load_imbalance() - 1.0).abs() < 1e-9);
        even[0] = SimTime::from_micros(100.0);
        s.parallel_step(&even);
        assert!(s.load_imbalance() > 2.0);
        s.reset_busy_times();
        assert_eq!(s.load_imbalance(), 1.0);
    }

    #[test]
    fn host_random_access_respects_cache_capacity() {
        let s = sys();
        let in_cache = s.host_random_access_cost(1000, 1 << 20);
        let out_of_cache = s.host_random_access_cost(1000, 1 << 30);
        assert!(out_of_cache > in_cache);
        assert_eq!(s.host_random_access_cost(0, 1 << 30), SimTime::ZERO);
    }

    #[test]
    fn host_sequential_read_is_fast() {
        let s = sys();
        let bytes = 1 << 20;
        assert!(
            s.host_sequential_read_cost(bytes) < s.host_random_access_cost(bytes / 64, 1 << 30)
        );
    }

    #[test]
    fn mram_reservation_propagates_overflow() {
        let mut s = sys();
        let cap = s.config().mram_capacity_bytes;
        s.reserve_mram(0, cap).unwrap();
        assert!(s.reserve_mram(0, 1).is_err());
        assert!(s.reserve_mram(1, 1).is_ok());
        assert_eq!(s.module(0).mram_used_bytes(), cap);
    }

    #[test]
    fn instruction_costs_scale_linearly() {
        let s = sys();
        let one = s.pim_instructions_cost(1000);
        let ten = s.pim_instructions_cost(10_000);
        assert!((ten.as_nanos() - 10.0 * one.as_nanos()).abs() < 1e-6);
        let h1 = s.host_instructions_cost(1000);
        assert!(h1 < one, "host core is faster than a PIM core");
    }

    #[test]
    fn hash_lookup_includes_latency_floor() {
        let s = sys();
        let cost = s.pim_hash_lookup_cost(0);
        assert!(cost.as_nanos() >= s.config().mram_access_latency_ns);
    }
}
