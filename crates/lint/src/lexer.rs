//! A minimal hand-rolled Rust lexer.
//!
//! The analyzer runs in an offline container, so it cannot depend on `syn`
//! or `rustc` internals. This lexer produces just enough structure for
//! line-aware contract rules: identifier/punctuation/literal tokens with
//! line numbers, plus the comment stream (rules never match inside comments
//! or string literals, and doc-comment code — doctests — is invisible to
//! them by construction).
//!
//! It is deliberately forgiving: unterminated constructs at end of file are
//! closed implicitly rather than reported, because the rule engine only ever
//! sees sources that `rustc` already accepts.

/// The coarse token classes the rule engine distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`for`, `fn`, `HashMap`, …).
    Ident,
    /// Punctuation; multi-character operators (`::`, `+=`, …) are merged.
    Punct,
    /// A string literal (`"…"`, `r#"…"#`, `b"…"`); `text` holds the raw
    /// content between the quotes, escapes unprocessed.
    Str,
    /// A character or byte literal; `text` holds the raw content.
    Char,
    /// A numeric literal (integers, floats, suffixed forms).
    Num,
    /// A lifetime or loop label (`'a`, `'outer`), without the quote.
    Lifetime,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token class.
    pub kind: TokKind,
    /// Token text (see [`TokKind`] for what is stored per class).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

/// One comment (line or block) with its 1-based starting line.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Comment body without the `//` / `/*` markers.
    pub text: String,
    /// `true` for doc comments (`///`, `//!`, `/**`, `/*!`); exemption
    /// directives inside doc prose are ignored.
    pub doc: bool,
    /// `true` when at least one token precedes the comment on its line
    /// (a trailing comment annotates its own line, a standalone one the
    /// next code line).
    pub trailing: bool,
}

/// The output of [`lex`]: the token stream plus the comment stream.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All tokens in source order.
    pub tokens: Vec<Token>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

/// Multi-character operators merged into single [`TokKind::Punct`] tokens.
const MULTI_PUNCT: &[&str] = &[
    "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=", "*=", "/=", "%=", "^=", "|=",
    "&=", "<<", ">>", "..=", "..",
];

struct Cursor {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    line_has_token: bool,
}

impl Cursor {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
                self.line_has_token = false;
            }
        }
        c
    }
}

/// Lexes `src` into tokens and comments.
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor { chars: src.chars().collect(), pos: 0, line: 1, line_has_token: false };
    let mut out = Lexed::default();

    while let Some(c) = cur.peek(0) {
        let line = cur.line;
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                cur.bump();
            }
            '/' if cur.peek(1) == Some('/') => lex_line_comment(&mut cur, &mut out, line),
            '/' if cur.peek(1) == Some('*') => lex_block_comment(&mut cur, &mut out, line),
            '"' => lex_string(&mut cur, &mut out, line),
            'r' | 'b' if starts_raw_or_byte(&cur) => lex_raw_or_byte(&mut cur, &mut out, line),
            '\'' => lex_quote(&mut cur, &mut out, line),
            c if c.is_ascii_digit() => lex_number(&mut cur, &mut out, line),
            c if c == '_' || c.is_alphabetic() => lex_ident(&mut cur, &mut out, line),
            _ => lex_punct(&mut cur, &mut out, line),
        }
    }
    out
}

fn push(cur: &mut Cursor, out: &mut Lexed, kind: TokKind, text: String, line: u32) {
    cur.line_has_token = true;
    out.tokens.push(Token { kind, text, line });
}

fn lex_line_comment(cur: &mut Cursor, out: &mut Lexed, line: u32) {
    let trailing = cur.line_has_token;
    cur.bump();
    cur.bump();
    // `///` and `//!` are doc comments; `////` (rule separators) is not.
    let doc = matches!(cur.peek(0), Some('/')) && cur.peek(1) != Some('/')
        || matches!(cur.peek(0), Some('!'));
    let mut text = String::new();
    while let Some(c) = cur.peek(0) {
        if c == '\n' {
            break;
        }
        text.push(c);
        cur.bump();
    }
    out.comments.push(Comment { line, text, doc, trailing });
}

fn lex_block_comment(cur: &mut Cursor, out: &mut Lexed, line: u32) {
    let trailing = cur.line_has_token;
    cur.bump();
    cur.bump();
    let doc = matches!(cur.peek(0), Some('*')) && cur.peek(1) != Some('*')
        || matches!(cur.peek(0), Some('!'));
    let mut depth = 1usize;
    let mut text = String::new();
    while depth > 0 {
        match (cur.peek(0), cur.peek(1)) {
            (Some('/'), Some('*')) => {
                depth += 1;
                cur.bump();
                cur.bump();
                text.push_str("/*");
            }
            (Some('*'), Some('/')) => {
                depth -= 1;
                cur.bump();
                cur.bump();
                if depth > 0 {
                    text.push_str("*/");
                }
            }
            (Some(c), _) => {
                text.push(c);
                cur.bump();
            }
            (None, _) => break,
        }
    }
    out.comments.push(Comment { line, text, doc, trailing });
}

fn lex_string(cur: &mut Cursor, out: &mut Lexed, line: u32) {
    cur.bump(); // opening quote
    let mut text = String::new();
    while let Some(c) = cur.peek(0) {
        match c {
            '\\' => {
                text.push(c);
                cur.bump();
                if let Some(esc) = cur.bump() {
                    text.push(esc);
                }
            }
            '"' => {
                cur.bump();
                break;
            }
            _ => {
                text.push(c);
                cur.bump();
            }
        }
    }
    push(cur, out, TokKind::Str, text, line);
}

/// Does the cursor sit on `r"`, `r#`, `b"`, `b'`, `br"`, or `br#`?
fn starts_raw_or_byte(cur: &Cursor) -> bool {
    matches!(
        (cur.peek(0), cur.peek(1), cur.peek(2)),
        (Some('r'), Some('"' | '#'), _)
            | (Some('b'), Some('"' | '\''), _)
            | (Some('b'), Some('r'), Some('"' | '#'))
    )
}

fn lex_raw_or_byte(cur: &mut Cursor, out: &mut Lexed, line: u32) {
    let mut raw = false;
    if cur.peek(0) == Some('b') {
        cur.bump();
    }
    if cur.peek(0) == Some('r') {
        raw = true;
        cur.bump();
    }
    if cur.peek(0) == Some('\'') {
        // byte char literal b'x'
        lex_quote(cur, out, line);
        return;
    }
    if !raw {
        lex_string(cur, out, line);
        return;
    }
    let mut hashes = 0usize;
    while cur.peek(0) == Some('#') {
        hashes += 1;
        cur.bump();
    }
    cur.bump(); // opening quote
    let closer: String = std::iter::once('"').chain(std::iter::repeat_n('#', hashes)).collect();
    let mut text = String::new();
    'outer: while let Some(c) = cur.peek(0) {
        if c == '"' {
            let mut matched = true;
            for (i, want) in closer.chars().enumerate() {
                if cur.peek(i) != Some(want) {
                    matched = false;
                    break;
                }
            }
            if matched {
                for _ in 0..closer.len() {
                    cur.bump();
                }
                break 'outer;
            }
        }
        text.push(c);
        cur.bump();
    }
    push(cur, out, TokKind::Str, text, line);
}

/// Lexes a `'`-introduced token: a char literal or a lifetime/label.
fn lex_quote(cur: &mut Cursor, out: &mut Lexed, line: u32) {
    // A lifetime is `'` + ident not closed by another `'` (`'a`, `'outer`);
    // anything else (`'x'`, `'\n'`, `'\u{7f}'`) is a char literal.
    let second = cur.peek(1);
    let is_lifetime =
        matches!(second, Some(c) if c == '_' || c.is_alphabetic()) && cur.peek(2) != Some('\'');
    cur.bump(); // the quote
    if is_lifetime {
        let mut text = String::new();
        while let Some(c) = cur.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                text.push(c);
                cur.bump();
            } else {
                break;
            }
        }
        push(cur, out, TokKind::Lifetime, text, line);
        return;
    }
    let mut text = String::new();
    while let Some(c) = cur.peek(0) {
        match c {
            '\\' => {
                text.push(c);
                cur.bump();
                if let Some(esc) = cur.bump() {
                    text.push(esc);
                }
            }
            '\'' => {
                cur.bump();
                break;
            }
            _ => {
                text.push(c);
                cur.bump();
            }
        }
    }
    push(cur, out, TokKind::Char, text, line);
}

fn lex_number(cur: &mut Cursor, out: &mut Lexed, line: u32) {
    let mut text = String::new();
    while let Some(c) = cur.peek(0) {
        if c.is_ascii_alphanumeric() || c == '_' {
            text.push(c);
            cur.bump();
        } else if c == '.' {
            // `1.5` continues the number; `0..8` does not.
            match cur.peek(1) {
                Some(d) if d.is_ascii_digit() => {
                    text.push(c);
                    cur.bump();
                }
                _ => break,
            }
        } else {
            break;
        }
    }
    push(cur, out, TokKind::Num, text, line);
}

fn lex_ident(cur: &mut Cursor, out: &mut Lexed, line: u32) {
    let mut text = String::new();
    while let Some(c) = cur.peek(0) {
        if c == '_' || c.is_alphanumeric() {
            text.push(c);
            cur.bump();
        } else {
            break;
        }
    }
    push(cur, out, TokKind::Ident, text, line);
}

fn lex_punct(cur: &mut Cursor, out: &mut Lexed, line: u32) {
    for op in MULTI_PUNCT {
        let mut matched = true;
        for (i, want) in op.chars().enumerate() {
            if cur.peek(i) != Some(want) {
                matched = false;
                break;
            }
        }
        if matched {
            for _ in 0..op.len() {
                cur.bump();
            }
            push(cur, out, TokKind::Punct, (*op).to_string(), line);
            return;
        }
    }
    if let Some(c) = cur.bump() {
        push(cur, out, TokKind::Punct, c.to_string(), line);
    }
}

/// Returns the index of the token closing the delimiter opened at `open`,
/// or `None` if the stream ends first. `tokens[open]` must be `(`, `[`, or
/// `{`; only the matching delimiter kind is counted, so interleaved other
/// delimiters cannot unbalance the search.
pub fn match_delim(tokens: &[Token], open: usize) -> Option<usize> {
    let (open_text, close_text) = match tokens.get(open)?.text.as_str() {
        "(" => ("(", ")"),
        "[" => ("[", "]"),
        "{" => ("{", "}"),
        _ => return None,
    };
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(open) {
        if t.kind == TokKind::Punct {
            if t.text == open_text {
                depth += 1;
            } else if t.text == close_text {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().filter(|t| t.kind == TokKind::Ident).map(|t| t.text).collect()
    }

    #[test]
    fn comments_and_strings_hide_code() {
        let lexed = lex("// HashMap\nlet s = \"HashMap\"; /* HashSet */ let x = 1;");
        let ids = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect::<Vec<_>>();
        assert_eq!(ids, ["let", "s", "let", "x"]);
        assert_eq!(lexed.comments.len(), 2);
        assert!(!lexed.comments[0].trailing);
        assert!(lexed.comments[1].trailing);
    }

    #[test]
    fn doc_comments_are_marked() {
        let lexed = lex("/// docs with `map.iter()`\n//! inner\n// plain\n//// separator\n");
        let doc: Vec<bool> = lexed.comments.iter().map(|c| c.doc).collect();
        assert_eq!(doc, [true, true, false, false]);
    }

    #[test]
    fn raw_strings_and_chars() {
        let lexed = lex(r##"let s = r#"quote " inside"#; let c = '\n'; let l: &'static str = s;"##);
        let strs: Vec<_> =
            lexed.tokens.iter().filter(|t| t.kind == TokKind::Str).map(|t| &t.text).collect();
        assert_eq!(strs, [r#"quote " inside"#]);
        assert!(lexed.tokens.iter().any(|t| t.kind == TokKind::Char && t.text == "\\n"));
        assert!(lexed.tokens.iter().any(|t| t.kind == TokKind::Lifetime && t.text == "static"));
    }

    #[test]
    fn multi_punct_is_merged() {
        let puncts: Vec<String> = lex("a += b; c :: d; e..f; g..=h;")
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Punct)
            .map(|t| t.text)
            .collect();
        assert_eq!(puncts, ["+=", ";", "::", ";", "..", ";", "..=", ";"]);
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        let lexed = lex("for i in 0..8 { let f = 1.5; }");
        assert!(lexed.tokens.iter().any(|t| t.kind == TokKind::Num && t.text == "0"));
        assert!(lexed.tokens.iter().any(|t| t.kind == TokKind::Num && t.text == "8"));
        assert!(lexed.tokens.iter().any(|t| t.kind == TokKind::Num && t.text == "1.5"));
    }

    #[test]
    fn lines_are_tracked() {
        let lexed = lex("a\nb\n\nc");
        let lines: Vec<u32> = lexed.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, [1, 2, 4]);
        assert_eq!(idents("x"), ["x"]);
    }

    #[test]
    fn match_delim_nests() {
        let lexed = lex("f(a, (b), {c})");
        let close = match_delim(&lexed.tokens, 1).expect("balanced");
        assert_eq!(lexed.tokens[close].text, ")");
        assert_eq!(close, lexed.tokens.len() - 1);
    }
}
