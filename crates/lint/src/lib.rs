//! `moctopus-lint` — a workspace static analyzer that mechanically enforces
//! the Moctopus determinism and durability contracts.
//!
//! Every claim this reproduction makes rests on byte-identical determinism:
//! across threads (CONCURRENCY.md), shards (SERVING.md §7), and
//! crash/recovery (STORAGE.md). The rules protecting those claims used to
//! live only as prose checklists; this crate turns them into named,
//! suppressible diagnostics that gate CI alongside clippy. See ANALYSIS.md
//! for the full rule catalogue and the rationale per rule.
//!
//! The analyzer is dependency-free by design (the build container is
//! offline): a hand-rolled lexer ([`lexer`]) feeds a line-aware rule engine
//! ([`engine`]) — no `syn`, no `rustc` internals. Rules therefore reason
//! about *tokens and names*, not types; they are deliberately conservative,
//! and every finding is either fixed or exempted in place with
//!
//! ```text
//! // moctopus-lint: allow(<rule>, reason = "why this site is sound")
//! ```
//!
//! where the reason is mandatory — an exemption without one is itself a
//! finding, as is an exemption that suppresses nothing.
//!
//! # The rules
//!
//! | id | contract |
//! |----|----------|
//! | D1 `hash-iter-order` | no ordered iteration over `std` hash collections |
//! | D2 `wall-clock-in-sim` | wall clocks/entropy only in `crates/bench` |
//! | D3 `float-accum-order` | `run_with` closures fold into per-worker state |
//! | D4 `panic-in-lib` | library code returns errors instead of panicking |
//! | D5 `fsync-before-rename` | graph-store publishes via tmp + fsync + rename |
//! | D6 `stdout-thread-leak` | thread/shard counts never reach stdout |
//!
//! # Example
//!
//! ```
//! use moctopus_lint::{classify, lint_file_with_meta};
//!
//! let meta = classify("crates/core/src/demo.rs").expect("a lintable path");
//! let findings = lint_file_with_meta(
//!     meta,
//!     "fn f(m: std::collections::HashMap<u32, u32>) -> Vec<u32> { m.values().copied().collect() }",
//! );
//! assert_eq!(findings.len(), 1);
//! assert_eq!(findings[0].rule, "hash-iter-order");
//! ```

pub mod diag;
pub mod engine;
pub mod lexer;
pub mod rules;

pub use diag::{Finding, Report, BAD_EXEMPTION, UNUSED_EXEMPTION};
pub use engine::{
    classify, find_workspace_root, lint_file_with_meta, lint_workspace, FileClass, FileMeta,
};
pub use rules::{all_rules, is_known_rule, Rule};
