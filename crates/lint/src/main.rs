//! The `moctopus-lint` CLI.
//!
//! ```text
//! cargo run -p moctopus-lint -- --workspace      # scan the whole workspace
//! cargo run -p moctopus-lint -- --list-rules     # print the rule catalogue
//! cargo run -p moctopus-lint -- crates/core      # scan a subtree
//! ```
//!
//! Exits 0 when the scan is clean, 1 on findings, 2 on usage/I/O errors.
//! Output is deterministic: findings sort by `(path, line, rule)`.

use std::path::PathBuf;
use std::process::ExitCode;

use moctopus_lint::{all_rules, classify, find_workspace_root, lint_file_with_meta, Report};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<String> = Vec::new();
    let mut root_override: Option<PathBuf> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--workspace" => {}
            "--list-rules" => {
                for rule in all_rules() {
                    println!("{:<20} {}", rule.id(), rule.summary());
                }
                return ExitCode::SUCCESS;
            }
            "--root" => match iter.next() {
                Some(dir) => root_override = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("moctopus-lint: --root needs a directory");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "usage: moctopus-lint [--workspace] [--root DIR] [--list-rules] [PATH...]"
                );
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with("--") => {
                eprintln!("moctopus-lint: unknown flag `{flag}`");
                return ExitCode::from(2);
            }
            path => paths.push(path.to_string()),
        }
    }

    let root = match root_override
        .or_else(|| std::env::current_dir().ok().and_then(|cwd| find_workspace_root(&cwd)))
    {
        Some(root) => root,
        None => {
            eprintln!("moctopus-lint: no workspace root found (try --root)");
            return ExitCode::from(2);
        }
    };

    let report = if paths.is_empty() {
        match moctopus_lint::lint_workspace(&root) {
            Ok(report) => report,
            Err(e) => {
                eprintln!("moctopus-lint: scan failed: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        match lint_paths(&root, &paths) {
            Ok(report) => report,
            Err(e) => {
                eprintln!("moctopus-lint: scan failed: {e}");
                return ExitCode::from(2);
            }
        }
    };

    print!("{}", report.render());
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Lints explicitly named files/subtrees, classified relative to `root`.
fn lint_paths(root: &std::path::Path, paths: &[String]) -> std::io::Result<Report> {
    let mut files: Vec<PathBuf> = Vec::new();
    for p in paths {
        let abs = root.join(p);
        if abs.is_dir() {
            collect(&abs, &mut files)?;
        } else {
            files.push(abs);
        }
    }
    files.sort();
    let mut report = Report::default();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let Some(meta) = classify(&rel) else {
            eprintln!("moctopus-lint: skipping `{rel}` (outside the analyzed tree)");
            continue;
        };
        let text = std::fs::read_to_string(&path)?;
        report.files_scanned += 1;
        report.findings.extend(lint_file_with_meta(meta, &text));
    }
    report.sort();
    Ok(report)
}

fn collect(dir: &std::path::Path, files: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let skip = ["target", "third_party", "fixtures", ".git", ".github", ".claude"];
    let mut entries: Vec<PathBuf> =
        std::fs::read_dir(dir)?.map(|e| e.map(|e| e.path())).collect::<std::io::Result<_>>()?;
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if !skip.contains(&name) {
                collect(&path, files)?;
            }
        } else if name.ends_with(".rs") {
            files.push(path);
        }
    }
    Ok(())
}
