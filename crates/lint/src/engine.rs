//! The line-aware rule engine: file classification, test-region detection,
//! exemption directives, and workspace walking.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::diag::{Finding, Report, BAD_EXEMPTION, UNUSED_EXEMPTION};
use crate::lexer::{lex, match_delim, Lexed, TokKind};
use crate::rules::{all_rules, RawFinding};

/// Where a file sits in the workspace; rules scope themselves by class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// Library code of a member crate (`crates/X/src/**`, excluding `bin/`).
    Lib,
    /// Binary code of a member crate (`crates/X/src/bin/**`).
    Bin,
    /// Criterion bench harnesses (`crates/X/benches/**`).
    Bench,
    /// Workspace examples (`examples/**`).
    Example,
    /// Integration tests (`tests/**`, root or per crate).
    Test,
    /// The root façade library (`src/**`).
    RootLib,
}

/// Identity of a file under analysis.
#[derive(Debug, Clone)]
pub struct FileMeta {
    /// Path relative to the workspace root, `/`-separated.
    pub rel_path: String,
    /// Directory name of the owning crate (`core`, `graph-store`, …);
    /// empty for root-package files.
    pub crate_name: String,
    /// File class.
    pub class: FileClass,
}

/// A lexed source file plus the derived line facts rules consume.
pub struct SourceFile {
    /// Identity of the file.
    pub meta: FileMeta,
    /// Token and comment streams.
    pub lexed: Lexed,
    /// `test_lines[line]` is `true` when the 1-based line sits inside a
    /// `#[test]` / `#[cfg(test)]` item; findings there are dropped.
    test_lines: Vec<bool>,
}

impl SourceFile {
    /// Is the 1-based `line` inside a test item?
    pub fn in_test(&self, line: u32) -> bool {
        self.test_lines.get(line as usize).copied().unwrap_or(false)
    }
}

/// One parsed `// moctopus-lint: allow(rule, reason = "…")` directive.
struct Allow {
    rule: String,
    /// Inclusive line range the directive covers: its own line only when
    /// trailing, or the whole statement that follows when standalone (so
    /// rustfmt-split method chains stay covered).
    covers: (u32, u32),
    line: u32,
    used: bool,
}

/// Classifies `rel_path` (relative to the workspace root), or `None` when
/// the file is outside the analyzed tree.
pub fn classify(rel_path: &str) -> Option<FileMeta> {
    let parts: Vec<&str> = rel_path.split('/').collect();
    let meta = |crate_name: &str, class| {
        Some(FileMeta { rel_path: rel_path.to_string(), crate_name: crate_name.to_string(), class })
    };
    match parts.as_slice() {
        ["crates", c, "src", "bin", ..] => meta(c, FileClass::Bin),
        ["crates", c, "src", ..] => meta(c, FileClass::Lib),
        ["crates", c, "benches", ..] => meta(c, FileClass::Bench),
        ["crates", c, "tests", ..] => meta(c, FileClass::Test),
        ["src", ..] => meta("", FileClass::RootLib),
        ["examples", ..] => meta("", FileClass::Example),
        ["tests", ..] => meta("", FileClass::Test),
        _ => None,
    }
}

/// Marks the lines of every item carrying a `test`-bearing attribute
/// (`#[test]`, `#[cfg(test)]`, `#[cfg(all(test, …))]` — but not
/// `#[cfg(not(test))]`).
fn mark_test_lines(lexed: &Lexed, n_lines: usize) -> Vec<bool> {
    let mut marks = vec![false; n_lines + 2];
    let toks = &lexed.tokens;
    let mut i = 0usize;
    while i < toks.len() {
        let is_attr = toks[i].kind == TokKind::Punct
            && toks[i].text == "#"
            && toks.get(i + 1).is_some_and(|t| t.text == "[");
        if !is_attr {
            i += 1;
            continue;
        }
        let Some(close) = match_delim(toks, i + 1) else { break };
        let attr = &toks[i + 2..close];
        let has_test = attr.iter().any(|t| t.kind == TokKind::Ident && t.text == "test");
        let has_not = attr.iter().any(|t| t.kind == TokKind::Ident && t.text == "not");
        i = close + 1;
        if !has_test || has_not {
            continue;
        }
        // Find the item body: the next `{` before any top-level `;`.
        let mut j = i;
        while j < toks.len() {
            let t = &toks[j];
            if t.kind == TokKind::Punct && t.text == ";" {
                break;
            }
            if t.kind == TokKind::Punct && t.text == "{" {
                if let Some(end) = match_delim(toks, j) {
                    let (from, to) = (toks[j].line as usize, toks[end].line as usize);
                    for mark in marks.iter_mut().take(to.min(n_lines) + 1).skip(from) {
                        *mark = true;
                    }
                    i = end + 1;
                }
                break;
            }
            j += 1;
        }
    }
    marks
}

/// Parses exemption directives out of the comment stream. Malformed
/// directives become [`BAD_EXEMPTION`] findings immediately.
fn parse_allows(file: &SourceFile, bad: &mut Vec<Finding>) -> Vec<Allow> {
    const MARKER: &str = "moctopus-lint:";
    let mut allows = Vec::new();
    for c in &file.lexed.comments {
        if c.doc {
            continue;
        }
        let Some(at) = c.text.find(MARKER) else { continue };
        let body = c.text[at + MARKER.len()..].trim();
        let mut bad_directive = |msg: String| {
            bad.push(Finding {
                path: file.meta.rel_path.clone(),
                line: c.line,
                rule: BAD_EXEMPTION,
                message: msg,
                hint: "write: // moctopus-lint: allow(<rule>, reason = \"why this is sound\")"
                    .to_string(),
            });
        };
        let Some(inner) = body.strip_prefix("allow(").and_then(|r| r.strip_suffix(')')) else {
            bad_directive(format!("unrecognized directive `{body}`"));
            continue;
        };
        let (rule, rest) = match inner.split_once(',') {
            Some((r, rest)) => (r.trim(), Some(rest.trim())),
            None => (inner.trim(), None),
        };
        if !crate::rules::is_known_rule(rule) {
            bad_directive(format!("unknown rule `{rule}` in exemption"));
            continue;
        }
        let reason = rest
            .and_then(|r| r.strip_prefix("reason"))
            .map(str::trim_start)
            .and_then(|r| r.strip_prefix('='))
            .map(str::trim)
            .and_then(|r| r.strip_prefix('"'))
            .and_then(|r| r.strip_suffix('"'))
            .map(str::trim);
        match reason {
            Some(r) if !r.is_empty() => {}
            Some(_) => {
                bad_directive(format!("exemption for `{rule}` has an empty reason"));
                continue;
            }
            None => {
                bad_directive(format!("exemption for `{rule}` is missing its mandatory reason"));
                continue;
            }
        }
        let covers = if c.trailing {
            (c.line, c.line)
        } else {
            // A standalone directive annotates the statement that follows:
            // from the next code line through the token that ends it (`;` or
            // `,` at the statement's own depth, or the `{` opening its body).
            (c.line, statement_end(&file.lexed, c.line))
        };
        allows.push(Allow { rule: rule.to_string(), covers, line: c.line, used: false });
    }
    allows
}

/// Returns the last line of the statement starting on the first code line
/// after `from`: scanning stops at a `;` or `,` at the statement's own
/// nesting depth, at a `{` opening a body, or when the enclosing delimiter
/// closes. Falls back to `from` when no code follows.
fn statement_end(lexed: &Lexed, from: u32) -> u32 {
    let toks = &lexed.tokens;
    let Some(start) = toks.iter().position(|t| t.line > from) else { return from };
    let mut depth = 0i32;
    let mut last_line = toks[start].line;
    for t in &toks[start..] {
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth < 0 {
                        return last_line;
                    }
                }
                "{" => {
                    if depth == 0 {
                        return t.line;
                    }
                    depth += 1;
                }
                ";" | "," if depth == 0 => return t.line,
                _ => {}
            }
        }
        last_line = t.line;
    }
    last_line
}

/// Lints one in-memory source file under an explicit identity. This is the
/// entry point the fixture tests drive; [`lint_workspace`] funnels here too.
pub fn lint_file_with_meta(meta: FileMeta, text: &str) -> Vec<Finding> {
    let n_lines = text.lines().count();
    let lexed = lex(text);
    let test_lines = mark_test_lines(&lexed, n_lines);
    let file = SourceFile { meta, lexed, test_lines };

    let mut findings = Vec::new();
    let mut allows = parse_allows(&file, &mut findings);

    for rule in all_rules() {
        if !rule.applies(&file.meta) {
            continue;
        }
        let mut raw: Vec<RawFinding> = Vec::new();
        rule.check(&file, &mut raw);
        'finding: for r in raw {
            if file.in_test(r.line) {
                continue;
            }
            for a in allows.iter_mut() {
                if a.rule == rule.id() && a.covers.0 <= r.line && r.line <= a.covers.1 {
                    a.used = true;
                    continue 'finding;
                }
            }
            findings.push(Finding {
                path: file.meta.rel_path.clone(),
                line: r.line,
                rule: rule.id(),
                message: r.message,
                hint: r.hint,
            });
        }
    }

    for a in &allows {
        if !a.used {
            findings.push(Finding {
                path: file.meta.rel_path.clone(),
                line: a.line,
                rule: UNUSED_EXEMPTION,
                message: format!("exemption for `{}` suppresses nothing", a.rule),
                hint: "delete the stale allow; exemptions must each justify a live finding"
                    .to_string(),
            });
        }
    }
    findings
}

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", "third_party", "fixtures", ".git", ".github", ".claude"];

fn walk(dir: &Path, files: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> =
        fs::read_dir(dir)?.map(|e| e.map(|e| e.path())).collect::<io::Result<_>>()?;
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name) {
                walk(&path, files)?;
            }
        } else if name.ends_with(".rs") {
            files.push(path);
        }
    }
    Ok(())
}

/// Scans the workspace rooted at `root` and returns the sorted report.
///
/// # Errors
///
/// Returns any I/O error from walking or reading the tree.
pub fn lint_workspace(root: &Path) -> io::Result<Report> {
    let mut files = Vec::new();
    walk(root, &mut files)?;
    let mut report = Report::default();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let Some(meta) = classify(&rel) else { continue };
        let text = fs::read_to_string(&path)?;
        report.files_scanned += 1;
        report.findings.extend(lint_file_with_meta(meta, &text));
    }
    report.sort();
    Ok(report)
}

/// Walks up from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}
