//! Diagnostics: findings, rendering, and the report returned by a scan.

/// Rule identifier for a malformed or unknown exemption directive.
pub const BAD_EXEMPTION: &str = "bad-exemption";
/// Rule identifier for an exemption that suppresses nothing.
pub const UNUSED_EXEMPTION: &str = "unused-exemption";

/// One diagnostic: a contract violation (or a broken exemption) at a line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Path relative to the workspace root, `/`-separated.
    pub path: String,
    /// 1-based source line.
    pub line: u32,
    /// Stable rule identifier (`hash-iter-order`, …).
    pub rule: &'static str,
    /// One-line statement of the violation.
    pub message: String,
    /// One-line fix hint.
    pub hint: String,
}

impl Finding {
    /// Renders the finding in the analyzer's two-line output format.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: [{}] {}\n    hint: {}",
            self.path, self.line, self.rule, self.message, self.hint
        )
    }
}

/// The result of scanning a file set.
#[derive(Debug, Default)]
pub struct Report {
    /// Findings sorted by `(path, line, rule)`.
    pub findings: Vec<Finding>,
    /// Number of source files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Sorts findings into the canonical deterministic order.
    pub fn sort(&mut self) {
        self.findings.sort_by(|a, b| {
            (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule))
        });
    }

    /// Renders every finding plus a one-line summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&f.render());
            out.push('\n');
        }
        if self.findings.is_empty() {
            out.push_str(&format!("moctopus-lint: clean ({} files scanned)\n", self.files_scanned));
        } else {
            out.push_str(&format!(
                "moctopus-lint: {} finding(s) in {} files scanned\n",
                self.findings.len(),
                self.files_scanned
            ));
        }
        out
    }
}
