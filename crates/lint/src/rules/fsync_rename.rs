//! D5 `fsync-before-rename`: the tmp + fsync + rename discipline in
//! `crates/graph-store`.
//!
//! A `rename` publishes a file; without a preceding `sync_all`/`sync_data`
//! in the same function, a crash can publish a name whose *contents* never
//! reached the disk — the classic broken-commit-point bug (STORAGE.md §7:
//! snapshots and manifests are only crash-safe because the payload is
//! durable before the atomic rename flips the pointer).

use crate::engine::{FileMeta, SourceFile};
use crate::lexer::{match_delim, TokKind, Token};
use crate::rules::{RawFinding, Rule};

/// The D5 rule value.
pub struct FsyncBeforeRename;

impl Rule for FsyncBeforeRename {
    fn id(&self) -> &'static str {
        "fsync-before-rename"
    }

    fn summary(&self) -> &'static str {
        "fs::rename in graph-store must follow sync_all/sync_data in the same function"
    }

    fn applies(&self, meta: &FileMeta) -> bool {
        meta.crate_name == "graph-store"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<RawFinding>) {
        let toks = &file.lexed.tokens;
        let fns = fn_regions(toks);
        for (i, t) in toks.iter().enumerate() {
            let is_call = t.kind == TokKind::Ident
                && t.text == "rename"
                && i > 0
                && toks[i - 1].kind == TokKind::Punct
                && (toks[i - 1].text == "::" || toks[i - 1].text == ".")
                && toks.get(i + 1).is_some_and(|n| n.text == "(");
            if !is_call {
                continue;
            }
            // Innermost enclosing fn; the fsync must happen earlier in it.
            let region = fns
                .iter()
                .filter(|&&(start, end)| start <= i && i <= end)
                .min_by_key(|&&(start, end)| end - start);
            let synced = region.is_some_and(|&(start, _)| {
                toks[start..i].iter().any(|p| {
                    p.kind == TokKind::Ident && (p.text == "sync_all" || p.text == "sync_data")
                })
            });
            if !synced {
                out.push(RawFinding {
                    line: t.line,
                    message: "`rename` without a preceding `sync_all`/`sync_data` in the same \
                              function"
                        .to_string(),
                    hint: "durable publishes follow tmp + fsync + rename (STORAGE.md §7): fsync \
                           the tmp file before renaming it into place, or justify: \
                           // moctopus-lint: allow(fsync-before-rename, reason = \"...\")"
                        .to_string(),
                });
            }
        }
    }
}

/// Token-index spans `(start, end)` of every `fn` body (nested fns and
/// methods included).
fn fn_regions(toks: &[Token]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    for i in 0..toks.len() {
        if !(toks[i].kind == TokKind::Ident && toks[i].text == "fn") {
            continue;
        }
        let mut j = i + 1;
        while let Some(t) = toks.get(j) {
            if t.kind == TokKind::Punct {
                if t.text == ";" {
                    break; // trait method declaration — no body
                }
                if t.text == "{" {
                    if let Some(end) = match_delim(toks, j) {
                        regions.push((j, end));
                    }
                    break;
                }
            }
            j += 1;
        }
    }
    regions
}
