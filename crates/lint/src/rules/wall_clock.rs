//! D2 `wall-clock-in-sim`: wall-clock and entropy sources outside the
//! bench harness.
//!
//! Every latency the system reports is *simulated* (`SimTime` from the
//! pim-sim cost model); real clocks belong only to `crates/bench`, which
//! measures the harness itself (`summary --json` wall-clock fields). A
//! wall-clock read or an entropy source anywhere else either leaks
//! run-dependent values into outputs or silently replaces the cost model.

use crate::engine::{FileClass, FileMeta, SourceFile};
use crate::lexer::TokKind;
use crate::rules::{RawFinding, Rule};

/// The D2 rule value.
pub struct WallClockInSim;

/// Identifiers that are wall-clock reads only when called as `X::now` (the
/// plain type name also appears in harmless type positions, but importing
/// `Instant` without calling `now` is pointless, so flagging the call site
/// alone keeps the signal precise).
const CLOCK_CALLS: &[&str] = &["Instant", "SystemTime"];

/// Identifiers that are entropy/wall-clock sources wherever they appear.
const ENTROPY: &[&str] = &["UNIX_EPOCH", "thread_rng", "from_entropy", "getrandom", "RandomState"];

impl Rule for WallClockInSim {
    fn id(&self) -> &'static str {
        "wall-clock-in-sim"
    }

    fn summary(&self) -> &'static str {
        "Instant::now/SystemTime/entropy sources outside crates/bench timing code"
    }

    fn applies(&self, meta: &FileMeta) -> bool {
        meta.crate_name != "bench" && meta.class != FileClass::Test
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<RawFinding>) {
        let toks = &file.lexed.tokens;
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokKind::Ident {
                continue;
            }
            let name = t.text.as_str();
            let flagged = if CLOCK_CALLS.contains(&name) {
                toks.get(i + 1).is_some_and(|n| n.kind == TokKind::Punct && n.text == "::")
                    && toks.get(i + 2).is_some_and(|n| n.kind == TokKind::Ident && n.text == "now")
            } else {
                ENTROPY.contains(&name)
            };
            if flagged {
                out.push(RawFinding {
                    line: t.line,
                    message: format!("wall-clock/entropy source `{name}` in simulation code"),
                    hint: "simulated latencies must come from the SimTime cost model; wall-clock \
                           timing belongs in crates/bench, or justify: \
                           // moctopus-lint: allow(wall-clock-in-sim, reason = \"...\")"
                        .to_string(),
                });
            }
        }
    }
}
