//! D4 `panic-in-lib`: `unwrap`/`expect`/`panic!` in library code.
//!
//! Library crates expose fallible APIs (`GraphStoreError`, `io::Error`);
//! a panic in the serving path takes down every session sharing the
//! process. Outside tests and doctests, aborting is only acceptable for
//! documented invariants — which is exactly what the exemption's mandatory
//! reason records — or for the two carve-outs below, which are idioms, not
//! error handling:
//!
//! * **Poison propagation**: `.expect("… poisoned")` on a mutex/condvar
//!   result. A poisoned lock means another thread already panicked; in a
//!   determinism-critical core the only sound continuation is to propagate.
//! * **Parser combinators**: `.expect('x')` with a *char* argument is the
//!   rpq parser's own `expect` method, not `Option::expect`.

use crate::engine::{FileClass, FileMeta, SourceFile};
use crate::lexer::TokKind;
use crate::rules::{RawFinding, Rule};

/// The D4 rule value.
pub struct PanicInLib;

impl Rule for PanicInLib {
    fn id(&self) -> &'static str {
        "panic-in-lib"
    }

    fn summary(&self) -> &'static str {
        "unwrap/expect/panic! in library code outside tests and doctests"
    }

    fn applies(&self, meta: &FileMeta) -> bool {
        // Library code only. The bench harness (crate `bench`) is exempt as
        // a whole: it may abort on malformed experiment setups, and it is
        // never linked into the serving path.
        matches!(meta.class, FileClass::Lib | FileClass::RootLib) && meta.crate_name != "bench"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<RawFinding>) {
        let toks = &file.lexed.tokens;
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokKind::Ident {
                continue;
            }
            match t.text.as_str() {
                "panic"
                    if toks
                        .get(i + 1)
                        .is_some_and(|n| n.kind == TokKind::Punct && n.text == "!") =>
                {
                    out.push(finding("panic!", t.line));
                }
                "unwrap" => {
                    let dotted =
                        i > 0 && toks[i - 1].kind == TokKind::Punct && toks[i - 1].text == ".";
                    if dotted
                        && toks.get(i + 1).is_some_and(|n| n.text == "(")
                        && toks.get(i + 2).is_some_and(|n| n.text == ")")
                    {
                        out.push(finding(".unwrap()", t.line));
                    }
                }
                "expect" => {
                    let dotted =
                        i > 0 && toks[i - 1].kind == TokKind::Punct && toks[i - 1].text == ".";
                    if !dotted || toks.get(i + 1).is_none_or(|n| n.text != "(") {
                        continue;
                    }
                    match toks.get(i + 2) {
                        // Parser-combinator carve-out: `.expect('}')`.
                        Some(arg) if arg.kind == TokKind::Char => {}
                        // Poison-propagation carve-out.
                        Some(arg) if arg.kind == TokKind::Str && arg.text.contains("poisoned") => {}
                        _ => out.push(finding(".expect(…)", t.line)),
                    }
                }
                _ => {}
            }
        }
    }
}

fn finding(what: &str, line: u32) -> RawFinding {
    RawFinding {
        line,
        message: format!("`{what}` in library code"),
        hint: "return a Result (GraphStoreError / io::Error) instead, or document the invariant: \
               // moctopus-lint: allow(panic-in-lib, reason = \"...\")"
            .to_string(),
    }
}
