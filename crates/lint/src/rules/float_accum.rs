//! D3 `float-accum-order`: accumulation inside `WorkerPool::run_with`
//! closures that bypasses the per-worker context.
//!
//! Float addition is not associative, so `SimTime`/`f64` accumulation in
//! the parallel hop loops is only thread-count invariant because every
//! worker folds into its *private* `StatsDelta`/`HostExecutionStats` and
//! the merge barrier reduces deltas in worker-id order (CONCURRENCY.md §6).
//! An accumulating assignment inside a `run_with` closure whose target is
//! neither a closure parameter (the per-worker context) nor a closure-local
//! reintroduces sharing — through captures or interior mutability — and
//! puts accumulation order back on the schedule.

use std::collections::BTreeSet;

use crate::engine::{FileMeta, SourceFile};
use crate::lexer::{match_delim, TokKind, Token};
use crate::rules::{RawFinding, Rule};

/// The D3 rule value.
pub struct FloatAccumOrder;

const ACCUM_OPS: &[&str] = &["+=", "-=", "*=", "/="];

impl Rule for FloatAccumOrder {
    fn id(&self) -> &'static str {
        "float-accum-order"
    }

    fn summary(&self) -> &'static str {
        "accumulation inside run_with closures must target the per-worker context"
    }

    fn applies(&self, _meta: &FileMeta) -> bool {
        true
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<RawFinding>) {
        let toks = &file.lexed.tokens;
        for i in 0..toks.len() {
            if !(toks[i].kind == TokKind::Ident && toks[i].text == "run_with") {
                continue;
            }
            let Some(open) = next_punct(toks, i + 1, "(") else { continue };
            let Some(close) = match_delim(toks, open) else { continue };
            check_closure(&toks[open + 1..close], out);
        }
    }
}

fn next_punct(toks: &[Token], from: usize, text: &str) -> Option<usize> {
    let t = toks.get(from)?;
    (t.kind == TokKind::Punct && t.text == text).then_some(from)
}

/// Scans the argument tokens of one `run_with(…)` call: finds the closure,
/// its parameters, its body, and the accumulating assignments within.
fn check_closure(args: &[Token], out: &mut Vec<RawFinding>) {
    // Closure parameters: idents between the first `|` and its partner.
    let Some(bar) = args.iter().position(|t| t.kind == TokKind::Punct && t.text == "|") else {
        return;
    };
    let Some(bar2_rel) =
        args[bar + 1..].iter().position(|t| t.kind == TokKind::Punct && t.text == "|")
    else {
        return;
    };
    let bar2 = bar + 1 + bar2_rel;
    let mut ok_roots: BTreeSet<String> = args[bar + 1..bar2]
        .iter()
        .filter(|t| t.kind == TokKind::Ident && t.text != "mut")
        .map(|t| t.text.clone())
        .collect();

    // Closure body: a braced block, or the rest of the argument list.
    let body: &[Token] = match args.get(bar2 + 1) {
        Some(t) if t.kind == TokKind::Punct && t.text == "{" => {
            let Some(end) = match_delim(args, bar2 + 1) else { return };
            &args[bar2 + 2..end]
        }
        _ => &args[bar2 + 1..],
    };

    // Closure-locals are sound accumulation targets too: they are per-task
    // by construction and reach the merge only through the returned value.
    for (i, t) in body.iter().enumerate() {
        if t.kind == TokKind::Ident && t.text == "let" {
            for n in body[i + 1..].iter().take(6) {
                if n.kind == TokKind::Punct && (n.text == "=" || n.text == ":" || n.text == ";") {
                    break;
                }
                if n.kind == TokKind::Ident && n.text != "mut" {
                    ok_roots.insert(n.text.clone());
                }
            }
        }
    }

    for (i, t) in body.iter().enumerate() {
        if !(t.kind == TokKind::Punct && ACCUM_OPS.contains(&t.text.as_str())) {
            continue;
        }
        // Root of the assignment target: first ident after the previous
        // statement boundary.
        let start = body[..i]
            .iter()
            .rposition(|p| p.kind == TokKind::Punct && matches!(p.text.as_str(), ";" | "{" | "}"))
            .map_or(0, |p| p + 1);
        let Some(root) = body[start..i].iter().find(|p| p.kind == TokKind::Ident) else {
            continue;
        };
        if !ok_roots.contains(&root.text) {
            out.push(RawFinding {
                line: t.line,
                message: format!(
                    "accumulation into `{}` inside a WorkerPool::run_with closure; it is neither \
                     the per-worker context nor a closure-local",
                    root.text
                ),
                hint: "fold into the per-worker StatsDelta/HostExecutionStats context and merge \
                       after the join barrier in worker-id order, or justify: \
                       // moctopus-lint: allow(float-accum-order, reason = \"...\")"
                    .to_string(),
            });
        }
    }
}
