//! D1 `hash-iter-order`: iteration over `std` `HashMap`/`HashSet` in
//! non-test code.
//!
//! `std` hash collections seed their hasher per process (`RandomState`), so
//! any iteration order that reaches results, simulated costs, stdout, or
//! on-disk bytes breaks the byte-identity contract (CONCURRENCY.md §6,
//! STORAGE.md §7). The rule tracks names declared with an outermost
//! `HashMap`/`HashSet` type (fields, `let` annotations and initializers, fn
//! params) and flags ordered sinks on them: iteration adaptors and
//! `for … in` loops. Order-insensitive uses (pure folds, collect-then-sort)
//! are exempted per site with a written reason.

use std::collections::BTreeSet;

use crate::engine::{FileClass, FileMeta, SourceFile};
use crate::lexer::{TokKind, Token};
use crate::rules::{RawFinding, Rule};

/// The D1 rule value.
pub struct HashIterOrder;

const HASH_TYPES: &[&str] = &["HashMap", "HashSet"];
const SINKS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];

impl Rule for HashIterOrder {
    fn id(&self) -> &'static str {
        "hash-iter-order"
    }

    fn summary(&self) -> &'static str {
        "iteration over std HashMap/HashSet in determinism-critical non-test code"
    }

    fn applies(&self, meta: &FileMeta) -> bool {
        matches!(
            meta.class,
            FileClass::Lib | FileClass::Bin | FileClass::RootLib | FileClass::Example
        )
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<RawFinding>) {
        let toks = &file.lexed.tokens;
        let tracked = tracked_names(toks);
        if tracked.is_empty() {
            return;
        }
        flag_method_sinks(toks, &tracked, out);
        flag_for_loops(toks, &tracked, out);
    }
}

fn is_ident(t: &Token, text: &str) -> bool {
    t.kind == TokKind::Ident && t.text == text
}

fn is_punct(t: &Token, text: &str) -> bool {
    t.kind == TokKind::Punct && t.text == text
}

/// Collects names whose declared type (or constructor) is an outermost
/// `HashMap`/`HashSet`.
fn tracked_names(toks: &[Token]) -> BTreeSet<String> {
    let mut tracked = BTreeSet::new();
    for i in 0..toks.len() {
        // `name: [&][mut] [path ::] HashMap/HashSet …` — fields, let
        // annotations, fn params. A `::` right before `name` means `name`
        // is itself a path segment, not a binding.
        if toks[i].kind == TokKind::Ident
            && toks.get(i + 1).is_some_and(|t| is_punct(t, ":"))
            && !(i > 0 && is_punct(&toks[i - 1], "::"))
        {
            if let Some(first) = outermost_type_head(&toks[i + 2..]) {
                if HASH_TYPES.contains(&first) {
                    tracked.insert(toks[i].text.clone());
                }
            }
        }
        // `let [mut] name = [path ::] HashMap/HashSet :: new(…)`.
        if is_ident(&toks[i], "let") {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| is_ident(t, "mut")) {
                j += 1;
            }
            let (Some(name), Some(eq)) = (toks.get(j), toks.get(j + 1)) else { continue };
            if name.kind != TokKind::Ident || !is_punct(eq, "=") {
                continue;
            }
            if let Some(first) = outermost_type_head(&toks[j + 2..]) {
                if HASH_TYPES.contains(&first) {
                    tracked.insert(name.text.clone());
                }
            }
        }
    }
    tracked
}

/// Returns the head type name of a type (or constructor path) token slice:
/// skips `&`/`mut`/lifetimes and a `path ::` prefix, returning the last
/// path segment before generics/call. `Vec<HashSet<…>>` reports `Vec`, so
/// iterating the *ordered* outer container is never flagged.
fn outermost_type_head(toks: &[Token]) -> Option<&str> {
    let mut i = 0usize;
    while toks
        .get(i)
        .is_some_and(|t| t.kind == TokKind::Lifetime || is_punct(t, "&") || is_ident(t, "mut"))
    {
        i += 1;
    }
    let mut head: Option<&str> = None;
    while let Some(t) = toks.get(i) {
        if t.kind != TokKind::Ident {
            break;
        }
        head = Some(&t.text);
        if toks.get(i + 1).is_some_and(|n| is_punct(n, "::")) {
            i += 2;
        } else {
            break;
        }
    }
    head
}

/// Flags `recv.sink(` where `recv` is a tracked name.
fn flag_method_sinks(toks: &[Token], tracked: &BTreeSet<String>, out: &mut Vec<RawFinding>) {
    for i in 1..toks.len() {
        if !is_punct(&toks[i], ".") {
            continue;
        }
        let Some(method) = toks.get(i + 1) else { continue };
        if method.kind != TokKind::Ident || !SINKS.contains(&method.text.as_str()) {
            continue;
        }
        if !toks.get(i + 2).is_some_and(|t| is_punct(t, "(")) {
            continue;
        }
        let recv = &toks[i - 1];
        if recv.kind == TokKind::Ident && recv.text != "self" && tracked.contains(&recv.text) {
            out.push(finding(&recv.text, &method.text, method.line));
        }
    }
}

/// Flags `for pat in [&][mut] [self.]name {` where `name` is tracked.
fn flag_for_loops(toks: &[Token], tracked: &BTreeSet<String>, out: &mut Vec<RawFinding>) {
    for i in 0..toks.len() {
        if !is_ident(&toks[i], "for") {
            continue;
        }
        // Find the `in` of this loop (depth-0 relative to the pattern).
        let mut depth = 0i32;
        let mut j = i + 1;
        let mut in_at = None;
        while let Some(t) = toks.get(j) {
            match t.text.as_str() {
                "(" | "[" | "{" if t.kind == TokKind::Punct => depth += 1,
                ")" | "]" | "}" if t.kind == TokKind::Punct => depth -= 1,
                "in" if t.kind == TokKind::Ident && depth == 0 => {
                    in_at = Some(j);
                    break;
                }
                ";" if depth == 0 => break,
                _ => {}
            }
            j += 1;
            if j > i + 64 {
                break;
            }
        }
        let Some(in_at) = in_at else { continue };
        // Collect the loop expression up to its body `{`.
        let mut expr: Vec<&Token> = Vec::new();
        let mut k = in_at + 1;
        while let Some(t) = toks.get(k) {
            if is_punct(t, "{") {
                break;
            }
            expr.push(t);
            k += 1;
            if expr.len() > 8 {
                break;
            }
        }
        let mut e: &[&Token] = &expr;
        while e.first().is_some_and(|t| is_punct(t, "&") || is_ident(t, "mut")) {
            e = &e[1..];
        }
        if e.len() == 3 && is_ident(e[0], "self") && is_punct(e[1], ".") {
            e = &e[2..];
        }
        if let [only] = e {
            if only.kind == TokKind::Ident && tracked.contains(&only.text) {
                out.push(finding(&only.text, "for-loop", only.line));
            }
        }
    }
}

fn finding(name: &str, sink: &str, line: u32) -> RawFinding {
    RawFinding {
        line,
        message: format!(
            "`{name}` (std HashMap/HashSet) is iterated via `{sink}`; \
             std hash iteration order is randomized per process"
        ),
        hint: "drain in sorted order (collect + sort), switch to BTreeMap/BTreeSet, or justify: \
               // moctopus-lint: allow(hash-iter-order, reason = \"...\")"
            .to_string(),
    }
}
