//! The rule registry. Each rule is one module; `all_rules` is the single
//! place a new rule is wired in (see ANALYSIS.md "Adding a rule").

use crate::engine::{FileMeta, SourceFile};

mod float_accum;
mod fsync_rename;
mod hash_iter;
mod panic_lib;
mod stdout_leak;
mod wall_clock;

/// A rule-produced finding before engine post-processing (test-region
/// filtering, exemption matching, path stamping).
pub struct RawFinding {
    /// 1-based source line.
    pub line: u32,
    /// One-line statement of the violation.
    pub message: String,
    /// One-line fix hint.
    pub hint: String,
}

/// One contract rule.
pub trait Rule {
    /// Stable identifier used in output and `allow(...)` directives.
    fn id(&self) -> &'static str;
    /// One-line description for `--list-rules`.
    fn summary(&self) -> &'static str;
    /// Does the rule scan this file at all?
    fn applies(&self, meta: &FileMeta) -> bool;
    /// Scans the file, appending findings.
    fn check(&self, file: &SourceFile, out: &mut Vec<RawFinding>);
}

/// Every registered rule, in catalogue order D1..D6.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(hash_iter::HashIterOrder),
        Box::new(wall_clock::WallClockInSim),
        Box::new(float_accum::FloatAccumOrder),
        Box::new(panic_lib::PanicInLib),
        Box::new(fsync_rename::FsyncBeforeRename),
        Box::new(stdout_leak::StdoutThreadLeak),
    ]
}

/// Is `rule` a valid target for an `allow(...)` directive?
pub fn is_known_rule(rule: &str) -> bool {
    all_rules().iter().any(|r| r.id() == rule)
}
