//! D6 `stdout-thread-leak`: thread/shard-count values flowing into stdout.
//!
//! The contract since PR 4: stdout of every binary is byte-identical at
//! every `--threads` and `--shards` value. Scaling knobs may only surface
//! in the JSON emitters (`summary --json` records `"threads"`,
//! `ShardThroughput` is JSON-only). A `println!`/`print!` whose arguments —
//! positional or inline `{name}` captures — mention a thread/shard/worker
//! count is a leak waiting for a CI diff to flake.

use crate::engine::{FileClass, FileMeta, SourceFile};
use crate::lexer::{match_delim, TokKind, Token};
use crate::rules::{RawFinding, Rule};

/// The D6 rule value.
pub struct StdoutThreadLeak;

/// Substrings of identifiers that denote scaling knobs.
const LEAKY: &[&str] = &["thread", "shard", "worker"];

impl Rule for StdoutThreadLeak {
    fn id(&self) -> &'static str {
        "stdout-thread-leak"
    }

    fn summary(&self) -> &'static str {
        "thread/shard-count values must not flow into println!/print! output"
    }

    fn applies(&self, meta: &FileMeta) -> bool {
        meta.class != FileClass::Test
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<RawFinding>) {
        let toks = &file.lexed.tokens;
        for i in 0..toks.len() {
            let is_macro = toks[i].kind == TokKind::Ident
                && (toks[i].text == "println" || toks[i].text == "print")
                && toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Punct && t.text == "!")
                && toks.get(i + 2).is_some_and(|t| t.text == "(");
            if !is_macro {
                continue;
            }
            let Some(close) = match_delim(toks, i + 2) else { continue };
            scan_args(&toks[i + 3..close], out);
        }
    }
}

fn scan_args(args: &[Token], out: &mut Vec<RawFinding>) {
    for t in args {
        match t.kind {
            TokKind::Ident => {
                if let Some(hit) = leaky(&t.text) {
                    out.push(finding(&t.text, hit, t.line));
                }
            }
            TokKind::Str => {
                for capture in inline_captures(&t.text) {
                    if let Some(hit) = leaky(capture) {
                        out.push(finding(capture, hit, t.line));
                    }
                }
            }
            _ => {}
        }
    }
}

fn leaky(ident: &str) -> Option<&'static str> {
    let lower = ident.to_ascii_lowercase();
    LEAKY.iter().find(|sub| lower.contains(*sub)).copied()
}

/// Extracts `name` from `{name}` / `{name:…}` inline captures in a format
/// string; `{{` escapes and positional `{}` / `{0}` are skipped.
fn inline_captures(fmt: &str) -> Vec<&str> {
    let mut captures = Vec::new();
    let bytes = fmt.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        if bytes[i] != b'{' {
            i += 1;
            continue;
        }
        if bytes.get(i + 1) == Some(&b'{') {
            i += 2; // escaped brace
            continue;
        }
        let start = i + 1;
        let mut j = start;
        while j < bytes.len() && bytes[j] != b'}' && bytes[j] != b':' {
            j += 1;
        }
        let name = &fmt[start..j];
        if !name.is_empty() && name.chars().all(|c| c == '_' || c.is_ascii_alphanumeric()) {
            captures.push(name);
        }
        i = j + 1;
    }
    captures
}

fn finding(what: &str, hit: &str, line: u32) -> RawFinding {
    RawFinding {
        line,
        message: format!(
            "`{what}` (matches `{hit}`) flows into stdout; thread/shard counts must be invisible \
             in non-JSON output"
        ),
        hint: "route scaling-dependent values through the JSON emitters (summary --json, \
               ShardThroughput) or drop them from stdout; if the text is genuinely \
               count-invariant, justify: // moctopus-lint: allow(stdout-thread-leak, \
               reason = \"...\")"
            .to_string(),
    }
}
