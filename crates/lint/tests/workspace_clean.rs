//! The workspace itself must lint clean: zero findings, every exemption
//! justified and live. This is the same gate CI runs via
//! `cargo run -p moctopus-lint -- --workspace`.

use std::path::PathBuf;

#[test]
fn workspace_has_zero_unjustified_findings() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/lint sits two levels under the workspace root")
        .to_path_buf();
    assert!(root.join("Cargo.toml").exists(), "workspace root not found at {}", root.display());
    let report = moctopus_lint::lint_workspace(&root).expect("workspace scan");
    assert!(
        report.findings.is_empty(),
        "workspace must lint clean, got {} finding(s):\n{}",
        report.findings.len(),
        report.render()
    );
    assert!(report.files_scanned > 50, "suspiciously few files scanned: {}", report.files_scanned);
}
