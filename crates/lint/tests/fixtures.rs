//! Fixture-driven rule tests: every rule fires on its positive fixture, is
//! silent on its negative fixture, and the full fixture sweep renders to a
//! pinned snapshot (`fixtures/expected.txt`) so diagnostics — line numbers,
//! messages, hints, ordering — cannot drift unnoticed.

use std::path::PathBuf;

use moctopus_lint::{classify, lint_file_with_meta, Finding, Report};

/// `(fixture file, pretend workspace path it is linted under)`.
///
/// The pretend path picks the file class and crate the rule scoping needs:
/// D2's negative runs the *same kind of code* as its positive but inside
/// `crates/bench`, the one zone where wall clocks are legal.
const FIXTURES: &[(&str, &str)] = &[
    ("hash_iter_order/positive.rs", "crates/core/src/d1_positive.rs"),
    ("hash_iter_order/negative.rs", "crates/core/src/d1_negative.rs"),
    ("wall_clock_in_sim/positive.rs", "crates/pim-sim/src/d2_positive.rs"),
    ("wall_clock_in_sim/negative.rs", "crates/bench/src/d2_negative.rs"),
    ("float_accum_order/positive.rs", "crates/runtime/src/d3_positive.rs"),
    ("float_accum_order/negative.rs", "crates/runtime/src/d3_negative.rs"),
    ("panic_in_lib/positive.rs", "crates/core/src/d4_positive.rs"),
    ("panic_in_lib/negative.rs", "crates/core/src/d4_negative.rs"),
    ("fsync_before_rename/positive.rs", "crates/graph-store/src/d5_positive.rs"),
    ("fsync_before_rename/negative.rs", "crates/graph-store/src/d5_negative.rs"),
    ("stdout_thread_leak/positive.rs", "crates/server/src/bin/d6_positive.rs"),
    ("stdout_thread_leak/negative.rs", "crates/server/src/bin/d6_negative.rs"),
    ("exemptions/reasoned.rs", "crates/core/src/ex_reasoned.rs"),
    ("exemptions/missing_reason.rs", "crates/core/src/ex_missing_reason.rs"),
    ("exemptions/unknown_rule.rs", "crates/core/src/ex_unknown_rule.rs"),
    ("exemptions/unused.rs", "crates/core/src/ex_unused.rs"),
];

fn fixtures_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

fn lint_fixture(file: &str, pretend: &str) -> Vec<Finding> {
    let text = std::fs::read_to_string(fixtures_dir().join(file))
        .unwrap_or_else(|e| panic!("fixture {file}: {e}"));
    let meta = classify(pretend).unwrap_or_else(|| panic!("{pretend} must classify"));
    lint_file_with_meta(meta, &text)
}

fn rules_of(findings: &[Finding]) -> Vec<&str> {
    findings.iter().map(|f| f.rule).collect()
}

#[test]
fn every_positive_fixture_fires_only_its_rule() {
    for rule in [
        "hash-iter-order",
        "wall-clock-in-sim",
        "float-accum-order",
        "panic-in-lib",
        "fsync-before-rename",
        "stdout-thread-leak",
    ] {
        let file = format!("{}/positive.rs", rule.replace('-', "_"));
        let (_, pretend) = FIXTURES
            .iter()
            .find(|(f, _)| *f == file)
            .unwrap_or_else(|| panic!("no fixture entry for {file}"));
        let findings = lint_fixture(&file, pretend);
        assert!(!findings.is_empty(), "{rule}: positive fixture produced no findings");
        assert!(
            findings.iter().all(|f| f.rule == rule),
            "{rule}: positive fixture leaked other rules: {:?}",
            rules_of(&findings)
        );
    }
}

#[test]
fn every_negative_fixture_is_clean() {
    for rule in [
        "hash_iter_order",
        "wall_clock_in_sim",
        "float_accum_order",
        "panic_in_lib",
        "fsync_before_rename",
        "stdout_thread_leak",
    ] {
        let file = format!("{rule}/negative.rs");
        let (_, pretend) = FIXTURES
            .iter()
            .find(|(f, _)| *f == file)
            .unwrap_or_else(|| panic!("no fixture entry for {file}"));
        let findings = lint_fixture(&file, pretend);
        assert!(
            findings.is_empty(),
            "{rule}: negative fixture is not clean: {:?}",
            rules_of(&findings)
        );
    }
}

#[test]
fn reasoned_exemption_silences_and_counts_as_used() {
    let findings = lint_fixture("exemptions/reasoned.rs", "crates/core/src/ex_reasoned.rs");
    assert!(findings.is_empty(), "reasoned allow must silence: {:?}", rules_of(&findings));
}

#[test]
fn exemption_without_reason_is_an_error_and_suppresses_nothing() {
    let findings =
        lint_fixture("exemptions/missing_reason.rs", "crates/core/src/ex_missing_reason.rs");
    let rules = rules_of(&findings);
    assert_eq!(rules, vec!["bad-exemption", "hash-iter-order"], "got: {rules:?}");
    assert!(findings[0].message.contains("missing its mandatory reason"));
}

#[test]
fn exemption_naming_an_unknown_rule_is_an_error() {
    let findings = lint_fixture("exemptions/unknown_rule.rs", "crates/core/src/ex_unknown_rule.rs");
    let rules = rules_of(&findings);
    assert_eq!(rules, vec!["bad-exemption"], "got: {rules:?}");
    assert!(findings[0].message.contains("unknown rule"));
}

#[test]
fn exemption_that_suppresses_nothing_is_flagged() {
    let findings = lint_fixture("exemptions/unused.rs", "crates/core/src/ex_unused.rs");
    let rules = rules_of(&findings);
    assert_eq!(rules, vec!["unused-exemption"], "got: {rules:?}");
}

#[test]
fn fixture_sweep_matches_pinned_snapshot() {
    let mut report = Report::default();
    for (file, pretend) in FIXTURES {
        report.files_scanned += 1;
        report.findings.extend(lint_fixture(file, pretend));
    }
    report.sort();
    let rendered = report.render();
    let expected_path = fixtures_dir().join("expected.txt");
    if std::env::var_os("UPDATE_EXPECTED").is_some() {
        std::fs::write(&expected_path, &rendered).expect("write expected.txt");
    }
    let expected = std::fs::read_to_string(&expected_path)
        .expect("fixtures/expected.txt must exist (regenerate with UPDATE_EXPECTED=1)");
    assert_eq!(
        rendered, expected,
        "fixture diagnostics drifted; if the change is intentional, update fixtures/expected.txt"
    );
}
