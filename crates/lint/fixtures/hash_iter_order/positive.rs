//! D1 positive fixture — linted as `crates/core/src/fixture.rs` (Lib).

use std::collections::{HashMap, HashSet};

/// Folds values in hash order: the sum is stable but the traversal is not,
/// and a fold with side effects would diverge run to run.
pub fn first_key(m: &HashMap<u32, u64>) -> Option<u32> {
    m.keys().next().copied()
}

/// Drains a set in arbitrary order straight into an output vector.
pub fn spill(s: &mut HashSet<u32>, out: &mut Vec<u32>) {
    out.extend(s.drain());
}

/// Walks a map with a for-loop.
pub fn walk(m: HashMap<u32, u64>) -> u64 {
    let mut total = 0;
    for (_k, v) in m {
        total += v;
    }
    total
}
