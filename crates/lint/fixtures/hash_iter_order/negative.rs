//! D1 negative fixture — linted as `crates/core/src/fixture.rs` (Lib).
//!
//! Note the distinct parameter names: name tracking is file-global (the
//! analyzer has no scopes), so reusing a `HashMap`-bound name for an
//! ordered container elsewhere in the file would be flagged — the same
//! conservatism that applies to real code.

use std::collections::{BTreeMap, HashMap};

/// BTreeMap iterates in key order; not a finding.
pub fn ordered(tree: &BTreeMap<u32, u64>) -> Option<u32> {
    tree.keys().next().copied()
}

/// Point lookups on a HashMap are fine — only iteration is flagged.
pub fn lookup(table: &HashMap<u32, u64>, k: u32) -> Option<u64> {
    table.get(&k).copied()
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn iteration_in_tests_is_exempt() {
        let m: HashMap<u32, u64> = HashMap::new();
        assert_eq!(m.iter().count(), 0);
    }
}
