//! D5 positive fixture — linted as `crates/graph-store/src/fixture.rs`.

use std::fs;
use std::path::Path;

/// Publishes a tmp file without making its contents durable first: a crash
/// right after the rename can expose a name whose bytes never hit the disk.
pub fn publish(tmp: &Path, dst: &Path) -> std::io::Result<()> {
    fs::rename(tmp, dst)
}
