//! D5 negative fixture — linted as `crates/graph-store/src/fixture.rs`.

use std::fs::{self, File};
use std::path::Path;

/// The durable publish discipline: write, fsync, then rename.
pub fn publish(tmp: &Path, dst: &Path) -> std::io::Result<()> {
    let file = File::open(tmp)?;
    file.sync_all()?;
    fs::rename(tmp, dst)
}
