//! D6 positive fixture — linted as `crates/server/src/bin/fixture.rs` (Bin).

/// Prints scaling knobs: stdout now differs across `--threads`/`--shards`.
pub fn report(thread_count: usize, shards: u32) {
    println!("running with {thread_count} threads");
    println!("shards = {}", shards);
}
