//! D6 negative fixture — linted as `crates/server/src/bin/fixture.rs` (Bin).

/// Count-invariant output: totals do not depend on scaling knobs, and
/// positional `{}` holes without leaky identifiers are fine.
pub fn report(total_edges: u64, elapsed_pct: f64) {
    println!("edges = {total_edges}");
    println!("progress: {:.1}%", elapsed_pct);
}
