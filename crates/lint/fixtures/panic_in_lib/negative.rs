//! D4 negative fixture — linted as `crates/core/src/fixture.rs` (Lib).

use std::sync::Mutex;

/// Poison propagation is an idiom, not error handling: a poisoned lock
/// means another thread already panicked, and the only sound continuation
/// in a determinism-critical core is to propagate the abort.
pub fn locked(m: &Mutex<u32>) -> u32 {
    *m.lock().expect("counter mutex poisoned")
}

/// `.expect('x')` with a char argument is the rpq parser's own combinator,
/// not `Option::expect`.
pub fn combinator(p: &mut Parser) -> Result<(), ParseError> {
    p.expect('}')
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v = [1u32];
        assert_eq!(*v.first().unwrap(), 1);
    }
}
