//! D4 positive fixture — linted as `crates/core/src/fixture.rs` (Lib).

/// Unwraps an optional mid-pipeline.
pub fn head(v: &[u32]) -> u32 {
    *v.first().unwrap()
}

/// Expects with a string message.
pub fn must(v: Option<u32>) -> u32 {
    v.expect("value required")
}

/// Panics outright.
pub fn boom() -> ! {
    panic!("unreachable configuration");
}
