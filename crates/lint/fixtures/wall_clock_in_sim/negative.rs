//! D2 negative fixture — the same clock reads are legal in `crates/bench`
//! (linted as `crates/bench/src/fixture.rs`), the one zone that measures
//! real elapsed time.

use std::time::Instant;

/// Benchmarks measure the host wall clock by design.
pub fn measure<F: FnOnce()>(f: F) -> std::time::Duration {
    let start = Instant::now();
    f();
    start.elapsed()
}
