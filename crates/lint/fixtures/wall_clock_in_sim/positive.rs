//! D2 positive fixture — linted as `crates/pim-sim/src/fixture.rs` (Lib).

use std::time::{Instant, SystemTime};

/// Reads the wall clock inside simulated code.
pub fn stamp() -> Instant {
    Instant::now()
}

/// Reads the system clock, another nondeterministic source.
pub fn epoch() -> SystemTime {
    SystemTime::now()
}

/// Builds a hasher state from per-process entropy.
pub fn hasher() -> impl std::hash::BuildHasher {
    std::collections::hash_map::RandomState::new()
}
