//! Exemption fixture: an allow without its mandatory reason is rejected —
//! the directive becomes a `bad-exemption` finding and the underlying
//! diagnostic still fires.

use std::collections::HashMap;

/// The allow below is malformed: no reason.
pub fn count(m: &HashMap<u32, u64>) -> usize {
    // moctopus-lint: allow(hash-iter-order)
    m.keys().count()
}
