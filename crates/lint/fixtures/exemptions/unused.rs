//! Exemption fixture: an allow that suppresses nothing is flagged, so
//! stale exemptions cannot linger after the code they excused is gone.

/// Nothing here iterates a hash collection.
pub fn quiet() -> u32 {
    // moctopus-lint: allow(hash-iter-order, reason = "stale: the iteration this excused was removed")
    42
}
