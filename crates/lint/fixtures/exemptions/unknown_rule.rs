//! Exemption fixture: naming a rule the analyzer does not know is an
//! error, not a silent no-op.

/// The allow below misspells its rule.
pub fn quiet() -> u32 {
    // moctopus-lint: allow(hash-iter-ordering, reason = "typo in the rule name")
    42
}
