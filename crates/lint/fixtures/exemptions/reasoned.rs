//! Exemption fixture: a reasoned allow silences the finding — and counts
//! as used, so no `unused-exemption` either.

use std::collections::HashMap;

/// Counts entries; the reduction is order-independent.
pub fn count(m: &HashMap<u32, u64>) -> usize {
    // moctopus-lint: allow(hash-iter-order, reason = "reduced with count(); a cardinality is order-independent")
    m.keys().count()
}
