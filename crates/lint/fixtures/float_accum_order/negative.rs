//! D3 negative fixture — linted as `crates/runtime/src/fixture.rs` (Lib).

/// Folds into the per-worker context (a closure parameter) and into a
/// closure-local; both are schedule-independent by construction.
pub fn sound(pool: &WorkerPool) {
    pool.run_with(|worker, delta| {
        let mut scratch = 0.0;
        scratch += worker.busy_seconds();
        delta.busy += scratch;
        delta.tasks += 1;
    });
}
