//! D3 positive fixture — linted as `crates/runtime/src/fixture.rs` (Lib).

/// Accumulates into a captured variable from inside a `run_with` closure:
/// the fold order follows the thread schedule, not worker ids.
pub fn leaky(pool: &WorkerPool) -> f64 {
    let mut total = 0.0;
    pool.run_with(|worker, delta| {
        total += worker.busy_seconds();
        delta.tasks += 1;
    });
    total
}
