//! Deterministic multi-producer request sequencing.
//!
//! A serving layer that accepts requests from many concurrent client threads
//! has a problem the worker pool cannot solve: the *arrival order* of
//! requests depends on OS scheduling, so "execute in arrival order" makes
//! same-trace runs diverge. [`SequencedQueue`] removes the OS from the
//! ordering: every producer stamps its submissions with a **logical
//! timestamp** (from the trace, not the wall clock), and the queue releases
//! items in the total order
//!
//! ```text
//! (timestamp, producer id, per-producer submission index)
//! ```
//!
//! regardless of which thread submitted first physically. Consumers only
//! receive an item once it is *safe*: no open producer can still submit
//! anything that would sort earlier. Each producer therefore promises
//! **strictly increasing timestamps** (enforced; [`SequenceError`]), which
//! makes the safety condition a simple watermark: item `(t, p)` is
//! deliverable when every other open producer has already submitted beyond
//! `t` — or equals `t`, since its next submission must then exceed `t` — or
//! has closed.
//!
//! The result is the concurrency-side analogue of the worker pool's
//! determinism contract (CONCURRENCY.md): physical threads race, the
//! *observable order* never does. The `moctopus-server` crate builds its
//! session layer on this queue; SERVING.md §2 walks the full argument.
//!
//! # Examples
//!
//! ```
//! use moctopus_runtime::SequencedQueue;
//!
//! let q = SequencedQueue::new();
//! let a = q.register();
//! let b = q.register();
//! q.submit(b, 2, "b@2").unwrap();
//! q.submit(a, 1, "a@1").unwrap();
//! // a@1 is deliverable: b's last timestamp (2) is beyond 1.
//! assert_eq!(q.try_pop(), Some("a@1"));
//! // b@2 is NOT deliverable yet: a (still open, last at 1) may submit at 2.
//! assert_eq!(q.try_pop(), None);
//! q.close(a);
//! assert_eq!(q.try_pop(), Some("b@2"));
//! q.close(b);
//! assert_eq!(q.pop(), None); // all producers closed, queue empty
//! ```

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Identifier of one registered producer (returned by
/// [`SequencedQueue::register`]). Doubles as the tie-breaker of the total
/// order: equal timestamps deliver in ascending producer id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProducerId(usize);

impl ProducerId {
    /// The producer's position in registration order (0-based).
    pub fn index(self) -> usize {
        self.0
    }
}

/// Why a submission was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SequenceError {
    /// The timestamp was not strictly greater than the producer's previous
    /// one — the monotonicity promise the watermark rule depends on.
    NonMonotonicTimestamp {
        /// The producer's previous (and still current) timestamp.
        last: u64,
        /// The rejected timestamp.
        submitted: u64,
    },
    /// The producer was already closed.
    Closed,
}

impl std::fmt::Display for SequenceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SequenceError::NonMonotonicTimestamp { last, submitted } => write!(
                f,
                "timestamp {submitted} is not strictly greater than the producer's last ({last})"
            ),
            SequenceError::Closed => write!(f, "producer is closed"),
        }
    }
}

impl std::error::Error for SequenceError {}

/// Per-producer state: the pending items, the last submitted timestamp, and
/// whether the producer closed.
#[derive(Debug)]
struct Producer<T> {
    /// Pending `(timestamp, item)` pairs in submission (= timestamp) order.
    pending: VecDeque<(u64, T)>,
    /// Last submitted timestamp; `None` before the first submission.
    last_at: Option<u64>,
    closed: bool,
}

impl<T> Producer<T> {
    fn new() -> Self {
        Producer { pending: VecDeque::new(), last_at: None, closed: false }
    }
}

/// A multi-producer queue that delivers items in a deterministic total order
/// keyed by logical timestamps (see the module docs).
///
/// All methods take `&self`; the queue is internally synchronized and meant
/// to be shared across threads (e.g. inside an `Arc`).
#[derive(Debug)]
pub struct SequencedQueue<T> {
    inner: Mutex<Vec<Producer<T>>>,
    /// Signalled on every submit/close so blocked [`SequencedQueue::pop`]
    /// calls re-evaluate the watermark.
    changed: Condvar,
}

impl<T> Default for SequencedQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> SequencedQueue<T> {
    /// Creates an empty queue with no producers.
    pub fn new() -> Self {
        SequencedQueue { inner: Mutex::new(Vec::new()), changed: Condvar::new() }
    }

    /// Registers a new producer and returns its id.
    ///
    /// Registration order defines the tie-breaking order for equal
    /// timestamps, so register producers deterministically (e.g. client 0
    /// first) when byte-identical runs matter.
    pub fn register(&self) -> ProducerId {
        let mut inner = self.inner.lock().expect("sequence queue poisoned");
        inner.push(Producer::new());
        ProducerId(inner.len() - 1)
    }

    /// Submits an item at a logical timestamp.
    ///
    /// Timestamps must be strictly increasing per producer; ties *across*
    /// producers are fine (they deliver in producer-id order).
    ///
    /// # Panics
    ///
    /// Panics if `producer` was not returned by this queue's
    /// [`SequencedQueue::register`].
    pub fn submit(&self, producer: ProducerId, at: u64, item: T) -> Result<(), SequenceError> {
        let mut inner = self.inner.lock().expect("sequence queue poisoned");
        let p = &mut inner[producer.0];
        if p.closed {
            return Err(SequenceError::Closed);
        }
        if let Some(last) = p.last_at {
            if at <= last {
                return Err(SequenceError::NonMonotonicTimestamp { last, submitted: at });
            }
        }
        p.last_at = Some(at);
        p.pending.push_back((at, item));
        drop(inner);
        self.changed.notify_all();
        Ok(())
    }

    /// Closes a producer: it will submit nothing further, so its watermark
    /// stops gating other producers' items. Closing twice is a no-op.
    ///
    /// # Panics
    ///
    /// Panics if `producer` was not returned by this queue's
    /// [`SequencedQueue::register`].
    pub fn close(&self, producer: ProducerId) {
        let mut inner = self.inner.lock().expect("sequence queue poisoned");
        inner[producer.0].closed = true;
        drop(inner);
        self.changed.notify_all();
    }

    /// Pops the next item of the total order if it is already deliverable
    /// (see the module docs for the watermark rule); `None` if the queue is
    /// empty or the head item must still wait for a lagging producer.
    pub fn try_pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("sequence queue poisoned");
        let item = Self::pop_deliverable(&mut inner);
        if item.is_some() {
            // Wake waiters so a `wait_deliverable` that observed the
            // pre-pop state re-evaluates (the queue may now be drained).
            drop(inner);
            self.changed.notify_all();
        }
        item
    }

    /// Pops the next item of the total order, blocking until one becomes
    /// deliverable. Returns `None` once every producer has closed and no
    /// items remain (the queue is drained for good).
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("sequence queue poisoned");
        loop {
            if let Some(item) = Self::pop_deliverable(&mut inner) {
                drop(inner);
                self.changed.notify_all();
                return Some(item);
            }
            if inner.iter().all(|p| p.closed && p.pending.is_empty()) {
                return None;
            }
            inner = self.changed.wait(inner).expect("sequence queue poisoned");
        }
    }

    /// Blocks until an item is deliverable (`true`) or the queue is drained
    /// for good (`false`), without popping anything.
    ///
    /// This exists for consumers that must pop and *process* under their own
    /// lock to keep processing order deterministic (pop-then-lock would let
    /// two consumer threads reorder): wait here lock-free, then pop with
    /// [`SequencedQueue::try_pop`] under the processing lock. A `true` return
    /// is a hint, not a reservation — another consumer may take the item
    /// first, so loop.
    pub fn wait_deliverable(&self) -> bool {
        let mut inner = self.inner.lock().expect("sequence queue poisoned");
        loop {
            // Probe without popping: same rule as `pop_deliverable`.
            let head = inner
                .iter()
                .enumerate()
                .filter_map(|(i, p)| p.pending.front().map(|&(at, _)| (i, at)))
                .min_by_key(|&(i, at)| (at, i));
            if let Some((idx, at)) = head {
                let safe = inner
                    .iter()
                    .enumerate()
                    .all(|(i, p)| i == idx || p.closed || p.last_at.is_some_and(|last| last >= at));
                if safe {
                    return true;
                }
            } else if inner.iter().all(|p| p.closed) {
                return false;
            }
            inner = self.changed.wait(inner).expect("sequence queue poisoned");
        }
    }

    /// True once every producer has closed and all items were delivered.
    pub fn is_drained(&self) -> bool {
        let inner = self.inner.lock().expect("sequence queue poisoned");
        inner.iter().all(|p| p.closed && p.pending.is_empty())
    }

    /// Core delivery rule, called under the lock: find the head item with
    /// the minimal `(timestamp, producer)` key and pop it if no open
    /// producer could still submit an earlier-sorting item.
    fn pop_deliverable(inner: &mut [Producer<T>]) -> Option<T> {
        // The minimal pending head across producers (ties: lowest id, which
        // `<` on (at, index) gives for free since iteration is in id order).
        let (idx, at) = inner
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.pending.front().map(|&(at, _)| (i, at)))
            .min_by_key(|&(i, at)| (at, i))?;
        // Safe iff every *other* open producer has advanced to `at` or
        // beyond: strictly increasing timestamps mean its future submissions
        // land strictly after its last one, and an equal-timestamp future
        // submission is impossible once last_at == at.
        let safe = inner
            .iter()
            .enumerate()
            .all(|(i, p)| i == idx || p.closed || p.last_at.is_some_and(|last| last >= at));
        if !safe {
            return None;
        }
        let (_, item) = inner[idx].pending.pop_front().expect("head checked above");
        Some(item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn single_producer_is_fifo() {
        let q = SequencedQueue::new();
        let p = q.register();
        for t in 1..=5u64 {
            q.submit(p, t, t).unwrap();
        }
        q.close(p);
        let mut out = Vec::new();
        while let Some(v) = q.pop() {
            out.push(v);
        }
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
        assert!(q.is_drained());
    }

    #[test]
    fn items_wait_for_lagging_open_producers() {
        let q = SequencedQueue::new();
        let a = q.register();
        let b = q.register();
        q.submit(b, 10, "b@10").unwrap();
        // `a` has submitted nothing: b@10 must wait (a could submit at 1).
        assert_eq!(q.try_pop(), None);
        q.submit(a, 3, "a@3").unwrap();
        // a@3 is deliverable (b is at 10); b@10 still waits for a.
        assert_eq!(q.try_pop(), Some("a@3"));
        assert_eq!(q.try_pop(), None);
        q.close(a);
        assert_eq!(q.try_pop(), Some("b@10"));
    }

    #[test]
    fn equal_timestamps_deliver_in_producer_order() {
        let q = SequencedQueue::new();
        let a = q.register();
        let b = q.register();
        q.submit(b, 5, "b@5").unwrap();
        q.submit(a, 5, "a@5").unwrap();
        // Both producers are at 5; strict monotonicity forbids either from
        // submitting at 5 again, so both are deliverable — a first.
        assert_eq!(q.try_pop(), Some("a@5"));
        assert_eq!(q.try_pop(), Some("b@5"));
    }

    #[test]
    fn monotonicity_and_close_are_enforced() {
        let q = SequencedQueue::new();
        let p = q.register();
        q.submit(p, 2, ()).unwrap();
        assert_eq!(
            q.submit(p, 2, ()),
            Err(SequenceError::NonMonotonicTimestamp { last: 2, submitted: 2 })
        );
        assert_eq!(
            q.submit(p, 1, ()),
            Err(SequenceError::NonMonotonicTimestamp { last: 2, submitted: 1 })
        );
        q.close(p);
        q.close(p); // idempotent
        assert_eq!(q.submit(p, 3, ()), Err(SequenceError::Closed));
    }

    /// The determinism claim itself: racing producer threads always yield
    /// the same consumption order.
    #[test]
    fn racing_producers_always_drain_in_the_same_order() {
        let expected: Vec<(u64, usize)> = {
            // The total order of the schedule below, computed by sorting.
            let mut all: Vec<(u64, usize)> = (0..4usize)
                .flat_map(|c| (0..25u64).map(move |j| (1 + j * 4 + c as u64, c)))
                .collect();
            all.sort();
            all
        };
        for _round in 0..8 {
            let q = Arc::new(SequencedQueue::new());
            let producers: Vec<ProducerId> = (0..4).map(|_| q.register()).collect();
            std::thread::scope(|scope| {
                for (c, &pid) in producers.iter().enumerate() {
                    let q = Arc::clone(&q);
                    scope.spawn(move || {
                        for j in 0..25u64 {
                            let at = 1 + j * 4 + c as u64;
                            q.submit(pid, at, (at, c)).unwrap();
                            if j % 7 == c as u64 % 7 {
                                std::thread::yield_now();
                            }
                        }
                        q.close(pid);
                    });
                }
                let mut out = Vec::new();
                while let Some(item) = q.pop() {
                    out.push(item);
                }
                assert_eq!(out, expected, "drain order must not depend on thread timing");
            });
        }
    }
}
