//! Deterministic multi-producer request sequencing.
//!
//! A serving layer that accepts requests from many concurrent client threads
//! has a problem the worker pool cannot solve: the *arrival order* of
//! requests depends on OS scheduling, so "execute in arrival order" makes
//! same-trace runs diverge. [`SequencedQueue`] removes the OS from the
//! ordering: every producer stamps its submissions with a **logical
//! timestamp** (from the trace, not the wall clock), and the queue releases
//! items in the total order
//!
//! ```text
//! (timestamp, producer id, per-producer submission index)
//! ```
//!
//! regardless of which thread submitted first physically. Consumers only
//! receive an item once it is *safe*: no open producer can still submit
//! anything that would sort earlier. Each producer therefore promises
//! **strictly increasing timestamps** (enforced; [`SequenceError`]), which
//! makes the safety condition a simple watermark: item `(t, p)` is
//! deliverable when every other open producer has already submitted beyond
//! `t` — or equals `t`, since its next submission must then exceed `t` — or
//! has closed.
//!
//! The result is the concurrency-side analogue of the worker pool's
//! determinism contract (CONCURRENCY.md): physical threads race, the
//! *observable order* never does. The `moctopus-server` crate builds its
//! session layer on this queue; SERVING.md §2 walks the full argument.
//!
//! # Backpressure (bounded queues)
//!
//! An open-loop producer can outrun the consumer without bound. A queue built
//! with [`SequencedQueue::bounded`] caps every producer's **pending** (not yet
//! delivered) items: a submission that would exceed the cap is **shed** — the
//! item is dropped and [`Admission::Shed`] returned — but the producer's
//! watermark still advances as if the item had been accepted. Shedding at the
//! watermark is what keeps the queue live: a flooding producer keeps promising
//! "nothing earlier than `t` is coming" even while its excess load is refused,
//! so other producers' items stay deliverable. Because the bound is **per
//! producer**, one flooding client sheds only its own traffic — every other
//! client's items are admitted and delivered exactly as on an unbounded queue
//! (see `bounded_queue_sheds_only_the_flooding_producer`).
//!
//! # Examples
//!
//! ```
//! use moctopus_runtime::SequencedQueue;
//!
//! let q = SequencedQueue::new();
//! let a = q.register();
//! let b = q.register();
//! q.submit(b, 2, "b@2").unwrap();
//! q.submit(a, 1, "a@1").unwrap();
//! // a@1 is deliverable: b's last timestamp (2) is beyond 1.
//! assert_eq!(q.try_pop(), Some("a@1"));
//! // b@2 is NOT deliverable yet: a (still open, last at 1) may submit at 2.
//! assert_eq!(q.try_pop(), None);
//! q.close(a);
//! assert_eq!(q.try_pop(), Some("b@2"));
//! q.close(b);
//! assert_eq!(q.pop(), None); // all producers closed, queue empty
//! ```

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Identifier of one registered producer (returned by
/// [`SequencedQueue::register`]). Doubles as the tie-breaker of the total
/// order: equal timestamps deliver in ascending producer id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProducerId(usize);

impl ProducerId {
    /// The producer's position in registration order (0-based).
    pub fn index(self) -> usize {
        self.0
    }
}

/// Why a submission was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SequenceError {
    /// The timestamp was not strictly greater than the producer's previous
    /// one — the monotonicity promise the watermark rule depends on.
    NonMonotonicTimestamp {
        /// The producer's previous (and still current) timestamp.
        last: u64,
        /// The rejected timestamp.
        submitted: u64,
    },
    /// The producer was already closed.
    Closed,
}

impl std::fmt::Display for SequenceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SequenceError::NonMonotonicTimestamp { last, submitted } => write!(
                f,
                "timestamp {submitted} is not strictly greater than the producer's last ({last})"
            ),
            SequenceError::Closed => write!(f, "producer is closed"),
        }
    }
}

impl std::error::Error for SequenceError {}

/// What [`SequencedQueue::submit`] did with an item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// The item was enqueued and will be delivered in total order.
    Accepted,
    /// The producer's pending items were at the queue's per-producer capacity:
    /// the item was dropped, but the producer's watermark advanced to its
    /// timestamp (see the module docs on backpressure). Never returned by an
    /// unbounded queue.
    Shed,
}

/// Per-producer state: the pending items, the last submitted timestamp, and
/// whether the producer closed.
#[derive(Debug)]
struct Producer<T> {
    /// Pending `(timestamp, item)` pairs in submission (= timestamp) order.
    pending: VecDeque<(u64, T)>,
    /// Last submitted timestamp; `None` before the first submission. Sheds
    /// advance it too — the watermark promise covers refused items.
    last_at: Option<u64>,
    /// Submissions shed by the per-producer capacity bound.
    shed: u64,
    closed: bool,
}

impl<T> Producer<T> {
    fn new() -> Self {
        Producer { pending: VecDeque::new(), last_at: None, shed: 0, closed: false }
    }
}

/// A multi-producer queue that delivers items in a deterministic total order
/// keyed by logical timestamps (see the module docs).
///
/// All methods take `&self`; the queue is internally synchronized and meant
/// to be shared across threads (e.g. inside an `Arc`).
#[derive(Debug)]
pub struct SequencedQueue<T> {
    inner: Mutex<Vec<Producer<T>>>,
    /// Signalled on every submit/close so blocked [`SequencedQueue::pop`]
    /// calls re-evaluate the watermark.
    changed: Condvar,
    /// Per-producer pending-item bound; `None` = unbounded (never sheds).
    capacity: Option<usize>,
}

impl<T> Default for SequencedQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> SequencedQueue<T> {
    /// Creates an empty unbounded queue with no producers.
    pub fn new() -> Self {
        SequencedQueue { inner: Mutex::new(Vec::new()), changed: Condvar::new(), capacity: None }
    }

    /// Creates an empty queue that sheds any submission arriving while the
    /// submitting producer already has `capacity` items pending (see the
    /// module docs on backpressure).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (it would shed every submission).
    pub fn bounded(capacity: usize) -> Self {
        assert!(capacity > 0, "a bounded queue needs capacity for at least one item");
        SequencedQueue {
            inner: Mutex::new(Vec::new()),
            changed: Condvar::new(),
            capacity: Some(capacity),
        }
    }

    /// The per-producer pending capacity; `None` for an unbounded queue.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Registers a new producer and returns its id.
    ///
    /// Registration order defines the tie-breaking order for equal
    /// timestamps, so register producers deterministically (e.g. client 0
    /// first) when byte-identical runs matter.
    pub fn register(&self) -> ProducerId {
        let mut inner = self.inner.lock().expect("sequence queue poisoned");
        inner.push(Producer::new());
        ProducerId(inner.len() - 1)
    }

    /// Submits an item at a logical timestamp.
    ///
    /// Timestamps must be strictly increasing per producer; ties *across*
    /// producers are fine (they deliver in producer-id order). On a bounded
    /// queue the item may be refused with [`Admission::Shed`]: the producer's
    /// watermark still advances to `at` (and strict monotonicity still binds
    /// its next submission), but nothing is enqueued. Unbounded queues always
    /// return [`Admission::Accepted`].
    ///
    /// # Panics
    ///
    /// Panics if `producer` was not returned by this queue's
    /// [`SequencedQueue::register`].
    pub fn submit(
        &self,
        producer: ProducerId,
        at: u64,
        item: T,
    ) -> Result<Admission, SequenceError> {
        let mut inner = self.inner.lock().expect("sequence queue poisoned");
        let p = &mut inner[producer.0];
        if p.closed {
            return Err(SequenceError::Closed);
        }
        if let Some(last) = p.last_at {
            if at <= last {
                return Err(SequenceError::NonMonotonicTimestamp { last, submitted: at });
            }
        }
        // The watermark advances before the capacity check: a shed item was
        // still *promised* — the producer can no longer submit at or before
        // `at`, so delivery of other producers' items keeps progressing even
        // under sustained overload.
        p.last_at = Some(at);
        let admission = if self.capacity.is_some_and(|cap| p.pending.len() >= cap) {
            p.shed += 1;
            Admission::Shed
        } else {
            p.pending.push_back((at, item));
            Admission::Accepted
        };
        drop(inner);
        self.changed.notify_all();
        Ok(admission)
    }

    /// Submissions the per-producer capacity bound has shed so far, summed
    /// over all producers (always zero on an unbounded queue).
    pub fn shed_total(&self) -> u64 {
        let inner = self.inner.lock().expect("sequence queue poisoned");
        inner.iter().map(|p| p.shed).sum()
    }

    /// Submissions shed from one producer.
    ///
    /// # Panics
    ///
    /// Panics if `producer` was not returned by this queue's
    /// [`SequencedQueue::register`].
    pub fn shed_count(&self, producer: ProducerId) -> u64 {
        let inner = self.inner.lock().expect("sequence queue poisoned");
        inner[producer.0].shed
    }

    /// The producer's current watermark: the last timestamp it submitted
    /// (accepted *or* shed), `None` before its first submission.
    ///
    /// # Panics
    ///
    /// Panics if `producer` was not returned by this queue's
    /// [`SequencedQueue::register`].
    pub fn last_timestamp(&self, producer: ProducerId) -> Option<u64> {
        let inner = self.inner.lock().expect("sequence queue poisoned");
        inner[producer.0].last_at
    }

    /// Closes a producer: it will submit nothing further, so its watermark
    /// stops gating other producers' items. Closing twice is a no-op.
    ///
    /// # Panics
    ///
    /// Panics if `producer` was not returned by this queue's
    /// [`SequencedQueue::register`].
    pub fn close(&self, producer: ProducerId) {
        let mut inner = self.inner.lock().expect("sequence queue poisoned");
        inner[producer.0].closed = true;
        drop(inner);
        self.changed.notify_all();
    }

    /// Pops the next item of the total order if it is already deliverable
    /// (see the module docs for the watermark rule); `None` if the queue is
    /// empty or the head item must still wait for a lagging producer.
    pub fn try_pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("sequence queue poisoned");
        let item = Self::pop_deliverable(&mut inner);
        if item.is_some() {
            // Wake waiters so a `wait_deliverable` that observed the
            // pre-pop state re-evaluates (the queue may now be drained).
            drop(inner);
            self.changed.notify_all();
        }
        item
    }

    /// Pops the next item of the total order, blocking until one becomes
    /// deliverable. Returns `None` once every producer has closed and no
    /// items remain (the queue is drained for good).
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("sequence queue poisoned");
        loop {
            if let Some(item) = Self::pop_deliverable(&mut inner) {
                drop(inner);
                self.changed.notify_all();
                return Some(item);
            }
            if inner.iter().all(|p| p.closed && p.pending.is_empty()) {
                return None;
            }
            inner = self.changed.wait(inner).expect("sequence queue poisoned");
        }
    }

    /// Blocks until an item is deliverable (`true`) or the queue is drained
    /// for good (`false`), without popping anything.
    ///
    /// This exists for consumers that must pop and *process* under their own
    /// lock to keep processing order deterministic (pop-then-lock would let
    /// two consumer threads reorder): wait here lock-free, then pop with
    /// [`SequencedQueue::try_pop`] under the processing lock. A `true` return
    /// is a hint, not a reservation — another consumer may take the item
    /// first, so loop.
    pub fn wait_deliverable(&self) -> bool {
        let mut inner = self.inner.lock().expect("sequence queue poisoned");
        loop {
            // Probe without popping: same rule as `pop_deliverable`.
            let head = inner
                .iter()
                .enumerate()
                .filter_map(|(i, p)| p.pending.front().map(|&(at, _)| (i, at)))
                .min_by_key(|&(i, at)| (at, i));
            if let Some((idx, at)) = head {
                let safe = inner
                    .iter()
                    .enumerate()
                    .all(|(i, p)| i == idx || p.closed || p.last_at.is_some_and(|last| last >= at));
                if safe {
                    return true;
                }
            } else if inner.iter().all(|p| p.closed) {
                return false;
            }
            inner = self.changed.wait(inner).expect("sequence queue poisoned");
        }
    }

    /// True once every producer has closed and all items were delivered.
    pub fn is_drained(&self) -> bool {
        let inner = self.inner.lock().expect("sequence queue poisoned");
        inner.iter().all(|p| p.closed && p.pending.is_empty())
    }

    /// Core delivery rule, called under the lock: find the head item with
    /// the minimal `(timestamp, producer)` key and pop it if no open
    /// producer could still submit an earlier-sorting item.
    fn pop_deliverable(inner: &mut [Producer<T>]) -> Option<T> {
        // The minimal pending head across producers (ties: lowest id, which
        // `<` on (at, index) gives for free since iteration is in id order).
        let (idx, at) = inner
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.pending.front().map(|&(at, _)| (i, at)))
            .min_by_key(|&(i, at)| (at, i))?;
        // Safe iff every *other* open producer has advanced to `at` or
        // beyond: strictly increasing timestamps mean its future submissions
        // land strictly after its last one, and an equal-timestamp future
        // submission is impossible once last_at == at.
        let safe = inner
            .iter()
            .enumerate()
            .all(|(i, p)| i == idx || p.closed || p.last_at.is_some_and(|last| last >= at));
        if !safe {
            return None;
        }
        // moctopus-lint: allow(panic-in-lib, reason = "the caller dequeues only after peeking this queue's non-empty head under the same lock")
        let (_, item) = inner[idx].pending.pop_front().expect("head checked above");
        Some(item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn single_producer_is_fifo() {
        let q = SequencedQueue::new();
        let p = q.register();
        for t in 1..=5u64 {
            q.submit(p, t, t).unwrap();
        }
        q.close(p);
        let mut out = Vec::new();
        while let Some(v) = q.pop() {
            out.push(v);
        }
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
        assert!(q.is_drained());
    }

    #[test]
    fn items_wait_for_lagging_open_producers() {
        let q = SequencedQueue::new();
        let a = q.register();
        let b = q.register();
        q.submit(b, 10, "b@10").unwrap();
        // `a` has submitted nothing: b@10 must wait (a could submit at 1).
        assert_eq!(q.try_pop(), None);
        q.submit(a, 3, "a@3").unwrap();
        // a@3 is deliverable (b is at 10); b@10 still waits for a.
        assert_eq!(q.try_pop(), Some("a@3"));
        assert_eq!(q.try_pop(), None);
        q.close(a);
        assert_eq!(q.try_pop(), Some("b@10"));
    }

    #[test]
    fn equal_timestamps_deliver_in_producer_order() {
        let q = SequencedQueue::new();
        let a = q.register();
        let b = q.register();
        q.submit(b, 5, "b@5").unwrap();
        q.submit(a, 5, "a@5").unwrap();
        // Both producers are at 5; strict monotonicity forbids either from
        // submitting at 5 again, so both are deliverable — a first.
        assert_eq!(q.try_pop(), Some("a@5"));
        assert_eq!(q.try_pop(), Some("b@5"));
    }

    #[test]
    fn monotonicity_and_close_are_enforced() {
        let q = SequencedQueue::new();
        let p = q.register();
        q.submit(p, 2, ()).unwrap();
        assert_eq!(
            q.submit(p, 2, ()),
            Err(SequenceError::NonMonotonicTimestamp { last: 2, submitted: 2 })
        );
        assert_eq!(
            q.submit(p, 1, ()),
            Err(SequenceError::NonMonotonicTimestamp { last: 2, submitted: 1 })
        );
        q.close(p);
        q.close(p); // idempotent
        assert_eq!(q.submit(p, 3, ()), Err(SequenceError::Closed));
    }

    /// Shed-at-the-watermark: a refused submission still advances the
    /// producer's watermark, so other producers' items become deliverable
    /// exactly as if the shed item had been accepted and delivered.
    #[test]
    fn sheds_advance_the_watermark() {
        let q = SequencedQueue::bounded(1);
        let a = q.register();
        let b = q.register();
        q.submit(b, 5, "b@5").unwrap();
        // b@5 must wait: `a` is open and has submitted nothing.
        assert_eq!(q.try_pop(), None);
        assert_eq!(q.submit(a, 1, "a@1").unwrap(), Admission::Accepted);
        assert_eq!(q.submit(a, 9, "a@9").unwrap(), Admission::Shed, "capacity 1 is exhausted");
        assert_eq!(q.last_timestamp(a), Some(9), "the shed still promised `nothing before 9`");
        assert_eq!(q.shed_count(a), 1);
        assert_eq!(q.shed_total(), 1);
        // a@1 delivers first (b is at 5), and then — because a's watermark
        // moved to 9 *despite the shed* — b@5 delivers without a closing.
        assert_eq!(q.try_pop(), Some("a@1"));
        assert_eq!(q.try_pop(), Some("b@5"));
        // Monotonicity now binds against the shed timestamp, not the last
        // accepted one.
        assert_eq!(
            q.submit(a, 9, "a@9 again"),
            Err(SequenceError::NonMonotonicTimestamp { last: 9, submitted: 9 })
        );
    }

    /// Per-producer bounds are the fairness mechanism: a flooding producer
    /// sheds only its own traffic, and every other producer's submissions are
    /// admitted and delivered exactly as on an unbounded queue.
    #[test]
    fn bounded_queue_sheds_only_the_flooding_producer() {
        let q = SequencedQueue::bounded(4);
        let flooder = q.register();
        let steady = q.register();
        // The flooder dumps 16 submissions without anyone consuming.
        let mut accepted = 0;
        for t in 1..=16u64 {
            if q.submit(flooder, t, (0usize, t)).unwrap() == Admission::Accepted {
                accepted += 1;
            }
        }
        assert_eq!(accepted, 4, "only `capacity` items fit while nothing drains");
        assert_eq!(q.shed_count(flooder), 12);
        // The steady producer interleaves at later timestamps: all admitted.
        for t in 17..=20u64 {
            assert_eq!(q.submit(steady, t, (1usize, t)).unwrap(), Admission::Accepted);
        }
        assert_eq!(q.shed_count(steady), 0, "the flood must not steal the steady client's slots");
        q.close(flooder);
        q.close(steady);
        let mut out = Vec::new();
        while let Some(item) = q.pop() {
            out.push(item);
        }
        // The flooder's *accepted prefix* and the steady producer's full
        // submission sequence drain in total order.
        assert_eq!(out, vec![(0, 1), (0, 2), (0, 3), (0, 4), (1, 17), (1, 18), (1, 19), (1, 20)]);
    }

    /// Capacity 1 alternates accept/shed under a flood, and draining reopens
    /// the slot: shed is about *pending* load, not a permanent penalty.
    #[test]
    fn capacity_one_drains_after_shed() {
        let q = SequencedQueue::bounded(1);
        let p = q.register();
        assert_eq!(q.submit(p, 1, 1u64).unwrap(), Admission::Accepted);
        assert_eq!(q.submit(p, 2, 2).unwrap(), Admission::Shed);
        assert_eq!(q.submit(p, 3, 3).unwrap(), Admission::Shed);
        assert_eq!(q.try_pop(), Some(1));
        // The pending slot is free again.
        assert_eq!(q.submit(p, 4, 4).unwrap(), Admission::Accepted);
        assert_eq!(q.submit(p, 5, 5).unwrap(), Admission::Shed);
        assert_eq!(q.try_pop(), Some(4));
        q.close(p);
        assert_eq!(q.pop(), None);
        assert!(q.is_drained());
        assert_eq!(q.shed_count(p), 3);
        assert_eq!(SequencedQueue::<u64>::bounded(1).capacity(), Some(1));
        assert_eq!(SequencedQueue::<u64>::new().capacity(), None);
    }

    #[test]
    #[should_panic(expected = "at least one item")]
    fn zero_capacity_is_rejected() {
        let _ = SequencedQueue::<u64>::bounded(0);
    }

    /// Watermark monotonicity under racing producers and a racing consumer:
    /// whatever interleaving the OS produces, (a) every delivered sequence is
    /// strictly increasing in the `(at, producer)` total order — sheds never
    /// let an earlier-sorting item slip out after a later one — and (b) each
    /// producer's final watermark covers its last submission even when that
    /// submission was shed.
    #[test]
    fn watermark_stays_monotone_under_racing_producers_with_sheds() {
        for _round in 0..4 {
            let q = Arc::new(SequencedQueue::bounded(2));
            let producers: Vec<ProducerId> = (0..3).map(|_| q.register()).collect();
            std::thread::scope(|scope| {
                for (c, &pid) in producers.iter().enumerate() {
                    let q = Arc::clone(&q);
                    scope.spawn(move || {
                        let mut last_watermark = None;
                        for j in 0..40u64 {
                            let at = 1 + j * 3 + c as u64;
                            q.submit(pid, at, (at, c)).unwrap();
                            let seen = q.last_timestamp(pid);
                            assert!(seen >= Some(at), "watermark must cover every submission");
                            assert!(seen >= last_watermark, "watermark must never regress");
                            last_watermark = seen;
                        }
                        q.close(pid);
                    });
                }
                let mut out: Vec<(u64, usize)> = Vec::new();
                while let Some(item) = q.pop() {
                    out.push(item);
                }
                assert!(
                    out.windows(2).all(|w| (w[0].0, w[0].1) < (w[1].0, w[1].1)),
                    "delivery must follow the total order even around sheds"
                );
                let delivered = out.len() as u64;
                assert_eq!(
                    delivered + q.shed_total(),
                    3 * 40,
                    "every submission sheds or delivers"
                );
            });
            for &pid in &producers {
                // Final watermark = the last submission (1 + 39*3 + c), shed or not.
                assert_eq!(q.last_timestamp(pid), Some(118 + pid.index() as u64));
            }
        }
    }

    /// The determinism claim itself: racing producer threads always yield
    /// the same consumption order.
    #[test]
    fn racing_producers_always_drain_in_the_same_order() {
        let expected: Vec<(u64, usize)> = {
            // The total order of the schedule below, computed by sorting.
            let mut all: Vec<(u64, usize)> = (0..4usize)
                .flat_map(|c| (0..25u64).map(move |j| (1 + j * 4 + c as u64, c)))
                .collect();
            all.sort();
            all
        };
        for _round in 0..8 {
            let q = Arc::new(SequencedQueue::new());
            let producers: Vec<ProducerId> = (0..4).map(|_| q.register()).collect();
            std::thread::scope(|scope| {
                for (c, &pid) in producers.iter().enumerate() {
                    let q = Arc::clone(&q);
                    scope.spawn(move || {
                        for j in 0..25u64 {
                            let at = 1 + j * 4 + c as u64;
                            q.submit(pid, at, (at, c)).unwrap();
                            if j % 7 == c as u64 % 7 {
                                std::thread::yield_now();
                            }
                        }
                        q.close(pid);
                    });
                }
                let mut out = Vec::new();
                while let Some(item) = q.pop() {
                    out.push(item);
                }
                assert_eq!(out, expected, "drain order must not depend on thread timing");
            });
        }
    }
}
