//! Parallel per-module execution runtime for the Moctopus engines.
//!
//! The paper's speedups come from hundreds of PIM modules working
//! concurrently, yet a simulator is free to walk every module's work on one
//! host thread — correct, but the wall-clock of a `summary --scale 1` run is
//! then bounded by a single core while the *simulated* numbers describe a
//! massively parallel machine. This crate closes that gap: a dependency-free
//! scoped-thread worker pool ([`WorkerPool`]) executes per-module work in
//! parallel while the simulated cost model stays **byte-identical** at any
//! thread count.
//!
//! The crate's second primitive extends the same philosophy from *execution*
//! to *arrival*: [`SequencedQueue`] merges request streams from many
//! concurrent producer threads into one deterministic total order keyed by
//! logical timestamps, so a serving layer (the `moctopus-server` crate) can
//! accept racing clients and still produce byte-identical runs (see
//! [`sequence`]).
//!
//! # The determinism contract
//!
//! Callers (the hop loops in `moctopus::distributed`, the matrix chains in
//! `moctopus::HostBaseline`) keep same-seed output byte-identical by obeying
//! three rules, documented in depth in the repository's CONCURRENCY.md:
//!
//! 1. **Disjoint ownership** — each worker owns a contiguous slice of PIM
//!    modules ([`chunk_ranges`]) plus, for worker 0, the host lane. A worker
//!    only accumulates into the accumulator slots it owns, and it visits the
//!    work items feeding each slot in the same global order the sequential
//!    loop would, so every floating-point accumulator receives its additions
//!    in the sequential order.
//! 2. **Private scratch** — dedup marks, frontier buffers, and the per-worker
//!    `StatsDelta` accumulators are owned by the worker (handed in through
//!    [`WorkerPool::run_with`]'s per-worker contexts); nothing is shared
//!    mutably during the parallel section.
//! 3. **Id-ordered merge** — worker outputs are reduced on the calling thread
//!    in ascending worker id order. Merging adds exact zeros into the slots a
//!    worker does not own (IEEE-754 `0.0 + x == x` for the non-negative
//!    simulated times involved), so the merged accumulators equal the
//!    sequential ones bit for bit.
//!
//! # Examples
//!
//! ```
//! use moctopus_runtime::{chunk_ranges, WorkerPool};
//!
//! // Sum disjoint slices of a vector on 4 workers, merging in worker order.
//! let data: Vec<u64> = (0..1000).collect();
//! let pool = WorkerPool::new(4);
//! let ranges = chunk_ranges(data.len(), pool.threads());
//! let mut ctxs: Vec<u64> = vec![0; ranges.len()];
//! pool.run_with(&mut ctxs, |w, acc| {
//!     *acc = data[ranges[w].clone()].iter().sum();
//! });
//! assert_eq!(ctxs.iter().sum::<u64>(), 499_500);
//! ```

pub mod sequence;

pub use sequence::{Admission, ProducerId, SequenceError, SequencedQueue};

use std::num::NonZeroUsize;
use std::ops::Range;

/// A scoped-thread worker pool with a fixed thread count.
///
/// The pool is a *policy* object, not a set of live threads: each parallel
/// region spawns scoped workers (`std::thread::scope`), runs worker 0 on the
/// calling thread, and joins everything before returning, so borrowed data
/// can flow into workers without `'static` bounds or unsafe erasure. With a
/// thread count of 1 (or a single context) no thread is ever spawned and the
/// closure runs inline — the sequential path *is* the parallel path.
///
/// # Examples
///
/// ```
/// use moctopus_runtime::WorkerPool;
///
/// let pool = WorkerPool::new(2);
/// let mut partials = vec![0u32; 2];
/// let results = pool.run_with(&mut partials, |worker, p| {
///     *p = worker as u32 + 1;
///     worker
/// });
/// assert_eq!(results, vec![0, 1]); // outputs are in worker-id order
/// assert_eq!(partials, vec![1, 2]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerPool {
    threads: usize,
}

impl WorkerPool {
    /// Creates a pool that runs parallel regions on `threads` workers.
    ///
    /// `threads == 0` means "use [`WorkerPool::available_parallelism`]", so
    /// callers can expose a `--threads` flag whose default follows the
    /// machine. Any other value is taken literally (it may exceed the core
    /// count; the OS then time-slices).
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 { Self::available_parallelism() } else { threads };
        WorkerPool { threads }
    }

    /// The number of hardware threads the current process can use, with a
    /// floor of 1 (mirrors `std::thread::available_parallelism`, which errors
    /// on exotic platforms instead of guessing).
    pub fn available_parallelism() -> usize {
        std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
    }

    /// The worker count parallel regions of this pool are planned for.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f(worker_id, &mut ctxs[worker_id])` for every context, in
    /// parallel, and returns the closure outputs **in worker-id order**.
    ///
    /// The context slice defines how many workers actually run: callers size
    /// it to `min(self.threads(), useful_parallelism)`. Worker 0 executes on
    /// the calling thread; workers `1..` run on scoped threads that are
    /// joined (in id order) before the call returns, so `f` may borrow
    /// non-`'static` data freely. With zero contexts nothing runs; with one
    /// context `f` is called inline and no thread is spawned.
    ///
    /// Each worker gets exclusive `&mut` access to its own context — this is
    /// where callers hand every worker its private scratch (rule 2 of the
    /// determinism contract) — while `f` itself only needs `&self`-style
    /// shared captures.
    ///
    /// # Panics
    ///
    /// If a worker panics, the panic is resumed on the calling thread after
    /// the remaining workers are joined (no result is silently dropped).
    pub fn run_with<C, T, F>(&self, ctxs: &mut [C], f: F) -> Vec<T>
    where
        C: Send,
        T: Send,
        F: Fn(usize, &mut C) -> T + Sync,
    {
        match ctxs {
            [] => Vec::new(),
            [only] => vec![f(0, only)],
            [first, rest @ ..] => std::thread::scope(|scope| {
                let f = &f;
                let handles: Vec<_> = rest
                    .iter_mut()
                    .enumerate()
                    .map(|(i, ctx)| scope.spawn(move || f(i + 1, ctx)))
                    .collect();
                let mut results = Vec::with_capacity(handles.len() + 1);
                results.push(f(0, first));
                // Join in worker-id order; a worker panic is re-raised here
                // once every sibling has been joined by the scope.
                for handle in handles {
                    match handle.join() {
                        Ok(value) => results.push(value),
                        Err(payload) => std::panic::resume_unwind(payload),
                    }
                }
                results
            }),
        }
    }

    /// Convenience wrapper over [`WorkerPool::run_with`] for workers that
    /// need no per-worker context: runs `f(worker_id)` for `workers` workers
    /// and returns the outputs in worker-id order.
    pub fn run<T, F>(&self, workers: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let mut ctxs = vec![(); workers];
        self.run_with(&mut ctxs, |worker, ()| f(worker))
    }

    /// The number of workers a parallel region over `items` work items should
    /// use: `min(threads, items)`, with a floor of 1 so degenerate regions
    /// still produce one (empty) worker output to merge.
    pub fn workers_for(&self, items: usize) -> usize {
        self.threads.min(items).max(1)
    }
}

impl Default for WorkerPool {
    /// A single-threaded pool (the deterministic baseline configuration).
    fn default() -> Self {
        WorkerPool::new(1)
    }
}

/// Splits `0..len` into `parts` contiguous ranges whose lengths differ by at
/// most one (the first `len % parts` ranges are one longer).
///
/// This is the ownership map of determinism rule 1: item `i` belongs to
/// exactly one range, ranges are in ascending order, and the split depends
/// only on `(len, parts)` — never on timing — so the same inputs always
/// produce the same ownership. `parts` may exceed `len`; trailing ranges are
/// then empty (their workers idle).
///
/// # Examples
///
/// ```
/// use moctopus_runtime::chunk_ranges;
/// assert_eq!(chunk_ranges(7, 3), vec![0..3, 3..5, 5..7]);
/// assert_eq!(chunk_ranges(2, 4), vec![0..1, 1..2, 2..2, 2..2]);
/// assert_eq!(chunk_ranges(0, 2), vec![0..0, 0..0]);
/// ```
///
/// # Panics
///
/// Panics if `parts == 0`.
pub fn chunk_ranges(len: usize, parts: usize) -> Vec<Range<usize>> {
    assert!(parts > 0, "cannot split a range into zero parts");
    let base = len / parts;
    let extra = len % parts;
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0;
    for part in 0..parts {
        let size = base + usize::from(part < extra);
        ranges.push(start..start + size);
        start += size;
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn zero_threads_means_available_parallelism() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.threads(), WorkerPool::available_parallelism());
        assert!(pool.threads() >= 1);
    }

    #[test]
    fn default_pool_is_single_threaded() {
        assert_eq!(WorkerPool::default().threads(), 1);
    }

    #[test]
    fn run_with_returns_outputs_in_worker_order() {
        for threads in [1, 2, 4, 8] {
            let pool = WorkerPool::new(threads);
            let mut ctxs = vec![0usize; threads];
            let out = pool.run_with(&mut ctxs, |worker, ctx| {
                *ctx = worker * 10;
                worker
            });
            assert_eq!(out, (0..threads).collect::<Vec<_>>());
            assert_eq!(ctxs, (0..threads).map(|w| w * 10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn run_with_handles_empty_and_single_context() {
        let pool = WorkerPool::new(4);
        let out: Vec<usize> = pool.run_with(&mut [], |w, ()| w);
        assert!(out.is_empty());
        let main_thread = std::thread::current().id();
        let mut one = [0u8];
        let out = pool.run_with(&mut one, |_, _| std::thread::current().id());
        assert_eq!(out, vec![main_thread], "a single context must run inline");
    }

    #[test]
    fn workers_share_borrowed_data() {
        let data: Vec<u64> = (0..100).collect();
        let pool = WorkerPool::new(3);
        let ranges = chunk_ranges(data.len(), 3);
        let sums = pool.run(3, |w| data[ranges[w].clone()].iter().sum::<u64>());
        assert_eq!(sums.iter().sum::<u64>(), 4950);
    }

    #[test]
    fn run_counts_every_worker_exactly_once() {
        let counter = AtomicUsize::new(0);
        let pool = WorkerPool::new(8);
        pool.run(8, |_| {
            counter.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn workers_for_clamps_to_items_and_floor() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.workers_for(100), 4);
        assert_eq!(pool.workers_for(2), 2);
        assert_eq!(pool.workers_for(0), 1);
    }

    #[test]
    #[should_panic(expected = "worker boom")]
    fn worker_panics_propagate() {
        let pool = WorkerPool::new(2);
        pool.run(2, |w| {
            if w == 1 {
                panic!("worker boom");
            }
        });
    }

    #[test]
    fn chunk_ranges_cover_the_input_exactly() {
        for len in [0usize, 1, 7, 64, 1000] {
            for parts in [1usize, 2, 3, 8, 13] {
                let ranges = chunk_ranges(len, parts);
                assert_eq!(ranges.len(), parts);
                let mut expected_start = 0;
                for r in &ranges {
                    assert_eq!(r.start, expected_start, "ranges must be contiguous");
                    expected_start = r.end;
                }
                assert_eq!(expected_start, len, "ranges must cover 0..len");
                let sizes: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
                let min = sizes.iter().min().unwrap();
                let max = sizes.iter().max().unwrap();
                assert!(max - min <= 1, "len {len} parts {parts}: sizes {sizes:?}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "zero parts")]
    fn chunk_ranges_rejects_zero_parts() {
        let _ = chunk_ranges(4, 0);
    }
}
