//! The property-graph data model.
//!
//! Graph databases represent data with the property graph model: nodes are
//! entities, directed edges are relationships, and both carry labels and
//! property/value pairs. The paper strips non-essential features down to an
//! adjacency matrix for path matching; this module keeps the full model so the
//! examples can show realistic ingestion (e.g. the routing-connection graph of
//! Figure 2 with `ip` properties) while the query engines operate on the
//! simplified adjacency view extracted by [`PropertyGraph::to_adjacency`].

use crate::adjacency::AdjacencyGraph;
use crate::error::GraphStoreError;
use crate::ids::{Label, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// A property value attached to a node or an edge.
///
/// # Examples
///
/// ```
/// use graph_store::PropertyValue;
/// let v = PropertyValue::from("127.0.0.1");
/// assert_eq!(v.as_str(), Some("127.0.0.1"));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PropertyValue {
    /// UTF-8 string value.
    Text(String),
    /// 64-bit signed integer value.
    Int(i64),
    /// 64-bit float value.
    Float(f64),
    /// Boolean value.
    Bool(bool),
}

impl PropertyValue {
    /// Returns the string content if this value is [`PropertyValue::Text`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            PropertyValue::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the integer content if this value is [`PropertyValue::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            PropertyValue::Int(v) => Some(*v),
            _ => None,
        }
    }
}

impl From<&str> for PropertyValue {
    fn from(s: &str) -> Self {
        PropertyValue::Text(s.to_owned())
    }
}

impl From<String> for PropertyValue {
    fn from(s: String) -> Self {
        PropertyValue::Text(s)
    }
}

impl From<i64> for PropertyValue {
    fn from(v: i64) -> Self {
        PropertyValue::Int(v)
    }
}

impl From<f64> for PropertyValue {
    fn from(v: f64) -> Self {
        PropertyValue::Float(v)
    }
}

impl From<bool> for PropertyValue {
    fn from(v: bool) -> Self {
        PropertyValue::Bool(v)
    }
}

impl fmt::Display for PropertyValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PropertyValue::Text(s) => write!(f, "{s}"),
            PropertyValue::Int(v) => write!(f, "{v}"),
            PropertyValue::Float(v) => write!(f, "{v}"),
            PropertyValue::Bool(v) => write!(f, "{v}"),
        }
    }
}

/// Properties of a single node.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct NodeRecord {
    /// Node label (entity type), e.g. `Host`, `Person`.
    pub label: String,
    /// Property/value pairs describing the entity.
    pub properties: HashMap<String, PropertyValue>,
}

/// Properties of a single directed edge.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EdgeRecord {
    /// Relationship label id used by the RPQ engine.
    pub label: Label,
    /// Property/value pairs describing the relationship.
    pub properties: HashMap<String, PropertyValue>,
}

/// An in-memory property graph: nodes and relationships with attributes.
///
/// # Examples
///
/// ```
/// use graph_store::{PropertyGraph, PropertyValue, Label, NodeId};
///
/// let mut g = PropertyGraph::new();
/// let a = g.add_node("Host", [("ip", PropertyValue::from("10.0.0.1"))]);
/// let b = g.add_node("Host", [("ip", PropertyValue::from("10.0.0.2"))]);
/// g.add_edge(a, b, Label(0))?;
/// assert_eq!(g.node_count(), 2);
/// let adj = g.to_adjacency();
/// assert_eq!(adj.edge_count(), 1);
/// # Ok::<(), graph_store::GraphStoreError>(())
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PropertyGraph {
    nodes: HashMap<NodeId, NodeRecord>,
    edges: HashMap<(NodeId, NodeId, Label), EdgeRecord>,
    next_id: u64,
}

impl PropertyGraph {
    /// Creates an empty property graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node with the given entity label and properties, returning its id.
    pub fn add_node<K, I>(&mut self, label: &str, props: I) -> NodeId
    where
        K: Into<String>,
        I: IntoIterator<Item = (K, PropertyValue)>,
    {
        let id = NodeId(self.next_id);
        self.next_id += 1;
        self.nodes.insert(
            id,
            NodeRecord {
                label: label.to_owned(),
                properties: props.into_iter().map(|(k, v)| (k.into(), v)).collect(),
            },
        );
        id
    }

    /// Adds a directed relationship between two existing nodes.
    ///
    /// # Errors
    ///
    /// Returns [`GraphStoreError::NodeNotFound`] if either endpoint is unknown
    /// and [`GraphStoreError::DuplicateEdge`] if the relationship already
    /// exists with the same label.
    pub fn add_edge(
        &mut self,
        src: NodeId,
        dst: NodeId,
        label: Label,
    ) -> Result<(), GraphStoreError> {
        if !self.nodes.contains_key(&src) {
            return Err(GraphStoreError::NodeNotFound(src));
        }
        if !self.nodes.contains_key(&dst) {
            return Err(GraphStoreError::NodeNotFound(dst));
        }
        if self.edges.contains_key(&(src, dst, label)) {
            return Err(GraphStoreError::DuplicateEdge(src, dst));
        }
        self.edges.insert((src, dst, label), EdgeRecord { label, properties: HashMap::new() });
        Ok(())
    }

    /// Looks up a node record.
    pub fn node(&self, id: NodeId) -> Option<&NodeRecord> {
        self.nodes.get(&id)
    }

    /// Returns the lowest-id node whose property `key` equals `value`.
    ///
    /// This is a full scan — property indexes are out of scope for the
    /// reproduction — and is only used by examples for readability. The
    /// lowest id (not the first hash-order hit) is returned so repeated
    /// runs resolve multi-match lookups identically.
    pub fn find_by_property(&self, key: &str, value: &PropertyValue) -> Option<NodeId> {
        // moctopus-lint: allow(hash-iter-order, reason = "reduced with min(): the lowest matching id is order-independent")
        self.nodes
            .iter()
            .filter(|(_, rec)| rec.properties.get(key) == Some(value))
            .map(|(&id, _)| id)
            .min()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of relationships.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Extracts the simplified adjacency view used by the query engines.
    ///
    /// Labels are preserved; node/edge properties are dropped, mirroring the
    /// paper's simplification of the property graph to an adjacency matrix.
    /// Nodes and edges are inserted in sorted order so the view's row layout
    /// (and therefore its row-scan and snapshot bytes) is identical on every
    /// run — the adjacency rows preserve insertion order verbatim.
    pub fn to_adjacency(&self) -> AdjacencyGraph {
        let mut g = AdjacencyGraph::with_capacity(self.nodes.len());
        // moctopus-lint: allow(hash-iter-order, reason = "collected and sorted before insertion two lines below")
        let mut ids: Vec<NodeId> = self.nodes.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            g.note_node(id);
        }
        // moctopus-lint: allow(hash-iter-order, reason = "collected and sorted before insertion two lines below")
        let mut edge_keys: Vec<(NodeId, NodeId, Label)> = self.edges.keys().copied().collect();
        edge_keys.sort_unstable();
        for (s, d, l) in edge_keys {
            g.insert_edge(s, d, l);
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn routing_graph() -> (PropertyGraph, Vec<NodeId>) {
        // Miniature version of the Figure 2 routing-connection graph.
        let mut g = PropertyGraph::new();
        let ids: Vec<NodeId> = (0..5)
            .map(|i| g.add_node("Host", [("ip", PropertyValue::from(format!("127.0.0.{i}")))]))
            .collect();
        g.add_edge(ids[0], ids[1], Label(0)).unwrap();
        g.add_edge(ids[1], ids[2], Label(0)).unwrap();
        g.add_edge(ids[2], ids[3], Label(0)).unwrap();
        g.add_edge(ids[3], ids[4], Label(0)).unwrap();
        (g, ids)
    }

    #[test]
    fn add_node_assigns_sequential_ids() {
        let (_, ids) = routing_graph();
        assert_eq!(ids, vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3), NodeId(4)]);
    }

    #[test]
    fn add_edge_requires_existing_endpoints() {
        let (mut g, ids) = routing_graph();
        let err = g.add_edge(ids[0], NodeId(999), Label(0)).unwrap_err();
        assert_eq!(err, GraphStoreError::NodeNotFound(NodeId(999)));
    }

    #[test]
    fn add_edge_rejects_duplicates() {
        let (mut g, ids) = routing_graph();
        let err = g.add_edge(ids[0], ids[1], Label(0)).unwrap_err();
        assert!(matches!(err, GraphStoreError::DuplicateEdge(_, _)));
    }

    #[test]
    fn find_by_property_scans_nodes() {
        let (g, ids) = routing_graph();
        let hit = g.find_by_property("ip", &PropertyValue::from("127.0.0.3"));
        assert_eq!(hit, Some(ids[3]));
        assert_eq!(g.find_by_property("ip", &PropertyValue::from("10.1.1.1")), None);
    }

    #[test]
    fn to_adjacency_preserves_structure() {
        let (g, _) = routing_graph();
        let adj = g.to_adjacency();
        assert_eq!(adj.node_count(), g.node_count());
        assert_eq!(adj.edge_count(), g.edge_count());
        assert_eq!(adj.out_degree(NodeId(0)), 1);
    }

    #[test]
    fn property_value_conversions() {
        assert_eq!(PropertyValue::from(3i64).as_int(), Some(3));
        assert_eq!(PropertyValue::from("x").as_str(), Some("x"));
        assert_eq!(PropertyValue::from(true), PropertyValue::Bool(true));
        assert_eq!(PropertyValue::from(2.5f64), PropertyValue::Float(2.5));
        assert_eq!(PropertyValue::from(String::from("y")).to_string(), "y");
        assert_eq!(PropertyValue::Int(9).to_string(), "9");
    }

    #[test]
    fn node_lookup_returns_record() {
        let (g, ids) = routing_graph();
        let rec = g.node(ids[2]).unwrap();
        assert_eq!(rec.label, "Host");
        assert_eq!(rec.properties["ip"].as_str(), Some("127.0.0.2"));
        assert!(g.node(NodeId(1000)).is_none());
    }
}
