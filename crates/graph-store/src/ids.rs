//! Strongly-typed identifiers shared by every crate in the workspace.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a graph node (a row of the adjacency matrix).
///
/// Node ids are dense `u64` values assigned by the ingestion layer. They are
/// newtyped so that node ids, partition ids, and labels can never be mixed up
/// at compile time.
///
/// # Examples
///
/// ```
/// use graph_store::NodeId;
/// let n = NodeId(42);
/// assert_eq!(n.index(), 42);
/// assert_eq!(format!("{n}"), "n42");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct NodeId(pub u64);

impl NodeId {
    /// Returns the id as a `usize` index, for dense array addressing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u64> for NodeId {
    fn from(v: u64) -> Self {
        NodeId(v)
    }
}

impl From<usize> for NodeId {
    fn from(v: usize) -> Self {
        NodeId(v as u64)
    }
}

/// Identifier of a computing node that owns a slice of the graph.
///
/// The host CPU and every PIM module are computing nodes; the paper's
/// `node_partition_vector` stores one of these per graph node.
///
/// # Examples
///
/// ```
/// use graph_store::PartitionId;
/// assert!(PartitionId::HOST.is_host());
/// assert!(!PartitionId::Pim(3).is_host());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum PartitionId {
    /// The host CPU partition (stores high-degree nodes).
    Host,
    /// A PIM module, identified by its rank-local index.
    Pim(u32),
}

impl PartitionId {
    /// The host partition, provided as an associated constant for readability.
    pub const HOST: PartitionId = PartitionId::Host;

    /// Returns `true` if this partition is the host CPU.
    #[inline]
    pub fn is_host(self) -> bool {
        matches!(self, PartitionId::Host)
    }

    /// Returns the PIM module index, or `None` for the host partition.
    #[inline]
    pub fn pim_index(self) -> Option<u32> {
        match self {
            PartitionId::Host => None,
            PartitionId::Pim(i) => Some(i),
        }
    }
}

impl Default for PartitionId {
    fn default() -> Self {
        PartitionId::Pim(0)
    }
}

impl fmt::Display for PartitionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionId::Host => write!(f, "host"),
            PartitionId::Pim(i) => write!(f, "pim{i}"),
        }
    }
}

/// An edge label (relationship type) in the property-graph model.
///
/// Regular path queries are regular expressions over these labels. Label `0`
/// is the default/untyped relationship used by plain k-hop queries.
///
/// # Examples
///
/// ```
/// use graph_store::Label;
/// let knows = Label(1);
/// assert_ne!(knows, Label::default());
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Label(pub u16);

impl Label {
    /// The default (untyped) relationship label.
    pub const ANY: Label = Label(0);
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

impl From<u16> for Label {
    fn from(v: u16) -> Self {
        Label(v)
    }
}

/// A directed edge expressed as a `(source, destination)` pair.
pub type EdgeKey = (NodeId, NodeId);

/// A directed labelled edge expressed as a `(source, destination, label)`
/// triple.
///
/// Used as the key of the heterogeneous storage's `elem_position_map`: the
/// same node pair may be connected under several labels, and each such edge
/// occupies its own slot.
pub type LabeledEdgeKey = (NodeId, NodeId, Label);

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn node_id_roundtrip() {
        let n: NodeId = 7u64.into();
        assert_eq!(n.index(), 7);
        assert_eq!(NodeId::from(7usize), n);
    }

    #[test]
    fn node_id_display() {
        assert_eq!(NodeId(3).to_string(), "n3");
    }

    #[test]
    fn partition_id_host_and_pim() {
        assert!(PartitionId::HOST.is_host());
        assert_eq!(PartitionId::HOST.pim_index(), None);
        assert_eq!(PartitionId::Pim(5).pim_index(), Some(5));
        assert!(!PartitionId::Pim(5).is_host());
    }

    #[test]
    fn partition_id_display() {
        assert_eq!(PartitionId::Host.to_string(), "host");
        assert_eq!(PartitionId::Pim(2).to_string(), "pim2");
    }

    #[test]
    fn label_default_is_any() {
        assert_eq!(Label::default(), Label::ANY);
        assert_eq!(Label::from(4u16), Label(4));
    }

    #[test]
    fn ids_are_hashable_and_ordered() {
        let mut set = HashSet::new();
        set.insert(NodeId(1));
        set.insert(NodeId(1));
        set.insert(NodeId(2));
        assert_eq!(set.len(), 2);
        assert!(NodeId(1) < NodeId(2));
        assert!(PartitionId::Host < PartitionId::Pim(0));
    }
}
