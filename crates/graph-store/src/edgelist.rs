//! Plain edge-list import/export.
//!
//! The SNAP datasets the paper evaluates on are distributed as whitespace
//! separated `src dst` text files with `#` comment lines. This module parses
//! and emits that format so externally downloaded traces can be dropped in as
//! a substitute for the synthetic generators.

use crate::adjacency::AdjacencyGraph;
use crate::error::GraphStoreError;
use crate::ids::{Label, NodeId};
use std::collections::HashMap;
use std::io::{BufRead, Write};
use std::path::Path;

/// Parses a SNAP-style edge list from a reader.
///
/// Lines starting with `#` (or empty lines) are ignored; every other line must
/// contain two unsigned integers separated by whitespace.
///
/// # Errors
///
/// Returns [`GraphStoreError::ParseEdgeList`] for malformed lines and
/// propagates I/O errors as parse errors containing the I/O message.
///
/// # Examples
///
/// ```
/// use graph_store::edgelist::read_edge_list;
/// let text = "# comment\n0 1\n1 2\n";
/// let g = read_edge_list(text.as_bytes())?;
/// assert_eq!(g.edge_count(), 2);
/// # Ok::<(), graph_store::GraphStoreError>(())
/// ```
pub fn read_edge_list<R: BufRead>(reader: R) -> Result<AdjacencyGraph, GraphStoreError> {
    let mut graph = AdjacencyGraph::new();
    for line in reader.lines() {
        let line = line.map_err(|e| GraphStoreError::ParseEdgeList(e.to_string()))?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let src = parts
            .next()
            .and_then(|t| t.parse::<u64>().ok())
            .ok_or_else(|| GraphStoreError::ParseEdgeList(line.clone()))?;
        let dst = parts
            .next()
            .and_then(|t| t.parse::<u64>().ok())
            .ok_or_else(|| GraphStoreError::ParseEdgeList(line.clone()))?;
        graph.insert_edge(NodeId(src), NodeId(dst), Label::ANY);
    }
    Ok(graph)
}

/// Writes a graph as a SNAP-style edge list.
///
/// # Errors
///
/// Returns [`GraphStoreError::ParseEdgeList`] wrapping any I/O error message.
pub fn write_edge_list<W: Write>(
    graph: &AdjacencyGraph,
    mut writer: W,
) -> Result<(), GraphStoreError> {
    let mut edges = graph.to_sorted_edges();
    edges.dedup();
    for (s, d, _) in edges {
        writeln!(writer, "{} {}", s.0, d.0)
            .map_err(|e| GraphStoreError::ParseEdgeList(e.to_string()))?;
    }
    Ok(())
}

/// A labelled edge list loaded from a SNAP-style file, with the original
/// node ids compacted into a dense `0..node_count` range.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EdgeListLoad {
    /// The labelled edges in file order, endpoints remapped to compact ids.
    pub edges: Vec<(NodeId, NodeId, Label)>,
    /// Compact id → original file id, in first-appearance order. The
    /// compaction is deterministic: the n-th distinct id the file mentions
    /// (reading top to bottom, `src` before `dst`) becomes `NodeId(n)`.
    pub id_map: Vec<u64>,
    /// Data lines parsed (comments and blanks excluded).
    pub lines: usize,
}

impl EdgeListLoad {
    /// Number of distinct nodes the file mentioned.
    pub fn node_count(&self) -> usize {
        self.id_map.len()
    }
}

/// Parses a SNAP-style labelled edge list: `src dst [label]` per line.
///
/// Lines starting with `#` (or empty lines) are ignored. The third column is
/// optional and defaults to [`Label::ANY`]; files mixing labelled and
/// unlabelled lines are accepted. Node ids are compacted deterministically in
/// first-appearance order (see [`EdgeListLoad::id_map`]), so sparse SNAP id
/// spaces map onto the dense ids the partition vector is sized by.
///
/// # Errors
///
/// Returns [`GraphStoreError::ParseEdgeList`] naming the offending line and
/// its number for malformed input, and [`GraphStoreError::Io`]-style context
/// via the caller for I/O failures (see [`load_labeled_edge_list_file`]).
///
/// # Examples
///
/// ```
/// use graph_store::edgelist::read_labeled_edge_list;
/// use graph_store::{Label, NodeId};
/// let text = "# comment\n10 30\n30 10 2\n";
/// let load = read_labeled_edge_list(text.as_bytes())?;
/// assert_eq!(load.edges, vec![
///     (NodeId(0), NodeId(1), Label::ANY),
///     (NodeId(1), NodeId(0), Label(2)),
/// ]);
/// assert_eq!(load.id_map, vec![10, 30]);
/// # Ok::<(), graph_store::GraphStoreError>(())
/// ```
pub fn read_labeled_edge_list<R: BufRead>(reader: R) -> Result<EdgeListLoad, GraphStoreError> {
    let mut load = EdgeListLoad::default();
    let mut compact: HashMap<u64, NodeId> = HashMap::new();
    let mut intern = |raw: u64, id_map: &mut Vec<u64>| -> NodeId {
        *compact.entry(raw).or_insert_with(|| {
            id_map.push(raw);
            NodeId(id_map.len() as u64 - 1)
        })
    };
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| GraphStoreError::ParseEdgeList(e.to_string()))?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let bad = || GraphStoreError::ParseEdgeList(format!("line {}: {line:?}", lineno + 1));
        let mut parts = trimmed.split_whitespace();
        let src = parts.next().and_then(|t| t.parse::<u64>().ok()).ok_or_else(bad)?;
        let dst = parts.next().and_then(|t| t.parse::<u64>().ok()).ok_or_else(bad)?;
        let label = match parts.next() {
            Some(t) => Label(t.parse::<u16>().map_err(|_| bad())?),
            None => Label::ANY,
        };
        if parts.next().is_some() {
            return Err(bad());
        }
        let src = intern(src, &mut load.id_map);
        let dst = intern(dst, &mut load.id_map);
        load.edges.push((src, dst, label));
        load.lines += 1;
    }
    Ok(load)
}

/// Opens and parses a SNAP-style labelled edge-list file.
///
/// # Errors
///
/// I/O failures carry the path via [`GraphStoreError::Io`]; malformed lines
/// are reported as in [`read_labeled_edge_list`].
pub fn load_labeled_edge_list_file(path: &Path) -> Result<EdgeListLoad, GraphStoreError> {
    let file =
        std::fs::File::open(path).map_err(|e| GraphStoreError::io(path, "open edge list", &e))?;
    read_labeled_edge_list(std::io::BufReader::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_comments_and_blank_lines() {
        let text = "# SNAP header\n\n0 1\n1\t2\n  2   0  \n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.edge_count(), 3);
        assert!(g.has_edge(NodeId(2), NodeId(0), Label::ANY));
    }

    #[test]
    fn rejects_malformed_lines() {
        let text = "0 1\nnot numbers\n";
        let err = read_edge_list(text.as_bytes()).unwrap_err();
        assert!(matches!(err, GraphStoreError::ParseEdgeList(_)));

        let text = "0\n";
        assert!(read_edge_list(text.as_bytes()).is_err());
    }

    #[test]
    fn roundtrip_preserves_edges() {
        let text = "0 1\n1 2\n2 0\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        let mut out = Vec::new();
        write_edge_list(&g, &mut out).unwrap();
        let g2 = read_edge_list(out.as_slice()).unwrap();
        assert_eq!(g.to_sorted_edges(), g2.to_sorted_edges());
    }

    #[test]
    fn empty_input_yields_empty_graph() {
        let g = read_edge_list("".as_bytes()).unwrap();
        assert!(g.is_empty());
    }

    fn fixture_path() -> std::path::PathBuf {
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/data/snap_toy.txt")
    }

    #[test]
    fn labelled_loader_parses_the_checked_in_fixture() {
        let load = load_labeled_edge_list_file(&fixture_path()).unwrap();
        assert_eq!(load.lines, 6);
        assert_eq!(load.node_count(), 4);
        // First-appearance compaction: 100, 7, 42, 9000000000.
        assert_eq!(load.id_map, vec![100, 7, 42, 9_000_000_000]);
        assert_eq!(
            load.edges,
            vec![
                (NodeId(0), NodeId(1), Label::ANY),
                (NodeId(1), NodeId(0), Label(3)),
                (NodeId(2), NodeId(0), Label::ANY),
                (NodeId(2), NodeId(1), Label(1)),
                (NodeId(2), NodeId(3), Label(2)),
                (NodeId(3), NodeId(2), Label::ANY),
            ]
        );
    }

    #[test]
    fn compaction_is_deterministic_across_reloads() {
        let a = load_labeled_edge_list_file(&fixture_path()).unwrap();
        let b = load_labeled_edge_list_file(&fixture_path()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn labelled_loader_rejects_bad_lines_with_line_numbers() {
        let err = read_labeled_edge_list("0 1\n1 2 notalabel\n".as_bytes()).unwrap_err();
        match err {
            GraphStoreError::ParseEdgeList(msg) => assert!(msg.contains("line 2"), "{msg}"),
            other => panic!("unexpected error {other:?}"),
        }
        // A fourth column is malformed, not silently ignored.
        assert!(read_labeled_edge_list("0 1 2 3\n".as_bytes()).is_err());
        // Labels must fit u16.
        assert!(read_labeled_edge_list("0 1 70000\n".as_bytes()).is_err());
    }

    #[test]
    fn missing_edge_list_file_reports_io_context() {
        let err =
            load_labeled_edge_list_file(std::path::Path::new("/nonexistent/xyz.txt")).unwrap_err();
        match err {
            GraphStoreError::Io { path, op, .. } => {
                assert!(path.contains("xyz.txt"));
                assert_eq!(op, "open edge list");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }
}
