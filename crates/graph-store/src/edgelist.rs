//! Plain edge-list import/export.
//!
//! The SNAP datasets the paper evaluates on are distributed as whitespace
//! separated `src dst` text files with `#` comment lines. This module parses
//! and emits that format so externally downloaded traces can be dropped in as
//! a substitute for the synthetic generators.

use crate::adjacency::AdjacencyGraph;
use crate::error::GraphStoreError;
use crate::ids::{Label, NodeId};
use std::io::{BufRead, Write};

/// Parses a SNAP-style edge list from a reader.
///
/// Lines starting with `#` (or empty lines) are ignored; every other line must
/// contain two unsigned integers separated by whitespace.
///
/// # Errors
///
/// Returns [`GraphStoreError::ParseEdgeList`] for malformed lines and
/// propagates I/O errors as parse errors containing the I/O message.
///
/// # Examples
///
/// ```
/// use graph_store::edgelist::read_edge_list;
/// let text = "# comment\n0 1\n1 2\n";
/// let g = read_edge_list(text.as_bytes())?;
/// assert_eq!(g.edge_count(), 2);
/// # Ok::<(), graph_store::GraphStoreError>(())
/// ```
pub fn read_edge_list<R: BufRead>(reader: R) -> Result<AdjacencyGraph, GraphStoreError> {
    let mut graph = AdjacencyGraph::new();
    for line in reader.lines() {
        let line = line.map_err(|e| GraphStoreError::ParseEdgeList(e.to_string()))?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let src = parts
            .next()
            .and_then(|t| t.parse::<u64>().ok())
            .ok_or_else(|| GraphStoreError::ParseEdgeList(line.clone()))?;
        let dst = parts
            .next()
            .and_then(|t| t.parse::<u64>().ok())
            .ok_or_else(|| GraphStoreError::ParseEdgeList(line.clone()))?;
        graph.insert_edge(NodeId(src), NodeId(dst), Label::ANY);
    }
    Ok(graph)
}

/// Writes a graph as a SNAP-style edge list.
///
/// # Errors
///
/// Returns [`GraphStoreError::ParseEdgeList`] wrapping any I/O error message.
pub fn write_edge_list<W: Write>(
    graph: &AdjacencyGraph,
    mut writer: W,
) -> Result<(), GraphStoreError> {
    let mut edges = graph.to_sorted_edges();
    edges.dedup();
    for (s, d, _) in edges {
        writeln!(writer, "{} {}", s.0, d.0)
            .map_err(|e| GraphStoreError::ParseEdgeList(e.to_string()))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_comments_and_blank_lines() {
        let text = "# SNAP header\n\n0 1\n1\t2\n  2   0  \n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.edge_count(), 3);
        assert!(g.has_edge(NodeId(2), NodeId(0), Label::ANY));
    }

    #[test]
    fn rejects_malformed_lines() {
        let text = "0 1\nnot numbers\n";
        let err = read_edge_list(text.as_bytes()).unwrap_err();
        assert!(matches!(err, GraphStoreError::ParseEdgeList(_)));

        let text = "0\n";
        assert!(read_edge_list(text.as_bytes()).is_err());
    }

    #[test]
    fn roundtrip_preserves_edges() {
        let text = "0 1\n1 2\n2 0\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        let mut out = Vec::new();
        write_edge_list(&g, &mut out).unwrap();
        let g2 = read_edge_list(out.as_slice()).unwrap();
        assert_eq!(g.to_sorted_edges(), g2.to_sorted_edges());
    }

    #[test]
    fn empty_input_yields_empty_graph() {
        let g = read_edge_list("".as_bytes()).unwrap();
        assert!(g.is_empty());
    }
}
