//! Immutable compressed-sparse-row (CSR) graph snapshot.
//!
//! CSR gives the host-only baseline contiguous row access — the access
//! pattern that favours the CPU cache — and provides O(1) degree lookups for
//! workload statistics (Table 1) and partition-quality metrics.

use crate::adjacency::AdjacencyGraph;
use crate::ids::NodeId;
use serde::{Deserialize, Serialize};

/// A compressed-sparse-row snapshot of a directed graph.
///
/// Rows are indexed densely by `NodeId::index()`; ids must therefore be
/// reasonably dense (the generators always produce dense ids).
///
/// # Examples
///
/// ```
/// use graph_store::{AdjacencyGraph, CsrGraph, Label, NodeId};
///
/// let mut g = AdjacencyGraph::new();
/// g.insert_edge(NodeId(0), NodeId(1), Label::ANY);
/// g.insert_edge(NodeId(0), NodeId(2), Label::ANY);
/// g.insert_edge(NodeId(2), NodeId(0), Label::ANY);
/// let csr = CsrGraph::from_adjacency(&g);
/// assert_eq!(csr.out_degree(NodeId(0)), 2);
/// assert_eq!(csr.neighbors(NodeId(1)), &[]);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CsrGraph {
    /// Row offsets: `offsets[i]..offsets[i+1]` indexes `targets` for node `i`.
    offsets: Vec<usize>,
    /// Concatenated neighbour lists, sorted within each row.
    targets: Vec<NodeId>,
    /// Number of directed edges.
    edge_count: usize,
}

impl CsrGraph {
    /// Builds a CSR snapshot from a dynamic adjacency graph.
    ///
    /// Edge labels are dropped: the CSR view is the boolean adjacency matrix
    /// used for k-hop path matching.
    pub fn from_adjacency(graph: &AdjacencyGraph) -> Self {
        let n = graph.id_bound() as usize;
        let mut degrees = vec![0usize; n];
        for (src, _, _) in graph.edges() {
            degrees[src.index()] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0);
        let mut acc = 0usize;
        for &d in &degrees {
            acc += d;
            offsets.push(acc);
        }
        let mut targets = vec![NodeId(0); acc];
        let mut cursor = offsets.clone();
        for (src, dst, _) in graph.edges() {
            let slot = cursor[src.index()];
            targets[slot] = dst;
            cursor[src.index()] += 1;
        }
        // Sort each row for deterministic traversal and binary-search lookups.
        for i in 0..n {
            targets[offsets[i]..offsets[i + 1]].sort();
        }
        CsrGraph { offsets, targets, edge_count: acc }
    }

    /// Builds a CSR graph directly from `(src, dst)` pairs with `n` nodes.
    pub fn from_edges(n: usize, edges: &[(NodeId, NodeId)]) -> Self {
        let mut g = AdjacencyGraph::with_capacity(n);
        for i in 0..n {
            g.note_node(NodeId(i as u64));
        }
        for &(s, d) in edges {
            g.insert_edge(s, d, crate::ids::Label::ANY);
        }
        CsrGraph::from_adjacency(&g)
    }

    /// Number of rows (node-id bound).
    pub fn node_count(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Out-neighbours of `node`, sorted ascending. Empty if out of range.
    pub fn neighbors(&self, node: NodeId) -> &[NodeId] {
        let i = node.index();
        if i + 1 >= self.offsets.len() {
            return &[];
        }
        &self.targets[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Out-degree of `node` (0 if out of range).
    pub fn out_degree(&self, node: NodeId) -> usize {
        self.neighbors(node).len()
    }

    /// Returns `true` if the directed edge exists.
    pub fn has_edge(&self, src: NodeId, dst: NodeId) -> bool {
        self.neighbors(src).binary_search(&dst).is_ok()
    }

    /// Average out-degree across rows that exist.
    pub fn average_degree(&self) -> f64 {
        if self.node_count() == 0 {
            0.0
        } else {
            self.edge_count as f64 / self.node_count() as f64
        }
    }

    /// Maximum out-degree across all rows.
    pub fn max_degree(&self) -> usize {
        (0..self.node_count()).map(|i| self.offsets[i + 1] - self.offsets[i]).max().unwrap_or(0)
    }

    /// Fraction of nodes whose out-degree strictly exceeds `threshold`.
    pub fn high_degree_fraction(&self, threshold: usize) -> f64 {
        if self.node_count() == 0 {
            return 0.0;
        }
        let hi = (0..self.node_count())
            .filter(|&i| self.offsets[i + 1] - self.offsets[i] > threshold)
            .count();
        hi as f64 / self.node_count() as f64
    }

    /// Bytes of the row data for `node` (8 bytes per neighbour id), the
    /// quantity charged to the memory system when the row is fetched.
    pub fn row_bytes(&self, node: NodeId) -> u64 {
        (self.out_degree(node) * std::mem::size_of::<u64>()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Label;

    fn sample() -> CsrGraph {
        let mut g = AdjacencyGraph::new();
        g.insert_edge(NodeId(0), NodeId(2), Label::ANY);
        g.insert_edge(NodeId(0), NodeId(1), Label::ANY);
        g.insert_edge(NodeId(1), NodeId(3), Label::ANY);
        g.insert_edge(NodeId(3), NodeId(0), Label::ANY);
        CsrGraph::from_adjacency(&g)
    }

    #[test]
    fn rows_are_sorted() {
        let csr = sample();
        assert_eq!(csr.neighbors(NodeId(0)), &[NodeId(1), NodeId(2)]);
    }

    #[test]
    fn counts_match_source_graph() {
        let csr = sample();
        assert_eq!(csr.node_count(), 4);
        assert_eq!(csr.edge_count(), 4);
    }

    #[test]
    fn out_of_range_rows_are_empty() {
        let csr = sample();
        assert_eq!(csr.neighbors(NodeId(100)), &[]);
        assert_eq!(csr.out_degree(NodeId(100)), 0);
    }

    #[test]
    fn has_edge_uses_binary_search() {
        let csr = sample();
        assert!(csr.has_edge(NodeId(0), NodeId(2)));
        assert!(!csr.has_edge(NodeId(2), NodeId(0)));
    }

    #[test]
    fn degree_statistics() {
        let csr = sample();
        assert_eq!(csr.max_degree(), 2);
        assert!((csr.average_degree() - 1.0).abs() < 1e-9);
        assert_eq!(csr.high_degree_fraction(1), 0.25);
        assert_eq!(csr.high_degree_fraction(16), 0.0);
    }

    #[test]
    fn row_bytes_is_eight_per_neighbor() {
        let csr = sample();
        assert_eq!(csr.row_bytes(NodeId(0)), 16);
        assert_eq!(csr.row_bytes(NodeId(2)), 0);
    }

    #[test]
    fn from_edges_builds_dense_rows() {
        let csr = CsrGraph::from_edges(3, &[(NodeId(0), NodeId(1)), (NodeId(2), NodeId(1))]);
        assert_eq!(csr.node_count(), 3);
        assert_eq!(csr.neighbors(NodeId(2)), &[NodeId(1)]);
    }

    #[test]
    fn empty_graph_statistics_are_zero() {
        let csr = CsrGraph::default();
        assert_eq!(csr.node_count(), 0);
        assert_eq!(csr.average_degree(), 0.0);
        assert_eq!(csr.max_degree(), 0);
        assert_eq!(csr.high_degree_fraction(16), 0.0);
    }
}
