//! Durable store façade: generation-numbered snapshot + WAL pairs behind an
//! atomically updated manifest.
//!
//! On-disk layout inside the store directory:
//!
//! ```text
//! MANIFEST                  current generation (text, rewritten atomically)
//! snapshot-<g>.msnp         full engine image for generation g (g >= 1)
//! wal-<g>.mwal              updates appended since snapshot g
//! ```
//!
//! Generation 0 has no snapshot — the WAL alone replays onto a freshly built
//! engine. [`DurableStore::rotate`] advances the generation: it writes the
//! new snapshot (tmp + fsync + rename), starts an empty WAL, and only then
//! flips the manifest — a crash at any point leaves the previous generation
//! fully intact, so recovery never sees a half-written generation. Old
//! generation files are deleted best-effort after the flip.
//!
//! [`DurableStore::open`] performs recovery: it reads the manifest, loads the
//! generation's snapshot (checksum-verified), decodes the WAL tolerating a
//! torn tail (truncating it away so appends resume cleanly), and returns the
//! snapshot plus the WAL records that post-date it — duplicate records at or
//! below the snapshot's sequence number are filtered, making replay
//! idempotent.

use crate::error::GraphStoreError;
use crate::snapshot::SnapshotState;
use crate::wal::{TornTail, WalRecord, WalWriter};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Name of the manifest file inside a store directory.
pub const MANIFEST_NAME: &str = "MANIFEST";
/// First line of every manifest, identifying format and version.
pub const MANIFEST_HEADER: &str = "moctopus-durable v1";

/// What [`DurableStore::open`] recovered from disk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveredState {
    /// The current generation's snapshot, if the generation has one.
    pub snapshot: Option<SnapshotState>,
    /// WAL records to replay on top of the snapshot, in log order, already
    /// filtered to `seq > snapshot.last_seq`.
    pub records: Vec<WalRecord>,
    /// `Some` if the WAL ended in a torn or corrupted tail (now truncated).
    pub torn: Option<TornTail>,
    /// The generation that was recovered.
    pub generation: u64,
}

impl RecoveredState {
    /// Highest sequence number recovered (snapshot or WAL), 0 if none.
    pub fn last_seq(&self) -> u64 {
        self.records
            .last()
            .map(|r| r.seq)
            .or_else(|| self.snapshot.as_ref().map(|s| s.last_seq))
            .unwrap_or(0)
    }
}

/// File-backed durability for one engine: a snapshot + WAL generation pair.
#[derive(Debug)]
pub struct DurableStore {
    dir: PathBuf,
    generation: u64,
    wal: WalWriter,
    sync_every: usize,
}

fn snapshot_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("snapshot-{generation:08}.msnp"))
}

fn wal_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("wal-{generation:08}.mwal"))
}

fn write_manifest(dir: &Path, generation: u64) -> Result<(), GraphStoreError> {
    let tmp = dir.join("MANIFEST.tmp");
    let target = dir.join(MANIFEST_NAME);
    let contents = format!("{MANIFEST_HEADER}\ngeneration {generation}\n");
    let mut file = std::fs::File::create(&tmp)
        .map_err(|e| GraphStoreError::io(&tmp, "create manifest tmp", &e))?;
    file.write_all(contents.as_bytes())
        .map_err(|e| GraphStoreError::io(&tmp, "write manifest", &e))?;
    file.sync_all().map_err(|e| GraphStoreError::io(&tmp, "sync manifest", &e))?;
    drop(file);
    std::fs::rename(&tmp, &target)
        .map_err(|e| GraphStoreError::io(&target, "rename manifest into place", &e))?;
    // Persist the rename itself (and any snapshot/WAL renames before it).
    if let Ok(d) = std::fs::File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

fn read_manifest(dir: &Path) -> Result<Option<u64>, GraphStoreError> {
    let path = dir.join(MANIFEST_NAME);
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(GraphStoreError::io(&path, "read manifest", &e)),
    };
    let mut lines = text.lines();
    if lines.next() != Some(MANIFEST_HEADER) {
        return Err(GraphStoreError::corrupt(&path, 0, 0, "bad manifest header"));
    }
    let gen_line = lines
        .next()
        .ok_or_else(|| GraphStoreError::corrupt(&path, 0, 1, "missing generation line"))?;
    let generation = gen_line
        .strip_prefix("generation ")
        .and_then(|g| g.parse::<u64>().ok())
        .ok_or_else(|| GraphStoreError::corrupt(&path, 0, 1, "malformed generation line"))?;
    Ok(Some(generation))
}

impl DurableStore {
    /// Opens (or initialises) a store directory and recovers its contents.
    ///
    /// `sync_every` is the WAL fsync batch size (1 = fsync every record).
    /// A fresh directory starts at generation 0 with an empty WAL and no
    /// snapshot; an existing one is recovered as described in the
    /// [module docs](self).
    ///
    /// # Errors
    ///
    /// I/O failures and a corrupt manifest or snapshot are reported with
    /// path/offset context; a torn WAL tail is *not* an error — it is
    /// truncated and reported in [`RecoveredState::torn`].
    pub fn open(
        dir: &Path,
        sync_every: usize,
    ) -> Result<(DurableStore, RecoveredState), GraphStoreError> {
        std::fs::create_dir_all(dir)
            .map_err(|e| GraphStoreError::io(dir, "create store directory", &e))?;
        let generation = match read_manifest(dir)? {
            Some(generation) => generation,
            None => {
                write_manifest(dir, 0)?;
                0
            }
        };
        let snapshot = if generation > 0 {
            Some(SnapshotState::read_file(&snapshot_path(dir, generation))?)
        } else {
            None
        };
        let (wal, decode) = WalWriter::open_for_append(&wal_path(dir, generation), sync_every)?;
        let floor = snapshot.as_ref().map(|s| s.last_seq).unwrap_or(0);
        let mut records = decode.records;
        records.retain(|r| r.seq > floor);
        let recovered = RecoveredState { snapshot, records, torn: decode.torn, generation };
        let store = DurableStore { dir: dir.to_path_buf(), generation, wal, sync_every };
        Ok((store, recovered))
    }

    /// Appends one update record to the current WAL (write-ahead: call this
    /// before applying the update to the engine).
    pub fn append(&mut self, record: &WalRecord) -> Result<(), GraphStoreError> {
        self.wal.append(record)
    }

    /// Forces all appended records to stable storage.
    pub fn sync(&mut self) -> Result<(), GraphStoreError> {
        self.wal.sync()
    }

    /// Advances to a new generation: persists `snapshot`, starts an empty
    /// WAL, and atomically flips the manifest. See the [module docs](self)
    /// for the crash-safety argument.
    pub fn rotate(&mut self, snapshot: &SnapshotState) -> Result<(), GraphStoreError> {
        let next = self.generation + 1;
        snapshot.write_file(&snapshot_path(&self.dir, next))?;
        let wal = WalWriter::create(&wal_path(&self.dir, next), self.sync_every)?;
        write_manifest(&self.dir, next)?;
        let old = self.generation;
        self.wal = wal;
        self.generation = next;
        // The old generation is unreachable now; reclaim it best-effort.
        let _ = std::fs::remove_file(wal_path(&self.dir, old));
        if old > 0 {
            let _ = std::fs::remove_file(snapshot_path(&self.dir, old));
        }
        Ok(())
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The current generation number.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Records in the current WAL (recovered plus appended since).
    pub fn wal_records(&self) -> u64 {
        self.wal.records()
    }

    /// Bytes in the current WAL file.
    pub fn wal_len_bytes(&self) -> u64 {
        self.wal.len_bytes()
    }

    /// Path of the current WAL file (the crash-injection smoke corrupts it).
    pub fn wal_path(&self) -> PathBuf {
        wal_path(&self.dir, self.generation)
    }
}

/// The generation the directory's manifest currently names, or `None` if the
/// directory has never been initialised. Lets external tooling (the serve
/// crash smoke, CI) locate the live WAL without opening the store.
pub fn current_generation(dir: &Path) -> Result<Option<u64>, GraphStoreError> {
    read_manifest(dir)
}

/// Path of generation `generation`'s WAL file inside `dir`.
pub fn generation_wal_path(dir: &Path, generation: u64) -> PathBuf {
    wal_path(dir, generation)
}

/// Path of generation `generation`'s snapshot file inside `dir`.
pub fn generation_snapshot_path(dir: &Path, generation: u64) -> PathBuf {
    snapshot_path(dir, generation)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{Label, NodeId};
    use crate::wal::WalOp;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("moctopus-durable-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn rec(seq: u64, op: WalOp) -> WalRecord {
        WalRecord { seq, op, edges: vec![(NodeId(seq), NodeId(seq + 1), Label(1))] }
    }

    #[test]
    fn fresh_open_is_empty_generation_zero() {
        let dir = tmp_dir("fresh");
        let (store, recovered) = DurableStore::open(&dir, 1).unwrap();
        assert_eq!(recovered.generation, 0);
        assert!(recovered.snapshot.is_none());
        assert!(recovered.records.is_empty());
        assert!(recovered.torn.is_none());
        assert_eq!(recovered.last_seq(), 0);
        drop(store);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wal_only_recovery_returns_appended_records() {
        let dir = tmp_dir("walonly");
        {
            let (mut store, _) = DurableStore::open(&dir, 2).unwrap();
            store.append(&rec(1, WalOp::Insert)).unwrap();
            store.append(&rec(2, WalOp::Delete)).unwrap();
            store.sync().unwrap();
        }
        let (_, recovered) = DurableStore::open(&dir, 2).unwrap();
        assert!(recovered.snapshot.is_none());
        assert_eq!(recovered.records, vec![rec(1, WalOp::Insert), rec(2, WalOp::Delete)]);
        assert_eq!(recovered.last_seq(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rotation_moves_records_into_the_snapshot() {
        let dir = tmp_dir("rotate");
        {
            let (mut store, _) = DurableStore::open(&dir, 1).unwrap();
            store.append(&rec(1, WalOp::Insert)).unwrap();
            let snap = SnapshotState { last_seq: 1, ..SnapshotState::default() };
            store.rotate(&snap).unwrap();
            assert_eq!(store.generation(), 1);
            store.append(&rec(2, WalOp::Insert)).unwrap();
            // Double rotation: generation 2 folds record 2 in as well.
            let snap = SnapshotState { last_seq: 2, ..SnapshotState::default() };
            store.rotate(&snap).unwrap();
            store.append(&rec(3, WalOp::Insert)).unwrap();
            store.sync().unwrap();
        }
        let (store, recovered) = DurableStore::open(&dir, 1).unwrap();
        assert_eq!(recovered.generation, 2);
        assert_eq!(recovered.snapshot.as_ref().unwrap().last_seq, 2);
        assert_eq!(recovered.records, vec![rec(3, WalOp::Insert)]);
        // Old generation files were reclaimed.
        assert!(!snapshot_path(store.dir(), 1).exists());
        assert!(!wal_path(store.dir(), 0).exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn duplicate_replay_is_filtered_against_the_snapshot() {
        let dir = tmp_dir("dupes");
        {
            let (mut store, _) = DurableStore::open(&dir, 1).unwrap();
            let snap = SnapshotState { last_seq: 5, ..SnapshotState::default() };
            store.rotate(&snap).unwrap();
            // Simulate a writer that re-appended already-snapshotted records.
            for seq in [4, 5, 6, 7] {
                store.append(&rec(seq, WalOp::Insert)).unwrap();
            }
            store.sync().unwrap();
        }
        let (_, recovered) = DurableStore::open(&dir, 1).unwrap();
        let seqs: Vec<u64> = recovered.records.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![6, 7]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_truncated_and_survives_reopen() {
        let dir = tmp_dir("torn");
        {
            let (mut store, _) = DurableStore::open(&dir, 1).unwrap();
            store.append(&rec(1, WalOp::Insert)).unwrap();
            store.append(&rec(2, WalOp::Insert)).unwrap();
            store.sync().unwrap();
        }
        // Crash mid-append: garbage half-frame at the tail.
        let wal = wal_path(&dir, 0);
        let mut bytes = std::fs::read(&wal).unwrap();
        bytes.extend_from_slice(&[0xAB; 7]);
        std::fs::write(&wal, &bytes).unwrap();

        let (mut store, recovered) = DurableStore::open(&dir, 1).unwrap();
        assert_eq!(recovered.records.len(), 2);
        assert!(recovered.torn.is_some());
        // The tail was truncated: appending now yields a clean log.
        store.append(&rec(3, WalOp::Insert)).unwrap();
        store.sync().unwrap();
        drop(store);
        let (_, recovered) = DurableStore::open(&dir, 1).unwrap();
        assert_eq!(recovered.records.len(), 3);
        assert!(recovered.torn.is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_manifest_is_an_error_not_data_loss() {
        let dir = tmp_dir("badmanifest");
        {
            let (mut store, _) = DurableStore::open(&dir, 1).unwrap();
            store.append(&rec(1, WalOp::Insert)).unwrap();
        }
        std::fs::write(dir.join(MANIFEST_NAME), b"not a manifest\n").unwrap();
        let err = DurableStore::open(&dir, 1).unwrap_err();
        assert!(matches!(err, GraphStoreError::Corrupt { .. }), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
