//! Per-PIM-module *local graph storage*.
//!
//! Each PIM module owns a disjoint slice of the adjacency matrix, partitioned
//! by row (graph node). The paper stores the slice in a hash map from row id
//! (NodeId) to row data (the next-hop NodeIds), chosen for its concurrency and
//! scalability on the wimpy PIM cores. [`LocalGraphStorage`] reproduces that
//! structure and additionally tracks the resident bytes so the simulator can
//! enforce the 64 MB MRAM capacity of an UPMEM module.
//!
//! Rows carry the property-graph edge label alongside each next-hop id, so
//! regular path queries can match label constraints inside the module without
//! a second lookup structure. Conceptually the row is stored
//! struct-of-arrays: an 8-byte id array that plain k-hop traversals stream,
//! and a 2-byte label array that only label-constrained scans touch — the
//! cost model charges the two arrays separately.

use crate::error::GraphStoreError;
use crate::ids::{Label, NodeId};
use crate::labelstats::LabelStatsTable;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Hash-map based adjacency-matrix segment held by one PIM module.
///
/// Rows are kept **sorted** (strictly ascending `(next-hop, label)` pairs):
/// duplicate detection on insert and the membership test on delete are binary
/// searches instead of linear scans, and rows migrated between modules can be
/// installed without re-normalising them. The same node pair may appear with
/// several distinct labels (one boolean adjacency matrix per label).
///
/// # Examples
///
/// ```
/// use graph_store::{Label, LocalGraphStorage, NodeId};
///
/// let mut s = LocalGraphStorage::new();
/// s.insert_edge(NodeId(4), NodeId(9), Label::ANY)?;
/// s.insert_edge(NodeId(4), NodeId(7), Label(2))?;
/// assert_eq!(s.row(NodeId(4)).unwrap(), &[(NodeId(7), Label(2)), (NodeId(9), Label::ANY)]);
/// assert_eq!(s.edge_count(), 2);
/// # Ok::<(), graph_store::GraphStoreError>(())
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LocalGraphStorage {
    rows: HashMap<NodeId, Vec<(NodeId, Label)>>,
    edge_count: usize,
    capacity_bytes: Option<u64>,
    /// Per-label statistics, maintained on every mutation path (insert,
    /// delete, row migration, snapshot rebuild) — never by rescanning rows.
    stats: LabelStatsTable,
    /// Reverse rows: for each node whose reverse row this module owns, the
    /// strictly sorted `(source, label)` in-edges. Maintained explicitly by
    /// the engine's mirrored writes — forward mutations never touch it.
    rev_rows: HashMap<NodeId, Vec<(NodeId, Label)>>,
    /// Number of reverse-row entries stored locally.
    rev_edge_count: usize,
}

/// Modeled MRAM bytes per stored edge: an 8-byte next-hop id plus a 2-byte
/// label in the row's parallel label array.
const EDGE_SLOT_BYTES: u64 = (std::mem::size_of::<NodeId>() + std::mem::size_of::<Label>()) as u64;

impl LocalGraphStorage {
    /// Creates an empty segment without a capacity limit.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty segment that refuses to grow beyond `capacity_bytes`
    /// (e.g. the 64 MB MRAM of an UPMEM PIM module).
    pub fn with_capacity_bytes(capacity_bytes: u64) -> Self {
        LocalGraphStorage { capacity_bytes: Some(capacity_bytes), ..Self::default() }
    }

    /// Inserts a directed labelled edge into the row of `src`.
    ///
    /// Duplicate edges are ignored (each per-label adjacency matrix is
    /// boolean) and reported via [`GraphStoreError::DuplicateEdge`].
    ///
    /// # Errors
    ///
    /// Returns [`GraphStoreError::CapacityExceeded`] when the insertion would
    /// overflow the configured MRAM capacity, and
    /// [`GraphStoreError::DuplicateEdge`] when the edge already exists.
    pub fn insert_edge(
        &mut self,
        src: NodeId,
        dst: NodeId,
        label: Label,
    ) -> Result<(), GraphStoreError> {
        if let Some(cap) = self.capacity_bytes {
            let needed = self.resident_bytes() + EDGE_SLOT_BYTES;
            if needed > cap {
                return Err(GraphStoreError::CapacityExceeded { required: needed, capacity: cap });
            }
        }
        let row = self.rows.entry(src).or_default();
        match row.binary_search(&(dst, label)) {
            Ok(_) => Err(GraphStoreError::DuplicateEdge(src, dst)),
            Err(pos) => {
                row.insert(pos, (dst, label));
                self.edge_count += 1;
                self.stats.record_insert(src, dst, label);
                Ok(())
            }
        }
    }

    /// Removes a directed labelled edge from the row of `src`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphStoreError::EdgeNotFound`] when the edge is absent.
    pub fn remove_edge(
        &mut self,
        src: NodeId,
        dst: NodeId,
        label: Label,
    ) -> Result<(), GraphStoreError> {
        let row = self.rows.get_mut(&src).ok_or(GraphStoreError::EdgeNotFound(src, dst))?;
        let pos = row
            .binary_search(&(dst, label))
            .map_err(|_| GraphStoreError::EdgeNotFound(src, dst))?;
        row.remove(pos);
        self.edge_count -= 1;
        self.stats.record_delete(src, dst, label);
        if row.is_empty() {
            self.rows.remove(&src);
        }
        Ok(())
    }

    /// Returns the row (`(next-hop, label)` pairs, ascending) for `src`, if
    /// stored locally.
    pub fn row(&self, src: NodeId) -> Option<&[(NodeId, Label)]> {
        self.rows.get(&src).map(Vec::as_slice)
    }

    /// Returns `true` if this module stores a row for `src`.
    pub fn contains_row(&self, src: NodeId) -> bool {
        self.rows.contains_key(&src)
    }

    /// Removes an entire row and returns its labelled next-hop data, strictly
    /// sorted (used when a node is migrated to another computing node).
    pub fn take_row(&mut self, src: NodeId) -> Option<Vec<(NodeId, Label)>> {
        let row = self.rows.remove(&src);
        if let Some(ref r) = row {
            self.edge_count -= r.len();
            self.stats.record_row_taken(src, r);
        }
        row
    }

    /// Installs a full row received from another computing node.
    ///
    /// Any existing row for `src` is replaced. Rows handed over by
    /// [`LocalGraphStorage::take_row`] are already strictly sorted, so the
    /// common migration path skips normalisation entirely; unsorted input is
    /// still accepted and normalised.
    pub fn install_row(&mut self, src: NodeId, mut next_hops: Vec<(NodeId, Label)>) {
        if !next_hops.windows(2).all(|w| w[0] < w[1]) {
            next_hops.sort();
            next_hops.dedup();
        }
        if let Some(old) = self.rows.insert(src, next_hops) {
            self.edge_count -= old.len();
            self.stats.record_row_taken(src, &old);
        }
        self.edge_count += self.rows[&src].len();
        // Stats cover exactly what was stored (post dedup/replace).
        self.stats.record_row_installed(src, &self.rows[&src]);
    }

    /// Number of rows stored locally.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Number of directed edges stored locally.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Returns `true` if no rows are stored.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Iterates over the locally stored rows in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &[(NodeId, Label)])> + '_ {
        // moctopus-lint: allow(hash-iter-order, reason = "documented arbitrary-order API; durable exports go through export_rows, which sorts")
        self.rows.iter().map(|(&n, v)| (n, v.as_slice()))
    }

    /// Approximate bytes resident in MRAM for this segment.
    ///
    /// Counts 8 bytes of next-hop id plus 2 bytes of label per stored edge,
    /// and 16 bytes of hash-map entry overhead per row — a close-enough model
    /// for capacity enforcement.
    pub fn resident_bytes(&self) -> u64 {
        let edge_bytes = self.edge_count as u64 * EDGE_SLOT_BYTES;
        let row_overhead = self.rows.len() as u64 * 16;
        edge_bytes + row_overhead
    }

    /// The configured capacity in bytes, if any.
    pub fn capacity_bytes(&self) -> Option<u64> {
        self.capacity_bytes
    }

    /// Exports every row, sorted by row id, for a durable snapshot.
    ///
    /// Row contents come out verbatim (they are strictly sorted already), so
    /// [`LocalGraphStorage::from_sorted_rows`] rebuilds a segment whose future
    /// behaviour is indistinguishable from the original — the canonical,
    /// deterministic byte image the snapshot format requires.
    pub fn export_rows(&self) -> Vec<(NodeId, Vec<(NodeId, Label)>)> {
        // moctopus-lint: allow(hash-iter-order, reason = "collected then sort_by_key on the next line before use")
        let mut rows: Vec<(NodeId, Vec<(NodeId, Label)>)> =
            self.rows.iter().map(|(&n, v)| (n, v.clone())).collect();
        rows.sort_by_key(|&(n, _)| n);
        rows
    }

    /// Rebuilds a segment from rows exported by
    /// [`LocalGraphStorage::export_rows`].
    ///
    /// Rows are installed as-is (they must be strictly sorted, as exported);
    /// the edge count is recomputed from the row contents.
    pub fn from_sorted_rows(
        sorted_rows: Vec<(NodeId, Vec<(NodeId, Label)>)>,
        capacity_bytes: Option<u64>,
    ) -> Self {
        let mut edge_count = 0;
        let mut stats = LabelStatsTable::new();
        let map: HashMap<NodeId, Vec<(NodeId, Label)>> = sorted_rows
            .into_iter()
            .map(|(n, v)| {
                debug_assert!(v.windows(2).all(|w| w[0] < w[1]), "snapshot row must be sorted");
                edge_count += v.len();
                stats.record_row_installed(n, &v);
                (n, v)
            })
            .collect();
        LocalGraphStorage {
            rows: map,
            edge_count,
            capacity_bytes,
            stats,
            rev_rows: HashMap::new(),
            rev_edge_count: 0,
        }
    }

    /// The incrementally maintained per-label statistics of this segment.
    pub fn label_stats(&self) -> &LabelStatsTable {
        &self.stats
    }

    /// Inserts a reverse-row entry: `dst` is reached by an edge from `src`
    /// with `label`. The entry lands in the reverse row of `dst`, which this
    /// module must own.
    ///
    /// Reverse rows are a mirror of forward rows held elsewhere; they do not
    /// count toward [`LocalGraphStorage::resident_bytes`] (capacity and
    /// placement decisions stay driven by forward data alone) — their
    /// footprint is reported separately by [`LocalGraphStorage::rev_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`GraphStoreError::DuplicateEdge`] when the entry already
    /// exists.
    pub fn insert_rev_edge(
        &mut self,
        dst: NodeId,
        src: NodeId,
        label: Label,
    ) -> Result<(), GraphStoreError> {
        let row = self.rev_rows.entry(dst).or_default();
        match row.binary_search(&(src, label)) {
            Ok(_) => Err(GraphStoreError::DuplicateEdge(src, dst)),
            Err(pos) => {
                row.insert(pos, (src, label));
                self.rev_edge_count += 1;
                self.stats.record_rev_insert(dst, label);
                Ok(())
            }
        }
    }

    /// Removes a reverse-row entry from the reverse row of `dst`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphStoreError::EdgeNotFound`] when the entry is absent.
    pub fn remove_rev_edge(
        &mut self,
        dst: NodeId,
        src: NodeId,
        label: Label,
    ) -> Result<(), GraphStoreError> {
        let row = self.rev_rows.get_mut(&dst).ok_or(GraphStoreError::EdgeNotFound(src, dst))?;
        let pos = row
            .binary_search(&(src, label))
            .map_err(|_| GraphStoreError::EdgeNotFound(src, dst))?;
        row.remove(pos);
        self.rev_edge_count -= 1;
        self.stats.record_rev_delete(dst, label);
        if row.is_empty() {
            self.rev_rows.remove(&dst);
        }
        Ok(())
    }

    /// Returns the reverse row (`(source, label)` pairs, ascending) for
    /// `dst`, if stored locally.
    pub fn rev_row(&self, dst: NodeId) -> Option<&[(NodeId, Label)]> {
        self.rev_rows.get(&dst).map(Vec::as_slice)
    }

    /// Removes an entire reverse row and returns its strictly sorted
    /// contents (used when the node's placement migrates).
    pub fn take_rev_row(&mut self, dst: NodeId) -> Option<Vec<(NodeId, Label)>> {
        let row = self.rev_rows.remove(&dst);
        if let Some(ref r) = row {
            self.rev_edge_count -= r.len();
            self.stats.record_rev_row_taken(dst, r);
        }
        row
    }

    /// Installs a full reverse row received from another computing node.
    ///
    /// Any existing reverse row for `dst` is replaced; presorted input (the
    /// migration path) is installed verbatim.
    pub fn install_rev_row(&mut self, dst: NodeId, mut in_edges: Vec<(NodeId, Label)>) {
        if !in_edges.windows(2).all(|w| w[0] < w[1]) {
            in_edges.sort();
            in_edges.dedup();
        }
        if let Some(old) = self.rev_rows.insert(dst, in_edges) {
            self.rev_edge_count -= old.len();
            self.stats.record_rev_row_taken(dst, &old);
        }
        self.rev_edge_count += self.rev_rows[&dst].len();
        self.stats.record_rev_row_installed(dst, &self.rev_rows[&dst]);
        if self.rev_rows[&dst].is_empty() {
            self.rev_rows.remove(&dst);
        }
    }

    /// Number of reverse-row entries stored locally.
    pub fn rev_edge_count(&self) -> usize {
        self.rev_edge_count
    }

    /// Approximate MRAM bytes of the reverse index, modelled exactly like
    /// forward rows but reported separately so capacity enforcement and the
    /// placement policy keep seeing forward bytes only.
    pub fn rev_bytes(&self) -> u64 {
        let edge_bytes = self.rev_edge_count as u64 * EDGE_SLOT_BYTES;
        let row_overhead = self.rev_rows.len() as u64 * 16;
        edge_bytes + row_overhead
    }

    /// Exports every reverse row, sorted by node id (for tests and
    /// diagnostics; snapshots rebuild reverse rows from forward rows).
    pub fn export_rev_rows(&self) -> Vec<(NodeId, Vec<(NodeId, Label)>)> {
        // moctopus-lint: allow(hash-iter-order, reason = "collected then sort_by_key on the next line before use")
        let mut rows: Vec<(NodeId, Vec<(NodeId, Label)>)> =
            self.rev_rows.iter().map(|(&n, v)| (n, v.clone())).collect();
        rows.sort_by_key(|&(n, _)| n);
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ANY: Label = Label::ANY;

    #[test]
    fn insert_and_lookup_rows() {
        let mut s = LocalGraphStorage::new();
        s.insert_edge(NodeId(1), NodeId(2), ANY).unwrap();
        s.insert_edge(NodeId(1), NodeId(3), ANY).unwrap();
        s.insert_edge(NodeId(2), NodeId(1), ANY).unwrap();
        assert_eq!(s.row_count(), 2);
        assert_eq!(s.edge_count(), 3);
        assert_eq!(s.row(NodeId(1)).unwrap(), &[(NodeId(2), ANY), (NodeId(3), ANY)]);
        assert!(s.row(NodeId(9)).is_none());
    }

    #[test]
    fn duplicate_insert_is_an_error() {
        let mut s = LocalGraphStorage::new();
        s.insert_edge(NodeId(1), NodeId(2), ANY).unwrap();
        let err = s.insert_edge(NodeId(1), NodeId(2), ANY).unwrap_err();
        assert_eq!(err, GraphStoreError::DuplicateEdge(NodeId(1), NodeId(2)));
        assert_eq!(s.edge_count(), 1);
    }

    #[test]
    fn same_pair_with_another_label_is_a_new_edge() {
        let mut s = LocalGraphStorage::new();
        s.insert_edge(NodeId(1), NodeId(2), Label(1)).unwrap();
        s.insert_edge(NodeId(1), NodeId(2), Label(2)).unwrap();
        assert_eq!(s.edge_count(), 2);
        assert_eq!(s.row(NodeId(1)).unwrap(), &[(NodeId(2), Label(1)), (NodeId(2), Label(2))]);
        s.remove_edge(NodeId(1), NodeId(2), Label(1)).unwrap();
        assert_eq!(s.row(NodeId(1)).unwrap(), &[(NodeId(2), Label(2))]);
    }

    #[test]
    fn remove_edge_and_row_cleanup() {
        let mut s = LocalGraphStorage::new();
        s.insert_edge(NodeId(1), NodeId(2), ANY).unwrap();
        s.remove_edge(NodeId(1), NodeId(2), ANY).unwrap();
        assert!(!s.contains_row(NodeId(1)));
        assert_eq!(s.edge_count(), 0);
        assert!(matches!(
            s.remove_edge(NodeId(1), NodeId(2), ANY),
            Err(GraphStoreError::EdgeNotFound(_, _))
        ));
        // Removing a present pair under the wrong label is also not found.
        s.insert_edge(NodeId(1), NodeId(2), Label(3)).unwrap();
        assert!(s.remove_edge(NodeId(1), NodeId(2), Label(4)).is_err());
    }

    #[test]
    fn capacity_is_enforced() {
        let mut s = LocalGraphStorage::with_capacity_bytes(30);
        s.insert_edge(NodeId(0), NodeId(1), ANY).unwrap(); // 10 + 16 = 26 bytes
        let err = s.insert_edge(NodeId(0), NodeId(2), ANY).unwrap_err();
        assert!(matches!(err, GraphStoreError::CapacityExceeded { .. }));
        assert_eq!(s.edge_count(), 1);
    }

    #[test]
    fn take_and_install_row_preserve_edge_count() {
        let mut a = LocalGraphStorage::new();
        a.insert_edge(NodeId(5), NodeId(6), ANY).unwrap();
        a.insert_edge(NodeId(5), NodeId(7), Label(1)).unwrap();
        let row = a.take_row(NodeId(5)).unwrap();
        assert_eq!(a.edge_count(), 0);

        let mut b = LocalGraphStorage::new();
        b.install_row(NodeId(5), row);
        assert_eq!(b.edge_count(), 2);
        assert_eq!(b.row(NodeId(5)).unwrap(), &[(NodeId(6), ANY), (NodeId(7), Label(1))]);
    }

    #[test]
    fn install_row_dedups_and_replaces() {
        let mut s = LocalGraphStorage::new();
        s.install_row(NodeId(1), vec![(NodeId(3), ANY), (NodeId(2), ANY), (NodeId(3), ANY)]);
        assert_eq!(s.row(NodeId(1)).unwrap(), &[(NodeId(2), ANY), (NodeId(3), ANY)]);
        assert_eq!(s.edge_count(), 2);
        s.install_row(NodeId(1), vec![(NodeId(9), ANY)]);
        assert_eq!(s.edge_count(), 1);
    }

    #[test]
    fn rows_stay_sorted_under_churn() {
        let mut s = LocalGraphStorage::new();
        for dst in [9u64, 3, 7, 1, 5] {
            s.insert_edge(NodeId(0), NodeId(dst), ANY).unwrap();
        }
        let dsts: Vec<u64> = s.row(NodeId(0)).unwrap().iter().map(|&(d, _)| d.0).collect();
        assert_eq!(dsts, vec![1, 3, 5, 7, 9]);
        s.remove_edge(NodeId(0), NodeId(5), ANY).unwrap();
        s.insert_edge(NodeId(0), NodeId(4), ANY).unwrap();
        let dsts: Vec<u64> = s.row(NodeId(0)).unwrap().iter().map(|&(d, _)| d.0).collect();
        assert_eq!(dsts, vec![1, 3, 4, 7, 9]);
    }

    #[test]
    fn install_row_accepts_presorted_input_unchanged() {
        let mut s = LocalGraphStorage::new();
        s.install_row(NodeId(2), vec![(NodeId(1), ANY), (NodeId(4), ANY), (NodeId(8), ANY)]);
        assert_eq!(s.row(NodeId(2)).unwrap().len(), 3);
        assert_eq!(s.edge_count(), 3);
    }

    #[test]
    fn resident_bytes_reflects_contents() {
        let mut s = LocalGraphStorage::new();
        assert_eq!(s.resident_bytes(), 0);
        s.insert_edge(NodeId(0), NodeId(1), ANY).unwrap();
        assert_eq!(s.resident_bytes(), 10 + 16);
    }

    /// Transposes exported forward rows into the reverse rows a single store
    /// holding both sides of every edge would carry.
    fn transpose(rows: &[(NodeId, Vec<(NodeId, Label)>)]) -> Vec<(NodeId, Vec<(NodeId, Label)>)> {
        let mut map: std::collections::BTreeMap<NodeId, Vec<(NodeId, Label)>> =
            std::collections::BTreeMap::new();
        for &(src, ref row) in rows {
            for &(dst, label) in row {
                map.entry(dst).or_default().push((src, label));
            }
        }
        map.into_iter()
            .map(|(n, mut v)| {
                v.sort();
                (n, v)
            })
            .collect()
    }

    #[test]
    fn label_stats_stay_incremental_under_churn() {
        // A deterministic insert/delete/migrate interleaving with the reverse
        // side mirrored the way the engine does it: after every step, the
        // incrementally maintained stats must equal the stats of a store
        // rebuilt from scratch via the snapshot path (forward rows restored,
        // reverse rows re-derived by transposition), and the incremental
        // reverse rows must equal the independent transpose exactly.
        let mut s = LocalGraphStorage::new();
        for i in 0..40u64 {
            let (src, dst, label) =
                (NodeId(i % 7), NodeId((i * 3) % 11), Label((i % 4) as u16 + 1));
            if s.insert_edge(src, dst, label).is_ok() {
                s.insert_rev_edge(dst, src, label).unwrap();
            }
            if i % 5 == 0 {
                let (ds, dd, dl) = (NodeId((i + 2) % 7), NodeId((i * 3 + 6) % 11), Label(1));
                if s.remove_edge(ds, dd, dl).is_ok() {
                    s.remove_rev_edge(dd, ds, dl).unwrap();
                }
            }
            if i % 9 == 0 {
                if let Some(row) = s.take_row(NodeId(i % 7)) {
                    s.install_row(NodeId(i % 7), row);
                }
                if let Some(rev) = s.take_rev_row(NodeId((i * 3) % 11)) {
                    s.install_rev_row(NodeId((i * 3) % 11), rev);
                }
            }
            let mut rebuilt = LocalGraphStorage::from_sorted_rows(s.export_rows(), None);
            for (n, rev) in transpose(&s.export_rows()) {
                rebuilt.install_rev_row(n, rev);
            }
            assert_eq!(
                s.label_stats().snapshot(),
                rebuilt.label_stats().snapshot(),
                "incremental stats diverged from rebuilt stats at step {i}"
            );
            assert_eq!(
                s.export_rev_rows(),
                transpose(&s.export_rows()),
                "reverse rows diverged from the forward transpose at step {i}"
            );
        }
        assert!(s.label_stats().total_edges() > 0);
        assert_eq!(s.label_stats().total_edges(), s.edge_count() as u64);
        assert_eq!(s.rev_edge_count(), s.edge_count());
        assert!(s.rev_bytes() > 0);
        assert_eq!(
            s.resident_bytes(),
            LocalGraphStorage::from_sorted_rows(s.export_rows(), None).resident_bytes()
        );
    }

    #[test]
    fn rev_rows_are_sorted_and_duplicate_rejected() {
        let mut s = LocalGraphStorage::new();
        s.insert_rev_edge(NodeId(4), NodeId(9), Label(1)).unwrap();
        s.insert_rev_edge(NodeId(4), NodeId(2), Label(1)).unwrap();
        s.insert_rev_edge(NodeId(4), NodeId(2), Label(3)).unwrap();
        assert!(s.insert_rev_edge(NodeId(4), NodeId(2), Label(1)).is_err());
        assert_eq!(
            s.rev_row(NodeId(4)).unwrap(),
            &[(NodeId(2), Label(1)), (NodeId(2), Label(3)), (NodeId(9), Label(1))]
        );
        assert_eq!(s.rev_edge_count(), 3);
        // Reverse rows never count toward forward residency.
        assert_eq!(s.resident_bytes(), 0);
        assert_eq!(s.rev_bytes(), 3 * 10 + 16);
        s.remove_rev_edge(NodeId(4), NodeId(9), Label(1)).unwrap();
        assert!(s.remove_rev_edge(NodeId(4), NodeId(9), Label(1)).is_err());
        let taken = s.take_rev_row(NodeId(4)).unwrap();
        assert_eq!(taken.len(), 2);
        assert_eq!(s.rev_bytes(), 0);
        assert_eq!(s.label_stats().snapshot(), Default::default());
    }
}
