//! Error type returned by graph storage operations.

use crate::ids::NodeId;
use std::error::Error;
use std::fmt;

/// Errors produced by graph storage structures.
///
/// # Examples
///
/// ```
/// use graph_store::{GraphStoreError, NodeId};
/// let err = GraphStoreError::NodeNotFound(NodeId(9));
/// assert_eq!(err.to_string(), "node n9 not found");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphStoreError {
    /// A node referenced by the operation does not exist.
    NodeNotFound(NodeId),
    /// The edge referenced by the operation does not exist.
    EdgeNotFound(NodeId, NodeId),
    /// The edge already exists and duplicate insertion was rejected.
    DuplicateEdge(NodeId, NodeId),
    /// A storage capacity limit (e.g. a PIM module's 64 MB MRAM) was exceeded.
    CapacityExceeded {
        /// Bytes the structure would need after the operation.
        required: u64,
        /// Bytes available to the structure.
        capacity: u64,
    },
    /// The input (e.g. an edge-list line) could not be parsed.
    ParseEdgeList(String),
}

impl fmt::Display for GraphStoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphStoreError::NodeNotFound(n) => write!(f, "node {n} not found"),
            GraphStoreError::EdgeNotFound(s, d) => write!(f, "edge {s} -> {d} not found"),
            GraphStoreError::DuplicateEdge(s, d) => write!(f, "edge {s} -> {d} already exists"),
            GraphStoreError::CapacityExceeded { required, capacity } => write!(
                f,
                "storage capacity exceeded: {required} bytes required, {capacity} available"
            ),
            GraphStoreError::ParseEdgeList(line) => {
                write!(f, "malformed edge-list line: {line:?}")
            }
        }
    }
}

impl Error for GraphStoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let cases: Vec<(GraphStoreError, &str)> = vec![
            (GraphStoreError::NodeNotFound(NodeId(1)), "node n1 not found"),
            (GraphStoreError::EdgeNotFound(NodeId(1), NodeId(2)), "edge n1 -> n2 not found"),
            (GraphStoreError::DuplicateEdge(NodeId(3), NodeId(4)), "edge n3 -> n4 already exists"),
        ];
        for (err, expected) in cases {
            assert_eq!(err.to_string(), expected);
        }
    }

    #[test]
    fn capacity_error_reports_both_sides() {
        let err = GraphStoreError::CapacityExceeded { required: 100, capacity: 64 };
        let msg = err.to_string();
        assert!(msg.contains("100"));
        assert!(msg.contains("64"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphStoreError>();
    }
}
