//! Error type returned by graph storage operations.

use crate::ids::NodeId;
use std::error::Error;
use std::fmt;

/// Errors produced by graph storage structures.
///
/// # Examples
///
/// ```
/// use graph_store::{GraphStoreError, NodeId};
/// let err = GraphStoreError::NodeNotFound(NodeId(9));
/// assert_eq!(err.to_string(), "node n9 not found");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphStoreError {
    /// A node referenced by the operation does not exist.
    NodeNotFound(NodeId),
    /// The edge referenced by the operation does not exist.
    EdgeNotFound(NodeId, NodeId),
    /// The edge already exists and duplicate insertion was rejected.
    DuplicateEdge(NodeId, NodeId),
    /// A storage capacity limit (e.g. a PIM module's 64 MB MRAM) was exceeded.
    CapacityExceeded {
        /// Bytes the structure would need after the operation.
        required: u64,
        /// Bytes available to the structure.
        capacity: u64,
    },
    /// The input (e.g. an edge-list line) could not be parsed.
    ParseEdgeList(String),
    /// An I/O operation on a durability or edge-list file failed.
    Io {
        /// File the operation targeted.
        path: String,
        /// What was being attempted (e.g. `"append wal record"`).
        op: String,
        /// The underlying OS error message.
        detail: String,
    },
    /// On-disk bytes failed validation (magic, version, framing or checksum).
    Corrupt {
        /// File the bytes came from.
        path: String,
        /// Byte offset where validation failed.
        offset: u64,
        /// Index of the record (or section) being decoded when it failed.
        record: u64,
        /// What failed to validate.
        detail: String,
    },
}

impl GraphStoreError {
    /// Wraps a [`std::io::Error`] with the file and operation it hit.
    ///
    /// The variant stores rendered strings (not the source error) so the
    /// enum stays [`Clone`] + [`Eq`] for callers that compare outcomes.
    pub fn io(path: &std::path::Path, op: &str, err: &std::io::Error) -> Self {
        GraphStoreError::Io {
            path: path.display().to_string(),
            op: op.to_string(),
            detail: err.to_string(),
        }
    }

    /// Builds a [`GraphStoreError::Corrupt`] with full location context.
    pub fn corrupt(path: &std::path::Path, offset: u64, record: u64, detail: &str) -> Self {
        GraphStoreError::Corrupt {
            path: path.display().to_string(),
            offset,
            record,
            detail: detail.to_string(),
        }
    }
}

impl fmt::Display for GraphStoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphStoreError::NodeNotFound(n) => write!(f, "node {n} not found"),
            GraphStoreError::EdgeNotFound(s, d) => write!(f, "edge {s} -> {d} not found"),
            GraphStoreError::DuplicateEdge(s, d) => write!(f, "edge {s} -> {d} already exists"),
            GraphStoreError::CapacityExceeded { required, capacity } => write!(
                f,
                "storage capacity exceeded: {required} bytes required, {capacity} available"
            ),
            GraphStoreError::ParseEdgeList(line) => {
                write!(f, "malformed edge-list line: {line:?}")
            }
            GraphStoreError::Io { path, op, detail } => {
                write!(f, "io error on {path} while trying to {op}: {detail}")
            }
            GraphStoreError::Corrupt { path, offset, record, detail } => {
                write!(f, "corrupt file {path} at byte {offset} (record {record}): {detail}")
            }
        }
    }
}

impl Error for GraphStoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let cases: Vec<(GraphStoreError, &str)> = vec![
            (GraphStoreError::NodeNotFound(NodeId(1)), "node n1 not found"),
            (GraphStoreError::EdgeNotFound(NodeId(1), NodeId(2)), "edge n1 -> n2 not found"),
            (GraphStoreError::DuplicateEdge(NodeId(3), NodeId(4)), "edge n3 -> n4 already exists"),
        ];
        for (err, expected) in cases {
            assert_eq!(err.to_string(), expected);
        }
    }

    #[test]
    fn capacity_error_reports_both_sides() {
        let err = GraphStoreError::CapacityExceeded { required: 100, capacity: 64 };
        let msg = err.to_string();
        assert!(msg.contains("100"));
        assert!(msg.contains("64"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphStoreError>();
    }
}
