//! Fixed-width little-endian reads over byte slices.
//!
//! The WAL and snapshot decoders ([`crate::wal`], [`crate::snapshot`]) parse
//! length-prefixed binary frames whose bounds are validated *before* any
//! field is read. These helpers centralize the `try_into().unwrap()` idiom
//! that conversion requires, so the infallibility argument — the caller
//! checked the slice length — lives in exactly one place instead of being
//! repeated at every call site.
//!
//! # Panics
//!
//! Each function panics if `bytes` is shorter than `at + width`. Callers
//! must bounds-check first; the decoders do so via explicit length guards
//! (`wal::decode_wal_bytes`) or [`crate::snapshot`]'s `Reader::take`.

/// Reads a little-endian `u16` at byte offset `at`.
pub(crate) fn u16_at(bytes: &[u8], at: usize) -> u16 {
    // moctopus-lint: allow(panic-in-lib, reason = "width is the array length by construction; callers bounds-check per module docs")
    u16::from_le_bytes(bytes[at..at + 2].try_into().unwrap())
}

/// Reads a little-endian `u32` at byte offset `at`.
pub(crate) fn u32_at(bytes: &[u8], at: usize) -> u32 {
    // moctopus-lint: allow(panic-in-lib, reason = "width is the array length by construction; callers bounds-check per module docs")
    u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap())
}

/// Reads a little-endian `u64` at byte offset `at`.
pub(crate) fn u64_at(bytes: &[u8], at: usize) -> u64 {
    // moctopus-lint: allow(panic-in-lib, reason = "width is the array length by construction; callers bounds-check per module docs")
    u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_little_endian_at_offset() {
        let bytes = [0xFFu8, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09];
        assert_eq!(u16_at(&bytes, 1), 0x0201);
        assert_eq!(u32_at(&bytes, 1), 0x0403_0201);
        assert_eq!(u64_at(&bytes, 1), 0x0807_0605_0403_0201);
    }

    #[test]
    #[should_panic]
    fn panics_when_out_of_bounds() {
        let bytes = [0u8; 4];
        u64_at(&bytes, 0);
    }
}
