//! Incrementally maintained per-label degree/cardinality statistics.
//!
//! The cost-based RPQ optimizer (`rpq::optimizer`) prices candidate execution
//! plans with three quantities per edge label: how many edges carry the
//! label, how many distinct nodes have an out-edge with it, and how many
//! distinct nodes have an in-edge with it. [`LabelStatsTable`] maintains all
//! three **incrementally** — every storage substrate updates it on the same
//! code path that updates its row data (edge insert/delete, row
//! install/take, snapshot restore), so producing a statistics snapshot never
//! rescans stored rows. The "incremental equals rebuilt-from-scratch"
//! property is unit-tested on every store and across the PIM engines'
//! promotion/migration paths.
//!
//! Statistics are *observables of the planner only*: they never influence
//! served results, query statistics, or dependency footprints (the
//! plan-invariance contract in ARCHITECTURE.md §optimizer).

use crate::ids::{Label, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// Aggregate counters for one edge label.
///
/// Forward records maintain `edges` and `sources`; the mirrored reverse-row
/// records ([`LabelStatsTable::record_rev_insert`] etc.) maintain `targets`.
/// A store that carries both sides of an edge calls both.
///
/// # Examples
///
/// ```
/// use graph_store::{Label, LabelStatsTable, NodeId};
/// let mut t = LabelStatsTable::new();
/// t.record_insert(NodeId(0), NodeId(1), Label(3));
/// t.record_insert(NodeId(0), NodeId(2), Label(3));
/// t.record_rev_insert(NodeId(1), Label(3));
/// t.record_rev_insert(NodeId(2), Label(3));
/// let snap = t.snapshot();
/// let c = snap.counters(Label(3));
/// assert_eq!((c.edges, c.sources, c.targets), (2, 1, 2));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LabelCounters {
    /// Number of stored edges carrying the label.
    pub edges: u64,
    /// Number of distinct nodes with at least one out-edge of the label.
    pub sources: u64,
    /// Number of distinct nodes with at least one in-edge of the label.
    pub targets: u64,
}

/// Per-label bookkeeping: the degree multiplicity maps are needed so
/// deletions know when a node's last edge of the label disappears (the
/// distinct-source/target counts must decrement exactly then). The maps are
/// never iterated — counters derive from their lengths — so hash-map order
/// cannot leak into any observable.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct LabelEntry {
    /// Edges of this label currently stored.
    edges: u64,
    /// Out-degree (for this label) per source node with degree ≥ 1.
    out_degree: HashMap<NodeId, u32>,
    /// In-degree (for this label) per target node with degree ≥ 1,
    /// maintained exclusively by the reverse-row record methods.
    in_degree: HashMap<NodeId, u32>,
}

impl LabelEntry {
    /// True when neither side of the bookkeeping references the label any
    /// more; only then may the per-label entry be dropped (a store can hold
    /// reverse rows for a label whose forward rows all live elsewhere).
    fn is_empty(&self) -> bool {
        self.edges == 0 && self.out_degree.is_empty() && self.in_degree.is_empty()
    }
}

/// Incrementally maintained per-label statistics of one storage substrate.
///
/// Maintained by [`crate::LocalGraphStorage`], [`crate::HeterogeneousStorage`]
/// and [`crate::AdjacencyGraph`] on every labelled mutation; read by the
/// engines through [`LabelStatsTable::snapshot`]. The table is keyed on a
/// [`BTreeMap`] so snapshots list labels in ascending order deterministically.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LabelStatsTable {
    per_label: BTreeMap<Label, LabelEntry>,
}

impl LabelStatsTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one stored edge `src --label--> dst` (forward row side).
    ///
    /// Forward records deliberately do **not** touch the distinct-target map:
    /// targets are owned by the reverse-row side
    /// ([`LabelStatsTable::record_rev_insert`]), which lives in the store that
    /// owns `dst`'s reverse row. This keeps summed target counts exact when
    /// per-store snapshots merge.
    pub fn record_insert(&mut self, src: NodeId, _dst: NodeId, label: Label) {
        let entry = self.per_label.entry(label).or_default();
        entry.edges += 1;
        *entry.out_degree.entry(src).or_insert(0) += 1;
    }

    /// Records the removal of one stored edge `src --label--> dst`.
    ///
    /// Removing an edge that was never recorded is a no-op (the stores only
    /// call this after their own presence check succeeded).
    pub fn record_delete(&mut self, src: NodeId, _dst: NodeId, label: Label) {
        let Some(entry) = self.per_label.get_mut(&label) else { return };
        entry.edges = entry.edges.saturating_sub(1);
        if let Some(d) = entry.out_degree.get_mut(&src) {
            *d -= 1;
            if *d == 0 {
                entry.out_degree.remove(&src);
            }
        }
        if entry.is_empty() {
            self.per_label.remove(&label);
        }
    }

    /// Records one reverse-row entry `dst <--label-- src` arriving in the
    /// store that owns `dst`'s reverse row. Only the distinct-target map
    /// moves; the edge itself is counted by the forward side.
    pub fn record_rev_insert(&mut self, dst: NodeId, label: Label) {
        let entry = self.per_label.entry(label).or_default();
        *entry.in_degree.entry(dst).or_insert(0) += 1;
    }

    /// Records the removal of one reverse-row entry for `dst`.
    pub fn record_rev_delete(&mut self, dst: NodeId, label: Label) {
        let Some(entry) = self.per_label.get_mut(&label) else { return };
        if let Some(d) = entry.in_degree.get_mut(&dst) {
            *d -= 1;
            if *d == 0 {
                entry.in_degree.remove(&dst);
            }
        }
        if entry.is_empty() {
            self.per_label.remove(&label);
        }
    }

    /// Records a whole reverse row arriving in the store (reverse-row
    /// migration / snapshot rebuild): one reverse insert per in-edge entry.
    pub fn record_rev_row_installed(&mut self, node: NodeId, rev_row: &[(NodeId, Label)]) {
        for &(_src, label) in rev_row {
            self.record_rev_insert(node, label);
        }
    }

    /// Records a whole reverse row leaving the store (reverse-row migration):
    /// one reverse delete per in-edge entry.
    pub fn record_rev_row_taken(&mut self, node: NodeId, rev_row: &[(NodeId, Label)]) {
        for &(_src, label) in rev_row {
            self.record_rev_delete(node, label);
        }
    }

    /// Distinct sources of `label` in this store, ascending by node id.
    ///
    /// The planned executors seed backward useful-set sweeps from this set;
    /// sorting makes the seed order deterministic.
    pub fn sources_of(&self, label: Label) -> Vec<NodeId> {
        let Some(entry) = self.per_label.get(&label) else { return Vec::new() };
        // moctopus-lint: allow(hash-iter-order, reason = "collected then sorted on the next line before use")
        let mut v: Vec<NodeId> = entry.out_degree.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Records a whole row arriving in the store (row migration / snapshot
    /// restore): one insert per next-hop entry.
    pub fn record_row_installed(&mut self, node: NodeId, row: &[(NodeId, Label)]) {
        for &(dst, label) in row {
            self.record_insert(node, dst, label);
        }
    }

    /// Records a whole row leaving the store (row migration): one delete per
    /// next-hop entry.
    pub fn record_row_taken(&mut self, node: NodeId, row: &[(NodeId, Label)]) {
        for &(dst, label) in row {
            self.record_delete(node, dst, label);
        }
    }

    /// Total stored edges across all labels.
    pub fn total_edges(&self) -> u64 {
        self.per_label.values().map(|e| e.edges).sum()
    }

    /// A deterministic point-in-time snapshot (labels ascending).
    pub fn snapshot(&self) -> LabelStatsSnapshot {
        let per_label: Vec<(Label, LabelCounters)> = self
            .per_label
            .iter()
            .map(|(&label, entry)| {
                (
                    label,
                    LabelCounters {
                        edges: entry.edges,
                        sources: entry.out_degree.len() as u64,
                        targets: entry.in_degree.len() as u64,
                    },
                )
            })
            .collect();
        let total_edges = per_label.iter().map(|(_, c)| c.edges).sum();
        LabelStatsSnapshot { per_label, total_edges }
    }
}

/// A point-in-time, store-order-independent view of per-label statistics.
///
/// Snapshots from the PIM modules and the host store merge by summation
/// ([`LabelStatsSnapshot::merge`]). Every node's forward row lives in exactly
/// one store, so summed source counts are exact; with the reverse-row index
/// (PR 10) every node's reverse row also lives in exactly one store, so
/// summed target counts are now exact too (they were previously a documented
/// over-approximation derived from forward rows).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LabelStatsSnapshot {
    /// Counters per label, ascending by label id.
    pub per_label: Vec<(Label, LabelCounters)>,
    /// Total stored edges across all labels.
    pub total_edges: u64,
}

impl LabelStatsSnapshot {
    /// Counters for `label` (all-zero if the label is absent).
    pub fn counters(&self, label: Label) -> LabelCounters {
        match self.per_label.binary_search_by_key(&label, |&(l, _)| l) {
            Ok(i) => self.per_label[i].1,
            Err(_) => LabelCounters::default(),
        }
    }

    /// Number of distinct nodes with any out-edge, summed over labels'
    /// source sets (an upper bound used to cap frontier estimates).
    pub fn node_hint(&self) -> u64 {
        let sources: u64 = self.per_label.iter().map(|(_, c)| c.sources).sum();
        let targets: u64 = self.per_label.iter().map(|(_, c)| c.targets).sum();
        sources.max(targets).max(1)
    }

    /// Folds another snapshot into this one by summation, keeping the label
    /// list sorted.
    pub fn merge(&mut self, other: &LabelStatsSnapshot) {
        for &(label, c) in &other.per_label {
            match self.per_label.binary_search_by_key(&label, |&(l, _)| l) {
                Ok(i) => {
                    let mine = &mut self.per_label[i].1;
                    mine.edges += c.edges;
                    mine.sources += c.sources;
                    mine.targets += c.targets;
                }
                Err(i) => self.per_label.insert(i, (label, c)),
            }
        }
        self.total_edges += other.total_edges;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_delete_roundtrip_is_empty() {
        let mut t = LabelStatsTable::new();
        t.record_insert(NodeId(0), NodeId(1), Label(1));
        t.record_insert(NodeId(0), NodeId(2), Label(1));
        t.record_delete(NodeId(0), NodeId(1), Label(1));
        t.record_delete(NodeId(0), NodeId(2), Label(1));
        assert_eq!(t.snapshot(), LabelStatsSnapshot::default());
        assert_eq!(t.total_edges(), 0);
    }

    /// Mirrors forward records with their reverse-row records, the way a
    /// single store holding both sides of every edge would.
    fn record_both(t: &mut LabelStatsTable, src: NodeId, dst: NodeId, label: Label) {
        t.record_insert(src, dst, label);
        t.record_rev_insert(dst, label);
    }

    fn delete_both(t: &mut LabelStatsTable, src: NodeId, dst: NodeId, label: Label) {
        t.record_delete(src, dst, label);
        t.record_rev_delete(dst, label);
    }

    #[test]
    fn distinct_counts_track_multiplicity() {
        let mut t = LabelStatsTable::new();
        record_both(&mut t, NodeId(0), NodeId(1), Label(2));
        record_both(&mut t, NodeId(0), NodeId(2), Label(2));
        record_both(&mut t, NodeId(3), NodeId(1), Label(2));
        let c = t.snapshot().counters(Label(2));
        assert_eq!((c.edges, c.sources, c.targets), (3, 2, 2));
        // Deleting one of node 0's two label-2 edges keeps it a source.
        delete_both(&mut t, NodeId(0), NodeId(1), Label(2));
        let c = t.snapshot().counters(Label(2));
        assert_eq!((c.edges, c.sources, c.targets), (2, 2, 2));
        // Deleting the other removes it.
        delete_both(&mut t, NodeId(0), NodeId(2), Label(2));
        let c = t.snapshot().counters(Label(2));
        assert_eq!((c.edges, c.sources, c.targets), (1, 1, 1));
    }

    #[test]
    fn forward_records_never_touch_targets() {
        let mut t = LabelStatsTable::new();
        t.record_insert(NodeId(0), NodeId(1), Label(2));
        let c = t.snapshot().counters(Label(2));
        assert_eq!((c.edges, c.sources, c.targets), (1, 1, 0));
    }

    #[test]
    fn rev_records_alone_keep_a_label_entry_alive() {
        // A store can hold only the reverse row of a node whose in-edges all
        // originate in other stores: edges == 0 there, but targets must
        // still be counted until the reverse entries leave.
        let mut t = LabelStatsTable::new();
        t.record_rev_insert(NodeId(5), Label(7));
        t.record_rev_insert(NodeId(5), Label(7));
        let c = t.snapshot().counters(Label(7));
        assert_eq!((c.edges, c.sources, c.targets), (0, 0, 1));
        t.record_rev_delete(NodeId(5), Label(7));
        let c = t.snapshot().counters(Label(7));
        assert_eq!((c.edges, c.sources, c.targets), (0, 0, 1));
        t.record_rev_delete(NodeId(5), Label(7));
        assert_eq!(t.snapshot(), LabelStatsSnapshot::default());
    }

    #[test]
    fn rev_row_install_take_mirror_each_other() {
        let mut t = LabelStatsTable::new();
        let rev_row = vec![(NodeId(1), Label(1)), (NodeId(2), Label(2)), (NodeId(3), Label(1))];
        t.record_rev_row_installed(NodeId(0), &rev_row);
        assert_eq!(t.snapshot().counters(Label(1)).targets, 1);
        assert_eq!(t.snapshot().counters(Label(2)).targets, 1);
        t.record_rev_row_taken(NodeId(0), &rev_row);
        assert_eq!(t.snapshot(), LabelStatsSnapshot::default());
    }

    #[test]
    fn sources_of_is_sorted_and_exact() {
        let mut t = LabelStatsTable::new();
        t.record_insert(NodeId(9), NodeId(1), Label(2));
        t.record_insert(NodeId(3), NodeId(1), Label(2));
        t.record_insert(NodeId(9), NodeId(4), Label(2));
        t.record_insert(NodeId(5), NodeId(1), Label(8));
        assert_eq!(t.sources_of(Label(2)), vec![NodeId(3), NodeId(9)]);
        assert_eq!(t.sources_of(Label(8)), vec![NodeId(5)]);
        assert!(t.sources_of(Label(1)).is_empty());
        t.record_delete(NodeId(9), NodeId(1), Label(2));
        t.record_delete(NodeId(9), NodeId(4), Label(2));
        assert_eq!(t.sources_of(Label(2)), vec![NodeId(3)]);
    }

    #[test]
    fn row_install_take_mirror_each_other() {
        let mut t = LabelStatsTable::new();
        let row = vec![(NodeId(1), Label(1)), (NodeId(2), Label(2)), (NodeId(3), Label(1))];
        t.record_row_installed(NodeId(0), &row);
        assert_eq!(t.snapshot().counters(Label(1)).edges, 2);
        assert_eq!(t.total_edges(), 3);
        t.record_row_taken(NodeId(0), &row);
        assert_eq!(t.snapshot(), LabelStatsSnapshot::default());
    }

    #[test]
    fn snapshot_lists_labels_ascending_and_merges_by_sum() {
        let mut a = LabelStatsTable::new();
        a.record_insert(NodeId(0), NodeId(1), Label(5));
        a.record_insert(NodeId(0), NodeId(1), Label(2));
        let mut snap = a.snapshot();
        let labels: Vec<u16> = snap.per_label.iter().map(|&(l, _)| l.0).collect();
        assert_eq!(labels, vec![2, 5]);

        let mut b = LabelStatsTable::new();
        b.record_insert(NodeId(7), NodeId(8), Label(3));
        b.record_insert(NodeId(7), NodeId(9), Label(5));
        snap.merge(&b.snapshot());
        let labels: Vec<u16> = snap.per_label.iter().map(|&(l, _)| l.0).collect();
        assert_eq!(labels, vec![2, 3, 5]);
        assert_eq!(snap.counters(Label(5)).edges, 2);
        assert_eq!(snap.total_edges, 4);
    }

    #[test]
    fn unknown_label_counters_are_zero() {
        let snap = LabelStatsTable::new().snapshot();
        assert_eq!(snap.counters(Label(9)), LabelCounters::default());
        assert_eq!(snap.node_hint(), 1, "empty snapshots still cap at one node");
    }

    #[test]
    fn delete_of_unrecorded_edge_is_noop() {
        let mut t = LabelStatsTable::new();
        t.record_delete(NodeId(0), NodeId(1), Label(1));
        assert_eq!(t.snapshot(), LabelStatsSnapshot::default());
    }
}
