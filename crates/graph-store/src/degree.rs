//! Out-degree tracking and the high-degree node classification.
//!
//! The paper classifies nodes with out-degree exceeding 16 as *high-degree*
//! (Table 1) and assigns them to the host CPU under the labor-division
//! approach. [`DegreeTracker`] maintains out-degrees incrementally as edges
//! stream in so the Node Migrator can detect the exact moment a low-degree
//! node crosses the threshold and must move to the host side.

use crate::ids::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Out-degree above which a node is considered high-degree (paper, Table 1).
pub const HIGH_DEGREE_THRESHOLD: usize = 16;

/// Incremental out-degree tracker with high-degree classification.
///
/// # Examples
///
/// ```
/// use graph_store::{DegreeTracker, NodeId, HIGH_DEGREE_THRESHOLD};
///
/// let mut t = DegreeTracker::new(HIGH_DEGREE_THRESHOLD);
/// for _ in 0..17 {
///     t.record_insert(NodeId(0));
/// }
/// assert!(t.is_high_degree(NodeId(0)));
/// assert_eq!(t.degree(NodeId(1)), 0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DegreeTracker {
    degrees: HashMap<NodeId, usize>,
    threshold: usize,
    high_degree_count: usize,
}

impl DegreeTracker {
    /// Creates a tracker with the given high-degree threshold.
    pub fn new(threshold: usize) -> Self {
        DegreeTracker { degrees: HashMap::new(), threshold, high_degree_count: 0 }
    }

    /// Creates a tracker with the paper's threshold of 16.
    pub fn with_paper_threshold() -> Self {
        Self::new(HIGH_DEGREE_THRESHOLD)
    }

    /// The configured high-degree threshold.
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// Records an out-edge insertion at `src`.
    ///
    /// Returns `true` when this insertion is the one that pushes `src` across
    /// the high-degree threshold (the trigger for host migration).
    pub fn record_insert(&mut self, src: NodeId) -> bool {
        let d = self.degrees.entry(src).or_insert(0);
        *d += 1;
        if *d == self.threshold + 1 {
            self.high_degree_count += 1;
            true
        } else {
            false
        }
    }

    /// Records an out-edge deletion at `src`.
    ///
    /// Returns `true` when the deletion drops `src` back below the threshold.
    pub fn record_delete(&mut self, src: NodeId) -> bool {
        if let Some(d) = self.degrees.get_mut(&src) {
            if *d > 0 {
                let was_high = *d > self.threshold;
                *d -= 1;
                let is_high = *d > self.threshold;
                if was_high && !is_high {
                    self.high_degree_count -= 1;
                    return true;
                }
            }
        }
        false
    }

    /// Current out-degree of `node` (0 if unknown).
    pub fn degree(&self, node: NodeId) -> usize {
        self.degrees.get(&node).copied().unwrap_or(0)
    }

    /// Returns `true` if `node` is currently classified as high-degree.
    pub fn is_high_degree(&self, node: NodeId) -> bool {
        self.degree(node) > self.threshold
    }

    /// Number of nodes currently classified as high-degree.
    pub fn high_degree_count(&self) -> usize {
        self.high_degree_count
    }

    /// Number of nodes with at least one recorded out-edge ever.
    pub fn tracked_nodes(&self) -> usize {
        self.degrees.len()
    }

    /// Iterates over `(node, degree)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, usize)> + '_ {
        // moctopus-lint: allow(hash-iter-order, reason = "documented arbitrary-order API; durable exports go through export_entries, which sorts")
        self.degrees.iter().map(|(&n, &d)| (n, d))
    }

    /// Exports the degree table sorted by node id, for a durable snapshot.
    ///
    /// Zero-degree entries (nodes whose edges were all deleted) are exported
    /// too: they exist in the live map and keep `tracked_nodes` faithful.
    pub fn export_entries(&self) -> Vec<(NodeId, u64)> {
        // moctopus-lint: allow(hash-iter-order, reason = "collected then sort_by_key on the next line before use")
        let mut entries: Vec<(NodeId, u64)> =
            self.degrees.iter().map(|(&n, &d)| (n, d as u64)).collect();
        entries.sort_by_key(|&(n, _)| n);
        entries
    }

    /// Rebuilds a tracker from entries exported by
    /// [`DegreeTracker::export_entries`].
    ///
    /// The high-degree count is recomputed from the entries so it can never
    /// disagree with the table.
    pub fn from_entries(threshold: usize, entries: Vec<(NodeId, u64)>) -> Self {
        let mut high_degree_count = 0;
        let degrees: HashMap<NodeId, usize> = entries
            .into_iter()
            .map(|(n, d)| {
                let d = d as usize;
                if d > threshold {
                    high_degree_count += 1;
                }
                (n, d)
            })
            .collect();
        DegreeTracker { degrees, threshold, high_degree_count }
    }
}

impl Default for DegreeTracker {
    fn default() -> Self {
        Self::with_paper_threshold()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_uses_paper_threshold() {
        let t = DegreeTracker::default();
        assert_eq!(t.threshold(), 16);
    }

    #[test]
    fn crossing_threshold_is_reported_once() {
        let mut t = DegreeTracker::new(2);
        assert!(!t.record_insert(NodeId(5)));
        assert!(!t.record_insert(NodeId(5)));
        assert!(t.record_insert(NodeId(5))); // degree 3 > 2
        assert!(!t.record_insert(NodeId(5)));
        assert_eq!(t.high_degree_count(), 1);
    }

    #[test]
    fn deletion_can_demote_a_node() {
        let mut t = DegreeTracker::new(2);
        for _ in 0..4 {
            t.record_insert(NodeId(1));
        }
        assert!(t.is_high_degree(NodeId(1)));
        assert!(!t.record_delete(NodeId(1))); // degree 3, still high
        assert!(t.record_delete(NodeId(1))); // degree 2, demoted
        assert!(!t.is_high_degree(NodeId(1)));
        assert_eq!(t.high_degree_count(), 0);
    }

    #[test]
    fn delete_on_unknown_node_is_noop() {
        let mut t = DegreeTracker::default();
        assert!(!t.record_delete(NodeId(42)));
        assert_eq!(t.degree(NodeId(42)), 0);
    }

    #[test]
    fn tracked_nodes_counts_distinct_sources() {
        let mut t = DegreeTracker::default();
        t.record_insert(NodeId(0));
        t.record_insert(NodeId(0));
        t.record_insert(NodeId(1));
        assert_eq!(t.tracked_nodes(), 2);
        let mut degrees: Vec<_> = t.iter().collect();
        degrees.sort();
        assert_eq!(degrees, vec![(NodeId(0), 2), (NodeId(1), 1)]);
    }

    #[test]
    fn threshold_is_strict() {
        let mut t = DegreeTracker::new(16);
        for _ in 0..16 {
            t.record_insert(NodeId(7));
        }
        assert!(!t.is_high_degree(NodeId(7)));
        t.record_insert(NodeId(7));
        assert!(t.is_high_degree(NodeId(7)));
    }
}
