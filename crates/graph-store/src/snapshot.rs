//! Versioned, checksummed on-disk snapshot of an engine's storage plane.
//!
//! A [`SnapshotState`] is a complete, canonical image of everything an engine
//! needs to resume **bit-identically**: the per-PIM-module local rows, the
//! host-resident heterogeneous rows (slot layout and free lists verbatim —
//! they govern future update behaviour and row-read costs), the raw partition
//! assignment, the degree table, the partitioner's promotion log, and the
//! host baseline's adjacency rows. Engines fill only the sections they own;
//! unused sections stay empty and encode to a handful of bytes.
//!
//! The byte format is hand-rolled little-endian (not `serde`): hash-map
//! iteration order must never leak into the encoding, so every section is
//! sorted by node id at export and row contents are written verbatim. The
//! file layout is `[magic "MSNP"][version: u32][payload_len: u64][payload]
//! [crc: u32]` where `crc` is the CRC-32 of the payload — one checksum over
//! the whole image, verified before a single field is trusted.

use crate::bytes::{u32_at, u64_at};
use crate::error::GraphStoreError;
use crate::ids::{Label, NodeId};
use crate::wal::crc32;
use std::io::Write;
use std::path::Path;

/// Magic bytes opening every snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"MSNP";
/// On-disk snapshot format version this build reads and writes.
pub const SNAPSHOT_VERSION: u32 = 1;

/// One PIM module's local storage image: rows sorted by id, contents
/// verbatim, plus the module's configured MRAM capacity.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LocalModuleSnapshot {
    /// `(row id, strictly sorted labelled next-hops)`, sorted by row id.
    pub rows: Vec<(NodeId, Vec<(NodeId, Label)>)>,
    /// The module's capacity limit in bytes, if one was configured.
    pub capacity_bytes: Option<u64>,
}

/// One host-resident heterogeneous row: `cols_vector` slots verbatim (free
/// slots included, as the sentinel id) and the free list in exact pop order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostRowSnapshot {
    /// The high-degree row this entry belongs to.
    pub node: NodeId,
    /// The host-side slot array, free-slot sentinels included.
    pub slots: Vec<(NodeId, Label)>,
    /// Free slot positions, in the order the next inserts will pop them.
    pub free: Vec<u64>,
}

/// Complete durable image of one engine's storage plane.
///
/// See the [module docs](self) for what each section captures and why the
/// encoding is canonical.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SnapshotState {
    /// Sequence number of the last update folded into this snapshot; WAL
    /// records with `seq <= last_seq` are skipped at recovery.
    pub last_seq: u64,
    /// Total directed labelled edges the engine stored at snapshot time.
    pub edge_count: u64,
    /// Per-PIM-module local rows (index = module id).
    pub local_modules: Vec<LocalModuleSnapshot>,
    /// Host heterogeneous rows, sorted by node id.
    pub host_rows: Vec<HostRowSnapshot>,
    /// Raw partition-assignment slots (index = node id).
    pub assignment_slots: Vec<u32>,
    /// Out-degree table, sorted by node id.
    pub degrees: Vec<(NodeId, u64)>,
    /// Promotion log of the greedy-adaptive partitioner, in promotion order.
    pub promotions: Vec<NodeId>,
    /// Host-baseline adjacency rows, sorted by node id, contents verbatim.
    pub adjacency_rows: Vec<(NodeId, Vec<(NodeId, Label)>)>,
    /// The adjacency graph's id bound (one past the largest id ever seen).
    pub adjacency_id_bound: u64,
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_row(out: &mut Vec<u8>, node: NodeId, hops: &[(NodeId, Label)]) {
    put_u64(out, node.0);
    put_u64(out, hops.len() as u64);
    for &(dst, label) in hops {
        put_u64(out, dst.0);
        out.extend_from_slice(&label.0.to_le_bytes());
    }
}

/// One decoded adjacency row: `(row id, labelled hops)`.
type DecodedRow = (NodeId, Vec<(NodeId, Label)>);

/// Sequential byte reader with offset tracking for decode errors.
struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], (u64, String)> {
        if self.bytes.len() - self.at < n {
            return Err((
                self.at as u64,
                format!("truncated {what}: need {n} bytes, {} left", self.bytes.len() - self.at),
            ));
        }
        let s = &self.bytes[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn u8(&mut self, what: &str) -> Result<u8, (u64, String)> {
        Ok(self.take(1, what)?[0])
    }

    fn u16(&mut self, what: &str) -> Result<u16, (u64, String)> {
        Ok(crate::bytes::u16_at(self.take(2, what)?, 0))
    }

    fn u32(&mut self, what: &str) -> Result<u32, (u64, String)> {
        Ok(u32_at(self.take(4, what)?, 0))
    }

    fn u64(&mut self, what: &str) -> Result<u64, (u64, String)> {
        Ok(u64_at(self.take(8, what)?, 0))
    }

    /// A count about to size an allocation: bounded by the bytes that could
    /// possibly back it, so corrupt lengths cannot trigger huge allocations.
    fn count(&mut self, min_elem_bytes: usize, what: &str) -> Result<usize, (u64, String)> {
        let offset = self.at as u64;
        let n = self.u64(what)?;
        let left = (self.bytes.len() - self.at) as u64;
        if n > left / min_elem_bytes.max(1) as u64 {
            return Err((offset, format!("implausible {what} count {n} ({left} bytes left)")));
        }
        Ok(n as usize)
    }

    fn row(&mut self) -> Result<DecodedRow, (u64, String)> {
        let node = NodeId(self.u64("row id")?);
        let n = self.count(10, "row hops")?;
        let mut hops = Vec::with_capacity(n);
        for _ in 0..n {
            let dst = NodeId(self.u64("hop id")?);
            let label = Label(self.u16("hop label")?);
            hops.push((dst, label));
        }
        Ok((node, hops))
    }
}

impl SnapshotState {
    /// Serialises the snapshot payload (no file header or checksum).
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_u64(&mut out, self.last_seq);
        put_u64(&mut out, self.edge_count);

        put_u64(&mut out, self.local_modules.len() as u64);
        for module in &self.local_modules {
            match module.capacity_bytes {
                Some(cap) => {
                    out.push(1);
                    put_u64(&mut out, cap);
                }
                None => out.push(0),
            }
            put_u64(&mut out, module.rows.len() as u64);
            for (node, hops) in &module.rows {
                put_row(&mut out, *node, hops);
            }
        }

        put_u64(&mut out, self.host_rows.len() as u64);
        for row in &self.host_rows {
            put_row(&mut out, row.node, &row.slots);
            put_u64(&mut out, row.free.len() as u64);
            for &pos in &row.free {
                put_u64(&mut out, pos);
            }
        }

        put_u64(&mut out, self.assignment_slots.len() as u64);
        for &slot in &self.assignment_slots {
            put_u32(&mut out, slot);
        }

        put_u64(&mut out, self.degrees.len() as u64);
        for &(node, degree) in &self.degrees {
            put_u64(&mut out, node.0);
            put_u64(&mut out, degree);
        }

        put_u64(&mut out, self.promotions.len() as u64);
        for &node in &self.promotions {
            put_u64(&mut out, node.0);
        }

        put_u64(&mut out, self.adjacency_rows.len() as u64);
        for (node, hops) in &self.adjacency_rows {
            put_row(&mut out, *node, hops);
        }
        put_u64(&mut out, self.adjacency_id_bound);
        out
    }

    /// Serialises the full snapshot file image: header, payload, checksum.
    pub fn encode_file(&self) -> Vec<u8> {
        let payload = self.encode_payload();
        let mut out = Vec::with_capacity(payload.len() + 20);
        out.extend_from_slice(&SNAPSHOT_MAGIC);
        put_u32(&mut out, SNAPSHOT_VERSION);
        put_u64(&mut out, payload.len() as u64);
        out.extend_from_slice(&payload);
        put_u32(&mut out, crc32(&payload));
        out
    }

    /// Parses a payload produced by [`SnapshotState::encode_payload`].
    ///
    /// Returns `(offset, reason)` on malformed input; counts are sanity-
    /// bounded against the remaining bytes before any allocation.
    pub fn decode_payload(bytes: &[u8]) -> Result<SnapshotState, (u64, String)> {
        let mut r = Reader { bytes, at: 0 };
        let last_seq = r.u64("last_seq")?;
        let edge_count = r.u64("edge_count")?;

        let n_modules = r.count(9, "local modules")?;
        let mut local_modules = Vec::with_capacity(n_modules);
        for _ in 0..n_modules {
            let capacity_bytes = match r.u8("capacity tag")? {
                0 => None,
                1 => Some(r.u64("capacity bytes")?),
                t => return Err(((r.at - 1) as u64, format!("bad capacity tag {t}"))),
            };
            let n_rows = r.count(16, "module rows")?;
            let mut rows = Vec::with_capacity(n_rows);
            for _ in 0..n_rows {
                rows.push(r.row()?);
            }
            local_modules.push(LocalModuleSnapshot { rows, capacity_bytes });
        }

        let n_host = r.count(24, "host rows")?;
        let mut host_rows = Vec::with_capacity(n_host);
        for _ in 0..n_host {
            let (node, slots) = r.row()?;
            let n_free = r.count(8, "free list")?;
            let mut free = Vec::with_capacity(n_free);
            for _ in 0..n_free {
                free.push(r.u64("free slot")?);
            }
            host_rows.push(HostRowSnapshot { node, slots, free });
        }

        let n_slots = r.count(4, "assignment slots")?;
        let mut assignment_slots = Vec::with_capacity(n_slots);
        for _ in 0..n_slots {
            assignment_slots.push(r.u32("assignment slot")?);
        }

        let n_degrees = r.count(16, "degree entries")?;
        let mut degrees = Vec::with_capacity(n_degrees);
        for _ in 0..n_degrees {
            let node = NodeId(r.u64("degree node")?);
            let degree = r.u64("degree value")?;
            degrees.push((node, degree));
        }

        let n_promotions = r.count(8, "promotions")?;
        let mut promotions = Vec::with_capacity(n_promotions);
        for _ in 0..n_promotions {
            promotions.push(NodeId(r.u64("promotion")?));
        }

        let n_adj = r.count(16, "adjacency rows")?;
        let mut adjacency_rows = Vec::with_capacity(n_adj);
        for _ in 0..n_adj {
            adjacency_rows.push(r.row()?);
        }
        let adjacency_id_bound = r.u64("adjacency id bound")?;

        if r.at != bytes.len() {
            return Err((r.at as u64, format!("{} trailing bytes", bytes.len() - r.at)));
        }
        Ok(SnapshotState {
            last_seq,
            edge_count,
            local_modules,
            host_rows,
            assignment_slots,
            degrees,
            promotions,
            adjacency_rows,
            adjacency_id_bound,
        })
    }

    /// Parses a full snapshot file image, verifying header and checksum.
    pub fn decode_file(bytes: &[u8]) -> Result<SnapshotState, (u64, String)> {
        if bytes.len() < 16 {
            return Err((0, format!("file too short: {} bytes", bytes.len())));
        }
        if bytes[0..4] != SNAPSHOT_MAGIC {
            return Err((0, "bad magic".to_string()));
        }
        let version = u32_at(bytes, 4);
        if version != SNAPSHOT_VERSION {
            return Err((4, format!("unsupported version {version}")));
        }
        let payload_len = u64_at(bytes, 8);
        if payload_len != (bytes.len() as u64).saturating_sub(20) {
            return Err((8, format!("payload length {payload_len} vs file {}", bytes.len())));
        }
        let payload = &bytes[16..16 + payload_len as usize];
        let stored = u32_at(bytes, 16 + payload_len as usize);
        let actual = crc32(payload);
        if stored != actual {
            return Err((
                16 + payload_len,
                format!("crc mismatch: stored {stored:#010x}, computed {actual:#010x}"),
            ));
        }
        SnapshotState::decode_payload(payload).map_err(|(off, why)| (off + 16, why))
    }

    /// Writes the snapshot to `path` atomically: a `.tmp` sibling is written
    /// and fsynced, then renamed over the target.
    pub fn write_file(&self, path: &Path) -> Result<(), GraphStoreError> {
        let bytes = self.encode_file();
        let tmp = path.with_extension("tmp");
        let mut file = std::fs::File::create(&tmp)
            .map_err(|e| GraphStoreError::io(&tmp, "create snapshot tmp", &e))?;
        file.write_all(&bytes).map_err(|e| GraphStoreError::io(&tmp, "write snapshot", &e))?;
        file.sync_all().map_err(|e| GraphStoreError::io(&tmp, "sync snapshot", &e))?;
        drop(file);
        std::fs::rename(&tmp, path)
            .map_err(|e| GraphStoreError::io(path, "rename snapshot into place", &e))?;
        Ok(())
    }

    /// Reads and verifies a snapshot from `path`.
    pub fn read_file(path: &Path) -> Result<SnapshotState, GraphStoreError> {
        let bytes =
            std::fs::read(path).map_err(|e| GraphStoreError::io(path, "read snapshot", &e))?;
        SnapshotState::decode_file(&bytes)
            .map_err(|(offset, why)| GraphStoreError::corrupt(path, offset, 0, &why))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SnapshotState {
        SnapshotState {
            last_seq: 42,
            edge_count: 5,
            local_modules: vec![
                LocalModuleSnapshot {
                    rows: vec![
                        (NodeId(1), vec![(NodeId(2), Label(3)), (NodeId(4), Label::ANY)]),
                        (NodeId(7), vec![(NodeId(1), Label::ANY)]),
                    ],
                    capacity_bytes: Some(64 << 20),
                },
                LocalModuleSnapshot { rows: Vec::new(), capacity_bytes: None },
            ],
            host_rows: vec![HostRowSnapshot {
                node: NodeId(9),
                slots: vec![
                    (NodeId(5), Label::ANY),
                    (NodeId(u64::MAX), Label::ANY), // free slot sentinel
                    (NodeId(6), Label(2)),
                ],
                free: vec![1],
            }],
            assignment_slots: vec![0, 1, u32::MAX, u32::MAX - 1],
            degrees: vec![(NodeId(1), 2), (NodeId(9), 17)],
            promotions: vec![NodeId(9)],
            adjacency_rows: vec![(NodeId(0), vec![(NodeId(3), Label::ANY)]), (NodeId(3), vec![])],
            adjacency_id_bound: 10,
        }
    }

    #[test]
    fn round_trips_through_bytes() {
        let snap = sample();
        let decoded = SnapshotState::decode_file(&snap.encode_file()).unwrap();
        assert_eq!(decoded, snap);
        let empty = SnapshotState::default();
        assert_eq!(SnapshotState::decode_file(&empty.encode_file()).unwrap(), empty);
    }

    #[test]
    fn every_single_bit_flip_is_rejected() {
        let clean = sample().encode_file();
        for byte in 0..clean.len() {
            for bit in 0..8 {
                let mut bytes = clean.clone();
                bytes[byte] ^= 1 << bit;
                assert!(
                    SnapshotState::decode_file(&bytes).is_err(),
                    "flip at byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn every_truncation_is_rejected() {
        let clean = sample().encode_file();
        for cut in 0..clean.len() {
            assert!(SnapshotState::decode_file(&clean[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn implausible_counts_are_rejected_without_allocating() {
        // A payload claiming 2^60 rows must fail fast on the count bound.
        let mut payload = Vec::new();
        put_u64(&mut payload, 0); // last_seq
        put_u64(&mut payload, 0); // edge_count
        put_u64(&mut payload, 1 << 60); // local module count
        let mut file = Vec::new();
        file.extend_from_slice(&SNAPSHOT_MAGIC);
        put_u32(&mut file, SNAPSHOT_VERSION);
        put_u64(&mut file, payload.len() as u64);
        file.extend_from_slice(&payload);
        put_u32(&mut file, crc32(&payload));
        let err = SnapshotState::decode_file(&file).unwrap_err();
        assert!(err.1.contains("implausible"), "{err:?}");
    }

    #[test]
    fn file_round_trip_is_atomic_and_verified() {
        let dir = std::env::temp_dir().join(format!("moctopus-snap-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.msnp");
        let snap = sample();
        snap.write_file(&path).unwrap();
        assert_eq!(SnapshotState::read_file(&path).unwrap(), snap);
        // Corrupt one byte on disk: the read must fail with context.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let err = SnapshotState::read_file(&path).unwrap_err();
        assert!(matches!(err, GraphStoreError::Corrupt { .. }), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
