//! Append-only write-ahead log of labelled-edge update batches.
//!
//! The log is a flat byte stream: an 8-byte file header (magic + version)
//! followed by zero or more *frames*, each `[len: u32][crc: u32][payload]`
//! (all integers little-endian) where `crc` is the CRC-32 of the payload
//! bytes. A payload is one [`WalRecord`]: the batch's sequence number, the
//! operation (insert/delete), and the labelled edges.
//!
//! Encoding and decoding are pure byte-level functions, so crash injection
//! can exercise every truncation point and bit flip in memory without
//! touching a filesystem: [`decode_wal_bytes`] returns the longest prefix of
//! whole, checksummed frames and reports where — and why — it stopped. A torn
//! or corrupted tail therefore costs at most the records past the last intact
//! frame, and can never surface garbage as a decoded record.
//!
//! [`WalWriter`] is the file-backed append side with fsync batching: records
//! are flushed to the OS on every append and fsynced every `sync_every`
//! records (and on [`WalWriter::sync`]).

use crate::bytes::{u16_at, u32_at, u64_at};
use crate::error::GraphStoreError;
use crate::ids::{Label, NodeId};
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// Magic bytes opening every WAL file.
pub const WAL_MAGIC: [u8; 4] = *b"MWAL";
/// On-disk format version this build reads and writes.
pub const WAL_VERSION: u32 = 1;
/// Byte length of the WAL file header (magic + version).
pub const WAL_HEADER_LEN: usize = 8;
/// Byte length of a frame header (`len` + `crc`).
pub const FRAME_HEADER_LEN: usize = 8;
/// Smallest legal payload: seq (8) + op (1) + edge count (4), zero edges.
const MIN_PAYLOAD_LEN: usize = 13;
/// Bytes per encoded labelled edge: src (8) + dst (8) + label (2).
const EDGE_ENCODED_LEN: usize = 18;

const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32 (IEEE 802.3, reflected) of `bytes`.
///
/// Guarantees detection of any single-bit error in the checked span, which is
/// what the crash-injection property test leans on.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// The operation a WAL record applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalOp {
    /// Insert the batch's labelled edges.
    Insert,
    /// Delete the batch's labelled edges.
    Delete,
}

impl WalOp {
    fn code(self) -> u8 {
        match self {
            WalOp::Insert => 1,
            WalOp::Delete => 2,
        }
    }

    fn from_code(code: u8) -> Option<WalOp> {
        match code {
            1 => Some(WalOp::Insert),
            2 => Some(WalOp::Delete),
            _ => None,
        }
    }
}

/// One durable update: a sequenced batch of labelled edge inserts or deletes.
///
/// Sequence numbers are assigned by the caller in execution order and are
/// strictly increasing within a log; recovery uses them to skip records
/// already folded into a snapshot (duplicate-replay idempotence).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Position of this batch in the engine's total update order.
    pub seq: u64,
    /// Whether the batch inserts or deletes its edges.
    pub op: WalOp,
    /// The labelled edges of the batch, in submission order.
    pub edges: Vec<(NodeId, NodeId, Label)>,
}

impl WalRecord {
    /// Serialises the record payload (no frame header).
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(MIN_PAYLOAD_LEN + self.edges.len() * EDGE_ENCODED_LEN);
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.push(self.op.code());
        out.extend_from_slice(&(self.edges.len() as u32).to_le_bytes());
        for &(src, dst, label) in &self.edges {
            out.extend_from_slice(&src.0.to_le_bytes());
            out.extend_from_slice(&dst.0.to_le_bytes());
            out.extend_from_slice(&label.0.to_le_bytes());
        }
        out
    }

    /// Parses a payload produced by [`WalRecord::encode_payload`].
    ///
    /// Returns `Err(reason)` if the bytes are not exactly one well-formed
    /// record — decoding never guesses at partially valid input.
    pub fn decode_payload(bytes: &[u8]) -> Result<WalRecord, String> {
        if bytes.len() < MIN_PAYLOAD_LEN {
            return Err(format!("payload too short: {} bytes", bytes.len()));
        }
        let seq = u64_at(bytes, 0);
        let op =
            WalOp::from_code(bytes[8]).ok_or_else(|| format!("unknown op code {}", bytes[8]))?;
        let count = u32_at(bytes, 9) as usize;
        let expected = MIN_PAYLOAD_LEN + count * EDGE_ENCODED_LEN;
        if bytes.len() != expected {
            return Err(format!(
                "payload length {} does not match {count} edges (expected {expected})",
                bytes.len()
            ));
        }
        let mut edges = Vec::with_capacity(count);
        let mut at = MIN_PAYLOAD_LEN;
        for _ in 0..count {
            let src = u64_at(bytes, at);
            let dst = u64_at(bytes, at + 8);
            let label = u16_at(bytes, at + 16);
            edges.push((NodeId(src), NodeId(dst), Label(label)));
            at += EDGE_ENCODED_LEN;
        }
        Ok(WalRecord { seq, op, edges })
    }

    /// Appends the framed record (`len`, `crc`, payload) to `out`.
    pub fn encode_frame(&self, out: &mut Vec<u8>) {
        let payload = self.encode_payload();
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
    }
}

/// Writes the 8-byte WAL file header into `out`.
pub fn encode_wal_header(out: &mut Vec<u8>) {
    out.extend_from_slice(&WAL_MAGIC);
    out.extend_from_slice(&WAL_VERSION.to_le_bytes());
}

/// Where and why [`decode_wal_bytes`] stopped before the end of the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TornTail {
    /// Byte offset of the first frame that failed validation.
    pub offset: u64,
    /// Index the bad frame would have had (== number of recovered records).
    pub record_index: u64,
    /// Human-readable reason the frame was rejected.
    pub reason: String,
}

/// Result of decoding a WAL byte stream: the longest valid prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalDecode {
    /// Every whole, checksum-valid record, in log order.
    pub records: Vec<WalRecord>,
    /// Byte length of the valid prefix (header + whole frames). Truncating
    /// the stream to this length yields a clean log ending in a whole record.
    pub valid_len: u64,
    /// `Some` if decoding stopped before the end of the input.
    pub torn: Option<TornTail>,
}

/// Decodes a WAL byte stream, tolerating a torn or corrupted tail.
///
/// Validation order per frame: enough bytes for the frame header, declared
/// length within the remaining bytes, CRC match, then payload parse. The
/// first failure ends decoding — everything before it is returned, nothing
/// after it is trusted. A missing or corrupted *file header* rejects the
/// whole stream (zero records): frames cannot be located without it.
pub fn decode_wal_bytes(bytes: &[u8]) -> WalDecode {
    let torn_at = |offset: usize, index: u64, reason: String| TornTail {
        offset: offset as u64,
        record_index: index,
        reason,
    };
    if bytes.len() < WAL_HEADER_LEN {
        return WalDecode {
            records: Vec::new(),
            valid_len: 0,
            torn: Some(torn_at(0, 0, format!("file header torn: {} bytes", bytes.len()))),
        };
    }
    if bytes[0..4] != WAL_MAGIC {
        return WalDecode {
            records: Vec::new(),
            valid_len: 0,
            torn: Some(torn_at(0, 0, "bad magic".to_string())),
        };
    }
    let version = u32_at(bytes, 4);
    if version != WAL_VERSION {
        return WalDecode {
            records: Vec::new(),
            valid_len: 0,
            torn: Some(torn_at(4, 0, format!("unsupported version {version}"))),
        };
    }

    let mut records = Vec::new();
    let mut at = WAL_HEADER_LEN;
    loop {
        if at == bytes.len() {
            return WalDecode { records, valid_len: at as u64, torn: None };
        }
        let index = records.len() as u64;
        if bytes.len() - at < FRAME_HEADER_LEN {
            let reason = format!("torn frame header: {} bytes", bytes.len() - at);
            return WalDecode {
                records,
                valid_len: at as u64,
                torn: Some(torn_at(at, index, reason)),
            };
        }
        let len = u32_at(bytes, at) as usize;
        let crc = u32_at(bytes, at + 4);
        let body = at + FRAME_HEADER_LEN;
        if len > bytes.len() - body {
            let reason = format!("torn payload: {len} declared, {} present", bytes.len() - body);
            return WalDecode {
                records,
                valid_len: at as u64,
                torn: Some(torn_at(at, index, reason)),
            };
        }
        let payload = &bytes[body..body + len];
        let actual = crc32(payload);
        if actual != crc {
            let reason = format!("crc mismatch: stored {crc:#010x}, computed {actual:#010x}");
            return WalDecode {
                records,
                valid_len: at as u64,
                torn: Some(torn_at(at, index, reason)),
            };
        }
        match WalRecord::decode_payload(payload) {
            Ok(record) => records.push(record),
            Err(reason) => {
                return WalDecode {
                    records,
                    valid_len: at as u64,
                    torn: Some(torn_at(at, index, reason)),
                };
            }
        }
        at = body + len;
    }
}

/// File-backed append side of the WAL, with fsync batching.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    path: PathBuf,
    sync_every: usize,
    unsynced: usize,
    len: u64,
    records: u64,
}

impl WalWriter {
    /// Creates (or truncates) a WAL file, writes the header, and fsyncs.
    ///
    /// `sync_every` is the fsync batch size: the file is fsynced after every
    /// `sync_every` appended records (1 = every record). `0` is treated as 1.
    pub fn create(path: &Path, sync_every: usize) -> Result<WalWriter, GraphStoreError> {
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(|e| GraphStoreError::io(path, "create wal", &e))?;
        let mut header = Vec::with_capacity(WAL_HEADER_LEN);
        encode_wal_header(&mut header);
        file.write_all(&header).map_err(|e| GraphStoreError::io(path, "write wal header", &e))?;
        file.sync_all().map_err(|e| GraphStoreError::io(path, "sync wal header", &e))?;
        Ok(WalWriter {
            file,
            path: path.to_path_buf(),
            sync_every: sync_every.max(1),
            unsynced: 0,
            len: WAL_HEADER_LEN as u64,
            records: 0,
        })
    }

    /// Opens an existing WAL for appending, after decoding what it holds.
    ///
    /// A torn tail is truncated away so appends extend the last whole record;
    /// a missing, unreadable, or header-corrupt file is recreated empty. The
    /// decoded prefix is returned for replay.
    pub fn open_for_append(
        path: &Path,
        sync_every: usize,
    ) -> Result<(WalWriter, WalDecode), GraphStoreError> {
        let bytes = match std::fs::File::open(path) {
            Ok(mut f) => {
                let mut buf = Vec::new();
                f.read_to_end(&mut buf).map_err(|e| GraphStoreError::io(path, "read wal", &e))?;
                buf
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                // No log yet: start one. Clean empty decode, nothing torn.
                let writer = WalWriter::create(path, sync_every)?;
                let decode =
                    WalDecode { records: Vec::new(), valid_len: WAL_HEADER_LEN as u64, torn: None };
                return Ok((writer, decode));
            }
            Err(e) => return Err(GraphStoreError::io(path, "open wal", &e)),
        };
        let decode = decode_wal_bytes(&bytes);
        if decode.valid_len == 0 {
            // Missing file or torn/corrupt header: start a fresh log.
            let writer = WalWriter::create(path, sync_every)?;
            return Ok((writer, decode));
        }
        let file = OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| GraphStoreError::io(path, "open wal for append", &e))?;
        if decode.valid_len < bytes.len() as u64 {
            file.set_len(decode.valid_len)
                .map_err(|e| GraphStoreError::io(path, "truncate torn wal tail", &e))?;
            file.sync_all().map_err(|e| GraphStoreError::io(path, "sync truncated wal", &e))?;
        }
        use std::io::Seek;
        let mut file = file;
        file.seek(std::io::SeekFrom::Start(decode.valid_len))
            .map_err(|e| GraphStoreError::io(path, "seek wal end", &e))?;
        let writer = WalWriter {
            file,
            path: path.to_path_buf(),
            sync_every: sync_every.max(1),
            unsynced: 0,
            len: decode.valid_len,
            records: decode.records.len() as u64,
        };
        Ok((writer, decode))
    }

    /// Appends one framed record; fsyncs when the batch size is reached.
    pub fn append(&mut self, record: &WalRecord) -> Result<(), GraphStoreError> {
        let mut frame = Vec::new();
        record.encode_frame(&mut frame);
        self.file
            .write_all(&frame)
            .map_err(|e| GraphStoreError::io(&self.path, "append wal record", &e))?;
        self.len += frame.len() as u64;
        self.records += 1;
        self.unsynced += 1;
        if self.unsynced >= self.sync_every {
            self.sync()?;
        }
        Ok(())
    }

    /// Forces all appended records to stable storage.
    pub fn sync(&mut self) -> Result<(), GraphStoreError> {
        if self.unsynced > 0 {
            self.file.sync_all().map_err(|e| GraphStoreError::io(&self.path, "fsync wal", &e))?;
            self.unsynced = 0;
        }
        Ok(())
    }

    /// Bytes written so far, header included.
    pub fn len_bytes(&self) -> u64 {
        self.len
    }

    /// Records in the log (decoded at open plus appended since).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// The file this writer appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Reads and decodes a WAL file without opening it for writing.
///
/// A missing file decodes as an empty, clean log.
pub fn read_wal_file(path: &Path) -> Result<WalDecode, GraphStoreError> {
    let bytes = match std::fs::File::open(path) {
        Ok(mut f) => {
            let mut buf = Vec::new();
            f.read_to_end(&mut buf).map_err(|e| GraphStoreError::io(path, "read wal", &e))?;
            buf
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(WalDecode {
                records: Vec::new(),
                valid_len: WAL_HEADER_LEN as u64,
                torn: None,
            });
        }
        Err(e) => return Err(GraphStoreError::io(path, "open wal", &e)),
    };
    Ok(decode_wal_bytes(&bytes))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord {
                seq: 1,
                op: WalOp::Insert,
                edges: vec![(NodeId(0), NodeId(1), Label(3)), (NodeId(1), NodeId(2), Label::ANY)],
            },
            WalRecord { seq: 2, op: WalOp::Delete, edges: vec![(NodeId(0), NodeId(1), Label(3))] },
            WalRecord { seq: 3, op: WalOp::Insert, edges: Vec::new() },
        ]
    }

    fn encode_log(records: &[WalRecord]) -> Vec<u8> {
        let mut bytes = Vec::new();
        encode_wal_header(&mut bytes);
        for r in records {
            r.encode_frame(&mut bytes);
        }
        bytes
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The canonical IEEE check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn records_round_trip_through_bytes() {
        let records = sample_records();
        let decode = decode_wal_bytes(&encode_log(&records));
        assert_eq!(decode.records, records);
        assert!(decode.torn.is_none());
        assert_eq!(decode.valid_len, encode_log(&records).len() as u64);
    }

    #[test]
    fn every_truncation_point_recovers_a_whole_record_prefix() {
        let records = sample_records();
        let bytes = encode_log(&records);
        // Frame boundaries: the only cut points where the log decodes clean.
        let mut boundaries = vec![WAL_HEADER_LEN as u64];
        {
            let mut at = WAL_HEADER_LEN as u64;
            for r in &records {
                at += (FRAME_HEADER_LEN + r.encode_payload().len()) as u64;
                boundaries.push(at);
            }
        }
        for cut in 0..=bytes.len() {
            let decode = decode_wal_bytes(&bytes[..cut]);
            let whole = boundaries.iter().filter(|&&b| b <= cut as u64).count();
            let expect = whole.saturating_sub(1); // header boundary is record 0
            assert_eq!(decode.records.len(), expect, "cut at {cut}");
            assert_eq!(decode.records[..], records[..expect], "cut at {cut}");
            if cut < WAL_HEADER_LEN {
                assert_eq!(decode.valid_len, 0, "cut at {cut}");
            } else {
                assert_eq!(decode.valid_len, boundaries[expect], "cut at {cut}");
            }
            // Clean decode exactly when the cut lands on a frame boundary.
            let at_boundary = boundaries.contains(&(cut as u64));
            assert_eq!(decode.torn.is_none(), at_boundary, "cut at {cut}");
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let records = sample_records();
        let clean = encode_log(&records);
        // Frame start offsets, to know which records precede a flipped byte.
        let mut starts = vec![WAL_HEADER_LEN as u64];
        for r in &records {
            let last = *starts.last().unwrap();
            starts.push(last + (FRAME_HEADER_LEN + r.encode_payload().len()) as u64);
        }
        for byte in 0..clean.len() {
            for bit in 0..8 {
                let mut bytes = clean.clone();
                bytes[byte] ^= 1 << bit;
                let decode = decode_wal_bytes(&bytes);
                // Records strictly before the flipped frame must survive;
                // the flipped frame and everything after it must be dropped.
                if byte < WAL_HEADER_LEN {
                    assert!(decode.records.is_empty(), "flip {byte}.{bit}");
                } else {
                    let frame = starts.iter().filter(|&&s| s <= byte as u64).count() - 1;
                    assert_eq!(decode.records.len(), frame, "flip {byte}.{bit}");
                    assert_eq!(decode.records[..], records[..frame], "flip {byte}.{bit}");
                    assert!(decode.torn.is_some(), "flip {byte}.{bit}");
                }
            }
        }
    }

    #[test]
    fn writer_appends_and_reopens() {
        let dir = std::env::temp_dir().join(format!("moctopus-wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test.mwal");
        let records = sample_records();
        {
            let mut w = WalWriter::create(&path, 2).unwrap();
            for r in &records {
                w.append(r).unwrap();
            }
            w.sync().unwrap();
            assert_eq!(w.records(), 3);
        }
        // Reopen cleanly, append one more.
        let extra = WalRecord { seq: 4, op: WalOp::Delete, edges: Vec::new() };
        {
            let (mut w, decode) = WalWriter::open_for_append(&path, 1).unwrap();
            assert_eq!(decode.records, records);
            assert!(decode.torn.is_none());
            w.append(&extra).unwrap();
        }
        // Tear the tail and reopen: the torn bytes are truncated away.
        {
            let bytes = std::fs::read(&path).unwrap();
            std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
            let (w, decode) = WalWriter::open_for_append(&path, 1).unwrap();
            assert_eq!(decode.records, records);
            assert!(decode.torn.is_some());
            assert_eq!(w.len_bytes(), decode.valid_len);
        }
        let decode = read_wal_file(&path).unwrap();
        assert_eq!(decode.records, records);
        assert!(decode.torn.is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_wal_reads_as_empty() {
        let path = std::env::temp_dir().join("moctopus-wal-definitely-missing.mwal");
        let decode = read_wal_file(&path).unwrap();
        assert!(decode.records.is_empty());
        assert!(decode.torn.is_none());
    }
}
