//! Heterogeneous graph storage for high-degree nodes (paper Section 3.3).
//!
//! High-degree nodes live on the host so their long next-hop lists can be read
//! with contiguous memory accesses, but updating those lists (duplicate
//! detection, free-slot management) would hammer the host CPU. The paper
//! splits the structure across the two sides:
//!
//! * **Host side** — `cols_vector`: one contiguous array of next-hop NodeIds
//!   per high-degree row (with a parallel 2-byte label array for the
//!   property-graph edge labels), with a size and a capacity. Queries read it
//!   with a single sequential fetch; updates only write one slot.
//! * **PIM side** — `elem_position_map`: a hash map from labelled edge
//!   `(row, col, label)` to its position inside the row's `cols_vector`; and
//!   `free_list_map`: a hash map from row to the list of free positions. The
//!   PIM module performs the existence check and the free-slot allocation,
//!   amortising the host's update cost.
//!
//! [`HeterogeneousStorage`] models both halves and reports, for every update,
//! how much work landed on each side ([`UpdateCost`]) so the simulator can
//! charge the host and the PIM module separately.

use crate::error::GraphStoreError;
use crate::ids::{Label, LabeledEdgeKey, NodeId};
use crate::labelstats::LabelStatsTable;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A sentinel stored in free slots of a `cols_vector`.
///
/// The paper's Figure 3 marks free positions with `-1`; we use `u64::MAX`.
const FREE_SLOT: NodeId = NodeId(u64::MAX);

/// One exported host row, `(row, slots, free)`: the row id, its
/// `cols_vector` slots verbatim (free slots hold the sentinel id), and the
/// free list in pop order. See [`HeterogeneousStorage::export_rows`].
pub type ExportedHostRow = (NodeId, Vec<(NodeId, Label)>, Vec<u64>);

/// Host bytes written for one slot's label: the default [`Label::ANY`] is
/// elided (only the 8-byte id array is touched), every other label also
/// writes its 2-byte entry in the parallel label array — matching the
/// PIM-side MRAM-write accounting of the local stores.
fn label_slot_bytes(label: Label) -> u64 {
    if label == Label::ANY {
        0
    } else {
        std::mem::size_of::<Label>() as u64
    }
}

/// Where the work of one storage operation landed.
///
/// All quantities are in the unit the PIM simulator charges for them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct UpdateCost {
    /// Bytes the host CPU read from its DRAM (sequential).
    pub host_bytes_read: u64,
    /// Bytes the host CPU wrote to its DRAM.
    pub host_bytes_written: u64,
    /// Hash-map lookups performed on the PIM side.
    pub pim_lookups: u64,
    /// Hash-map mutations (insert/remove) performed on the PIM side.
    pub pim_mutations: u64,
}

impl UpdateCost {
    /// Adds another cost onto this one.
    pub fn accumulate(&mut self, other: UpdateCost) {
        self.host_bytes_read += other.host_bytes_read;
        self.host_bytes_written += other.host_bytes_written;
        self.pim_lookups += other.pim_lookups;
        self.pim_mutations += other.pim_mutations;
    }
}

/// Result of an insert/delete against the heterogeneous storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UpdateOutcome {
    /// Whether the structure changed (false for duplicate insert / missing delete).
    pub changed: bool,
    /// Work split between host and PIM side for this operation.
    pub cost: UpdateCost,
}

/// One high-degree row: the host-resident contiguous `cols_vector` (next-hop
/// ids plus the parallel label array).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct ColsVector {
    slots: Vec<(NodeId, Label)>,
    live: usize,
}

/// Heterogeneous storage for the host-resident (high-degree) adjacency rows.
///
/// # Examples
///
/// ```
/// use graph_store::{HeterogeneousStorage, Label, NodeId};
///
/// let mut s = HeterogeneousStorage::new();
/// let outcome = s.insert_edge(NodeId(1), NodeId(2), Label::ANY);
/// assert!(outcome.changed);
/// assert_eq!(s.neighbors(NodeId(1)), vec![(NodeId(2), Label::ANY)]);
/// // A second insert of the same labelled edge is detected on the PIM side.
/// assert!(!s.insert_edge(NodeId(1), NodeId(2), Label::ANY).changed);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct HeterogeneousStorage {
    /// Host side: contiguous next-hop arrays.
    cols: HashMap<NodeId, ColsVector>,
    /// PIM side: labelled edge -> position within the row's cols_vector.
    elem_position_map: HashMap<LabeledEdgeKey, usize>,
    /// PIM side: row -> free positions inside its cols_vector.
    free_list_map: HashMap<NodeId, Vec<usize>>,
    /// Number of live edges across all rows.
    edge_count: usize,
    /// Per-label statistics, maintained on every mutation path (insert,
    /// delete, row install/take, snapshot rebuild) — never by rescanning.
    stats: LabelStatsTable,
    /// Reverse rows for nodes whose reverse placement is the host: strictly
    /// sorted `(source, label)` in-edges per node. A plain secondary index —
    /// reverse scans are sequential host reads, so no slot/free-list
    /// machinery is needed. Maintained explicitly by the engine's mirrored
    /// writes; forward mutations never touch it.
    rev_rows: HashMap<NodeId, Vec<(NodeId, Label)>>,
    /// Number of reverse-row entries stored.
    rev_edge_count: usize,
}

impl HeterogeneousStorage {
    /// Creates an empty heterogeneous storage.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs a complete row (used when a node is promoted to the host).
    ///
    /// Returns the cost of building the auxiliary PIM-side maps.
    pub fn install_row(&mut self, row: NodeId, next_hops: Vec<(NodeId, Label)>) -> UpdateCost {
        let mut cost = UpdateCost::default();
        // Drop any previous contents of the row.
        if let Some(old) = self.cols.remove(&row) {
            for &(dst, label) in &old.slots {
                if dst != FREE_SLOT {
                    self.elem_position_map.remove(&(row, dst, label));
                    self.stats.record_delete(row, dst, label);
                    cost.pim_mutations += 1;
                }
            }
            self.edge_count -= old.live;
        }
        self.free_list_map.remove(&row);

        let mut slots = Vec::with_capacity(next_hops.len());
        for (dst, label) in next_hops {
            if self.elem_position_map.contains_key(&(row, dst, label)) {
                continue; // duplicate within the provided row
            }
            let pos = slots.len();
            slots.push((dst, label));
            self.elem_position_map.insert((row, dst, label), pos);
            self.stats.record_insert(row, dst, label);
            cost.pim_mutations += 1;
            cost.host_bytes_written += label_slot_bytes(label);
        }
        let live = slots.len();
        cost.host_bytes_written += (live * std::mem::size_of::<NodeId>()) as u64;
        self.edge_count += live;
        self.cols.insert(row, ColsVector { slots, live });
        cost
    }

    /// Removes a row entirely and returns its live labelled next-hops (used
    /// when a node is demoted back to a PIM module).
    pub fn take_row(&mut self, row: NodeId) -> Option<Vec<(NodeId, Label)>> {
        let cols = self.cols.remove(&row)?;
        let mut hops = Vec::with_capacity(cols.live);
        for &(dst, label) in &cols.slots {
            if dst != FREE_SLOT {
                self.elem_position_map.remove(&(row, dst, label));
                self.stats.record_delete(row, dst, label);
                hops.push((dst, label));
            }
        }
        self.free_list_map.remove(&row);
        self.edge_count -= cols.live;
        Some(hops)
    }

    /// Inserts a labelled edge following the paper's four-step protocol:
    /// existence check (PIM), free-slot allocation (PIM), position-map update
    /// (PIM), and a single host write into `cols_vector`.
    pub fn insert_edge(&mut self, src: NodeId, dst: NodeId, label: Label) -> UpdateOutcome {
        let mut cost = UpdateCost::default();
        // Step 1: PIM-side existence check.
        cost.pim_lookups += 1;
        if self.elem_position_map.contains_key(&(src, dst, label)) {
            return UpdateOutcome { changed: false, cost };
        }
        let cols = self.cols.entry(src).or_default();
        // Step 2: PIM-side free-slot allocation.
        cost.pim_lookups += 1;
        let pos = match self.free_list_map.get_mut(&src).and_then(Vec::pop) {
            Some(free) => {
                cost.pim_mutations += 1;
                free
            }
            None => {
                // Grow the cols_vector; the host appends a slot.
                cols.slots.push((FREE_SLOT, Label::ANY));
                cols.slots.len() - 1
            }
        };
        // Step 3: PIM-side position-map update.
        self.elem_position_map.insert((src, dst, label), pos);
        cost.pim_mutations += 1;
        // Step 4: host writes the slot (id array, plus the label array for
        // non-default labels).
        cols.slots[pos] = (dst, label);
        cols.live += 1;
        cost.host_bytes_written += std::mem::size_of::<NodeId>() as u64 + label_slot_bytes(label);
        self.edge_count += 1;
        self.stats.record_insert(src, dst, label);
        UpdateOutcome { changed: true, cost }
    }

    /// Deletes a labelled edge: the PIM side locates the slot and returns it
    /// to the free list, the host overwrites the slot with the free marker.
    pub fn delete_edge(&mut self, src: NodeId, dst: NodeId, label: Label) -> UpdateOutcome {
        let mut cost = UpdateCost::default();
        cost.pim_lookups += 1;
        let Some(pos) = self.elem_position_map.remove(&(src, dst, label)) else {
            return UpdateOutcome { changed: false, cost };
        };
        cost.pim_mutations += 1;
        // moctopus-lint: allow(panic-in-lib, reason = "elem_position_map membership (checked above) implies the row exists; divergence is a corruption bug check_invariants catches")
        let cols = self.cols.get_mut(&src).expect("row must exist for a mapped edge");
        cols.slots[pos] = (FREE_SLOT, Label::ANY);
        cols.live -= 1;
        cost.host_bytes_written += std::mem::size_of::<NodeId>() as u64;
        self.free_list_map.entry(src).or_default().push(pos);
        cost.pim_mutations += 1;
        self.edge_count -= 1;
        self.stats.record_delete(src, dst, label);
        UpdateOutcome { changed: true, cost }
    }

    /// Returns `true` if the labelled edge exists (PIM-side lookup).
    pub fn has_edge(&self, src: NodeId, dst: NodeId, label: Label) -> bool {
        self.elem_position_map.contains_key(&(src, dst, label))
    }

    /// Returns `true` if a row is stored for `src`.
    pub fn contains_row(&self, src: NodeId) -> bool {
        self.cols.contains_key(&src)
    }

    /// Live labelled next-hops of `src` (host-side sequential read).
    pub fn neighbors(&self, src: NodeId) -> Vec<(NodeId, Label)> {
        self.neighbors_iter(src).collect()
    }

    /// Iterates the live labelled next-hops of `src` (slot order) without
    /// materialising them — the query hop loop scans hub rows this way.
    pub fn neighbors_iter(&self, src: NodeId) -> impl Iterator<Item = (NodeId, Label)> + '_ {
        self.cols
            .get(&src)
            .into_iter()
            .flat_map(|c| c.slots.iter().copied().filter(|&(d, _)| d != FREE_SLOT))
    }

    /// Bytes the host reads to fetch the id array of `src`'s row (one
    /// contiguous fetch over the whole `cols_vector`, including free slots;
    /// the parallel label array is charged separately via
    /// [`HeterogeneousStorage::slot_count`] when a scan is label-constrained).
    pub fn row_bytes(&self, src: NodeId) -> u64 {
        (self.slot_count(src) * std::mem::size_of::<NodeId>()) as u64
    }

    /// Number of slots (live + free) in `src`'s `cols_vector`.
    pub fn slot_count(&self, src: NodeId) -> usize {
        self.cols.get(&src).map(|c| c.slots.len()).unwrap_or(0)
    }

    /// Live out-degree of `src`.
    pub fn out_degree(&self, src: NodeId) -> usize {
        self.cols.get(&src).map(|c| c.live).unwrap_or(0)
    }

    /// Number of rows stored.
    pub fn row_count(&self) -> usize {
        self.cols.len()
    }

    /// Number of live edges across all rows.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// The incrementally maintained per-label statistics of this storage.
    pub fn label_stats(&self) -> &LabelStatsTable {
        &self.stats
    }

    /// Bytes of live next-hop ids resident on the host across all rows.
    ///
    /// Derived from the incrementally maintained edge counter, so the query
    /// engine can charge host random accesses against the resident set size
    /// without iterating every row per query. Counts the 8-byte id arrays
    /// (the structures random accesses chase); label arrays are charged at
    /// scan time.
    pub fn live_bytes(&self) -> u64 {
        (self.edge_count * std::mem::size_of::<NodeId>()) as u64
    }

    /// Iterates over rows as `(row, live labelled next-hops)`.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, Vec<(NodeId, Label)>)> + '_ {
        // moctopus-lint: allow(hash-iter-order, reason = "arbitrary-order row view; the graph_view consumers reduce order-independently and durable exports use export_rows, which sorts")
        self.cols
            .iter()
            .map(|(&r, c)| (r, c.slots.iter().copied().filter(|&(d, _)| d != FREE_SLOT).collect()))
    }

    /// Validates internal consistency between the host-side `cols_vector`s and
    /// the PIM-side maps. Used by property tests.
    ///
    /// # Errors
    ///
    /// Returns [`GraphStoreError::EdgeNotFound`] describing the first
    /// inconsistency encountered.
    pub fn check_invariants(&self) -> Result<(), GraphStoreError> {
        let mut live_total = 0usize;
        // moctopus-lint: allow(hash-iter-order, reason = "validation pass: the first-error choice varies, but any inconsistency fails the property test regardless of order")
        for (&row, cols) in &self.cols {
            let mut live = 0usize;
            for (pos, &(dst, label)) in cols.slots.iter().enumerate() {
                if dst == FREE_SLOT {
                    continue;
                }
                live += 1;
                match self.elem_position_map.get(&(row, dst, label)) {
                    Some(&p) if p == pos => {}
                    _ => return Err(GraphStoreError::EdgeNotFound(row, dst)),
                }
            }
            if live != cols.live {
                return Err(GraphStoreError::NodeNotFound(row));
            }
            live_total += live;
            if let Some(free) = self.free_list_map.get(&row) {
                for &pos in free {
                    if pos >= cols.slots.len() || cols.slots[pos].0 != FREE_SLOT {
                        return Err(GraphStoreError::NodeNotFound(row));
                    }
                }
            }
        }
        if live_total != self.edge_count {
            return Err(GraphStoreError::NodeNotFound(NodeId(u64::MAX)));
        }
        Ok(())
    }

    /// Inserts a reverse-row entry: `dst` is reached by an edge from `src`
    /// with `label`. The entry lands in the reverse row of `dst`, whose
    /// reverse placement must be the host.
    ///
    /// # Errors
    ///
    /// Returns [`GraphStoreError::DuplicateEdge`] when the entry already
    /// exists.
    pub fn insert_rev_edge(
        &mut self,
        dst: NodeId,
        src: NodeId,
        label: Label,
    ) -> Result<(), GraphStoreError> {
        let row = self.rev_rows.entry(dst).or_default();
        match row.binary_search(&(src, label)) {
            Ok(_) => Err(GraphStoreError::DuplicateEdge(src, dst)),
            Err(pos) => {
                row.insert(pos, (src, label));
                self.rev_edge_count += 1;
                self.stats.record_rev_insert(dst, label);
                Ok(())
            }
        }
    }

    /// Removes a reverse-row entry from the reverse row of `dst`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphStoreError::EdgeNotFound`] when the entry is absent.
    pub fn remove_rev_edge(
        &mut self,
        dst: NodeId,
        src: NodeId,
        label: Label,
    ) -> Result<(), GraphStoreError> {
        let row = self.rev_rows.get_mut(&dst).ok_or(GraphStoreError::EdgeNotFound(src, dst))?;
        let pos = row
            .binary_search(&(src, label))
            .map_err(|_| GraphStoreError::EdgeNotFound(src, dst))?;
        row.remove(pos);
        self.rev_edge_count -= 1;
        self.stats.record_rev_delete(dst, label);
        if row.is_empty() {
            self.rev_rows.remove(&dst);
        }
        Ok(())
    }

    /// Returns the reverse row (`(source, label)` pairs, ascending) for
    /// `dst`, if stored here.
    pub fn rev_row(&self, dst: NodeId) -> Option<&[(NodeId, Label)]> {
        self.rev_rows.get(&dst).map(Vec::as_slice)
    }

    /// Removes an entire reverse row and returns its strictly sorted
    /// contents (used when the node's placement migrates).
    pub fn take_rev_row(&mut self, dst: NodeId) -> Option<Vec<(NodeId, Label)>> {
        let row = self.rev_rows.remove(&dst);
        if let Some(ref r) = row {
            self.rev_edge_count -= r.len();
            self.stats.record_rev_row_taken(dst, r);
        }
        row
    }

    /// Installs a full reverse row received from a PIM module.
    ///
    /// Any existing reverse row for `dst` is replaced; presorted input (the
    /// migration path) is installed verbatim.
    pub fn install_rev_row(&mut self, dst: NodeId, mut in_edges: Vec<(NodeId, Label)>) {
        if !in_edges.windows(2).all(|w| w[0] < w[1]) {
            in_edges.sort();
            in_edges.dedup();
        }
        if let Some(old) = self.rev_rows.insert(dst, in_edges) {
            self.rev_edge_count -= old.len();
            self.stats.record_rev_row_taken(dst, &old);
        }
        self.rev_edge_count += self.rev_rows[&dst].len();
        self.stats.record_rev_row_installed(dst, &self.rev_rows[&dst]);
        if self.rev_rows[&dst].is_empty() {
            self.rev_rows.remove(&dst);
        }
    }

    /// Number of reverse-row entries stored.
    pub fn rev_edge_count(&self) -> usize {
        self.rev_edge_count
    }

    /// Host bytes of the reverse index (8-byte id + 2-byte label per entry),
    /// reported separately from [`HeterogeneousStorage::live_bytes`] so
    /// forward accounting stays untouched by the mirror.
    pub fn rev_bytes(&self) -> u64 {
        self.rev_edge_count as u64
            * (std::mem::size_of::<NodeId>() + std::mem::size_of::<Label>()) as u64
    }

    /// Exports every reverse row, sorted by node id (for tests and
    /// diagnostics; snapshots rebuild reverse rows from forward rows).
    pub fn export_rev_rows(&self) -> Vec<(NodeId, Vec<(NodeId, Label)>)> {
        // moctopus-lint: allow(hash-iter-order, reason = "collected then sort_by_key on the next line before use")
        let mut rows: Vec<(NodeId, Vec<(NodeId, Label)>)> =
            self.rev_rows.iter().map(|(&n, v)| (n, v.clone())).collect();
        rows.sort_by_key(|&(n, _)| n);
        rows
    }

    /// Exports every row for a durable snapshot, sorted by row id.
    ///
    /// Each entry is `(row, slots, free)`: the host-side `cols_vector`
    /// **verbatim** — free slots included, as the sentinel id — plus the
    /// row's free list in its exact pop order. Both must be preserved
    /// byte-for-byte: the slot layout determines `row_bytes` (and thus every
    /// future query cost), and the free-list order determines which slot the
    /// next insert reuses.
    pub fn export_rows(&self) -> Vec<ExportedHostRow> {
        // moctopus-lint: allow(hash-iter-order, reason = "collected then sorted by row id before use, below")
        let mut rows: Vec<ExportedHostRow> = self
            .cols
            .iter()
            .map(|(&row, cols)| {
                let free: Vec<u64> = self
                    .free_list_map
                    .get(&row)
                    .map(|f| f.iter().map(|&p| p as u64).collect())
                    .unwrap_or_default();
                (row, cols.slots.clone(), free)
            })
            .collect();
        rows.sort_by_key(|&(row, _, _)| row);
        rows
    }

    /// Rebuilds a storage from rows exported by
    /// [`HeterogeneousStorage::export_rows`].
    ///
    /// The PIM-side `elem_position_map` is rederived from the live slots
    /// (position = slot index) and the live/edge counters are recomputed, so
    /// the result satisfies [`HeterogeneousStorage::check_invariants`] and
    /// behaves identically to the exported original.
    pub fn from_rows(rows: Vec<ExportedHostRow>) -> Self {
        let mut s = HeterogeneousStorage::new();
        for (row, slots, free) in rows {
            let mut live = 0usize;
            for (pos, &(dst, label)) in slots.iter().enumerate() {
                if dst != FREE_SLOT {
                    s.elem_position_map.insert((row, dst, label), pos);
                    s.stats.record_insert(row, dst, label);
                    live += 1;
                }
            }
            s.edge_count += live;
            if !free.is_empty() {
                s.free_list_map.insert(row, free.into_iter().map(|p| p as usize).collect());
            }
            s.cols.insert(row, ColsVector { slots, live });
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ANY: Label = Label::ANY;

    #[test]
    fn insert_appends_then_reuses_free_slots() {
        let mut s = HeterogeneousStorage::new();
        assert!(s.insert_edge(NodeId(1), NodeId(5), ANY).changed);
        assert!(s.insert_edge(NodeId(1), NodeId(6), ANY).changed);
        assert!(s.delete_edge(NodeId(1), NodeId(5), ANY).changed);
        // The freed slot (position 0) must be reused by the next insert.
        assert!(s.insert_edge(NodeId(1), NodeId(7), ANY).changed);
        assert_eq!(s.row_bytes(NodeId(1)), 16); // still only two slots
        let mut n: Vec<NodeId> = s.neighbors(NodeId(1)).into_iter().map(|(d, _)| d).collect();
        n.sort();
        assert_eq!(n, vec![NodeId(6), NodeId(7)]);
        s.check_invariants().unwrap();
    }

    #[test]
    fn duplicate_insert_only_costs_a_pim_lookup() {
        let mut s = HeterogeneousStorage::new();
        s.insert_edge(NodeId(1), NodeId(2), ANY);
        let outcome = s.insert_edge(NodeId(1), NodeId(2), ANY);
        assert!(!outcome.changed);
        assert_eq!(outcome.cost.host_bytes_written, 0);
        assert_eq!(outcome.cost.pim_lookups, 1);
        assert_eq!(s.edge_count(), 1);
    }

    #[test]
    fn labelled_insert_charges_the_label_array_write() {
        let mut s = HeterogeneousStorage::new();
        // Default label: id array only (byte-identical to the unlabelled path).
        assert_eq!(s.insert_edge(NodeId(1), NodeId(2), ANY).cost.host_bytes_written, 8);
        // Non-default label: id array + 2-byte label array entry, matching the
        // PIM local store's MRAM-write accounting.
        assert_eq!(s.insert_edge(NodeId(1), NodeId(3), Label(5)).cost.host_bytes_written, 10);
        let install = s.install_row(NodeId(9), vec![(NodeId(1), ANY), (NodeId(2), Label(3))]);
        assert_eq!(install.host_bytes_written, 16 + 2);
    }

    #[test]
    fn same_pair_under_a_new_label_is_a_distinct_edge() {
        let mut s = HeterogeneousStorage::new();
        assert!(s.insert_edge(NodeId(1), NodeId(2), Label(1)).changed);
        assert!(s.insert_edge(NodeId(1), NodeId(2), Label(2)).changed);
        assert_eq!(s.edge_count(), 2);
        assert!(s.has_edge(NodeId(1), NodeId(2), Label(1)));
        assert!(!s.has_edge(NodeId(1), NodeId(2), Label(3)));
        assert!(s.delete_edge(NodeId(1), NodeId(2), Label(1)).changed);
        assert!(!s.delete_edge(NodeId(1), NodeId(2), Label(1)).changed);
        assert_eq!(s.out_degree(NodeId(1)), 1);
        s.check_invariants().unwrap();
    }

    #[test]
    fn delete_missing_edge_is_a_noop() {
        let mut s = HeterogeneousStorage::new();
        let outcome = s.delete_edge(NodeId(3), NodeId(4), ANY);
        assert!(!outcome.changed);
        assert_eq!(s.edge_count(), 0);
    }

    #[test]
    fn insert_cost_splits_work_between_sides() {
        let mut s = HeterogeneousStorage::new();
        let outcome = s.insert_edge(NodeId(1), NodeId(2), ANY);
        // Host does exactly one 8-byte write; PIM does the lookups/updates.
        assert_eq!(outcome.cost.host_bytes_written, 8);
        assert!(outcome.cost.pim_lookups >= 2);
        assert!(outcome.cost.pim_mutations >= 1);
    }

    #[test]
    fn install_and_take_row_roundtrip() {
        let mut s = HeterogeneousStorage::new();
        s.install_row(NodeId(9), vec![(NodeId(1), ANY), (NodeId(2), Label(3)), (NodeId(3), ANY)]);
        assert_eq!(s.out_degree(NodeId(9)), 3);
        assert_eq!(s.edge_count(), 3);
        s.check_invariants().unwrap();
        let mut row = s.take_row(NodeId(9)).unwrap();
        row.sort();
        assert_eq!(row, vec![(NodeId(1), ANY), (NodeId(2), Label(3)), (NodeId(3), ANY)]);
        assert_eq!(s.edge_count(), 0);
        assert!(s.take_row(NodeId(9)).is_none());
    }

    #[test]
    fn install_row_replaces_previous_contents() {
        let mut s = HeterogeneousStorage::new();
        s.install_row(NodeId(1), vec![(NodeId(2), ANY), (NodeId(3), ANY)]);
        s.install_row(NodeId(1), vec![(NodeId(4), ANY)]);
        assert_eq!(s.neighbors(NodeId(1)), vec![(NodeId(4), ANY)]);
        assert_eq!(s.edge_count(), 1);
        assert!(!s.has_edge(NodeId(1), NodeId(2), ANY));
        s.check_invariants().unwrap();
    }

    #[test]
    fn install_row_ignores_duplicates_in_input() {
        let mut s = HeterogeneousStorage::new();
        s.install_row(NodeId(1), vec![(NodeId(2), ANY), (NodeId(2), ANY), (NodeId(3), ANY)]);
        assert_eq!(s.out_degree(NodeId(1)), 2);
        s.check_invariants().unwrap();
    }

    #[test]
    fn figure3_insert_example() {
        // Paper Figure 3: inserting edge <1, 2>: the free list hands out a
        // position, the position map records it, the host writes one slot.
        let mut s = HeterogeneousStorage::new();
        s.install_row(
            NodeId(1),
            vec![(NodeId(5), ANY), (NodeId(6), ANY), (NodeId(7), ANY), (NodeId(4), ANY)],
        );
        s.delete_edge(NodeId(1), NodeId(6), ANY).changed.then_some(()).unwrap();
        let before_bytes = s.row_bytes(NodeId(1));
        let outcome = s.insert_edge(NodeId(1), NodeId(2), ANY);
        assert!(outcome.changed);
        assert_eq!(outcome.cost.host_bytes_written, 8);
        assert_eq!(s.row_bytes(NodeId(1)), before_bytes); // slot reused, no growth
        assert!(s.has_edge(NodeId(1), NodeId(2), ANY));
        s.check_invariants().unwrap();
    }

    #[test]
    fn live_bytes_tracks_the_full_iteration() {
        let mut s = HeterogeneousStorage::new();
        s.install_row(NodeId(1), vec![(NodeId(2), ANY), (NodeId(3), ANY)]);
        s.insert_edge(NodeId(4), NodeId(5), ANY);
        s.delete_edge(NodeId(1), NodeId(2), ANY);
        let iterated: u64 = s.iter().map(|(_, hops)| hops.len() as u64 * 8).sum();
        assert_eq!(s.live_bytes(), iterated);
        assert_eq!(s.live_bytes(), 16);
    }

    /// Transposes exported host rows (live slots only) into the reverse rows
    /// a storage mirroring both sides of every edge would carry.
    fn transpose(rows: &[ExportedHostRow]) -> Vec<(NodeId, Vec<(NodeId, Label)>)> {
        let mut map: std::collections::BTreeMap<NodeId, Vec<(NodeId, Label)>> =
            std::collections::BTreeMap::new();
        for &(src, ref slots, _) in rows {
            for &(dst, label) in slots {
                if dst != FREE_SLOT {
                    map.entry(dst).or_default().push((src, label));
                }
            }
        }
        map.into_iter()
            .map(|(n, mut v)| {
                v.sort();
                (n, v)
            })
            .collect()
    }

    #[test]
    fn label_stats_stay_incremental_under_churn() {
        // After every step of a deterministic insert/delete/install/take
        // interleaving — with the reverse side mirrored the way the engine
        // does it — the incrementally maintained stats must equal the stats
        // of a storage rebuilt from scratch via the snapshot path (forward
        // rows restored, reverse rows re-derived by transposition), and the
        // incremental reverse rows must equal the independent transpose.
        let mut s = HeterogeneousStorage::new();
        for i in 0..48u64 {
            let (src, dst, label) =
                (NodeId(i % 5), NodeId((i * 7) % 13), Label((i % 3) as u16 + 1));
            if s.insert_edge(src, dst, label).changed {
                s.insert_rev_edge(dst, src, label).unwrap();
            }
            if i % 4 == 0 {
                let (ds, dd, dl) = (NodeId((i + 1) % 5), NodeId((i * 7 + 7) % 13), Label(1));
                if s.delete_edge(ds, dd, dl).changed {
                    s.remove_rev_edge(dd, ds, dl).unwrap();
                }
            }
            if i % 11 == 0 {
                if let Some(row) = s.take_row(NodeId(i % 5)) {
                    s.install_row(NodeId(i % 5), row);
                }
                if let Some(rev) = s.take_rev_row(NodeId((i * 7) % 13)) {
                    s.install_rev_row(NodeId((i * 7) % 13), rev);
                }
            }
            let mut rebuilt = HeterogeneousStorage::from_rows(s.export_rows());
            for (n, rev) in transpose(&s.export_rows()) {
                rebuilt.install_rev_row(n, rev);
            }
            assert_eq!(
                s.label_stats().snapshot(),
                rebuilt.label_stats().snapshot(),
                "incremental stats diverged from rebuilt stats at step {i}"
            );
            assert_eq!(
                s.export_rev_rows(),
                transpose(&s.export_rows()),
                "reverse rows diverged from the forward transpose at step {i}"
            );
            s.check_invariants().unwrap();
        }
        assert_eq!(s.label_stats().total_edges(), s.edge_count() as u64);
        assert_eq!(s.rev_edge_count(), s.edge_count());
        assert!(s.rev_bytes() > 0);
    }

    #[test]
    fn rev_index_is_independent_of_forward_slots() {
        let mut s = HeterogeneousStorage::new();
        s.insert_rev_edge(NodeId(7), NodeId(1), Label(2)).unwrap();
        s.insert_rev_edge(NodeId(7), NodeId(1), Label(3)).unwrap();
        assert!(s.insert_rev_edge(NodeId(7), NodeId(1), Label(2)).is_err());
        assert_eq!(s.rev_row(NodeId(7)).unwrap(), &[(NodeId(1), Label(2)), (NodeId(1), Label(3))]);
        // Reverse entries never count as live edges or host live bytes.
        assert_eq!(s.edge_count(), 0);
        assert_eq!(s.live_bytes(), 0);
        assert_eq!(s.rev_bytes(), 20);
        s.check_invariants().unwrap();
        s.remove_rev_edge(NodeId(7), NodeId(1), Label(2)).unwrap();
        s.remove_rev_edge(NodeId(7), NodeId(1), Label(3)).unwrap();
        assert!(s.rev_row(NodeId(7)).is_none());
        assert_eq!(s.label_stats().snapshot(), Default::default());
    }

    #[test]
    fn iter_reports_live_rows() {
        let mut s = HeterogeneousStorage::new();
        s.install_row(NodeId(1), vec![(NodeId(2), ANY)]);
        s.install_row(NodeId(3), vec![(NodeId(4), ANY), (NodeId(5), ANY)]);
        let mut rows: Vec<_> = s.iter().map(|(r, hops)| (r, hops.len())).collect();
        rows.sort();
        assert_eq!(rows, vec![(NodeId(1), 1), (NodeId(3), 2)]);
        assert_eq!(s.row_count(), 2);
    }
}
