//! Dynamic, labelled, directed adjacency-list graph.
//!
//! [`AdjacencyGraph`] is the logical "whole graph" view used by the workload
//! generators, by the host-only baseline, and as the reference implementation
//! that the partitioned PIM engines are checked against in the integration
//! tests. It supports the dynamic operations the paper's storage engine must
//! handle: edge insertion, edge deletion, and incremental degree tracking.

use crate::ids::{Label, NodeId};
use crate::labelstats::LabelStatsTable;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A directed, labelled multigraph stored as per-node adjacency vectors.
///
/// Parallel edges with the *same* label are collapsed (the adjacency matrix is
/// boolean), but the same node pair may be connected by edges with different
/// labels.
///
/// # Examples
///
/// ```
/// use graph_store::{AdjacencyGraph, Label, NodeId};
///
/// let mut g = AdjacencyGraph::new();
/// assert!(g.insert_edge(NodeId(0), NodeId(1), Label(0)));
/// assert!(!g.insert_edge(NodeId(0), NodeId(1), Label(0))); // duplicate
/// assert!(g.insert_edge(NodeId(0), NodeId(1), Label(1))); // new label
/// assert_eq!(g.out_degree(NodeId(0)), 2);
/// assert!(g.remove_edge(NodeId(0), NodeId(1), Label(1)));
/// assert_eq!(g.out_degree(NodeId(0)), 1);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AdjacencyGraph {
    /// Out-neighbours per node: `(destination, label)` pairs.
    out_edges: HashMap<NodeId, Vec<(NodeId, Label)>>,
    /// In-neighbours per node: `(source, label)` pairs, kept **strictly
    /// sorted**. The whole-graph view owns both directions, so the reverse
    /// side is maintained on the same insert/delete path as the forward side
    /// (and re-derived by transposition on snapshot restore).
    in_edges: HashMap<NodeId, Vec<(NodeId, Label)>>,
    /// Number of directed edges currently stored.
    edge_count: usize,
    /// Largest node id ever seen plus one; used to size dense structures.
    id_bound: u64,
    /// Per-label statistics, maintained on every labelled insert/delete (and
    /// rebuilt alongside the edge count on snapshot restore).
    stats: LabelStatsTable,
}

impl AdjacencyGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty graph with room pre-allocated for `nodes` nodes.
    pub fn with_capacity(nodes: usize) -> Self {
        AdjacencyGraph {
            out_edges: HashMap::with_capacity(nodes),
            in_edges: HashMap::with_capacity(nodes),
            edge_count: 0,
            id_bound: 0,
            stats: LabelStatsTable::new(),
        }
    }

    /// Builds a graph from an iterator of unlabelled `(src, dst)` pairs.
    ///
    /// All edges receive [`Label::ANY`].
    pub fn from_edges<I>(edges: I) -> Self
    where
        I: IntoIterator<Item = (NodeId, NodeId)>,
    {
        let mut g = AdjacencyGraph::new();
        for (s, d) in edges {
            g.insert_edge(s, d, Label::ANY);
        }
        g
    }

    /// Inserts a directed edge. Returns `true` if the edge was new.
    ///
    /// Both endpoints become known nodes even if they had no prior edges.
    pub fn insert_edge(&mut self, src: NodeId, dst: NodeId, label: Label) -> bool {
        self.note_node(src);
        self.note_node(dst);
        let row = self.out_edges.entry(src).or_default();
        if row.iter().any(|&(d, l)| d == dst && l == label) {
            return false;
        }
        row.push((dst, label));
        let rev = self.in_edges.entry(dst).or_default();
        if let Err(pos) = rev.binary_search(&(src, label)) {
            rev.insert(pos, (src, label));
        }
        self.edge_count += 1;
        self.stats.record_insert(src, dst, label);
        self.stats.record_rev_insert(dst, label);
        true
    }

    /// Removes a directed edge. Returns `true` if the edge existed.
    pub fn remove_edge(&mut self, src: NodeId, dst: NodeId, label: Label) -> bool {
        if let Some(row) = self.out_edges.get_mut(&src) {
            if let Some(pos) = row.iter().position(|&(d, l)| d == dst && l == label) {
                row.swap_remove(pos);
                if let Some(rev) = self.in_edges.get_mut(&dst) {
                    if let Ok(rpos) = rev.binary_search(&(src, label)) {
                        rev.remove(rpos);
                    }
                }
                self.edge_count -= 1;
                self.stats.record_delete(src, dst, label);
                self.stats.record_rev_delete(dst, label);
                return true;
            }
        }
        false
    }

    /// Returns `true` if the edge is present.
    pub fn has_edge(&self, src: NodeId, dst: NodeId, label: Label) -> bool {
        self.out_edges
            .get(&src)
            .map(|row| row.iter().any(|&(d, l)| d == dst && l == label))
            .unwrap_or(false)
    }

    /// Registers a node without adding any edges.
    pub fn note_node(&mut self, node: NodeId) {
        self.out_edges.entry(node).or_default();
        if node.0 + 1 > self.id_bound {
            self.id_bound = node.0 + 1;
        }
    }

    /// Out-neighbours of `node` (with labels); empty slice if unknown.
    pub fn neighbors(&self, node: NodeId) -> &[(NodeId, Label)] {
        self.out_edges.get(&node).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Out-neighbours of `node` restricted to `label`.
    pub fn neighbors_with_label(&self, node: NodeId, label: Label) -> Vec<NodeId> {
        self.neighbors(node).iter().filter(|&&(_, l)| l == label).map(|&(d, _)| d).collect()
    }

    /// Out-degree of `node` (0 if the node is unknown).
    pub fn out_degree(&self, node: NodeId) -> usize {
        self.out_edges.get(&node).map(Vec::len).unwrap_or(0)
    }

    /// In-neighbours of `node` (`(source, label)` pairs, strictly ascending);
    /// empty slice if the node has no in-edges.
    pub fn in_neighbors(&self, node: NodeId) -> &[(NodeId, Label)] {
        self.in_edges.get(&node).map(Vec::as_slice).unwrap_or(&[])
    }

    /// In-degree of `node` (0 if the node has no in-edges).
    pub fn in_degree(&self, node: NodeId) -> usize {
        self.in_edges.get(&node).map(Vec::len).unwrap_or(0)
    }

    /// Exports every non-empty in-adjacency row, sorted by node id, with
    /// strictly sorted contents (for tests and diagnostics; snapshots
    /// re-derive the reverse side from forward rows).
    pub fn export_rev_rows(&self) -> Vec<(NodeId, Vec<(NodeId, Label)>)> {
        // moctopus-lint: allow(hash-iter-order, reason = "collected then sort_by_key on the next line before use")
        let mut rows: Vec<(NodeId, Vec<(NodeId, Label)>)> = self
            .in_edges
            .iter()
            .filter(|(_, v)| !v.is_empty())
            .map(|(&n, v)| (n, v.clone()))
            .collect();
        rows.sort_by_key(|&(n, _)| n);
        rows
    }

    /// Number of nodes that have been registered (with or without edges).
    pub fn node_count(&self) -> usize {
        self.out_edges.len()
    }

    /// Number of directed edges stored.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// One greater than the largest node id ever seen.
    ///
    /// Dense structures (e.g. the partition vector) can be sized with this.
    pub fn id_bound(&self) -> u64 {
        self.id_bound
    }

    /// Returns `true` if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.out_edges.is_empty()
    }

    /// Iterates over every node id in the graph (arbitrary order).
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        // moctopus-lint: allow(hash-iter-order, reason = "documented arbitrary-order API; order-sensitive callers go through export_rows/to_sorted_edges")
        self.out_edges.keys().copied()
    }

    /// Iterates over every directed edge as `(src, dst, label)`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, Label)> + '_ {
        // moctopus-lint: allow(hash-iter-order, reason = "documented arbitrary-order API; order-sensitive callers go through export_rows/to_sorted_edges")
        self.out_edges.iter().flat_map(|(&s, row)| row.iter().map(move |&(d, l)| (s, d, l)))
    }

    /// Collects all edges into a vector sorted by `(src, dst, label)`.
    ///
    /// Useful for deterministic comparisons in tests.
    pub fn to_sorted_edges(&self) -> Vec<(NodeId, NodeId, Label)> {
        let mut v: Vec<_> = self.edges().collect();
        v.sort();
        v
    }

    /// Number of nodes whose out-degree strictly exceeds `threshold`.
    pub fn count_high_degree(&self, threshold: usize) -> usize {
        // moctopus-lint: allow(hash-iter-order, reason = "reduced with count(); a cardinality is order-independent")
        self.out_edges.values().filter(|row| row.len() > threshold).count()
    }

    /// Approximate resident bytes of the adjacency data (for memory budgeting).
    pub fn approx_bytes(&self) -> u64 {
        let per_edge = std::mem::size_of::<(NodeId, Label)>() as u64;
        let per_node =
            (std::mem::size_of::<NodeId>() + std::mem::size_of::<Vec<(NodeId, Label)>>()) as u64;
        self.edge_count as u64 * per_edge + self.out_edges.len() as u64 * per_node
    }

    /// Exports every row for a durable snapshot, sorted by node id.
    ///
    /// Row contents are exported **verbatim** — insertion/`swap_remove` order
    /// is history-dependent and must be preserved so a restored graph keeps
    /// producing identical row scans. Edge-less rows (registered via
    /// [`AdjacencyGraph::note_node`]) are included: they count toward
    /// `node_count` and `approx_bytes`, which the host baseline's cost model
    /// reads.
    pub fn export_rows(&self) -> Vec<(NodeId, Vec<(NodeId, Label)>)> {
        // moctopus-lint: allow(hash-iter-order, reason = "collected then sort_by_key on the next line before use")
        let mut rows: Vec<(NodeId, Vec<(NodeId, Label)>)> =
            self.out_edges.iter().map(|(&n, v)| (n, v.clone())).collect();
        rows.sort_by_key(|&(n, _)| n);
        rows
    }

    /// Rebuilds a graph from rows exported by
    /// [`AdjacencyGraph::export_rows`] plus the saved id bound.
    ///
    /// The edge count is recomputed from the rows; the id bound is taken
    /// as-is (it can exceed every present id after deletions).
    pub fn from_rows(rows: Vec<(NodeId, Vec<(NodeId, Label)>)>, id_bound: u64) -> Self {
        let mut edge_count = 0;
        let mut stats = LabelStatsTable::new();
        let mut in_edges: HashMap<NodeId, Vec<(NodeId, Label)>> = HashMap::new();
        let out_edges: HashMap<NodeId, Vec<(NodeId, Label)>> = rows
            .into_iter()
            .map(|(n, v)| {
                edge_count += v.len();
                stats.record_row_installed(n, &v);
                for &(dst, label) in &v {
                    let rev = in_edges.entry(dst).or_default();
                    if let Err(pos) = rev.binary_search(&(n, label)) {
                        rev.insert(pos, (n, label));
                        stats.record_rev_insert(dst, label);
                    }
                }
                (n, v)
            })
            .collect();
        AdjacencyGraph { out_edges, in_edges, edge_count, id_bound, stats }
    }

    /// The incrementally maintained per-label statistics of this graph.
    pub fn label_stats(&self) -> &LabelStatsTable {
        &self.stats
    }
}

impl FromIterator<(NodeId, NodeId)> for AdjacencyGraph {
    fn from_iter<I: IntoIterator<Item = (NodeId, NodeId)>>(iter: I) -> Self {
        AdjacencyGraph::from_edges(iter)
    }
}

impl Extend<(NodeId, NodeId, Label)> for AdjacencyGraph {
    fn extend<I: IntoIterator<Item = (NodeId, NodeId, Label)>>(&mut self, iter: I) {
        for (s, d, l) in iter {
            self.insert_edge(s, d, l);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AdjacencyGraph {
        let mut g = AdjacencyGraph::new();
        g.insert_edge(NodeId(0), NodeId(1), Label(0));
        g.insert_edge(NodeId(0), NodeId(2), Label(0));
        g.insert_edge(NodeId(1), NodeId(2), Label(1));
        g.insert_edge(NodeId(2), NodeId(0), Label(0));
        g
    }

    #[test]
    fn insert_counts_nodes_and_edges() {
        let g = sample();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.id_bound(), 3);
    }

    #[test]
    fn duplicate_insert_is_rejected() {
        let mut g = sample();
        assert!(!g.insert_edge(NodeId(0), NodeId(1), Label(0)));
        assert_eq!(g.edge_count(), 4);
    }

    #[test]
    fn same_pair_different_label_is_a_new_edge() {
        let mut g = sample();
        assert!(g.insert_edge(NodeId(0), NodeId(1), Label(7)));
        assert_eq!(g.out_degree(NodeId(0)), 3);
    }

    #[test]
    fn remove_edge_updates_counts() {
        let mut g = sample();
        assert!(g.remove_edge(NodeId(0), NodeId(1), Label(0)));
        assert!(!g.remove_edge(NodeId(0), NodeId(1), Label(0)));
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.out_degree(NodeId(0)), 1);
    }

    #[test]
    fn neighbors_with_label_filters() {
        let g = sample();
        assert_eq!(g.neighbors_with_label(NodeId(1), Label(1)), vec![NodeId(2)]);
        assert!(g.neighbors_with_label(NodeId(1), Label(0)).is_empty());
    }

    #[test]
    fn isolated_node_has_zero_degree() {
        let mut g = sample();
        g.note_node(NodeId(99));
        assert_eq!(g.out_degree(NodeId(99)), 0);
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.id_bound(), 100);
    }

    #[test]
    fn edges_iterator_matches_edge_count() {
        let g = sample();
        assert_eq!(g.edges().count(), g.edge_count());
        let sorted = g.to_sorted_edges();
        assert_eq!(sorted.len(), 4);
        assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn from_edges_collects_unlabelled_pairs() {
        let g: AdjacencyGraph =
            vec![(NodeId(0), NodeId(1)), (NodeId(1), NodeId(0))].into_iter().collect();
        assert_eq!(g.edge_count(), 2);
        assert!(g.has_edge(NodeId(0), NodeId(1), Label::ANY));
    }

    #[test]
    fn count_high_degree_uses_strict_threshold() {
        let mut g = AdjacencyGraph::new();
        for i in 1..=20u64 {
            g.insert_edge(NodeId(0), NodeId(i), Label::ANY);
        }
        for i in 1..=16u64 {
            g.insert_edge(NodeId(100), NodeId(i), Label::ANY);
        }
        assert_eq!(g.count_high_degree(16), 1); // only node 0 exceeds 16
    }

    #[test]
    fn label_stats_stay_incremental_under_churn() {
        let mut g = AdjacencyGraph::new();
        for i in 0..40u64 {
            g.insert_edge(NodeId(i % 6), NodeId((i * 5) % 9), Label((i % 4) as u16 + 1));
            if i % 3 == 0 {
                g.remove_edge(NodeId((i + 2) % 6), NodeId((i * 5 + 10) % 9), Label(1));
            }
            let rebuilt = AdjacencyGraph::from_rows(g.export_rows(), g.id_bound());
            assert_eq!(
                g.label_stats().snapshot(),
                rebuilt.label_stats().snapshot(),
                "incremental stats diverged from rebuilt stats at step {i}"
            );
            assert_eq!(
                g.export_rev_rows(),
                rebuilt.export_rev_rows(),
                "incremental reverse rows diverged from rebuilt transpose at step {i}"
            );
        }
        assert_eq!(g.label_stats().total_edges(), g.edge_count() as u64);
    }

    #[test]
    fn in_adjacency_mirrors_out_adjacency() {
        let mut g = sample();
        assert_eq!(g.in_neighbors(NodeId(2)), &[(NodeId(0), Label(0)), (NodeId(1), Label(1))]);
        assert_eq!(g.in_degree(NodeId(2)), 2);
        assert_eq!(g.in_degree(NodeId(0)), 1);
        g.remove_edge(NodeId(1), NodeId(2), Label(1));
        assert_eq!(g.in_neighbors(NodeId(2)), &[(NodeId(0), Label(0))]);
        // Every (src, dst, label) appears exactly once on each side.
        let forward = g.to_sorted_edges();
        let mut reverse: Vec<(NodeId, NodeId, Label)> = g
            .export_rev_rows()
            .iter()
            .flat_map(|(dst, row)| row.iter().map(move |&(src, l)| (src, *dst, l)))
            .collect();
        reverse.sort();
        assert_eq!(forward, reverse);
    }

    #[test]
    fn approx_bytes_grows_with_edges() {
        let mut g = AdjacencyGraph::new();
        let empty = g.approx_bytes();
        for i in 0..100u64 {
            g.insert_edge(NodeId(i), NodeId(i + 1), Label::ANY);
        }
        assert!(g.approx_bytes() > empty);
    }
}
