//! Graph storage substrates used by the Moctopus reproduction.
//!
//! The crate provides every storage structure the paper's system relies on:
//!
//! * [`ids`] — strongly-typed identifiers ([`NodeId`], [`PartitionId`], [`Label`]).
//! * [`property`] — the property-graph data model (nodes/edges with labels and
//!   property/value pairs) used by graph databases.
//! * [`adjacency`] — a dynamic, labelled, directed adjacency-list graph; the
//!   logical "whole graph" view used by generators and baselines.
//! * [`csr`] — an immutable compressed-sparse-row snapshot for analytics.
//! * [`local`] — the per-PIM-module *local graph storage*: a hash map from row
//!   id (NodeId) to row data (labelled next-hop pairs), exactly as described
//!   in Section 3.1 of the paper.
//! * [`heterogeneous`] — the *heterogeneous graph storage* of Section 3.3 for
//!   high-degree nodes kept on the host: a contiguous `cols_vector` on the
//!   host plus `elem_position_map` / `free_list_map` hash maps on the PIM side.
//! * [`degree`] — out-degree tracking and the high-degree threshold (16).
//! * [`labelstats`] — incrementally maintained per-label degree/cardinality
//!   statistics, the input of the cost-based RPQ plan optimizer.
//! * [`edgelist`] — plain and SNAP-style labelled edge-list import/export.
//! * [`snapshot`] / [`wal`] / [`durable`] — the durable storage plane: a
//!   versioned, checksummed snapshot format, an append-only labelled-edge
//!   write-ahead log with per-record CRC and torn-tail-tolerant recovery, and
//!   the generation-numbered store façade tying them together (STORAGE.md).
//!
//! # Examples
//!
//! ```
//! use graph_store::prelude::*;
//!
//! let mut g = AdjacencyGraph::new();
//! g.insert_edge(NodeId(0), NodeId(1), Label::default());
//! g.insert_edge(NodeId(1), NodeId(2), Label::default());
//! assert_eq!(g.out_degree(NodeId(0)), 1);
//! assert_eq!(g.edge_count(), 2);
//! ```

pub mod adjacency;
mod bytes;
pub mod csr;
pub mod degree;
pub mod durable;
pub mod edgelist;
pub mod error;
pub mod heterogeneous;
pub mod ids;
pub mod labelstats;
pub mod local;
pub mod property;
pub mod snapshot;
pub mod wal;

pub use adjacency::AdjacencyGraph;
pub use csr::CsrGraph;
pub use degree::{DegreeTracker, HIGH_DEGREE_THRESHOLD};
pub use durable::{
    current_generation, generation_snapshot_path, generation_wal_path, DurableStore, RecoveredState,
};
pub use error::GraphStoreError;
pub use heterogeneous::{HeterogeneousStorage, UpdateCost, UpdateOutcome};
pub use ids::{EdgeKey, Label, LabeledEdgeKey, NodeId, PartitionId};
pub use labelstats::{LabelCounters, LabelStatsSnapshot, LabelStatsTable};
pub use local::LocalGraphStorage;
pub use property::{PropertyGraph, PropertyValue};
pub use snapshot::{HostRowSnapshot, LocalModuleSnapshot, SnapshotState};
pub use wal::{TornTail, WalDecode, WalOp, WalRecord, WalWriter};

/// Convenience re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::adjacency::AdjacencyGraph;
    pub use crate::csr::CsrGraph;
    pub use crate::degree::{DegreeTracker, HIGH_DEGREE_THRESHOLD};
    pub use crate::error::GraphStoreError;
    pub use crate::heterogeneous::HeterogeneousStorage;
    pub use crate::ids::{Label, NodeId, PartitionId};
    pub use crate::local::LocalGraphStorage;
    pub use crate::property::{PropertyGraph, PropertyValue};
}
