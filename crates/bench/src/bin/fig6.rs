//! Regenerates Figure 6: run time of graph updates (insert a batch of new
//! edges, delete a batch of existing edges) on Moctopus and the
//! RedisGraph-like baseline, per trace plus the average.
//!
//! The paper inserts and deletes 64 K randomly selected edges; the harness
//! scales that batch with `--scale` (same rule as the query batch).
//!
//! Run with: `cargo run --release --bin fig6 [--scale S]`

use moctopus::GraphEngine;
use moctopus_bench::{fmt_ms, geometric_mean, HarnessOptions, TraceWorkload};

fn main() {
    let options = HarnessOptions::from_env();
    println!(
        "Figure 6 — graph update run time (simulated ms), scale = {:.4}, update batch = {}\n",
        options.scale, options.batch
    );

    let mut insert_speedups = Vec::new();
    let mut delete_speedups = Vec::new();

    println!("--- Figure 6(a) : insert ---");
    println!(
        "{:>3}  {:<15}  {:>12}  {:>12}  {:>9}",
        "id", "trace", "Moctopus", "RedisGraph", "speedup"
    );
    let mut insert_rows = Vec::new();
    let mut delete_rows = Vec::new();
    for &trace_id in &options.traces {
        let workload = TraceWorkload::generate(trace_id, &options);
        let inserts =
            graph_gen::stream::sample_new_edges(&workload.graph, options.batch, options.seed + 1);
        let deletes = graph_gen::stream::sample_existing_edges(
            &workload.graph,
            options.batch,
            options.seed + 2,
        );

        let mut moctopus = workload.moctopus(&options);
        let mut baseline = workload.host_baseline(&options);

        let moc_ins = moctopus.insert_edges(&inserts);
        let host_ins = baseline.insert_edges(&inserts);
        let ins_speedup = host_ins.latency().as_nanos() / moc_ins.latency().as_nanos().max(1.0);
        insert_speedups.push(ins_speedup);
        insert_rows.push((
            trace_id,
            workload.spec.name,
            moc_ins.latency(),
            host_ins.latency(),
            ins_speedup,
        ));

        let moc_del = moctopus.delete_edges(&deletes);
        let host_del = baseline.delete_edges(&deletes);
        let del_speedup = host_del.latency().as_nanos() / moc_del.latency().as_nanos().max(1.0);
        delete_speedups.push(del_speedup);
        delete_rows.push((
            trace_id,
            workload.spec.name,
            moc_del.latency(),
            host_del.latency(),
            del_speedup,
        ));
    }
    for (id, name, moc, host, s) in &insert_rows {
        println!(
            "{:>3}  {:<15}  {:>12}  {:>12}  {:>8.2}x",
            id,
            name,
            fmt_ms(*moc),
            fmt_ms(*host),
            s
        );
    }
    println!(
        "{:>3}  {:<15}  {:>12}  {:>12}  {:>8.2}x\n",
        "",
        "Average",
        "",
        "",
        geometric_mean(&insert_speedups)
    );

    println!("--- Figure 6(b) : delete ---");
    println!(
        "{:>3}  {:<15}  {:>12}  {:>12}  {:>9}",
        "id", "trace", "Moctopus", "RedisGraph", "speedup"
    );
    for (id, name, moc, host, s) in &delete_rows {
        println!(
            "{:>3}  {:<15}  {:>12}  {:>12}  {:>8.2}x",
            id,
            name,
            fmt_ms(*moc),
            fmt_ms(*host),
            s
        );
    }
    println!(
        "{:>3}  {:<15}  {:>12}  {:>12}  {:>8.2}x",
        "",
        "Average",
        "",
        "",
        geometric_mean(&delete_speedups)
    );

    println!(
        "\npaper: insertion up to 81.45x faster (average 30.01x); deletion up to 209.31x (average 52.59x)"
    );
}
