//! Concurrent query-serving workload: many clients, interleaved RPQs and
//! labelled updates, with and without the update-consistent result cache.
//!
//! The binary drives one deterministic open-loop trace
//! (`moctopus_bench::ServeTrace`: Zipf-popular query pool, configurable
//! update fraction, round-robin logical arrival across clients) through the
//! `moctopus-server` layer three times over a fresh Moctopus engine each:
//!
//! * `cost-exact`  — caching on, hits bit-identical in results *and* stats;
//! * `result-exact` — caching on, label-precise invalidation only;
//! * `no-cache`    — every query executes on the engine.
//!
//! It self-verifies on every run: all three modes must produce identical
//! query results, and every `cost-exact` response's stats must equal the
//! uncached run's. Stdout is deterministic for a fixed seed — simulated
//! times and counters only — and byte-identical at every `--threads` value
//! (CI diffs it); wall-clock goes only into the `--json` record.
//!
//! Run with: `cargo run --release --bin serve [--scale S] [--seed N]
//! [--threads N] [--clients N] [--requests N] [--update-fraction F]
//! [--distinct N] [--json [PATH]]`

use moctopus::{GraphEngine, MoctopusSystem};
use moctopus_bench::{HarnessOptions, RpqWorkload, ServeTrace, ServeTraceConfig};
use moctopus_server::{
    CacheConfig, ConcurrentServer, ConsistencyMode, QueryServer, Response, ResponseBody,
    ServerConfig, Session,
};
use std::time::Instant;

/// One mode's deterministic outcome plus its (JSON-only) wall-clock.
struct ModeOutcome {
    name: &'static str,
    responses: Vec<Vec<Response>>,
    totals: moctopus_server::ServeTotals,
    cache: Option<moctopus_server::CacheStats>,
    wall_ms: f64,
}

/// Parses the serve-specific flags (harness flags are handled by
/// `HarnessOptions`, which ignores unknown ones).
fn trace_config_from_args() -> ServeTraceConfig {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = ServeTraceConfig::default();
    let mut i = 0;
    while i < args.len() {
        let value = args.get(i + 1);
        match (args[i].as_str(), value) {
            ("--clients", Some(v)) => {
                if let Ok(n) = v.parse::<usize>() {
                    cfg.clients = n.max(1);
                }
                i += 2;
            }
            ("--requests", Some(v)) => {
                if let Ok(n) = v.parse::<usize>() {
                    cfg.requests_per_client = n.max(1);
                }
                i += 2;
            }
            ("--update-fraction", Some(v)) => {
                if let Ok(f) = v.parse::<f64>() {
                    cfg.update_fraction = f.clamp(0.0, 1.0);
                }
                i += 2;
            }
            ("--distinct", Some(v)) => {
                if let Ok(n) = v.parse::<usize>() {
                    cfg.distinct_queries = n.max(1);
                }
                i += 2;
            }
            _ => i += 1,
        }
    }
    cfg
}

/// Parses `--json [PATH]` (default `BENCH_PR5.json`), as in `summary`.
fn json_path_from_args() -> Option<String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let pos = args.iter().position(|a| a == "--json")?;
    match args.get(pos + 1) {
        Some(next) if !next.starts_with("--") => Some(next.clone()),
        _ => Some("BENCH_PR5.json".to_string()),
    }
}

/// Runs the trace through one server mode over a fresh engine.
fn run_mode(
    name: &'static str,
    cache: Option<CacheConfig>,
    options: &HarnessOptions,
    workload: &RpqWorkload,
    trace: &ServeTrace,
) -> ModeOutcome {
    let t0 = Instant::now();
    let mut engine = MoctopusSystem::new(options.system_config());
    engine.insert_labeled_edges(&workload.edges);
    engine.refine_locality();
    let config = ServerConfig { cache, pricing: *engine.config() };
    let server = ConcurrentServer::new(QueryServer::new(Box::new(engine), config));

    let mut sessions: Vec<Session> =
        (0..trace.per_client.len()).map(|_| server.session()).collect();
    std::thread::scope(|scope| {
        for (session, schedule) in sessions.drain(..).zip(&trace.per_client) {
            scope.spawn(move || {
                let mut session = session;
                for (at, kind) in schedule {
                    session.submit(*at, kind.clone()).expect("trace timestamps are monotonic");
                }
                session.finish();
            });
        }
        server.run();
    });

    let responses = server.take_responses();
    let (totals, cache) = server.with_core(|core| (core.totals(), core.cache_stats()));
    ModeOutcome { name, responses, totals, cache, wall_ms: t0.elapsed().as_secs_f64() * 1e3 }
}

/// Asserts the self-verification invariants across modes (see module docs).
fn cross_check(reference: &ModeOutcome, cached: &[&ModeOutcome]) {
    for mode in cached {
        assert_eq!(
            mode.responses.len(),
            reference.responses.len(),
            "{}: client count drifted",
            mode.name
        );
        for (client, (got, want)) in mode.responses.iter().zip(&reference.responses).enumerate() {
            assert_eq!(got.len(), want.len(), "{}: response count for client {client}", mode.name);
            for (g, w) in got.iter().zip(want) {
                match (&g.body, &w.body) {
                    (
                        ResponseBody::Query { results: a, stats: sa, .. },
                        ResponseBody::Query { results: b, stats: sb, .. },
                    ) => {
                        assert_eq!(a, b, "{}: cached answer diverged at {}", mode.name, g.id);
                        if mode.name == "cost-exact" {
                            assert_eq!(sa, sb, "{}: cached stats diverged at {}", mode.name, g.id);
                        }
                    }
                    (
                        ResponseBody::Update { stats: sa, .. },
                        ResponseBody::Update { stats: sb, .. },
                    ) => {
                        assert_eq!(sa, sb, "{}: update stats diverged at {}", mode.name, g.id);
                    }
                    _ => panic!("{}: response kind mismatch at {}", mode.name, g.id),
                }
            }
        }
    }
}

fn render_json(
    options: &HarnessOptions,
    cfg: &ServeTraceConfig,
    workload: &RpqWorkload,
    modes: &[&ModeOutcome],
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"serve\",\n");
    out.push_str(&format!("  \"scale\": {},\n", options.scale));
    out.push_str(&format!("  \"seed\": {},\n", options.seed));
    out.push_str(&format!("  \"threads\": {},\n", options.threads));
    out.push_str(&format!("  \"clients\": {},\n", cfg.clients));
    out.push_str(&format!("  \"requests_per_client\": {},\n", cfg.requests_per_client));
    out.push_str(&format!("  \"update_fraction\": {},\n", cfg.update_fraction));
    out.push_str(&format!("  \"distinct_queries\": {},\n", cfg.distinct_queries));
    out.push_str(&format!(
        "  \"workload\": {{\"name\": \"{}\", \"nodes\": {}, \"labelled_edges\": {}}},\n",
        workload.name,
        workload.graph.node_count(),
        workload.graph.edge_count()
    ));
    out.push_str("  \"modes\": [\n");
    let no_cache_served = modes
        .iter()
        .find(|m| m.name == "no-cache")
        .map(|m| m.totals.served_time().as_millis())
        .unwrap_or(0.0);
    for (i, m) in modes.iter().enumerate() {
        let t = &m.totals;
        let served = t.served_time().as_millis();
        let speedup = if served > 0.0 { no_cache_served / served } else { 1.0 };
        out.push_str(&format!(
            "    {{\"mode\": \"{}\", \"wall_ms\": {:.3}, \"sim_served_ms\": {:.3}, \
             \"sim_engine_ms\": {:.3}, \"sim_hit_overhead_ms\": {:.3}, \
             \"sim_avoided_ms\": {:.3}, \"sim_saved_ms\": {:.3}, \
             \"sim_speedup_vs_no_cache\": {:.3}, \"hits\": {}, \"misses\": {}, \
             \"hit_rate\": {:.4}, \"invalidated\": {}, \"evictions\": {}}}{}\n",
            m.name,
            m.wall_ms,
            served,
            t.engine_time.as_millis(),
            t.hit_time.as_millis(),
            t.avoided_time.as_millis(),
            t.saved_nanos() / 1e6,
            speedup,
            m.cache.map_or(0, |c| c.hits),
            m.cache.map_or(0, |c| c.misses),
            m.cache.map_or(0.0, |c| c.hit_rate()),
            m.cache.map_or(0, |c| c.invalidated),
            m.cache.map_or(0, |c| c.evictions),
            if i + 1 == modes.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let options = HarnessOptions::from_env();
    let cfg = trace_config_from_args();
    let json_path = json_path_from_args();

    let workload = RpqWorkload::power_law(&options);
    let trace = ServeTrace::generate(&workload, &cfg, options.seed);
    println!(
        "Concurrent RPQ serving (simulated ms), scale = {:.4}: {} clients x {} requests, \
         {:.0}% updates, query pool = {} ({} sources each)",
        options.scale,
        cfg.clients,
        cfg.requests_per_client,
        cfg.update_fraction * 100.0,
        cfg.distinct_queries,
        cfg.sources_per_query
    );
    println!(
        "workload: {} ({} nodes, {} labelled edges), engine: Moctopus\n",
        workload.name,
        workload.graph.node_count(),
        workload.graph.edge_count()
    );

    let cost_exact = run_mode(
        "cost-exact",
        Some(CacheConfig { mode: ConsistencyMode::CostExact, ..CacheConfig::default() }),
        &options,
        &workload,
        &trace,
    );
    let result_exact = run_mode(
        "result-exact",
        Some(CacheConfig { mode: ConsistencyMode::ResultExact, ..CacheConfig::default() }),
        &options,
        &workload,
        &trace,
    );
    let no_cache = run_mode("no-cache", None, &options, &workload, &trace);
    cross_check(&no_cache, &[&cost_exact, &result_exact]);

    println!(
        "{:<14}  {:>10}  {:>10}  {:>10}  {:>10}  {:>10}  {:>6} {:>6} {:>6}  {:>6}",
        "mode", "served", "engine", "hit-ovhd", "avoided", "saved", "hits", "miss", "inval", "hit%"
    );
    for m in [&cost_exact, &result_exact, &no_cache] {
        let t = &m.totals;
        println!(
            "{:<14}  {:>10.3}  {:>10.3}  {:>10.3}  {:>10.3}  {:>10.3}  {:>6} {:>6} {:>6}  {:>5.1}%",
            m.name,
            t.served_time().as_millis(),
            t.engine_time.as_millis(),
            t.hit_time.as_millis(),
            t.avoided_time.as_millis(),
            t.saved_nanos() / 1e6,
            m.cache.map_or(0, |c| c.hits),
            m.cache.map_or(0, |c| c.misses),
            m.cache.map_or(0, |c| c.invalidated),
            m.cache.map_or(0.0, |c| c.hit_rate() * 100.0),
        );
    }
    let speedup = |m: &ModeOutcome| {
        let served = m.totals.served_time().as_millis();
        if served > 0.0 {
            no_cache.totals.served_time().as_millis() / served
        } else {
            1.0
        }
    };
    println!(
        "\nsimulated serving-time speedup vs no-cache: cost-exact {:.2}x, result-exact {:.2}x",
        speedup(&cost_exact),
        speedup(&result_exact)
    );
    println!(
        "self-check passed: all modes returned identical query results, and every cost-exact \
         response's stats matched uncached re-execution"
    );

    if let Some(path) = json_path {
        let json = render_json(&options, &cfg, &workload, &[&cost_exact, &result_exact, &no_cache]);
        match std::fs::write(&path, &json) {
            Ok(()) => println!("\nServe bench baseline written to {path}"),
            Err(e) => eprintln!("\nFailed to write {path}: {e}"),
        }
    }
}
